//! Exact reproduction of the paper's analysis results from its
//! published Table 5.
//!
//! Every assertion here is a number or identity printed in the paper
//! (Tables 6 and 7, Figures 6–8, §5.3), recomputed by this
//! repository's communal-customization implementation from the
//! embedded Table 5 matrix. Tolerances of ±0.01 reflect the paper's
//! two-decimal printing; the handful of paper-internal inconsistencies
//! (values computed by the authors from unrounded logs) are documented
//! in `EXPERIMENTS.md` and asserted at their recomputed values.

use xpscalar::communal::{
    assign_surrogates, best_combination, ideal_performance, pitfall_experiment, Merit, Propagation,
};
use xpscalar::paper;

fn close(a: f64, b: f64, tol: f64, what: &str) {
    assert!(
        (a - b).abs() <= tol,
        "{what}: got {a}, expected {b} (±{tol})"
    );
}

/// Table 6 row 1: the best single configuration for both average and
/// harmonic-mean IPT is gcc's, at 2.06 / 1.57.
#[test]
fn table6_best_single_config_is_gcc() {
    let m = paper::table5_matrix();
    for merit in [Merit::Average, Merit::HarmonicMean] {
        let r = best_combination(&m, 1, merit);
        assert_eq!(r.names, vec!["gcc".to_string()], "{merit:?}");
        close(r.avg_ipt, 2.06, 0.01, "gcc avg IPT");
        close(r.har_ipt, 1.57, 0.01, "gcc harmonic IPT");
    }
}

/// Table 6 row 2: best dual-core for average IPT is parser + twolf at
/// average 2.27.
#[test]
fn table6_best_pair_for_average() {
    let m = paper::table5_matrix();
    let r = best_combination(&m, 2, Merit::Average);
    assert_eq!(r.names, vec!["parser".to_string(), "twolf".to_string()]);
    close(r.avg_ipt, 2.27, 0.01, "parser+twolf avg IPT");
    close(r.har_ipt, 1.76, 0.01, "parser+twolf harmonic IPT");
}

/// Table 6 row 3: best dual-core for harmonic-mean IPT is gcc + mcf at
/// 2.12 average / 1.88 harmonic.
#[test]
fn table6_best_pair_for_harmonic() {
    let m = paper::table5_matrix();
    let r = best_combination(&m, 2, Merit::HarmonicMean);
    assert_eq!(r.names, vec!["gcc".to_string(), "mcf".to_string()]);
    close(r.avg_ipt, 2.12, 0.01, "gcc+mcf avg IPT");
    close(r.har_ipt, 1.88, 0.01, "gcc+mcf harmonic IPT");
}

/// Table 6 row 4: best dual-core for contention-weighted harmonic mean
/// is bzip + crafty at 2.18 average / 1.87 harmonic.
#[test]
fn table6_best_pair_for_contention_weighted() {
    let m = paper::table5_matrix();
    let r = best_combination(&m, 2, Merit::ContentionWeightedHarmonicMean);
    assert_eq!(r.names, vec!["bzip".to_string(), "crafty".to_string()]);
    close(r.avg_ipt, 2.18, 0.01, "bzip+crafty avg IPT");
    close(r.har_ipt, 1.87, 0.01, "bzip+crafty harmonic IPT");
}

/// Table 6 rows 5–6: the triples. Best-3 for average is
/// crafty + parser + twolf (2.35 avg); best-3 for harmonic is
/// crafty + mcf + twolf (2.27 avg / 2.05 har).
#[test]
fn table6_best_triples() {
    let m = paper::table5_matrix();
    let ra = best_combination(&m, 3, Merit::Average);
    assert_eq!(
        ra.names,
        vec![
            "crafty".to_string(),
            "parser".to_string(),
            "twolf".to_string()
        ]
    );
    close(ra.avg_ipt, 2.35, 0.01, "3-avg avg IPT");
    close(ra.har_ipt, 1.82, 0.01, "3-avg harmonic IPT");

    let rh = best_combination(&m, 3, Merit::HarmonicMean);
    assert_eq!(
        rh.names,
        vec!["crafty".to_string(), "mcf".to_string(), "twolf".to_string()]
    );
    close(rh.avg_ipt, 2.27, 0.01, "3-har avg IPT");
    close(rh.har_ipt, 2.05, 0.01, "3-har harmonic IPT");
}

/// Table 6 row 7: best-4 for both average and harmonic is
/// crafty + mcf + parser + twolf. (The paper prints 2.32 / 2.08; the
/// values recomputed from its published, two-decimal Table 5 are
/// 2.39 / 2.12 — see EXPERIMENTS.md.)
#[test]
fn table6_best_quad() {
    let m = paper::table5_matrix();
    let expect = vec![
        "crafty".to_string(),
        "mcf".to_string(),
        "parser".to_string(),
        "twolf".to_string(),
    ];
    for merit in [Merit::Average, Merit::HarmonicMean] {
        let r = best_combination(&m, 4, merit);
        assert_eq!(r.names, expect, "{merit:?}");
    }
    let r = best_combination(&m, 4, Merit::HarmonicMean);
    close(r.avg_ipt, 2.3855, 0.001, "4-core avg from published table");
    close(r.har_ipt, 2.1188, 0.001, "4-core har from published table");
}

/// Table 6 last row / Table 7 row 1: the ideal system. (Printed
/// 2.38 / 2.12; recomputed from the published table: 2.44 / 2.16.)
#[test]
fn ideal_system() {
    let m = paper::table5_matrix();
    let (avg, har) = ideal_performance(&m);
    close(avg, 2.4409, 0.001, "ideal avg from published table");
    close(har, 2.1577, 0.001, "ideal har from published table");
    // Within the paper's own printed precision they differ by < 3%.
    assert!((har - 2.12).abs() / 2.12 < 0.03);
}

/// §5.1: up to ~50% slowdown (mcf) when a benchmark runs on another's
/// customized architecture.
#[test]
fn mcf_suffers_most_cross_configuration() {
    let m = paper::table5_matrix();
    let mcf = m.index_of("mcf").expect("mcf present");
    let worst_mcf = (0..11)
        .filter(|&c| c != mcf)
        .map(|c| m.slowdown(mcf, c))
        .fold(0.0f64, f64::max);
    assert!(worst_mcf > 0.5, "mcf's worst slowdown ~68%: {worst_mcf}");
    let best_foreign = (0..11)
        .filter(|&c| c != mcf)
        .map(|c| m.slowdown(mcf, c))
        .fold(f64::INFINITY, f64::min);
    close(
        best_foreign,
        0.204,
        0.005,
        "mcf's best foreign arch (bzip) ~20%",
    );
}

/// §5.3: bzip on gzip's customized configuration loses 33%; gzip on
/// bzip's loses 43% — the two "similar" benchmarks are
/// configurationally far apart.
#[test]
fn bzip_gzip_mutual_slowdowns() {
    let m = paper::table5_matrix();
    let b = m.index_of("bzip").expect("bzip present");
    let g = m.index_of("gzip").expect("gzip present");
    close(m.slowdown(b, g), 0.33, 0.005, "bzip on gzip's arch");
    close(m.slowdown(g, b), 0.43, 0.005, "gzip on bzip's arch");
}

/// §5.3: letting one of the bzip/gzip pair represent the other flips
/// the complete-search dual-core choice to bzip + crafty (harmonic
/// 1.87), a ~0.5% loss versus gcc + mcf (1.88).
#[test]
fn subsetting_pitfall() {
    let m = paper::table5_matrix();
    let r = pitfall_experiment(&m, "gzip", 2, Merit::HarmonicMean);
    assert_eq!(r.full_choice, vec!["gcc".to_string(), "mcf".to_string()]);
    assert_eq!(
        r.reduced_choice,
        vec!["bzip".to_string(), "crafty".to_string()]
    );
    close(
        r.reduced_value_on_full,
        1.87,
        0.01,
        "bzip+crafty harmonic on full set",
    );
    assert!(r.loss > 0.0, "subsetting must cost performance");
    close(r.loss, 0.005, 0.003, "~0.5% slowdown");
}

/// Figure 6 (§5.4.1): greedy surrogates without propagation leave four
/// architectures; harmonic-mean IPT 1.83 and average slowdown 5.66%
/// versus ideal. Adding mcf's own architecture as a fifth core lifts
/// the harmonic mean to ~2.1 and the average slowdown to ~1.6%.
#[test]
fn figure6_no_propagation() {
    let m = paper::table5_matrix();
    let s = assign_surrogates(&m, Propagation::None, 1);
    assert_eq!(s.final_architectures.len(), 4);
    close(
        s.harmonic_ipt(&m),
        1.83,
        0.01,
        "no-propagation harmonic IPT",
    );
    close(
        s.average_slowdown(&m),
        0.0566,
        0.001,
        "no-propagation avg slowdown",
    );
    assert!(s.feedback_pairs.is_empty(), "no cycles without propagation");

    // The bulk of the damage is mcf's 44% surrogate; giving mcf its
    // own core recovers almost everything.
    let mcf = m.index_of("mcf").expect("mcf present");
    let mut assignment = s.assignment.clone();
    assignment[mcf] = mcf;
    let har = 11.0
        / assignment
            .iter()
            .enumerate()
            .map(|(w, &c)| 1.0 / m.ipt(w, c))
            .sum::<f64>();
    close(har, 2.1, 0.03, "five-core harmonic IPT");
    let slow = assignment
        .iter()
        .enumerate()
        .map(|(w, &c)| m.slowdown(w, c))
        .sum::<f64>()
        / 11.0;
    close(slow, 0.016, 0.002, "five-core avg slowdown");
}

/// Figure 7 (§5.4.2): full propagation reduces to the architectures of
/// gzip and twolf (harmonic 1.74, ~18% below ideal per Table 7), with
/// feedback surrogating between gzip↔parser and twolf↔vpr.
#[test]
fn figure7_full_propagation() {
    let m = paper::table5_matrix();
    let s = assign_surrogates(&m, Propagation::ForwardBackward, 1);
    let finals: Vec<&str> = s
        .final_architectures
        .iter()
        .map(|&i| m.names()[i].as_str())
        .collect();
    assert_eq!(finals, vec!["gzip", "twolf"]);
    close(
        s.harmonic_ipt(&m),
        1.74,
        0.01,
        "full-propagation harmonic IPT",
    );
    // Both feedback pairs the paper observes.
    let names = |(a, b): (usize, usize)| (m.names()[a].as_str(), m.names()[b].as_str());
    let pairs: Vec<_> = s.feedback_pairs.iter().copied().map(names).collect();
    assert!(pairs.contains(&("gzip", "parser")), "{pairs:?}");
    assert!(pairs.contains(&("twolf", "vpr")), "{pairs:?}");
    // Eleven edges: nine tree edges plus the two cycle closers.
    assert_eq!(s.edges.len(), 11);
}

/// Figure 7's edges against the starred cells of Appendix A: every
/// starred (dependent, host) pair the paper marks is selected by the
/// greedy.
#[test]
fn figure7_edges_match_appendix_stars() {
    let m = paper::table5_matrix();
    let s = assign_surrogates(&m, Propagation::ForwardBackward, 1);
    let has = |dep: &str, host: &str| {
        let d = m.index_of(dep).expect("known");
        let h = m.index_of(host).expect("known");
        s.edges.iter().any(|e| e.dependent == d && e.host == h)
    };
    for (dep, host) in [
        ("bzip", "twolf"),
        ("crafty", "vortex"),
        ("gap", "gzip"),
        ("gcc", "crafty"),
        ("gzip", "parser"),
        ("parser", "gzip"),
        ("perl", "crafty"),
        ("twolf", "vpr"),
        ("vortex", "parser"),
        ("vpr", "twolf"),
        ("mcf", "bzip"),
    ] {
        assert!(has(dep, host), "missing starred edge {dep} <- {host}");
    }
}

/// Figure 8 (§5.4.2): forward-only propagation, driven to two
/// architectures, yields harmonic-mean IPT ≈ 1.75 with mcf's
/// architecture among the survivors.
#[test]
fn figure8_forward_propagation() {
    let m = paper::table5_matrix();
    let s = assign_surrogates(&m, Propagation::Forward, 2);
    assert_eq!(s.final_architectures.len(), 2);
    close(s.harmonic_ipt(&m), 1.75, 0.01, "forward-only harmonic IPT");
    let mcf = m.index_of("mcf").expect("mcf present");
    assert!(
        s.final_architectures.contains(&mcf),
        "mcf's architecture survives (nothing surrogates it cheaply)"
    );
    assert!(s.feedback_pairs.is_empty(), "forward-only cannot feed back");
}

/// Table 7, all four rows, from the published matrix.
#[test]
fn table7_summary() {
    let m = paper::table5_matrix();
    let t = xpscalar::table7(&m);
    assert_eq!(t.rows.len(), 4);
    // Row 2: homogeneous gcc. Paper: 1.57, 26% below ideal.
    close(t.rows[1].harmonic_ipt, 1.57, 0.01, "homogeneous har");
    close(
        t.rows[1].slowdown_vs_ideal,
        0.27,
        0.02,
        "homogeneous slowdown",
    );
    // Row 3: complete search gcc+mcf. Paper: 1.88, 11%.
    assert_eq!(
        t.rows[2].architectures,
        vec!["gcc".to_string(), "mcf".to_string()]
    );
    close(t.rows[2].harmonic_ipt, 1.88, 0.01, "complete-search har");
    close(
        t.rows[2].slowdown_vs_ideal,
        0.12,
        0.02,
        "complete-search slowdown",
    );
    // Row 4: greedy surrogates with propagation. Paper: 1.74, 18%.
    close(t.rows[3].harmonic_ipt, 1.74, 0.01, "surrogate har");
    close(
        t.rows[3].slowdown_vs_ideal,
        0.19,
        0.02,
        "surrogate slowdown",
    );
}

/// Figure 4's qualitative claims: twolf and parser gain ~40% / ~25%
/// over the best single configuration under the best-2-for-average
/// set, and mcf nearly doubles under the best-2-for-harmonic set while
/// helping almost nobody else.
#[test]
fn figure4_series_claims() {
    let m = paper::table5_matrix();
    let gcc = m.index_of("gcc").expect("gcc present");
    let best_single = vec![gcc];
    let avg2: Vec<usize> = best_combination(&m, 2, Merit::Average).cores;
    let har2: Vec<usize> = best_combination(&m, 2, Merit::HarmonicMean).cores;

    let gain = |w: &str, set: &[usize]| {
        let i = m.index_of(w).expect("known benchmark");
        m.ipt(i, m.best_config_for(i, set)) / m.ipt(i, m.best_config_for(i, &best_single))
    };
    let twolf_gain = gain("twolf", &avg2);
    assert!(
        (1.35..=1.55).contains(&twolf_gain),
        "twolf ~40-45%: {twolf_gain}"
    );
    let parser_gain = gain("parser", &avg2);
    assert!(
        (1.2..=1.35).contains(&parser_gain),
        "parser ~25%: {parser_gain}"
    );
    let mcf_gain = gain("mcf", &har2);
    assert!(mcf_gain > 1.9, "mcf ~2x: {mcf_gain}");
    // mcf's architecture helps only bzip among the others.
    let mcf = m.index_of("mcf").expect("mcf present");
    for w in 0..11 {
        if w == mcf {
            continue;
        }
        let with_mcf = m.ipt(w, m.best_config_for(w, &[gcc, mcf]));
        let without = m.ipt(w, gcc);
        if m.names()[w] != "bzip" {
            assert!(
                with_mcf <= without + 1e-12,
                "{} should not benefit from mcf's core",
                m.names()[w]
            );
        } else {
            assert!(with_mcf > without, "bzip benefits slightly");
        }
    }
}
