//! End-to-end measured reproduction on a reduced scale: run the actual
//! pipeline (workload models → annealing → cross matrix → communal
//! customization) on a subset of benchmarks and check the paper's
//! qualitative claims hold on this repository's own substrate.
//!
//! These use the quick budgets; the full-scale campaign is exercised by
//! `repro explore` and recorded in EXPERIMENTS.md.

use xpscalar::communal::{best_combination, ideal_performance, Merit};
use xpscalar::pipeline::Pipeline;
use xpscalar::workload::spec;

fn profiles(names: &[&str]) -> Vec<xpscalar::workload::WorkloadProfile> {
    names
        .iter()
        .map(|n| spec::profile(n).expect("known benchmark"))
        .collect()
}

/// The headline end-to-end claim: a well-chosen heterogeneous pair
/// beats the best homogeneous configuration on harmonic-mean IPT, and
/// neither exceeds the ideal.
#[test]
fn heterogeneous_pair_beats_homogeneous() {
    let p = profiles(&["crafty", "mcf", "twolf", "gzip"]);
    let r = Pipeline::quick().run(&p);
    let m = &r.matrix;

    let single = best_combination(m, 1, Merit::HarmonicMean);
    let pair = best_combination(m, 2, Merit::HarmonicMean);
    let (_, ideal_har) = ideal_performance(m);

    assert!(
        pair.har_ipt >= single.har_ipt,
        "a pair can always include the best single: {} vs {}",
        pair.har_ipt,
        single.har_ipt
    );
    assert!(pair.har_ipt <= ideal_har + 1e-9);
    // With mcf (memory monster) and crafty (small and branchy) in the
    // mix, heterogeneity must buy a real margin.
    assert!(
        pair.har_ipt > single.har_ipt * 1.02,
        "expected >2% heterogeneity gain, got {} vs {}",
        pair.har_ipt,
        single.har_ipt
    );
}

/// The measured matrix honors the paper's construction invariants.
#[test]
fn measured_matrix_invariants() {
    let p = profiles(&["gzip", "mcf", "vpr"]);
    let r = Pipeline::quick().run(&p);
    let m = &r.matrix;
    assert_eq!(m.len(), 3);
    assert!(m.is_diagonal_dominant(), "replacement rule enforces this");
    for w in 0..m.len() {
        for c in 0..m.len() {
            assert!(m.ipt(w, c) > 0.0);
            assert!(m.ipt(w, c) < 40.0, "IPT blowup: {}", m.ipt(w, c));
        }
    }
    // Every customized config validates and is named for its workload.
    for (core, name) in r.cores.iter().zip(["gzip", "mcf", "vpr"]) {
        core.config.validate().expect("valid customized config");
        assert_eq!(core.config.name, name);
    }
}

/// Determinism across complete pipeline runs (same budgets, same
/// seeds).
#[test]
fn pipeline_is_deterministic() {
    let p = profiles(&["gap", "perl"]);
    let a = Pipeline::quick().run(&p);
    let b = Pipeline::quick().run(&p);
    for w in 0..2 {
        for c in 0..2 {
            assert_eq!(a.matrix.ipt(w, c), b.matrix.ipt(w, c));
        }
    }
    assert_eq!(a.cores[0].config, b.cores[0].config);
}
