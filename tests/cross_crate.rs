//! Cross-crate integration: the published Table 4 configurations drive
//! the simulator; raw characterization feeds subsetting; the explorer's
//! design points realize into simulatable configurations.

use xpscalar::cacti::Technology;
use xpscalar::communal::{cluster, nearest_neighbor};
use xpscalar::explore::DesignPoint;
use xpscalar::paper;
use xpscalar::sim::Simulator;
use xpscalar::workload::{spec, CharacterVector, Characterizer, TraceGenerator};

/// Every published Table 4 configuration simulates every benchmark to
/// a sane, positive IPT.
#[test]
fn table4_configs_simulate_all_benchmarks() {
    let configs = paper::table4_configs();
    for cfg in &configs {
        for name in ["gzip", "mcf"] {
            let p = spec::profile(name).expect("known benchmark");
            let s = Simulator::new(cfg).run(TraceGenerator::new(p), 15_000);
            assert!(s.ipt() > 0.0, "{name} on {}", cfg.name);
            assert!(s.ipc() <= cfg.width as f64 + 1e-9);
        }
    }
}

fn measure_all(ops: usize) -> Vec<(String, CharacterVector)> {
    spec::all_profiles()
        .into_iter()
        .map(|p| {
            let mut c = Characterizer::new();
            for op in TraceGenerator::new(p.clone()).take(ops) {
                c.observe(&op);
            }
            (p.name, c.finish())
        })
        .collect()
}

/// The §5.3 premise measured on our own workload models: bzip and gzip
/// are mutual near-neighbours in the raw characteristic space (they
/// need not be each other's absolute nearest, but each must rank the
/// other among its three closest).
#[test]
fn bzip_gzip_raw_similarity() {
    let vecs = measure_all(100_000);
    let points: Vec<Vec<f64>> = vecs.iter().map(|(_, v)| v.kiviat().to_vec()).collect();
    let idx = |name: &str| vecs.iter().position(|(n, _)| n == name).expect("present");
    let (b, g) = (idx("bzip"), idx("gzip"));
    let rank_of = |from: usize, to: usize| {
        let d = dist(&points[from], &points[to]);
        points
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != from)
            .filter(|&(j, p)| dist(&points[from], p) < d && j != to)
            .count()
    };
    assert!(rank_of(b, g) < 3, "gzip must be among bzip's 3 nearest");
    assert!(rank_of(g, b) < 3, "bzip must be among gzip's 3 nearest");
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// mcf is the raw-characteristics outlier: agglomerative clustering to
/// two clusters isolates it with at most two companions.
#[test]
fn mcf_is_an_outlier_cluster() {
    let vecs = measure_all(100_000);
    let points: Vec<Vec<f64>> = vecs.iter().map(|(_, v)| v.kiviat().to_vec()).collect();
    let mcf = vecs.iter().position(|(n, _)| n == "mcf").expect("present");
    let clusters = cluster(&points, 2);
    let mcf_cluster = clusters
        .iter()
        .find(|c| c.members.contains(&mcf))
        .expect("mcf is somewhere");
    assert!(
        mcf_cluster.members.len() <= 3,
        "mcf's cluster should be small: {:?}",
        mcf_cluster.members
    );
    // And mcf's nearest neighbour is far compared to bzip's.
    let nn_m = nearest_neighbor(&points, mcf);
    let bzip = vecs.iter().position(|(n, _)| n == "bzip").expect("present");
    let nn_b = nearest_neighbor(&points, bzip);
    assert!(dist(&points[mcf], &points[nn_m]) > dist(&points[bzip], &points[nn_b]));
}

/// Design points realized at the paper's Table 4 clock/depth corners
/// produce configurations in the paper's own parameter ranges.
#[test]
fn design_space_covers_table4_corners() {
    let tech = Technology::default();
    // mcf's corner: slow clock, single-cycle scheduler, huge window.
    let mut slow = DesignPoint::initial();
    slow.clock_ns = 0.45;
    slow.wakeup_slack = 0;
    let cfg = slow.realize(&tech, "slow").expect("realizable");
    assert!(cfg.rob_size >= 512, "slow clock must afford a big ROB");
    assert_eq!(cfg.wakeup_extra, 0, "back-to-back wakeup at depth 1");

    // crafty's corner: fast clock, deep scheduler.
    let mut fast = DesignPoint::initial();
    fast.clock_ns = 0.20;
    fast.sched_depth = 3;
    fast.l1_cycles = 5;
    fast.l2_cycles = 7;
    let cfg = fast.realize(&tech, "fast").expect("realizable");
    assert!(
        cfg.frontend_depth >= 10,
        "fast clocks imply deep front ends"
    );
    assert!(cfg.iq_size >= 16);
}

/// The simulator's measured misprediction rates respect the workload
/// models' predictability ordering (vortex most predictable, vpr
/// least, per the profiles).
#[test]
fn mispredict_ordering_matches_profiles() {
    let cfg = xpscalar::sim::CoreConfig::initial();
    let rate = |name: &str| {
        let p = spec::profile(name).expect("known benchmark");
        Simulator::new(&cfg)
            .run(TraceGenerator::new(p), 120_000)
            .mispredict_rate()
    };
    let vortex = rate("vortex");
    let vpr = rate("vpr");
    let crafty = rate("crafty");
    assert!(vortex < vpr, "vortex {vortex} vs vpr {vpr}");
    assert!(crafty < vpr, "crafty {crafty} vs vpr {vpr}");
}
