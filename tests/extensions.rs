//! Integration tests for the extension surfaces (everything beyond the
//! paper's published results): the Figure 3 methodology comparison,
//! balanced partitioning, the energy model, the grid-search baseline,
//! and the job-arrival simulation — all driven end to end through the
//! public facade.

use xpscalar::cacti::Technology;
use xpscalar::communal::{
    balanced_partition, best_combination, compare_methodologies, simulate_jobs, JobPolicy, Merit,
    ScheduleOptions,
};
use xpscalar::explore::{anneal, grid_search, AnnealOptions, DesignPoint, GridSpec, Objective};
use xpscalar::paper;
use xpscalar::sim::{energy_delay_product, estimate_energy, CoreConfig, Simulator};
use xpscalar::workload::{spec, Characterizer, TraceGenerator};

/// The Figure 3 comparison on the paper's data: subsetting to four
/// representatives before exploration loses measurable performance.
#[test]
fn methodology_comparison_on_paper_data() {
    let m = paper::table5_matrix();
    let chars: Vec<Vec<f64>> = m
        .names()
        .iter()
        .map(|n| {
            let p = spec::profile(n).expect("known benchmark");
            let mut c = Characterizer::new();
            for op in TraceGenerator::new(p).take(60_000) {
                c.observe(&op);
            }
            c.finish().kiviat().to_vec()
        })
        .collect();
    let r = compare_methodologies(&m, &chars, 4, 3, Merit::HarmonicMean);
    assert_eq!(r.representatives.len(), 4);
    assert!(r.subsetting_loss >= 0.0);
    assert!(
        r.subsetting_loss > 0.005,
        "4-way subsetting should cost >0.5% at 3 cores on the paper's data: {}",
        r.subsetting_loss
    );
    // With no reduction there is nothing to lose.
    let full = compare_methodologies(&m, &chars, 11, 3, Merit::HarmonicMean);
    assert!(full.subsetting_loss.abs() < 1e-9);
}

/// Balanced partitioning on the paper's matrix: with the gcc+mcf pair,
/// a tolerance of 1.2 keeps the loads within 1.2x while mcf's own jobs
/// still land on mcf's core.
#[test]
fn balanced_partition_on_paper_data() {
    let m = paper::table5_matrix();
    let pair = best_combination(&m, 2, Merit::HarmonicMean).cores;
    let p = balanced_partition(&m, &pair, 2.0);
    assert_eq!(p.assignment.len(), 11);
    let mcf = m.index_of("mcf").expect("mcf present");
    let mcf_core = m.index_of("mcf").expect("mcf is one of the pair's cores");
    assert_eq!(p.assignment[mcf], mcf_core, "mcf keeps its own core");
    assert!(p.imbalance.is_finite());
    // Tightening the tolerance can only increase (or keep) slowdown.
    let tight = balanced_partition(&m, &pair, 1.2);
    assert!(tight.average_slowdown >= p.average_slowdown - 1e-12);
    assert!(tight.imbalance <= 1.21 * (11.0 / 2.0) / (11.0 / 2.0 / 1.2));
}

/// The energy model composes with exploration: an EDP-annealed core
/// never has a (much) worse EDP than the IPT-annealed one.
#[test]
fn edp_objective_improves_edp() {
    let tech = Technology::default();
    let p = spec::profile("twolf").expect("known benchmark");
    let mut perf = AnnealOptions::quick();
    perf.iterations = 60;
    let mut green = perf.clone();
    green.objective = Objective::InverseEnergyDelay;
    let r_perf = anneal(&p, &DesignPoint::initial(), &perf, &tech);
    let r_green = anneal(&p, &DesignPoint::initial(), &green, &tech);
    let edp_of = |cfg: &CoreConfig| {
        let stats = Simulator::new(cfg).run(TraceGenerator::new(p.clone()), 40_000);
        energy_delay_product(&tech, cfg, &stats)
    };
    let e_perf = edp_of(&r_perf.config);
    let e_green = edp_of(&r_green.config);
    assert!(
        e_green <= e_perf * 1.10,
        "EDP-optimized EDP {e_green} should not exceed perf-optimized {e_perf} by >10%"
    );
}

/// Energy accounting is stable across runs and monotone in run length.
#[test]
fn energy_accounting_sane() {
    let tech = Technology::default();
    let cfg = CoreConfig::initial();
    let p = spec::profile("vortex").expect("known benchmark");
    let short = Simulator::new(&cfg).run(TraceGenerator::new(p.clone()), 10_000);
    let long = Simulator::new(&cfg).run(TraceGenerator::new(p), 40_000);
    let e_short = estimate_energy(&tech, &cfg, &short).total_nj();
    let e_long = estimate_energy(&tech, &cfg, &long).total_nj();
    assert!(e_long > 2.0 * e_short, "4x the work needs >2x the energy");
}

/// The grid baseline and the annealer agree on which corner a workload
/// belongs to: for mcf, both pick a point whose L2 holds its chase
/// arena.
#[test]
fn grid_and_anneal_agree_on_mcf_corner() {
    let tech = Technology::default();
    let p = spec::profile("mcf").expect("known benchmark");
    let mut opts = AnnealOptions::quick();
    opts.eval_ops_late = 60_000;
    let g = grid_search(&p, &GridSpec::default(), &opts, &tech);
    assert!(
        g.config.l2.geometry.capacity_bytes() >= 1024 * 1024,
        "mcf's lattice optimum must carry a large L2, got {}",
        g.config.l2.geometry.capacity_bytes()
    );
}

/// The schedule simulation composes with the measured merits: heavier
/// load increases waiting monotonically.
#[test]
fn schedule_load_monotonic() {
    let m = paper::table5_matrix();
    let pair = best_combination(&m, 2, Merit::HarmonicMean).cores;
    let mut waits = Vec::new();
    for rate in [0.5, 2.0, 6.0] {
        let mut o = ScheduleOptions::new(pair.clone(), JobPolicy::BestAvailable);
        o.arrival_rate = rate;
        o.jobs = 8000;
        waits.push(simulate_jobs(&m, &o).avg_wait);
    }
    assert!(waits[0] <= waits[1] + 1e-9);
    assert!(waits[1] <= waits[2] + 1e-9);
}
