//! Golden-master snapshots of the measured quick campaign.
//!
//! One seeded quick exploration over four benchmarks is snapshotted
//! byte-for-byte into `tests/golden/`: the customized configurations
//! (Table 4), the cross-configuration IPT matrix (Table 5), and the
//! percentage-slowdown matrix (Appendix A). The comparison is
//! byte-exact on the serialized JSON — the vendored serializer emits
//! shortest round-trip floats, so even a 1-ULP drift anywhere in the
//! simulator, annealer, or CACTI model fails the suite loudly instead
//! of sliding through a tolerance.
//!
//! To refresh the snapshots after an *intentional* model change:
//!
//! ```text
//! XPS_BLESS=1 cargo test --test golden_master
//! ```
//!
//! then review the diff like any other code change.

use std::path::PathBuf;
use std::sync::OnceLock;
use xpscalar::explore::write_atomic;
use xpscalar::pipeline::{Pipeline, PipelineResult};
use xpscalar::sim::CoreConfig;
use xpscalar::workload::spec;

/// The snapshot campaign: small enough to run in test time, big
/// enough to cover a memory monster (mcf), a branchy integer code
/// (crafty), and two cache-sensitive codes.
const BENCHES: [&str; 4] = ["crafty", "gzip", "mcf", "twolf"];

fn campaign() -> &'static PipelineResult {
    static RESULT: OnceLock<PipelineResult> = OnceLock::new();
    RESULT.get_or_init(|| {
        let profiles: Vec<_> = BENCHES
            .iter()
            .map(|n| spec::profile(n).expect("known benchmark"))
            .collect();
        Pipeline::quick().run(&profiles)
    })
}

/// Compare `actual` against the golden file, or overwrite it when
/// `XPS_BLESS=1` is set. Mismatches report the first differing line so
/// the failure is actionable without a diff tool.
fn golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("XPS_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create tests/golden");
        write_atomic(&path, actual).expect("bless golden file");
        eprintln!("[blessed {}]", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `XPS_BLESS=1 cargo test --test golden_master` \
             once to create it, then commit the snapshot",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let mismatch = expected
        .lines()
        .zip(actual.lines())
        .enumerate()
        .find(|(_, (e, a))| e != a);
    match mismatch {
        Some((i, (e, a))) => panic!(
            "golden mismatch in {name} at line {}:\n  golden: {e}\n  actual: {a}\n\
             (bless intentionally with XPS_BLESS=1)",
            i + 1
        ),
        None => panic!(
            "golden mismatch in {name}: lengths differ ({} vs {} bytes); \
             (bless intentionally with XPS_BLESS=1)",
            expected.len(),
            actual.len()
        ),
    }
}

#[test]
fn table4_configs_match_golden() {
    let configs: Vec<CoreConfig> = campaign().cores.iter().map(|c| c.config.clone()).collect();
    let json = serde_json::to_string_pretty(&configs).expect("configs serialize");
    golden("table4_configs.json", &json);
}

#[test]
fn table5_matrix_matches_golden() {
    let json = serde_json::to_string_pretty(&campaign().matrix).expect("matrix serializes");
    golden("table5_matrix.json", &json);
}

#[test]
fn appendix_a_slowdown_matches_golden() {
    let m = &campaign().matrix;
    let rows: Vec<Vec<f64>> = (0..m.len())
        .map(|w| (0..m.len()).map(|c| m.slowdown(w, c)).collect())
        .collect();
    let json = serde_json::to_string_pretty(&rows).expect("slowdowns serialize");
    golden("appendix_a_slowdown.json", &json);
}

/// The load-bearing property of byte-exact snapshots: a single-ULP
/// perturbation of one IPT cell changes the serialized bytes, so the
/// golden comparison catches it. A tolerance-based comparison never
/// would.
#[test]
fn one_ulp_perturbation_changes_the_snapshot_bytes() {
    let m = &campaign().matrix;
    let mut rows: Vec<Vec<f64>> = (0..m.len())
        .map(|w| (0..m.len()).map(|c| m.ipt(w, c)).collect())
        .collect();
    let baseline = serde_json::to_string_pretty(&rows).expect("serializes");
    let cell = rows[0][0];
    rows[0][0] = f64::from_bits(cell.to_bits() + 1);
    assert_ne!(rows[0][0], cell, "adjacent float is a distinct value");
    let perturbed = serde_json::to_string_pretty(&rows).expect("serializes");
    assert_ne!(
        baseline, perturbed,
        "shortest round-trip floats must distinguish 1-ULP neighbors"
    );
}
