//! The incremental cache: per-file [`FileSummary`] records keyed by
//! content hash, so `repro analyze` and CI re-summarize only changed
//! files and rebuild the graph from cached summaries for the rest.
//!
//! Invalidation is strict: the cache carries a format version and a
//! fingerprint of the rule catalog (any rule change re-analyzes
//! everything), each entry carries an FNV-1a hash over
//! `crate_name \0 relpath \0 source` (moving a file invalidates it),
//! and any parse mismatch on load discards the whole cache — a stale
//! or corrupt cache degrades to a cold run, never to wrong findings.
//!
//! The semantic passes always re-run over the full summary set; only
//! the per-file lex/parse/textual-lint work is cached. That keeps the
//! incremental guarantee trivial: findings are a pure function of the
//! summaries, and the summaries are a pure function of the sources.

use crate::diag::Severity;
use crate::parse::{
    Blocking, Call, FileSummary, FnSummary, Import, LockAcq, LockKind, Mark, OwnedFinding,
    SuppressionState,
};
use crate::rules::FileClass;
use serde::Value;
use std::collections::BTreeMap;
use std::path::Path;

/// Bump when the summary schema changes shape.
const VERSION: u64 = 1;

/// FNV-1a over the rule catalog: any rule addition/removal/rewording
/// invalidates every cached summary.
pub fn rules_fingerprint() -> u64 {
    fnv64(crate::rules::catalog_markdown().as_bytes())
}

/// FNV-1a content hash for one cache entry.
pub fn content_hash(crate_name: &str, relpath: &str, src: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in [
        crate_name.as_bytes(),
        b"\0",
        relpath.as_bytes(),
        b"\0",
        src.as_bytes(),
    ] {
        for &b in part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The on-disk cache: relpath → (content hash, summary).
#[derive(Debug, Default)]
pub struct Cache {
    /// Entries by workspace-relative path.
    pub entries: BTreeMap<String, (u64, FileSummary)>,
}

impl Cache {
    /// Load from `path`; `None` when absent, unreadable, version- or
    /// fingerprint-mismatched, or structurally invalid (all of which
    /// mean: run cold).
    pub fn load(path: &Path) -> Option<Cache> {
        let text = std::fs::read_to_string(path).ok()?;
        let v: Value = serde_json::from_str(&text).ok()?;
        if get_u64(&v, "version")? != VERSION || get_u64(&v, "fingerprint")? != rules_fingerprint()
        {
            return None;
        }
        let Value::Arr(files) = v.member("files").ok()? else {
            return None;
        };
        let mut cache = Cache::default();
        for f in files {
            let rel = get_str(f, "path")?;
            let hash = get_u64(f, "hash")?;
            let summary = summary_from_value(f.member("summary").ok()?)?;
            cache.entries.insert(rel, (hash, summary));
        }
        Some(cache)
    }

    /// Persist atomically (temp + rename via the shared helper).
    ///
    /// # Errors
    ///
    /// Propagates the underlying IO failure as a message.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let files: Vec<Value> = self
            .entries
            .iter()
            .map(|(rel, (hash, s))| {
                Value::Obj(vec![
                    ("path".into(), Value::Str(rel.clone())),
                    ("hash".into(), Value::U64(*hash)),
                    ("summary".into(), summary_to_value(s)),
                ])
            })
            .collect();
        let doc = Value::Obj(vec![
            ("version".into(), Value::U64(VERSION)),
            ("fingerprint".into(), Value::U64(rules_fingerprint())),
            ("files".into(), Value::Arr(files)),
        ]);
        let text = serde_json::to_string(&doc).map_err(|e| format!("encode cache: {e}"))?;
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
        xps_core::explore::write_atomic(path, &text)
            .map_err(|e| format!("write {}: {e}", path.display()))
    }
}

// ---------------------------------------------------------------------
// Value round-trip helpers

fn get_str(v: &Value, key: &str) -> Option<String> {
    match v.member(key).ok()? {
        Value::Str(s) => Some(s.clone()),
        _ => None,
    }
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    match v.member(key).ok()? {
        Value::U64(n) => Some(*n),
        Value::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn get_u32(v: &Value, key: &str) -> Option<u32> {
    u32::try_from(get_u64(v, key)?).ok()
}

fn get_bool(v: &Value, key: &str) -> Option<bool> {
    match v.member(key).ok()? {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn get_strings(v: &Value, key: &str) -> Option<Vec<String>> {
    let Value::Arr(items) = v.member(key).ok()? else {
        return None;
    };
    items
        .iter()
        .map(|i| match i {
            Value::Str(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

fn strings(items: &[String]) -> Value {
    Value::Arr(items.iter().map(|s| Value::Str(s.clone())).collect())
}

fn get_arr<'v>(v: &'v Value, key: &str) -> Option<&'v [Value]> {
    match v.member(key).ok()? {
        Value::Arr(items) => Some(items),
        _ => None,
    }
}

fn mark_to_value(m: &Mark) -> Value {
    Value::Obj(vec![
        ("what".into(), Value::Str(m.what.clone())),
        ("line".into(), Value::U64(u64::from(m.line))),
        ("col".into(), Value::U64(u64::from(m.col))),
    ])
}

fn mark_from_value(v: &Value) -> Option<Mark> {
    Some(Mark {
        what: get_str(v, "what")?,
        line: get_u32(v, "line")?,
        col: get_u32(v, "col")?,
    })
}

fn summary_to_value(s: &FileSummary) -> Value {
    let class = match s.class {
        FileClass::Lib => "lib",
        FileClass::Bin => "bin",
        FileClass::Test => "test",
        FileClass::Example => "example",
    };
    Value::Obj(vec![
        ("relpath".into(), Value::Str(s.relpath.clone())),
        ("class".into(), Value::Str(class.to_string())),
        ("crate_name".into(), Value::Str(s.crate_name.clone())),
        ("module".into(), strings(&s.module)),
        (
            "imports".into(),
            Value::Arr(
                s.imports
                    .iter()
                    .map(|i| {
                        Value::Obj(vec![
                            ("alias".into(), Value::Str(i.alias.clone())),
                            ("path".into(), strings(&i.path)),
                            ("glob".into(), Value::Bool(i.glob)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "fns".into(),
            Value::Arr(s.fns.iter().map(fn_to_value).collect()),
        ),
        ("rwlock_names".into(), strings(&s.rwlock_names)),
        (
            "suppressions".into(),
            Value::Arr(
                s.suppressions
                    .iter()
                    .map(|sp| {
                        Value::Obj(vec![
                            ("rule".into(), Value::Str(sp.rule.clone())),
                            ("line".into(), Value::U64(u64::from(sp.line))),
                            ("used".into(), Value::Bool(sp.used_by_textual)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "textual".into(),
            Value::Arr(
                s.textual
                    .iter()
                    .map(|f| {
                        Value::Obj(vec![
                            ("rule".into(), Value::Str(f.rule.clone())),
                            ("line".into(), Value::U64(u64::from(f.line))),
                            ("col".into(), Value::U64(u64::from(f.col))),
                            (
                                "severity".into(),
                                Value::Str(f.severity.label().to_string()),
                            ),
                            ("message".into(), Value::Str(f.message.clone())),
                            ("suggestion".into(), Value::Str(f.suggestion.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn fn_to_value(f: &FnSummary) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::Str(f.name.clone())),
        (
            "self_ty".into(),
            match &f.self_ty {
                Some(t) => Value::Str(t.clone()),
                None => Value::Null,
            },
        ),
        ("module".into(), strings(&f.module)),
        ("line".into(), Value::U64(u64::from(f.line))),
        ("col".into(), Value::U64(u64::from(f.col))),
        ("is_test".into(), Value::Bool(f.is_test)),
        (
            "calls".into(),
            Value::Arr(
                f.calls
                    .iter()
                    .map(|c| {
                        Value::Obj(vec![
                            ("path".into(), strings(&c.path)),
                            (
                                "method".into(),
                                match &c.method {
                                    Some(m) => Value::Str(m.clone()),
                                    None => Value::Null,
                                },
                            ),
                            (
                                "recv".into(),
                                match &c.recv {
                                    Some(r) => Value::Str(r.clone()),
                                    None => Value::Null,
                                },
                            ),
                            ("line".into(), Value::U64(u64::from(c.line))),
                            ("col".into(), Value::U64(u64::from(c.col))),
                            ("tok".into(), Value::U64(u64::from(c.tok))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "sources".into(),
            Value::Arr(f.sources.iter().map(mark_to_value).collect()),
        ),
        (
            "sinks".into(),
            Value::Arr(f.sinks.iter().map(mark_to_value).collect()),
        ),
        (
            "locks".into(),
            Value::Arr(
                f.locks
                    .iter()
                    .map(|l| {
                        Value::Obj(vec![
                            ("name".into(), Value::Str(l.name.clone())),
                            (
                                "bound".into(),
                                match &l.bound {
                                    Some(b) => Value::Str(b.clone()),
                                    None => Value::Null,
                                },
                            ),
                            ("kind".into(), Value::Str(l.kind.method().to_string())),
                            ("line".into(), Value::U64(u64::from(l.line))),
                            ("col".into(), Value::U64(u64::from(l.col))),
                            ("tok".into(), Value::U64(u64::from(l.tok))),
                            ("guard_end".into(), Value::U64(u64::from(l.guard_end))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "blocking".into(),
            Value::Arr(
                f.blocking
                    .iter()
                    .map(|b| {
                        Value::Obj(vec![
                            ("what".into(), Value::Str(b.what.clone())),
                            (
                                "released".into(),
                                match &b.released {
                                    Some(r) => Value::Str(r.clone()),
                                    None => Value::Null,
                                },
                            ),
                            ("line".into(), Value::U64(u64::from(b.line))),
                            ("col".into(), Value::U64(u64::from(b.col))),
                            ("tok".into(), Value::U64(u64::from(b.tok))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn summary_from_value(v: &Value) -> Option<FileSummary> {
    let class = match get_str(v, "class")?.as_str() {
        "lib" => FileClass::Lib,
        "bin" => FileClass::Bin,
        "test" => FileClass::Test,
        "example" => FileClass::Example,
        _ => return None,
    };
    let imports = get_arr(v, "imports")?
        .iter()
        .map(|i| {
            Some(Import {
                alias: get_str(i, "alias")?,
                path: get_strings(i, "path")?,
                glob: get_bool(i, "glob")?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let fns = get_arr(v, "fns")?
        .iter()
        .map(fn_from_value)
        .collect::<Option<Vec<_>>>()?;
    let suppressions = get_arr(v, "suppressions")?
        .iter()
        .map(|s| {
            Some(SuppressionState {
                rule: get_str(s, "rule")?,
                line: get_u32(s, "line")?,
                used_by_textual: get_bool(s, "used")?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let textual = get_arr(v, "textual")?
        .iter()
        .map(|f| {
            let severity = match get_str(f, "severity")?.as_str() {
                "deny" => Severity::Deny,
                "warn" => Severity::Warn,
                _ => return None,
            };
            Some(OwnedFinding {
                rule: get_str(f, "rule")?,
                line: get_u32(f, "line")?,
                col: get_u32(f, "col")?,
                severity,
                message: get_str(f, "message")?,
                suggestion: get_str(f, "suggestion")?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(FileSummary {
        relpath: get_str(v, "relpath")?,
        class,
        crate_name: get_str(v, "crate_name")?,
        module: get_strings(v, "module")?,
        imports,
        fns,
        rwlock_names: get_strings(v, "rwlock_names")?,
        suppressions,
        textual,
    })
}

fn fn_from_value(v: &Value) -> Option<FnSummary> {
    let self_ty = match v.member("self_ty").ok()? {
        Value::Str(s) => Some(s.clone()),
        Value::Null => None,
        _ => return None,
    };
    let calls = get_arr(v, "calls")?
        .iter()
        .map(|c| {
            let method = match c.member("method").ok()? {
                Value::Str(s) => Some(s.clone()),
                Value::Null => None,
                _ => return None,
            };
            let recv = match c.member("recv").ok()? {
                Value::Str(s) => Some(s.clone()),
                Value::Null => None,
                _ => return None,
            };
            Some(Call {
                path: get_strings(c, "path")?,
                method,
                recv,
                line: get_u32(c, "line")?,
                col: get_u32(c, "col")?,
                tok: get_u32(c, "tok")?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let locks = get_arr(v, "locks")?
        .iter()
        .map(|l| {
            let kind = match get_str(l, "kind")?.as_str() {
                "lock" => LockKind::Lock,
                "read" => LockKind::Read,
                "write" => LockKind::Write,
                _ => return None,
            };
            let bound = match l.member("bound").ok()? {
                Value::Str(s) => Some(s.clone()),
                Value::Null => None,
                _ => return None,
            };
            Some(LockAcq {
                name: get_str(l, "name")?,
                bound,
                kind,
                line: get_u32(l, "line")?,
                col: get_u32(l, "col")?,
                tok: get_u32(l, "tok")?,
                guard_end: get_u32(l, "guard_end")?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let blocking = get_arr(v, "blocking")?
        .iter()
        .map(|b| {
            let released = match b.member("released").ok()? {
                Value::Str(s) => Some(s.clone()),
                Value::Null => None,
                _ => return None,
            };
            Some(Blocking {
                what: get_str(b, "what")?,
                released,
                line: get_u32(b, "line")?,
                col: get_u32(b, "col")?,
                tok: get_u32(b, "tok")?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(FnSummary {
        name: get_str(v, "name")?,
        self_ty,
        module: get_strings(v, "module")?,
        line: get_u32(v, "line")?,
        col: get_u32(v, "col")?,
        is_test: get_bool(v, "is_test")?,
        calls,
        sources: get_arr(v, "sources")?
            .iter()
            .map(mark_from_value)
            .collect::<Option<Vec<_>>>()?,
        sinks: get_arr(v, "sinks")?
            .iter()
            .map(mark_from_value)
            .collect::<Option<Vec<_>>>()?,
        locks,
        blocking,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::summarize_file;

    #[test]
    fn summaries_round_trip_through_the_cache_file() {
        let src = "use crate::a::{b, c as d};\n\
                   struct S { state: Mutex<u32>, table: RwLock<u32>, jobs: HashMap<K, V> }\n\
                   // xps-allow(no-unwrap-in-lib): invariant\n\
                   fn f(s: &S) { let g = s.state.lock(); s.x.unwrap(); crate::emit(); }\n\
                   fn emit() { println!(\"x\"); let t = Instant::now(); }\n";
        let summary = summarize_file("crates/a/src/lib.rs", FileClass::Lib, "xps_a", src);
        let mut cache = Cache::default();
        cache.entries.insert(
            summary.relpath.clone(),
            (
                content_hash("xps_a", &summary.relpath, src),
                summary.clone(),
            ),
        );
        let dir = std::env::temp_dir().join(format!("xps-analyze-cache-{}", std::process::id()));
        let path = dir.join("cache.json");
        cache.save(&path).expect("save");
        let loaded = Cache::load(&path).expect("load");
        assert_eq!(loaded.entries.len(), 1);
        let (hash, round) = &loaded.entries["crates/a/src/lib.rs"];
        assert_eq!(*hash, content_hash("xps_a", "crates/a/src/lib.rs", src));
        assert_eq!(*round, summary, "summary must round-trip exactly");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_or_fingerprint_mismatch_discards_the_cache() {
        let dir = std::env::temp_dir().join(format!("xps-analyze-cache-v-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("cache.json");
        let bogus = format!("{{\"version\":{VERSION},\"fingerprint\":1,\"files\":[]}}");
        std::fs::write(&path, bogus).expect("write");
        assert!(Cache::load(&path).is_none(), "wrong fingerprint must miss");
        std::fs::write(&path, "{not json").expect("write");
        assert!(Cache::load(&path).is_none(), "corrupt cache must miss");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn content_hash_covers_crate_name_and_path() {
        let h1 = content_hash("xps_a", "src/lib.rs", "fn f() {}");
        assert_ne!(h1, content_hash("xps_b", "src/lib.rs", "fn f() {}"));
        assert_ne!(h1, content_hash("xps_a", "src/other.rs", "fn f() {}"));
        assert_ne!(h1, content_hash("xps_a", "src/lib.rs", "fn g() {}"));
        assert_eq!(h1, content_hash("xps_a", "src/lib.rs", "fn f() {}"));
    }
}
