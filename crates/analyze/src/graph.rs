//! The cross-crate call graph: qualified fn nodes, resolved call
//! edges, and deterministic shortest-path search.
//!
//! Node identity is the fully qualified path
//! `crate::module…::[SelfTy::]name`. Resolution of a call site tries,
//! in order: import-alias expansion (with `crate`/`self`/`super`
//! already resolved by the parser), the caller's own module, the
//! expanded path verbatim, a unique suffix match, and finally a
//! unique bare-name match. Anything still ambiguous or external
//! (std, vendored deps) is dropped — the graph under-approximates,
//! which for both semantic passes means missed edges, never false
//! chains through code that does not exist.
//!
//! All containers are `BTree*` so iteration — and therefore every
//! diagnostic derived from the graph — is deterministic.

use crate::parse::{Call, FileSummary, FnSummary};
use crate::rules::FileClass;
use std::collections::{BTreeMap, BTreeSet};

/// Where a node's fn lives (for `file:line` hops in diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSite {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the fn item.
    pub line: u32,
    /// Index into the summaries slice / its fns vec.
    pub fn_ref: (usize, usize),
}

/// The resolved whole-workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// qual → site, for every non-test fn in Lib/Bin files.
    pub nodes: BTreeMap<String, NodeSite>,
    /// caller qual → callee qual → first (by position) call site.
    pub edges: BTreeMap<String, BTreeMap<String, (String, u32)>>,
    /// callee qual → caller set (reverse adjacency).
    pub redges: BTreeMap<String, BTreeSet<String>>,
}

/// The qualified path of one fn.
pub fn qual_of(file: &FileSummary, f: &FnSummary) -> String {
    let mut parts: Vec<&str> = vec![&file.crate_name];
    parts.extend(f.module.iter().map(String::as_str));
    if let Some(ty) = &f.self_ty {
        parts.push(ty);
    }
    parts.push(&f.name);
    parts.join("::")
}

/// Is this file part of the semantic graph? Test and example trees
/// (and `#[test]` fns inside lib files) are out: their wall clocks
/// and prints are harness behavior, not product behavior.
pub fn in_graph(file: &FileSummary) -> bool {
    matches!(file.class, FileClass::Lib | FileClass::Bin)
}

/// Build the graph over every summarized file.
pub fn build(files: &[FileSummary]) -> Graph {
    let mut g = Graph::default();
    // Pass 1: nodes + name/suffix indices.
    let mut by_name: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    let mut by_ty_name: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        if !in_graph(file) {
            continue;
        }
        for (gi, f) in file.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let q = qual_of(file, f);
            by_name.entry(&f.name).or_default().insert(q.clone());
            if let Some(ty) = &f.self_ty {
                by_ty_name
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .insert(q.clone());
            }
            g.nodes.insert(
                q,
                NodeSite {
                    file: file.relpath.clone(),
                    line: f.line,
                    fn_ref: (fi, gi),
                },
            );
        }
    }
    // Pass 2: edges.
    for file in files {
        if !in_graph(file) {
            continue;
        }
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            let caller = qual_of(file, f);
            for c in &f.calls {
                if let Some(callee) = resolve(&g, file, f, c, &by_name, &by_ty_name) {
                    if callee == caller {
                        continue;
                    }
                    g.edges
                        .entry(caller.clone())
                        .or_default()
                        .entry(callee.clone())
                        .or_insert((file.relpath.clone(), c.line));
                    g.redges.entry(callee).or_default().insert(caller.clone());
                }
            }
        }
    }
    g
}

/// Resolve one call site to a node qual, or None for external /
/// ambiguous targets.
fn resolve(
    g: &Graph,
    file: &FileSummary,
    caller: &FnSummary,
    call: &Call,
    by_name: &BTreeMap<&str, BTreeSet<String>>,
    by_ty_name: &BTreeMap<(String, String), BTreeSet<String>>,
) -> Option<String> {
    if let Some(m) = &call.method {
        // `self.m(…)` — the caller's own impl type first.
        if call.recv.as_deref() == Some("self") {
            if let Some(ty) = &caller.self_ty {
                if let Some(set) = by_ty_name.get(&(ty.clone(), m.clone())) {
                    if set.len() == 1 {
                        return set.iter().next().cloned();
                    }
                    // Prefer same crate when several impls share the
                    // (type, name) pair.
                    let same: Vec<&String> = set
                        .iter()
                        .filter(|q| q.starts_with(&format!("{}::", file.crate_name)))
                        .collect();
                    if same.len() == 1 {
                        return Some(same[0].clone());
                    }
                }
            }
        }
        // Otherwise only a workspace-unique method name resolves.
        let set = by_name.get(m.as_str())?;
        if set.len() == 1 {
            return set.iter().next().cloned();
        }
        return None;
    }
    // Path call: expand the head segment.
    let mut segs = call.path.clone();
    if segs.is_empty() {
        return None;
    }
    match segs[0].as_str() {
        "crate" => segs[0] = file.crate_name.clone(),
        "self" => {
            let mut p = vec![file.crate_name.clone()];
            p.extend(caller.module.iter().cloned());
            p.extend(segs.drain(1..));
            segs = p;
        }
        "super" => {
            let mut p = vec![file.crate_name.clone()];
            p.extend(caller.module.iter().cloned());
            p.pop();
            p.extend(segs.drain(1..));
            segs = p;
        }
        "Self" => {
            if let Some(ty) = &caller.self_ty {
                segs[0] = ty.clone();
            }
        }
        head => {
            if let Some(imp) = file.imports.iter().find(|i| !i.glob && i.alias == head) {
                let mut p = imp.path.clone();
                p.extend(segs.drain(1..));
                segs = p;
            }
        }
    }
    let joined = segs.join("::");
    // Exact qual.
    if g.nodes.contains_key(&joined) {
        return Some(joined);
    }
    // Caller's own module.
    {
        let mut p = vec![file.crate_name.clone()];
        p.extend(caller.module.iter().cloned());
        p.extend(segs.iter().cloned());
        let q = p.join("::");
        if g.nodes.contains_key(&q) {
            return Some(q);
        }
    }
    // Crate root (re-exports).
    {
        let mut p = vec![file.crate_name.clone()];
        p.extend(segs.iter().cloned());
        let q = p.join("::");
        if g.nodes.contains_key(&q) {
            return Some(q);
        }
    }
    // Unique suffix.
    let suffix = format!("::{joined}");
    let matches: Vec<&String> = g.nodes.keys().filter(|q| q.ends_with(&suffix)).collect();
    if matches.len() == 1 {
        return Some(matches[0].clone());
    }
    if matches.len() > 1 {
        return None;
    }
    // Unique bare name (single-segment calls only — a wrong multi-
    // segment path should not fuzzy-match).
    if segs.len() == 1 {
        if let Some(set) = by_name.get(segs[0].as_str()) {
            if set.len() == 1 {
                return set.iter().next().cloned();
            }
        }
    }
    None
}

impl Graph {
    /// Deterministic BFS shortest path from `from` to any member of
    /// `targets`, following forward edges. Ties break toward the
    /// lexicographically smallest qual (BTree iteration order).
    pub fn shortest_path_to(&self, from: &str, targets: &BTreeSet<String>) -> Option<Vec<String>> {
        self.bfs(from, targets, false)
    }

    /// Same, following reverse edges: the returned path is in
    /// *forward* call order, ending at `from`.
    pub fn shortest_path_from_any(
        &self,
        from: &str,
        targets: &BTreeSet<String>,
    ) -> Option<Vec<String>> {
        self.bfs(from, targets, true).map(|mut p| {
            p.reverse();
            p
        })
    }

    fn bfs(&self, from: &str, targets: &BTreeSet<String>, reverse: bool) -> Option<Vec<String>> {
        let mut parent: BTreeMap<String, String> = BTreeMap::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: std::collections::VecDeque<String> = std::collections::VecDeque::new();
        seen.insert(from.to_string());
        queue.push_back(from.to_string());
        while let Some(cur) = queue.pop_front() {
            if targets.contains(&cur) {
                let mut path = vec![cur.clone()];
                let mut at = cur;
                while let Some(p) = parent.get(&at) {
                    path.push(p.clone());
                    at = p.clone();
                }
                path.reverse();
                return Some(path);
            }
            let next: Vec<String> = if reverse {
                self.redges
                    .get(&cur)
                    .map(|s| s.iter().cloned().collect())
                    .unwrap_or_default()
            } else {
                self.edges
                    .get(&cur)
                    .map(|m| m.keys().cloned().collect())
                    .unwrap_or_default()
            };
            for n in next {
                if seen.insert(n.clone()) {
                    parent.insert(n.clone(), cur.clone());
                    queue.push_back(n);
                }
            }
        }
        None
    }

    /// Render one path as the diagnostic chain
    /// `a::f (file:line) → b::g (file:line) → …`.
    pub fn render_chain(&self, path: &[String]) -> String {
        path.iter()
            .map(|q| match self.nodes.get(q) {
                Some(site) => format!("{q} ({}:{})", site.file, site.line),
                None => q.clone(),
            })
            .collect::<Vec<_>>()
            .join(" \u{2192} ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::summarize_file;

    fn files() -> Vec<FileSummary> {
        vec![
            summarize_file(
                "crates/a/src/lib.rs",
                FileClass::Lib,
                "xps_a",
                "use xps_b::helper;\n\
                 pub fn top() { helper(); }\n",
            ),
            summarize_file(
                "crates/b/src/lib.rs",
                FileClass::Lib,
                "xps_b",
                "pub fn helper() { crate::deep::emit(); }\n\
                 pub mod deep { pub fn emit() {} }\n",
            ),
        ]
    }

    #[test]
    fn cross_crate_edges_resolve_through_imports_and_crate_paths() {
        let fs = files();
        let g = build(&fs);
        assert!(g.nodes.contains_key("xps_a::top"));
        assert!(g.nodes.contains_key("xps_b::helper"));
        assert!(g.nodes.contains_key("xps_b::deep::emit"));
        assert!(g.edges["xps_a::top"].contains_key("xps_b::helper"));
        assert!(g.edges["xps_b::helper"].contains_key("xps_b::deep::emit"));
    }

    #[test]
    fn shortest_paths_are_deterministic_and_render_with_sites() {
        let fs = files();
        let g = build(&fs);
        let targets: BTreeSet<String> = ["xps_b::deep::emit".to_string()].into();
        let p = g.shortest_path_to("xps_a::top", &targets).expect("path");
        assert_eq!(p, vec!["xps_a::top", "xps_b::helper", "xps_b::deep::emit"]);
        let chain = g.render_chain(&p);
        assert!(
            chain.contains("xps_a::top (crates/a/src/lib.rs:2)"),
            "{chain}"
        );
        assert!(chain.contains(" \u{2192} "), "{chain}");
        // Reverse search returns the same chain in forward order.
        let sinks: BTreeSet<String> = ["xps_a::top".to_string()].into();
        let rp = g
            .shortest_path_from_any("xps_b::deep::emit", &sinks)
            .expect("reverse path");
        assert_eq!(rp, p);
    }

    #[test]
    fn test_fns_and_test_files_stay_out_of_the_graph() {
        let fs = vec![summarize_file(
            "crates/a/src/lib.rs",
            FileClass::Lib,
            "xps_a",
            "#[cfg(test)]\nmod tests {\n    fn probe() {}\n}\npub fn real() {}\n",
        )];
        let g = build(&fs);
        assert!(g.nodes.contains_key("xps_a::real"));
        assert!(
            !g.nodes.keys().any(|q| q.contains("probe")),
            "{:?}",
            g.nodes
        );
    }
}
