//! The artifact checker: static validation of on-disk data files.
//!
//! `xps-analyze data <dir>` walks a results/data directory and
//! validates every artifact the toolchain produces, without running a
//! single simulation:
//!
//! * **journals** (`*.jsonl`) — every record's FNV checksum matches
//!   its payload, task keys are strictly ascending (the journal is a
//!   sorted snapshot), and no key appears twice;
//! * **queue journals** (`queue.json`) — every pending entry's id is
//!   the content fingerprint of its canonical request;
//! * **store records** (`<16 hex>.json`) — the header id matches the
//!   filename, the body matches the header checksum, and any embedded
//!   cross-performance matrix is well-formed;
//! * **measured results** (`measured*.json`) — the envelope checksum
//!   recomputes from the payload, every design point and realized
//!   configuration lies inside the model domains (clock range,
//!   candidate associativities/blocks, CACTI size lists, `iq ≤ rob`,
//!   `L2 ≥ L1`), and the matrix holds no NaN, non-positive, or
//!   undocumented-subnormal IPT (only [`FAILED_CELL_IPT`] marks a
//!   failed cell).
//!
//! Artifacts cannot carry `xps-allow` comments, so every artifact
//! finding is deny severity: a bad artifact is corrupt, not stylistic.

use crate::diag::{Finding, Report, Severity};
use serde::Value;
use std::path::Path;
use xps_core::cacti::fit;
use xps_core::explore::fnv64;
use xps_core::FAILED_CELL_IPT;
use xps_serve::{body_checksum, content_id};

/// Every rule id the artifact checker can emit. Part of the known-id
/// set an `xps-allow` may name (naming any other id is a deny), and
/// of the catalog.
pub(crate) const RULE_IDS: [&str; 6] = [
    "config-domain",
    "journal-record",
    "matrix-domain",
    "measured-envelope",
    "queue-journal",
    "store-record",
];

/// One-line catalog summaries for [`RULE_IDS`], in the same order.
pub(crate) const RULE_SUMMARIES: [(&str, &str); 6] = [
    (
        "config-domain",
        "a realized configuration outside the model domains (clock range, candidate \
         associativities/blocks, CACTI size lists, iq <= rob, L2 >= L1)",
    ),
    (
        "journal-record",
        "a journal record whose FNV checksum mismatches its payload, out-of-order or \
         duplicate task keys, or unparseable JSONL",
    ),
    (
        "matrix-domain",
        "a cross-performance matrix cell that is NaN, non-positive, or an undocumented \
         subnormal (only FAILED_CELL_IPT marks a failed cell)",
    ),
    (
        "measured-envelope",
        "a measured-results envelope whose checksum does not recompute from its payload",
    ),
    (
        "queue-journal",
        "a queue-journal entry whose id is not the content fingerprint of its canonical \
         request",
    ),
    (
        "store-record",
        "a store record whose header id mismatches the filename or whose body fails the \
         header checksum",
    ),
];

/// Clock-period domain (ns) from `DesignPoint::realize`.
const CLOCK_NS: std::ops::RangeInclusive<f64> = 0.05..=2.0;
/// Pipeline width domain from `CoreConfig::validate`.
const WIDTH: std::ops::RangeInclusive<u64> = 1..=16;
/// Anything positive but below this that is not the sentinel is a
/// numerically-broken cell, not a measured IPT.
const SUBNORMAL_FLOOR: f64 = 1e-300;

fn deny(file: &str, line: u32, rule: &'static str, message: String, suggestion: &str) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        col: 1,
        rule,
        severity: Severity::Deny,
        message,
        suggestion: suggestion.to_string(),
    }
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(x) => Some(*x as f64),
        Value::I64(x) => Some(*x as f64),
        _ => None,
    }
}

fn uint(v: &Value) -> Option<u64> {
    match v {
        Value::U64(x) => Some(*x),
        Value::I64(x) if *x >= 0 => Some(*x as u64),
        _ => None,
    }
}

/// Validate every recognized artifact under `dir`, recursively.
/// Findings name files relative to `dir`. I/O failure walking the
/// tree is an error (the caller cannot distinguish "clean" from
/// "unreadable"); per-file read failures become findings.
pub fn check_dir(dir: &Path) -> Result<Report, String> {
    let mut report = Report::default();
    let mut files = Vec::new();
    collect_files(dir, &mut files).map_err(|e| format!("walk {}: {e}", dir.display()))?;
    files.sort();
    for path in files {
        let rel = path
            .strip_prefix(dir)
            .unwrap_or(&path)
            .display()
            .to_string();
        let Some(kind) = classify(&path) else {
            continue;
        };
        report.files_checked += 1;
        let raw = match std::fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) => {
                report.findings.push(deny(
                    &rel,
                    1,
                    "artifact-unreadable",
                    format!("cannot read artifact: {e}"),
                    "fix permissions or remove the unreadable file",
                ));
                continue;
            }
        };
        match kind {
            ArtifactKind::Journal => check_journal(&rel, &raw, &mut report.findings),
            ArtifactKind::Queue => check_queue(&rel, &raw, &mut report.findings),
            ArtifactKind::StoreRecord(id) => {
                check_store_record(&rel, &id, &raw, &mut report.findings)
            }
            ArtifactKind::Measured => check_measured(&rel, &raw, &mut report.findings),
        }
    }
    report.sort();
    Ok(report)
}

fn collect_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_files(&path, out)?;
        } else {
            out.push(path);
        }
    }
    Ok(())
}

enum ArtifactKind {
    Journal,
    Queue,
    StoreRecord(String),
    Measured,
}

fn classify(path: &Path) -> Option<ArtifactKind> {
    let name = path.file_name()?.to_str()?;
    if name.ends_with(".jsonl") {
        return Some(ArtifactKind::Journal);
    }
    if name == "queue.json" {
        return Some(ArtifactKind::Queue);
    }
    if let Some(stem) = name.strip_suffix(".json") {
        if stem.len() == 16
            && stem
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        {
            return Some(ArtifactKind::StoreRecord(stem.to_string()));
        }
        if stem.starts_with("measured") {
            return Some(ArtifactKind::Measured);
        }
    }
    None
}

// ---------------------------------------------------------------------
// journals

fn journal_crc(task: &str, value: &str) -> String {
    format!(
        "{:016x}",
        fnv64(fnv64(0, task.as_bytes()), value.as_bytes())
    )
}

fn check_journal(rel: &str, raw: &str, out: &mut Vec<Finding>) {
    let mut prev: Option<String> = None;
    for (i, line) in raw.lines().enumerate() {
        let lineno = (i + 1) as u32;
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            out.push(deny(
                rel,
                lineno,
                "journal-record",
                "record is not valid JSON".to_string(),
                "a journal this run cannot replay is corrupt; delete it and re-run",
            ));
            continue;
        };
        let fields = (
            v.member("task").and_then(|t| t.as_str().map(String::from)),
            v.member("crc").and_then(|c| c.as_str().map(String::from)),
            v.member("value").and_then(|x| x.as_str().map(String::from)),
        );
        let (Ok(task), Ok(crc), Ok(value)) = fields else {
            out.push(deny(
                rel,
                lineno,
                "journal-record",
                "record is missing task/crc/value string fields".to_string(),
                "a journal this run cannot replay is corrupt; delete it and re-run",
            ));
            continue;
        };
        if crc != journal_crc(&task, &value) {
            out.push(deny(
                rel,
                lineno,
                "journal-record",
                format!("checksum mismatch on task `{task}`"),
                "the record was tampered with or bit-flipped; resuming from it would \
                 silently diverge",
            ));
        }
        if let Some(p) = &prev {
            if *p >= task {
                out.push(deny(
                    rel,
                    lineno,
                    "journal-record",
                    if *p == task {
                        format!("duplicate task key `{task}`")
                    } else {
                        format!("task keys out of order: `{task}` after `{p}`")
                    },
                    "journals are sorted snapshots with unique keys; this file was not \
                     written by the journal",
                ));
            }
        }
        prev = Some(task);
    }
}

// ---------------------------------------------------------------------
// queue journals

fn check_queue(rel: &str, raw: &str, out: &mut Vec<Finding>) {
    let Ok(v) = serde_json::from_str::<Value>(raw) else {
        out.push(deny(
            rel,
            1,
            "queue-journal",
            "queue journal is not valid JSON".to_string(),
            "remove the corrupt queue journal; unfinished jobs must be resubmitted",
        ));
        return;
    };
    let Ok(Value::Arr(pending)) = v.member("pending") else {
        out.push(deny(
            rel,
            1,
            "queue-journal",
            "queue journal has no `pending` array".to_string(),
            "remove the corrupt queue journal; unfinished jobs must be resubmitted",
        ));
        return;
    };
    for (i, item) in pending.iter().enumerate() {
        let fields = (
            item.member("id").and_then(|x| x.as_str().map(String::from)),
            item.member("canonical")
                .and_then(|x| x.as_str().map(String::from)),
        );
        let (Ok(id), Ok(canonical)) = fields else {
            out.push(deny(
                rel,
                1,
                "queue-journal",
                format!("pending[{i}] is missing id/canonical"),
                "remove the corrupt queue journal; unfinished jobs must be resubmitted",
            ));
            continue;
        };
        let expect = content_id(&canonical);
        if id != expect {
            out.push(deny(
                rel,
                1,
                "queue-journal",
                format!(
                    "pending[{i}] id `{id}` is not the fingerprint of its canonical \
                     request (expected `{expect}`)"
                ),
                "a mislabeled entry would coalesce unrelated requests; remove the entry",
            ));
        }
    }
}

// ---------------------------------------------------------------------
// store records

fn check_store_record(rel: &str, id: &str, raw: &str, out: &mut Vec<Finding>) {
    let Some((header, body)) = raw.split_once('\n') else {
        out.push(deny(
            rel,
            1,
            "store-record",
            "record has no header line".to_string(),
            "store records are `<id> <checksum>\\n<body>`; remove the torn record",
        ));
        return;
    };
    let Some((stored_id, stored_sum)) = header.split_once(' ') else {
        out.push(deny(
            rel,
            1,
            "store-record",
            format!("malformed header `{header}`"),
            "store records are `<id> <checksum>\\n<body>`; remove the torn record",
        ));
        return;
    };
    if stored_id != id {
        out.push(deny(
            rel,
            1,
            "store-record",
            format!("record is addressed `{stored_id}` but filed as `{id}`"),
            "a mislabeled record answers the wrong request; remove it",
        ));
    }
    if body_checksum(body) != stored_sum {
        out.push(deny(
            rel,
            1,
            "store-record",
            format!(
                "checksum mismatch: header says {stored_sum}, body hashes to {}",
                body_checksum(body)
            ),
            "the body was tampered with or truncated; remove the record",
        ));
        return;
    }
    // Body is intact — if it embeds a matrix and cores (a campaign
    // document), hold them to the model domains too.
    let Ok(v) = serde_json::from_str::<Value>(body) else {
        out.push(deny(
            rel,
            2,
            "store-record",
            "record body is not valid JSON".to_string(),
            "store bodies are JSON documents; remove the record",
        ));
        return;
    };
    if let Ok(matrix) = v.member("matrix") {
        check_matrix(rel, "matrix", matrix, out);
    }
    if let Ok(Value::Arr(cores)) = v.member("cores") {
        for (i, core) in cores.iter().enumerate() {
            check_core(rel, &format!("cores[{i}]"), core, out);
        }
    }
}

// ---------------------------------------------------------------------
// measured results

fn check_measured(rel: &str, raw: &str, out: &mut Vec<Finding>) {
    let Ok(v) = serde_json::from_str::<Value>(raw) else {
        out.push(deny(
            rel,
            1,
            "measured-envelope",
            "measured-results file is not valid JSON".to_string(),
            "re-run the measurement; the file is torn",
        ));
        return;
    };
    // Legacy bare format (no envelope) still validates domains.
    let measured = match (v.member("crc"), v.member("measured")) {
        (Ok(crc), Ok(measured)) => {
            let crc = crc.as_str().unwrap_or_default().to_string();
            // The envelope checksum is FNV-64 over the *compact*
            // serialization of the payload; the vendored serde_json
            // formats floats shortest-round-trip, so the bytes
            // recompute exactly from the parsed tree.
            let canonical =
                serde_json::to_string(measured).unwrap_or_else(|e| format!("unserializable: {e}"));
            let expect = format!("{:016x}", fnv64(0, canonical.as_bytes()));
            if crc != expect {
                out.push(deny(
                    rel,
                    1,
                    "measured-envelope",
                    format!("envelope checksum `{crc}` does not match payload (`{expect}`)"),
                    "the results were edited after measurement; re-run or restore them",
                ));
            }
            measured
        }
        _ => &v,
    };
    if let Ok(matrix) = measured.member("matrix") {
        check_matrix(rel, "measured.matrix", matrix, out);
    }
    if let Ok(Value::Arr(cores)) = measured.member("cores") {
        for (i, core) in cores.iter().enumerate() {
            check_core(rel, &format!("measured.cores[{i}]"), core, out);
        }
    }
}

// ---------------------------------------------------------------------
// model domains

fn check_matrix(rel: &str, at: &str, matrix: &Value, out: &mut Vec<Finding>) {
    let names = match matrix.member("names") {
        Ok(Value::Arr(names)) => names.len(),
        _ => {
            out.push(deny(
                rel,
                1,
                "matrix-domain",
                format!("{at} has no `names` array"),
                "cross-performance matrices carry names, ipt rows, and weights",
            ));
            return;
        }
    };
    match matrix.member("weights") {
        Ok(Value::Arr(w)) if w.len() == names => {}
        Ok(Value::Arr(w)) => out.push(deny(
            rel,
            1,
            "matrix-domain",
            format!("{at} has {} weights for {names} workloads", w.len()),
            "weights must be one per workload row",
        )),
        _ => out.push(deny(
            rel,
            1,
            "matrix-domain",
            format!("{at} has no `weights` array"),
            "cross-performance matrices carry names, ipt rows, and weights",
        )),
    }
    let Ok(Value::Arr(rows)) = matrix.member("ipt") else {
        out.push(deny(
            rel,
            1,
            "matrix-domain",
            format!("{at} has no `ipt` rows"),
            "cross-performance matrices carry names, ipt rows, and weights",
        ));
        return;
    };
    if rows.len() != names {
        out.push(deny(
            rel,
            1,
            "matrix-domain",
            format!("{at} is {} rows over {names} workloads", rows.len()),
            "the matrix must be square over the workload names",
        ));
    }
    for (w, row) in rows.iter().enumerate() {
        let Value::Arr(cells) = row else {
            out.push(deny(
                rel,
                1,
                "matrix-domain",
                format!("{at}.ipt[{w}] is not an array"),
                "every row is one IPT per configuration",
            ));
            continue;
        };
        if cells.len() != names {
            out.push(deny(
                rel,
                1,
                "matrix-domain",
                format!(
                    "{at}.ipt[{w}] has {} cells over {names} configs",
                    cells.len()
                ),
                "the matrix must be square over the workload names",
            ));
        }
        for (c, cell) in cells.iter().enumerate() {
            let Some(x) = num(cell) else {
                out.push(deny(
                    rel,
                    1,
                    "matrix-domain",
                    format!("{at}.ipt[{w}][{c}] is not a number"),
                    "IPT cells are positive floats",
                ));
                continue;
            };
            let bad = if x.is_nan() {
                Some("NaN")
            } else if x.is_infinite() {
                Some("infinite")
            } else if x < 0.0 {
                Some("negative")
            } else if x == 0.0 {
                Some("zero")
            } else if x < SUBNORMAL_FLOOR && x != FAILED_CELL_IPT {
                Some("an undocumented subnormal")
            } else {
                None
            };
            if let Some(why) = bad {
                out.push(deny(
                    rel,
                    1,
                    "matrix-domain",
                    format!("{at}.ipt[{w}][{c}] = {x:?} is {why}"),
                    "cells are positive IPT; a failed cell is exactly the \
                     FAILED_CELL_IPT sentinel",
                ));
            }
        }
    }
}

/// Validate one customized-core document: the design point against the
/// annealer's move domains, the realized config against the CACTI
/// candidate lists and the simulator's structural rules.
fn check_core(rel: &str, at: &str, core: &Value, out: &mut Vec<Finding>) {
    if let Ok(point) = core.member("point") {
        check_point(rel, &format!("{at}.point"), point, out);
    }
    if let Ok(config) = core.member("config") {
        check_config(rel, &format!("{at}.config"), config, out);
    }
    if let Ok(ipt) = core.member("ipt") {
        match num(ipt) {
            Some(x) if x.is_finite() && x > 0.0 => {}
            _ => out.push(deny(
                rel,
                1,
                "matrix-domain",
                format!("{at}.ipt is not a positive finite IPT"),
                "a customized core's own-workload IPT must be measured and positive",
            )),
        }
    }
}

fn check_point(rel: &str, at: &str, point: &Value, out: &mut Vec<Finding>) {
    let bad = |field: &str, detail: String| {
        deny(
            rel,
            1,
            "point-domain",
            format!("{at}.{field} {detail}"),
            "design points must lie inside the annealer's move domains \
             (crates/explore/src/point.rs)",
        )
    };
    match point.member("clock_ns").ok().and_then(num) {
        Some(x) if CLOCK_NS.contains(&x) => {}
        Some(x) => out.push(bad("clock_ns", format!("= {x} is outside {CLOCK_NS:?} ns"))),
        None => out.push(bad("clock_ns", "is missing or non-numeric".to_string())),
    }
    match point.member("width").ok().and_then(uint) {
        Some(x) if WIDTH.contains(&x) => {}
        Some(x) => out.push(bad("width", format!("= {x} is outside {WIDTH:?}"))),
        None => out.push(bad("width", "is missing or non-numeric".to_string())),
    }
    for field in ["sched_depth", "lsq_depth", "l1_cycles", "l2_cycles"] {
        match point.member(field).ok().and_then(uint) {
            Some(x) if x >= 1 => {}
            _ => out.push(bad(field, "must be a depth of at least 1".to_string())),
        }
    }
    if let Some(x) = point.member("wakeup_slack").ok().and_then(uint) {
        if x > 1 {
            out.push(bad("wakeup_slack", format!("= {x}; the domain is 0 or 1")));
        }
    }
    for field in ["l1_assoc", "l2_assoc"] {
        match point.member(field).ok().and_then(uint) {
            Some(x) if fit::CACHE_ASSOC.contains(&(x as u32)) => {}
            Some(x) => out.push(bad(
                field,
                format!(
                    "= {x} is not a candidate associativity {:?}",
                    fit::CACHE_ASSOC
                ),
            )),
            None => out.push(bad(field, "is missing or non-numeric".to_string())),
        }
    }
    for field in ["l1_block", "l2_block"] {
        match point.member(field).ok().and_then(uint) {
            Some(x) if fit::CACHE_BLOCKS.contains(&(x as u32)) => {}
            Some(x) => out.push(bad(
                field,
                format!(
                    "= {x} is not a candidate block size {:?}",
                    fit::CACHE_BLOCKS
                ),
            )),
            None => out.push(bad(field, "is missing or non-numeric".to_string())),
        }
    }
}

fn check_config(rel: &str, at: &str, config: &Value, out: &mut Vec<Finding>) {
    let bad = |field: &str, detail: String| {
        deny(
            rel,
            1,
            "config-domain",
            format!("{at}.{field} {detail}"),
            "realized configurations must come from the CACTI candidate lists \
             (crates/cacti/src/fit.rs) and satisfy CoreConfig::validate",
        )
    };
    let mut sized_check = |field: &str, domain: &[u32]| -> Option<u64> {
        match config.member(field).ok().and_then(uint) {
            Some(x) if domain.contains(&(x as u32)) => Some(x),
            Some(x) => {
                out.push(bad(
                    field,
                    format!("= {x} is not in the candidate list {domain:?}"),
                ));
                None
            }
            None => {
                out.push(bad(field, "is missing or non-numeric".to_string()));
                None
            }
        }
    };
    let iq = sized_check("iq_size", &fit::IQ_SIZES);
    let rob = sized_check("rob_size", &fit::ROB_SIZES);
    sized_check("lsq_size", &fit::LSQ_SIZES);
    if let (Some(iq), Some(rob)) = (iq, rob) {
        if iq > rob {
            out.push(bad("iq_size", format!("= {iq} exceeds rob_size = {rob}")));
        }
    }
    match config.member("width").ok().and_then(uint) {
        Some(x) if WIDTH.contains(&x) => {}
        Some(x) => out.push(bad("width", format!("= {x} is outside {WIDTH:?}"))),
        None => out.push(bad("width", "is missing or non-numeric".to_string())),
    }
    let mut capacity = |level: &str| -> Option<u64> {
        let geom = config.member(level).ok()?.member("geometry").ok()?;
        let sets = geom.member("sets").ok().and_then(uint)?;
        let assoc = geom.member("assoc").ok().and_then(uint)?;
        let block = geom.member("block_bytes").ok().and_then(uint)?;
        if !fit::CACHE_SETS.contains(&(sets as u32)) {
            out.push(bad(
                level,
                format!(".geometry.sets = {sets} is not a candidate set count"),
            ));
        }
        if !fit::CACHE_ASSOC.contains(&(assoc as u32)) {
            out.push(bad(
                level,
                format!(".geometry.assoc = {assoc} is not a candidate associativity"),
            ));
        }
        if !fit::CACHE_BLOCKS.contains(&(block as u32)) {
            out.push(bad(
                level,
                format!(".geometry.block_bytes = {block} is not a candidate block size"),
            ));
        }
        Some(sets * assoc * block)
    };
    let l1 = capacity("l1");
    let l2 = capacity("l2");
    if let (Some(l1), Some(l2)) = (l1, l2) {
        if l2 < l1 {
            out.push(bad(
                "l2",
                format!("capacity {l2} B is below l1 capacity {l1} B"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xps-analyze-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn rules_of(report: &Report) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn valid_journal_is_clean_and_tampered_is_not() {
        let dir = tmp("journal");
        let rec = |task: &str, value: &str| {
            format!(
                "{{\"task\":\"{task}\",\"crc\":\"{}\",\"value\":\"{value}\"}}",
                journal_crc(task, value)
            )
        };
        std::fs::write(
            dir.join("run.jsonl"),
            format!("{}\n{}\n", rec("a#0", "1"), rec("b#0", "2")),
        )
        .expect("write");
        let r = check_dir(&dir).expect("walk");
        assert!(r.is_clean(), "{:?}", r.findings);
        assert_eq!(r.files_checked, 1);

        std::fs::write(
            dir.join("bad.jsonl"),
            format!(
                "{}\n{}\n{}\n",
                rec("b#0", "2"),
                rec("a#0", "1"), // out of order
                rec("a#0", "1")  // duplicate
            )
            .replace("\"value\":\"2\"", "\"value\":\"3\""), // breaks b#0's crc
        )
        .expect("write");
        let r = check_dir(&dir).expect("walk");
        let rules = rules_of(&r);
        assert_eq!(
            rules,
            vec!["journal-record", "journal-record", "journal-record"],
            "{:?}",
            r.findings
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_journal_fingerprints_are_checked() {
        let dir = tmp("queue");
        let good = content_id("{\"kind\":\"explore\"}");
        std::fs::write(
            dir.join("queue.json"),
            format!(
                "{{\"pending\":[{{\"id\":\"{good}\",\"canonical\":\"{}\"}},\
                 {{\"id\":\"0000000000000000\",\"canonical\":\"{}\"}}]}}",
                "{\\\"kind\\\":\\\"explore\\\"}", "{\\\"kind\\\":\\\"explore\\\"}"
            ),
        )
        .expect("write");
        let r = check_dir(&dir).expect("walk");
        assert_eq!(rules_of(&r), vec!["queue-journal"], "{:?}", r.findings);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_record_checksum_and_address_are_checked() {
        let dir = tmp("store");
        let id = content_id("req");
        let body = "{\"ok\":true}";
        std::fs::write(
            dir.join(format!("{id}.json")),
            format!("{id} {}\n{body}", body_checksum(body)),
        )
        .expect("write");
        let r = check_dir(&dir).expect("walk");
        assert!(r.is_clean(), "{:?}", r.findings);

        // Tampered body.
        std::fs::write(
            dir.join(format!("{id}.json")),
            format!("{id} {}\n{{\"ok\":false}}", body_checksum(body)),
        )
        .expect("write");
        let r = check_dir(&dir).expect("walk");
        assert_eq!(rules_of(&r), vec!["store-record"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn matrix_domains_catch_nan_shape_and_sentinel() {
        let dir = tmp("matrix");
        let body = format!(
            "{{\"matrix\":{{\"names\":[\"a\",\"b\"],\
             \"ipt\":[[1.5,{FAILED_CELL_IPT:?}],[0.5]],\
             \"weights\":[1.0,1.0]}}}}"
        );
        let id = content_id("m");
        std::fs::write(
            dir.join(format!("{id}.json")),
            format!("{id} {}\n{body}", body_checksum(&body)),
        )
        .expect("write");
        let r = check_dir(&dir).expect("walk");
        // One finding: the ragged second row. The sentinel passes.
        assert_eq!(rules_of(&r), vec!["matrix-domain"], "{:?}", r.findings);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn measured_envelope_crc_recomputes() {
        let dir = tmp("measured");
        let payload =
            "{\"cores\":[],\"matrix\":{\"names\":[],\"ipt\":[],\"weights\":[]},\"quick\":true}";
        let crc = format!("{:016x}", fnv64(0, payload.as_bytes()));
        std::fs::write(
            dir.join("measured.json"),
            format!("{{\"crc\":\"{crc}\",\"measured\":{payload}}}"),
        )
        .expect("write");
        let r = check_dir(&dir).expect("walk");
        assert!(r.is_clean(), "{:?}", r.findings);

        std::fs::write(
            dir.join("measured.json"),
            format!(
                "{{\"crc\":\"{crc}\",\"measured\":{}}}",
                payload.replace("true", "false")
            ),
        )
        .expect("write");
        let r = check_dir(&dir).expect("walk");
        assert_eq!(rules_of(&r), vec!["measured-envelope"], "{:?}", r.findings);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn point_and_config_domains_are_enforced() {
        let dir = tmp("domains");
        let core = "{\"point\":{\"clock_ns\":3.5,\"width\":3,\"sched_depth\":1,\
                    \"wakeup_slack\":0,\"lsq_depth\":2,\"l1_cycles\":3,\"l2_cycles\":12,\
                    \"l1_assoc\":3,\"l1_block\":64,\"l2_assoc\":4,\"l2_block\":128},\
                    \"config\":{\"width\":3,\"rob_size\":128,\"iq_size\":256,\
                    \"lsq_size\":64,\
                    \"l1\":{\"geometry\":{\"sets\":64,\"assoc\":2,\"block_bytes\":64}},\
                    \"l2\":{\"geometry\":{\"sets\":32,\"assoc\":1,\"block_bytes\":8}}},\
                    \"ipt\":1.0}";
        let body = format!("{{\"cores\":[{core}]}}");
        let id = content_id("c");
        std::fs::write(
            dir.join(format!("{id}.json")),
            format!("{id} {}\n{body}", body_checksum(&body)),
        )
        .expect("write");
        let r = check_dir(&dir).expect("walk");
        let rules = rules_of(&r);
        // clock_ns out of range, l1_assoc not a candidate, iq_size not a
        // candidate, and L2 capacity (256 B) below L1 (8 KiB).
        assert_eq!(
            rules,
            vec![
                "config-domain",
                "config-domain",
                "point-domain",
                "point-domain"
            ],
            "{:?}",
            r.findings
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn real_repo_results_validate_clean() {
        let results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        if !results.exists() {
            return;
        }
        let r = check_dir(&results).expect("walk");
        assert!(r.is_clean(), "{}", r.render_human("data"));
        assert!(r.files_checked >= 1, "measured.json must be checked");
    }
}
