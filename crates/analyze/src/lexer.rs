//! A small hand-rolled Rust lexer.
//!
//! The workspace is offline (no `syn`), so the lint pass tokenizes
//! source itself. The lexer is deliberately *lossless*: concatenating
//! the `text` of every token reproduces the input byte for byte (a
//! property-tested invariant), which guarantees that string literals
//! and comments can never hide code from a rule — or fabricate
//! matches — by confusing the scanner's notion of where they end.
//!
//! It recognizes exactly what the rules need: comments (line and
//! nested block), string-ish literals (plain, raw, byte, char),
//! lifetimes, numbers, identifiers, and single-character punctuation.
//! Multi-character operators are left as punctuation sequences; rules
//! match on token *sequences* (`Instant`, `:`, `:`, `now`), so `::`
//! needs no dedicated token.

/// What a token is; rules dispatch on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` (including `///` and `//!` doc comments), newline excluded.
    LineComment,
    /// `/* … */`, nesting honored; an unterminated comment swallows
    /// the rest of the file (as rustc treats it — everything after is
    /// not code).
    BlockComment,
    /// `"…"` or `b"…"` with escapes.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##` — any hash depth.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `'static`, `'a`, `'_`.
    Lifetime,
    /// A numeric literal (integer or float, any base, with suffix).
    Number,
    /// An identifier or keyword.
    Ident,
    /// Any single other character.
    Punct,
}

/// One token: its kind, its exact source text, and the 1-based
/// line/column (in bytes) where it starts.
#[derive(Debug, Clone, PartialEq)]
pub struct Token<'a> {
    /// Classification.
    pub kind: TokenKind,
    /// The exact slice of the input this token covers.
    pub text: &'a str,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte.
    pub col: u32,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Scanner<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Scanner<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    /// First char at `pos + ahead` bytes (byte offset must be a char
    /// boundary, which it is everywhere we call this).
    fn peek_char(&self, ahead: usize) -> Option<char> {
        self.src[self.pos + ahead..].chars().next()
    }

    fn take(&mut self, kind: TokenKind, len: usize) -> Token<'a> {
        let text = &self.src[self.pos..self.pos + len];
        let tok = Token {
            kind,
            text,
            line: self.line,
            col: self.col,
        };
        for b in text.bytes() {
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        self.pos += len;
        tok
    }

    /// Bytes until `\n` (exclusive) or end of input.
    fn line_comment_len(&self) -> usize {
        self.rest().find('\n').unwrap_or(self.rest().len())
    }

    /// Length of a `/* … */` run with nesting; unterminated comments
    /// extend to end of input.
    fn block_comment_len(&self) -> usize {
        let b = &self.bytes[self.pos..];
        let mut depth = 0usize;
        let mut i = 0usize;
        while i < b.len() {
            if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                depth += 1;
                i += 2;
            } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                depth -= 1;
                i += 2;
                if depth == 0 {
                    return i;
                }
            } else {
                i += 1;
            }
        }
        b.len()
    }

    /// Length of a `"…"` literal starting at `pos + skip` (skip covers
    /// a `b` prefix); escapes honored, unterminated extends to EOF.
    fn quoted_len(&self, skip: usize, quote: u8) -> usize {
        let b = &self.bytes[self.pos..];
        let mut i = skip + 1; // past the opening quote
        while i < b.len() {
            match b[i] {
                b'\\' => i += 2,
                c if c == quote => return i + 1,
                _ => i += 1,
            }
        }
        b.len()
    }

    /// Length of a raw string starting at `pos + skip` where `skip`
    /// covers the `r` / `br` prefix: `#`* then `"` … `"` then the same
    /// number of `#`. Returns `None` if this is not a raw string after
    /// all (e.g. `r` the identifier).
    fn raw_str_len(&self, skip: usize) -> Option<usize> {
        let b = &self.bytes[self.pos..];
        let mut hashes = 0usize;
        let mut i = skip;
        while b.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        if b.get(i) != Some(&b'"') {
            return None;
        }
        i += 1;
        while i < b.len() {
            if b[i] == b'"' {
                let mut j = 0usize;
                while j < hashes && b.get(i + 1 + j) == Some(&b'#') {
                    j += 1;
                }
                if j == hashes {
                    return Some(i + 1 + hashes);
                }
            }
            i += 1;
        }
        Some(b.len())
    }

    /// Length of a `'…'` char literal or `'ident` lifetime, decided by
    /// lookahead: a backslash or a closing quote right after one
    /// character means char literal; an identifier run with no closing
    /// quote means lifetime.
    fn char_or_lifetime(&self) -> (TokenKind, usize) {
        // self.bytes[self.pos] == b'\''
        match self.peek_char(1) {
            Some('\\') => (TokenKind::Char, self.quoted_len(0, b'\'')),
            Some(c) if is_ident_start(c) => {
                let mut i = 1 + c.len_utf8();
                while let Some(n) = self.src[self.pos + i..].chars().next() {
                    if is_ident_continue(n) {
                        i += n.len_utf8();
                    } else {
                        break;
                    }
                }
                if self.peek(i) == Some(b'\'') {
                    (TokenKind::Char, i + 1)
                } else {
                    (TokenKind::Lifetime, i)
                }
            }
            Some(c) => {
                // `'+'`-style char of a non-identifier character, or a
                // stray quote; require the closing quote to call it a
                // char.
                let i = 1 + c.len_utf8();
                if self.peek(i) == Some(b'\'') {
                    (TokenKind::Char, i + 1)
                } else {
                    (TokenKind::Punct, 1)
                }
            }
            None => (TokenKind::Punct, 1),
        }
    }

    /// Length of a numeric literal: digits, then `.` + digits (unless
    /// the dot starts a `..` range or a method call), then an optional
    /// exponent and alphanumeric suffix.
    fn number_len(&self) -> usize {
        let b = &self.bytes[self.pos..];
        let mut i = 1usize; // first digit consumed by caller's match
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        if b.get(i) == Some(&b'.') && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
            i += 1;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
        }
        // Exponent sign: `1e-5` leaves us after `e`; pull the sign and
        // the exponent digits in.
        if i > 0
            && (b[i - 1] == b'e' || b[i - 1] == b'E')
            && (b.get(i) == Some(&b'-') || b.get(i) == Some(&b'+'))
            && b.get(i + 1).is_some_and(u8::is_ascii_digit)
        {
            i += 1;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
        }
        i
    }

    fn ident_len(&self) -> usize {
        let mut i = 0usize;
        for c in self.rest().chars() {
            if (i == 0 && is_ident_start(c)) || (i > 0 && is_ident_continue(c)) {
                i += c.len_utf8();
            } else {
                break;
            }
        }
        i
    }

    fn next_token(&mut self) -> Token<'a> {
        let b = self.bytes[self.pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                let len = self
                    .rest()
                    .bytes()
                    .take_while(|c| matches!(c, b' ' | b'\t' | b'\r' | b'\n'))
                    .count();
                self.take(TokenKind::Whitespace, len)
            }
            b'/' if self.peek(1) == Some(b'/') => {
                self.take(TokenKind::LineComment, self.line_comment_len())
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.take(TokenKind::BlockComment, self.block_comment_len())
            }
            b'"' => self.take(TokenKind::Str, self.quoted_len(0, b'"')),
            b'\'' => {
                let (kind, len) = self.char_or_lifetime();
                self.take(kind, len)
            }
            b'r' | b'b' => {
                // Raw / byte literal prefixes; fall through to a plain
                // identifier when the prefix is not followed by a
                // literal.
                if b == b'b' {
                    match self.peek(1) {
                        Some(b'"') => return self.take(TokenKind::Str, self.quoted_len(1, b'"')),
                        Some(b'\'') => {
                            return self.take(TokenKind::Char, self.quoted_len(1, b'\''))
                        }
                        Some(b'r') => {
                            if let Some(len) = self.raw_str_len(2) {
                                return self.take(TokenKind::RawStr, len);
                            }
                        }
                        _ => {}
                    }
                } else if let Some(len) = self.raw_str_len(1) {
                    return self.take(TokenKind::RawStr, len);
                }
                self.take(TokenKind::Ident, self.ident_len())
            }
            b'0'..=b'9' => self.take(TokenKind::Number, self.number_len()),
            _ => {
                let len = self.ident_len();
                if len > 0 {
                    self.take(TokenKind::Ident, len)
                } else {
                    let len = self.peek_char(0).map_or(1, char::len_utf8);
                    self.take(TokenKind::Punct, len)
                }
            }
        }
    }
}

/// Tokenize `src` losslessly: the concatenation of every returned
/// token's `text` equals `src`.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut s = Scanner {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while s.pos < s.bytes.len() {
        out.push(s.next_token());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn roundtrip_is_lossless() {
        let src = "fn main() { let s = \"x // not a comment\"; } // real";
        let rebuilt: String = lex(src).iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn comments_and_strings_do_not_leak() {
        let toks = kinds("let a = \"Instant::now()\"; // Instant::now()\n/* Instant::now() */");
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || !t.contains("Instant")));
        assert!(matches!(toks[3], (TokenKind::Str, _)));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r####"let x = r#"a "quoted" b"#;"####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.starts_with("r#") && t.ends_with("\"#")));
    }

    #[test]
    fn byte_raw_strings() {
        let toks = kinds(r####"br##"payload"##"####);
        assert_eq!(toks[0].0, TokenKind::RawStr);
        assert_eq!(toks[0].1, r####"br##"payload"##"####);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* b */ c */ fn");
        assert_eq!(toks[0], (TokenKind::BlockComment, "/* a /* b */ c */"));
        assert_eq!(toks[1], (TokenKind::Ident, "fn"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("&'a str; 'x'; '\\n'; '_; b'z'");
        assert_eq!(toks[1], (TokenKind::Lifetime, "'a"));
        assert_eq!(toks[4], (TokenKind::Char, "'x'"));
        assert_eq!(toks[6], (TokenKind::Char, "'\\n'"));
        assert_eq!(toks[8], (TokenKind::Lifetime, "'_"));
        assert_eq!(toks[10], (TokenKind::Char, "b'z'"));
    }

    #[test]
    fn escaped_quote_char_and_lifetime_adjacency() {
        let toks = kinds("'\\''");
        assert_eq!(toks[0], (TokenKind::Char, "'\\''"));
        // A lifetime in generics directly followed by a char literal:
        // the lifetime must not swallow the opening quote.
        let toks = kinds("<'a>'x'");
        assert_eq!(toks[1], (TokenKind::Lifetime, "'a"));
        assert_eq!(toks[3], (TokenKind::Char, "'x'"));
    }

    #[test]
    fn raw_string_ignores_shallower_hash_closers() {
        // `"#` inside an `r##` string is content, not a terminator.
        let src = r#####"r##"a "# b"## tail"#####;
        let toks = kinds(src);
        assert_eq!(toks[0], (TokenKind::RawStr, r#####"r##"a "# b"##"#####));
        assert_eq!(toks[1], (TokenKind::Ident, "tail"));
    }

    #[test]
    fn byte_char_and_unterminated_byte_string() {
        let toks = kinds("b'q' b\"open");
        assert_eq!(toks[0], (TokenKind::Char, "b'q'"));
        assert_eq!(toks[1], (TokenKind::Str, "b\"open"));
        let rebuilt: String = lex("b'q' b\"open").iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, "b'q' b\"open");
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("0.5..1.5e-3 0x1f 1_000u64 x.0");
        assert_eq!(toks[0], (TokenKind::Number, "0.5"));
        assert_eq!(toks[1], (TokenKind::Punct, "."));
        assert_eq!(toks[2], (TokenKind::Punct, "."));
        assert_eq!(toks[3], (TokenKind::Number, "1.5e-3"));
        assert_eq!(toks[4], (TokenKind::Number, "0x1f"));
        assert_eq!(toks[5], (TokenKind::Number, "1_000u64"));
        assert_eq!(toks[8], (TokenKind::Number, "0"));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        let b = toks.last().expect("tokens");
        assert_eq!((b.line, b.col), (2, 3));
    }

    #[test]
    fn r_and_b_as_plain_idents() {
        let toks = kinds("r + b(r, b)");
        assert_eq!(toks[0], (TokenKind::Ident, "r"));
        assert_eq!(toks[2], (TokenKind::Ident, "b"));
    }

    #[test]
    fn unterminated_forms_extend_to_eof() {
        assert_eq!(lex("/* open").len(), 1);
        assert_eq!(lex("\"open").len(), 1);
        assert_eq!(lex("r#\"open").len(), 1);
        let rebuilt: String = lex("let s = \"open").iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, "let s = \"open");
    }
}
