//! Standalone entry point for the static analyzer.
//!
//! ```text
//! xps-analyze source [ROOT] [--incremental] [--cache PATH]
//!                             lint workspace sources (default: .)
//! xps-analyze data DIR...     validate on-disk artifacts
//! xps-analyze rules           print the rule catalog (human form)
//! xps-analyze --catalog       print the rule catalog as markdown
//! ```
//!
//! `--json` switches diagnostics to the machine-readable document.
//! `--incremental` reuses per-file summaries keyed by content hash
//! (`--cache PATH` overrides the default `ROOT/target/analyze-cache.json`).
//! Exit code 0 means no deny-severity findings, 1 means at least one,
//! 2 means the analyzer itself could not run (bad usage, unreadable
//! tree).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xps_analyze::{
    all_rules, analyze_workspace, artifact, catalog_markdown, semantic_rules, Report,
    WorkspaceOptions,
};

const USAGE: &str = "usage: xps-analyze [--json] \
                     <source [ROOT] [--incremental] [--cache PATH] | data DIR... | rules | --catalog>";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    if args.iter().any(|a| a == "--catalog") {
        print!("{}", catalog_markdown());
        return ExitCode::SUCCESS;
    }
    let incremental = args.iter().any(|a| a == "--incremental");
    args.retain(|a| a != "--incremental");
    let mut cache_path: Option<PathBuf> = None;
    if let Some(i) = args.iter().position(|a| a == "--cache") {
        if i + 1 >= args.len() {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
        cache_path = Some(PathBuf::from(args.remove(i + 1)));
        args.remove(i);
    }
    let Some((mode, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match mode.as_str() {
        "source" => {
            let root = rest.first().map_or(".", String::as_str);
            let opts = WorkspaceOptions {
                incremental,
                cache_path,
            };
            match analyze_workspace(Path::new(root), &opts) {
                Ok(report) => emit(&report, "source", json),
                Err(e) => fail(&e),
            }
        }
        "data" => {
            if rest.is_empty() {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            let mut report = Report::default();
            for dir in rest {
                match artifact::check_dir(Path::new(dir)) {
                    Ok(r) => report.merge(r),
                    Err(e) => return fail(&e),
                }
            }
            report.sort();
            emit(&report, "data", json)
        }
        "rules" => {
            for rule in all_rules() {
                println!("{} [{}]: {}", rule.id, rule.severity.label(), rule.summary);
            }
            for rule in semantic_rules() {
                println!("{} [{}]: {}", rule.id, rule.severity.label(), rule.summary);
            }
            println!(
                "suppress with `// xps-allow(rule-id): reason` on the finding's line or \
                 the line above; the reason is mandatory"
            );
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn emit(report: &Report, label: &str, json: bool) -> ExitCode {
    if json {
        println!("{}", report.render_json(label));
    } else {
        print!("{}", report.render_human(label));
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("xps-analyze: {message}");
    ExitCode::from(2)
}
