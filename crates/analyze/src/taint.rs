//! Determinism provenance: connect nondeterminism *sources* to
//! serialized-output *sinks* through the call graph.
//!
//! Sources (marked by [`crate::parse`]): wall-clock reads
//! (`Instant::now`, `SystemTime::now`), ambient entropy
//! (`thread_rng`/`from_entropy`/`OsRng`/`getrandom`), and iteration
//! over `HashMap`/`HashSet` contents in hash order. Sinks: functions
//! that emit serialized output — `println!`/`print!`,
//! `write_atomic`, `serde_json::to_string{,_pretty}`/`to_writer`,
//! `.to_value()`/`.serialize()`.
//!
//! A source mark in fn `S` is a deny finding when either
//!
//! * **`S` reaches a sink** — `S` (or something it transitively
//!   calls) emits serialized output, so the nondeterministic value can
//!   flow down into a document; or
//! * **a sink reaches `S`** — an emitting function transitively calls
//!   `S`, the classic laundering helper: `document()` calls
//!   `stamp()`, `stamp()` returns the wall clock, the document
//!   serializes it.
//!
//! Either way the diagnostic prints the full call chain in forward
//! call order, each hop with `file:line`. The finding anchors at the
//! source site, where a reasoned
//! `// xps-allow(determinism-provenance): …` suppresses it.

use crate::diag::{Finding, Severity};
use crate::graph::Graph;
use crate::parse::FileSummary;
use std::collections::BTreeSet;

/// Run the pass. Returns the findings plus the set of
/// `(relpath, allow-line)` suppressions it consumed, so the driver
/// can decide staleness after every pass has run.
pub fn check(files: &[FileSummary], graph: &Graph) -> (Vec<Finding>, BTreeSet<(String, u32)>) {
    let mut findings = Vec::new();
    let mut used: BTreeSet<(String, u32)> = BTreeSet::new();

    // Every fn that directly emits serialized output.
    let mut sinks: BTreeSet<String> = BTreeSet::new();
    for (q, site) in &graph.nodes {
        let (fi, gi) = site.fn_ref;
        if !files[fi].fns[gi].sinks.is_empty() {
            sinks.insert(q.clone());
        }
    }

    for (q, site) in &graph.nodes {
        let (fi, gi) = site.fn_ref;
        let file = &files[fi];
        let f = &file.fns[gi];
        for mark in &f.sources {
            // Chain preference: forward (source fn feeds a sink it
            // calls), then reverse (a sink launders the source fn's
            // return value).
            let chain = graph
                .shortest_path_to(q, &sinks)
                .or_else(|| graph.shortest_path_from_any(q, &sinks));
            let Some(chain) = chain else { continue };
            // Anchor-line suppression (same or previous line).
            let allow = file.suppressions.iter().find(|s| {
                s.rule == "determinism-provenance"
                    && (s.line == mark.line || s.line + 1 == mark.line)
            });
            if let Some(a) = allow {
                used.insert((file.relpath.clone(), a.line));
                continue;
            }
            let via = if chain.len() == 1 {
                format!("this function itself emits serialized output ({q})")
            } else {
                graph.render_chain(&chain)
            };
            findings.push(Finding {
                file: file.relpath.clone(),
                line: mark.line,
                col: mark.col,
                rule: "determinism-provenance",
                severity: Severity::Deny,
                message: format!(
                    "{} is connected to serialized output through the call graph: {via}",
                    mark.what
                ),
                suggestion: "derive the value deterministically (seeded RNG, logical clock, \
                             BTree ordering), keep it out of emitted documents, or justify \
                             with `// xps-allow(determinism-provenance): reason` at this line"
                    .to_string(),
            });
        }
    }
    (findings, used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build;
    use crate::parse::summarize_file;
    use crate::rules::FileClass;

    fn run(srcs: &[(&str, &str, &str)]) -> (Vec<Finding>, BTreeSet<(String, u32)>) {
        let files: Vec<FileSummary> = srcs
            .iter()
            .map(|(rel, krate, src)| summarize_file(rel, FileClass::Lib, krate, src))
            .collect();
        let g = build(&files);
        check(&files, &g)
    }

    #[test]
    fn forward_chain_from_source_to_sink_is_found_with_full_chain() {
        let (f, _) = run(&[
            (
                "crates/a/src/lib.rs",
                "xps_a",
                "use xps_b::mid;\npub fn tick() { let t = Instant::now(); mid(t); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "xps_b",
                "pub fn mid(t: T) { crate::out::emit(t); }\n\
                 pub mod out { pub fn emit(t: T) { println!(\"{t:?}\"); } }\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "determinism-provenance");
        assert_eq!((f[0].file.as_str(), f[0].line), ("crates/a/src/lib.rs", 2));
        assert!(
            f[0].message.contains(
                "xps_a::tick (crates/a/src/lib.rs:2) \u{2192} xps_b::mid (crates/b/src/lib.rs:1) \
                 \u{2192} xps_b::out::emit (crates/b/src/lib.rs:2)"
            ),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn laundering_helper_is_found_via_reverse_reachability() {
        // The helper never calls a sink — the *document* calls the
        // helper and serializes its return value.
        let (f, _) = run(&[(
            "crates/a/src/lib.rs",
            "xps_a",
            "fn stamp() -> u64 { SystemTime::now().into() }\n\
             pub fn document() { let s = stamp(); println!(\"{s}\"); }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
        assert!(
            f[0].message
                .contains("xps_a::document (crates/a/src/lib.rs:2) \u{2192} xps_a::stamp"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn disconnected_source_is_quiet_and_allow_is_consumed() {
        // A wall clock feeding only a comparison never reaches output.
        let (f, _) = run(&[(
            "crates/a/src/lib.rs",
            "xps_a",
            "pub fn deadline() -> bool { Instant::now() > LIMIT }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
        // With a sink in reach, an allow at the source line suppresses
        // and is recorded as used.
        let (f, used) = run(&[(
            "crates/a/src/lib.rs",
            "xps_a",
            "// xps-allow(determinism-provenance): CLI timing line, stderr only in spirit\n\
             pub fn timed() { let t = Instant::now(); println!(\"{t:?}\"); }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(
            used.into_iter().collect::<Vec<_>>(),
            vec![("crates/a/src/lib.rs".to_string(), 1)]
        );
    }

    #[test]
    fn zero_hop_source_and_sink_in_one_fn() {
        let (f, _) = run(&[(
            "crates/a/src/lib.rs",
            "xps_a",
            "pub fn bad() { println!(\"{:?}\", Instant::now()); }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("itself emits serialized output"),
            "{}",
            f[0].message
        );
    }
}
