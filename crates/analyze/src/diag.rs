//! Diagnostics: what a rule reports and how it renders.
//!
//! Every finding carries a position (`file:line:col`), the rule id, a
//! message, and a suggestion — enough for a human to act on it and for
//! a machine (the CI gate, an editor integration) to consume it via
//! the JSON form without parsing prose.

use serde::Value;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the analysis (non-zero exit, red CI).
    Deny,
    /// Reported but does not fail the analysis.
    Warn,
}

impl Severity {
    /// The lowercase label used in human and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One finding of one rule at one position.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Path of the offending file, workspace-relative where possible.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Rule id, e.g. `determinism-provenance`.
    pub rule: &'static str,
    /// Severity of the owning rule.
    pub severity: Severity,
    /// What is wrong, concretely.
    pub message: String,
    /// How to fix it (or how to suppress it with a reason).
    pub suggestion: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}]: {}\n  help: {}",
            self.file,
            self.line,
            self.col,
            self.severity.label(),
            self.rule,
            self.message,
            self.suggestion
        )
    }
}

impl Finding {
    /// The machine-readable form of this finding.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("file".to_string(), Value::Str(self.file.clone())),
            ("line".to_string(), Value::U64(u64::from(self.line))),
            ("col".to_string(), Value::U64(u64::from(self.col))),
            ("rule".to_string(), Value::Str(self.rule.to_string())),
            (
                "severity".to_string(),
                Value::Str(self.severity.label().to_string()),
            ),
            ("message".to_string(), Value::Str(self.message.clone())),
            (
                "suggestion".to_string(),
                Value::Str(self.suggestion.clone()),
            ),
        ])
    }
}

/// The result of one analysis run (source or artifact mode).
#[derive(Debug, Default)]
pub struct Report {
    /// Everything found, in file-then-position order.
    pub findings: Vec<Finding>,
    /// Files examined (sources lexed or artifacts validated).
    pub files_checked: usize,
}

impl Report {
    /// Number of deny-severity findings — the exit-code driver.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// True when nothing deny-severity was found.
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// Render every finding for humans, one block per finding, plus a
    /// one-line summary.
    pub fn render_human(&self, label: &str) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{label}: {} file(s) checked, {} finding(s) ({} deny)\n",
            self.files_checked,
            self.findings.len(),
            self.deny_count()
        ));
        out
    }

    /// Render the machine-readable JSON document.
    pub fn render_json(&self, label: &str) -> String {
        let doc = Value::Obj(vec![
            ("mode".to_string(), Value::Str(label.to_string())),
            (
                "files_checked".to_string(),
                Value::U64(self.files_checked as u64),
            ),
            (
                "deny_count".to_string(),
                Value::U64(self.deny_count() as u64),
            ),
            (
                "findings".to_string(),
                Value::Arr(self.findings.iter().map(Finding::to_value).collect()),
            ),
        ]);
        serde_json::to_string_pretty(&doc).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.files_checked += other.files_checked;
    }

    /// Sort findings by file, then line, then column, then rule id —
    /// deterministic output for any traversal order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, severity: Severity) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            col: 3,
            rule: "no-unwrap-in-lib",
            severity,
            message: "msg".to_string(),
            suggestion: "fix".to_string(),
        }
    }

    #[test]
    fn human_rendering_has_position_and_rule() {
        let f = finding("src/a.rs", 7, Severity::Deny);
        let s = f.to_string();
        assert!(s.contains("src/a.rs:7:3"), "{s}");
        assert!(s.contains("deny[no-unwrap-in-lib]"), "{s}");
        assert!(s.contains("help: fix"), "{s}");
    }

    #[test]
    fn deny_count_ignores_warnings() {
        let mut r = Report::default();
        r.findings.push(finding("a.rs", 1, Severity::Warn));
        r.findings.push(finding("a.rs", 2, Severity::Deny));
        assert_eq!(r.deny_count(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn json_is_parseable_and_complete() {
        let mut r = Report {
            files_checked: 2,
            ..Report::default()
        };
        r.findings.push(finding("a.rs", 1, Severity::Deny));
        let v: Value = serde_json::from_str(&r.render_json("source")).expect("valid JSON");
        assert_eq!(
            v.member("deny_count").expect("field"),
            &Value::U64(1),
            "deny_count"
        );
        let Value::Arr(items) = v.member("findings").expect("findings") else {
            panic!("findings must be an array");
        };
        assert_eq!(items.len(), 1);
        assert_eq!(
            items[0].member("rule").expect("rule"),
            &Value::Str("no-unwrap-in-lib".to_string())
        );
    }

    #[test]
    fn sort_is_total_and_stable_across_orders() {
        let mut a = Report::default();
        a.findings.push(finding("b.rs", 1, Severity::Deny));
        a.findings.push(finding("a.rs", 9, Severity::Deny));
        a.findings.push(finding("a.rs", 2, Severity::Deny));
        a.sort();
        let order: Vec<(String, u32)> = a
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_string(), 2),
                ("a.rs".to_string(), 9),
                ("b.rs".to_string(), 1)
            ]
        );
    }
}
