//! # xps-analyze — project-specific static analysis
//!
//! The workspace's invariants — bit-identical parallel output,
//! byte-identical journal resume, checksummed atomic persistence —
//! were enforced by convention until this crate. It makes them
//! *structural*: a source lint pass forbids the known nondeterminism
//! and crash-unsafety leak vectors, and an artifact checker validates
//! every on-disk data file against the model domains, so a regression
//! in either shows up as a red CI job instead of an irreproducible
//! matrix three PRs later.
//!
//! Three layers share one diagnostic/suppression/JSON spine:
//!
//! * **Textual rules** — [`analyze_source`] lexes every workspace
//!   `.rs` file with the hand-rolled lossless [`lexer`] (the workspace
//!   is offline; no `syn`) and runs the [`rules`] registry over the
//!   significant-token stream. Findings carry `file:line:col`, a rule
//!   id, a message, and a suggestion; `// xps-allow(rule-id): reason`
//!   suppresses a finding on the same or next line, and the reason is
//!   mandatory.
//! * **Semantic passes** — [`parse`] extracts items, imports, calls
//!   and per-function marks into per-file summaries; [`graph`] links
//!   them into a cross-crate call graph with path-qualified
//!   resolution; [`taint`] reports any wall-clock / entropy /
//!   hash-order source connected to serialized output as a
//!   `determinism-provenance` finding carrying the full call chain
//!   (`file:line` per hop); [`locks`] builds the
//!   lock-acquisition-order graph, reports cycles (`lock-discipline`
//!   inversions) and blocking operations performed while a guard is
//!   live. [`analyze_workspace`] runs everything, optionally
//!   incrementally: [`cache`] keys each file's summary by content
//!   hash and rules fingerprint, so unchanged files skip the
//!   lex/parse work while reports stay byte-identical to a cold run.
//! * **Artifact checker** — [`artifact::check_dir`] validates
//!   journals, queue journals, store records, and measured-results
//!   files against their checksum formats and the model domains,
//!   without running a simulation.
//!
//! All three are exposed through the `xps-analyze` binary and the
//! `repro analyze` subcommand; `.github/workflows/ci.yml` runs them as
//! a required job, and `xps-analyze --catalog` emits the rule table
//! embedded (and drift-checked) in `README.md` and `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod diag;
pub mod graph;
pub mod lexer;
pub mod locks;
pub mod parse;
pub mod rules;
pub mod taint;

pub use diag::{Finding, Report, Severity};
pub use rules::{all_rules, catalog_markdown, semantic_rules, FileClass, Rule};

use parse::FileSummary;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Directory names the source walker never descends into: build
/// output, vendored third-party code, VCS metadata, and lint-fixture
/// trees (which contain *seeded* violations by design).
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

/// Classify a workspace-relative `.rs` path into the file class that
/// decides rule applicability, or `None` for paths the lint pass
/// ignores entirely.
pub fn classify_path(rel: &Path) -> Option<FileClass> {
    let comps: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    if comps.iter().any(|c| SKIP_DIRS.contains(c)) {
        return None;
    }
    if comps.contains(&"examples") {
        return Some(FileClass::Example);
    }
    if comps.contains(&"tests") || comps.contains(&"benches") {
        return Some(FileClass::Test);
    }
    if let Some(src) = comps.iter().position(|&c| c == "src") {
        if comps.get(src + 1) == Some(&"bin") {
            return Some(FileClass::Bin);
        }
        return Some(FileClass::Lib);
    }
    None
}

/// Every lintable `.rs` file under `root`, workspace-relative and
/// sorted (deterministic report order for any filesystem).
///
/// # Errors
///
/// Returns a message naming the unreadable directory.
pub fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    walk(root, root, &mut out).map_err(|e| format!("walk {}: {e}", root.display()))?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                walk(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            if classify_path(rel).is_some() {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// The lib-ident of the crate owning a workspace-relative path:
/// `crates/serve/…` → `xps_serve` (hyphens folded), anything else →
/// the root package (`xpscalar`). The mapping is derived from the
/// fixed `crates/<dir>` ↔ `xps-<dir>` layout rather than parsed from
/// Cargo.toml — a new crate breaking the convention would surface
/// immediately as unresolved cross-crate edges in the self-check.
pub fn crate_name_for(rel: &Path) -> String {
    let comps: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    if comps.first() == Some(&"crates") {
        if let Some(dir) = comps.get(1) {
            return format!("xps_{}", dir.replace('-', "_"));
        }
    }
    "xpscalar".to_string()
}

/// Lint one source text as if it lived at `rel` (workspace-relative):
/// the textual pass plus the semantic passes run over the singleton
/// graph of this one file.
pub fn analyze_file(rel: &Path, class: FileClass, src: &str) -> Vec<Finding> {
    let relpath = rel.display().to_string();
    let summaries = vec![parse::summarize_file(
        &relpath,
        class,
        &crate_name_for(rel),
        src,
    )];
    semantic_report(summaries).findings
}

/// Options for [`analyze_workspace`].
#[derive(Debug, Default, Clone)]
pub struct WorkspaceOptions {
    /// Reuse and refresh a per-file summary cache.
    pub incremental: bool,
    /// Where the cache lives; `None` with `incremental` means
    /// `<root>/target/analyze-cache.json`.
    pub cache_path: Option<PathBuf>,
}

/// Run the full analysis — textual rules per file, then the
/// determinism-provenance and lock-discipline passes over the
/// cross-crate call graph — over every workspace `.rs` file under
/// `root`. With `opts.incremental`, unchanged files (by content hash)
/// reuse their cached summaries and only the graph is rebuilt.
///
/// # Errors
///
/// Returns a message when the tree cannot be walked or a source file
/// cannot be read — an unreadable workspace must not report "clean".
pub fn analyze_workspace(root: &Path, opts: &WorkspaceOptions) -> Result<Report, String> {
    let cache_path = opts
        .cache_path
        .clone()
        .unwrap_or_else(|| root.join("target/analyze-cache.json"));
    let old_cache = if opts.incremental {
        cache::Cache::load(&cache_path).unwrap_or_default()
    } else {
        cache::Cache::default()
    };
    let mut new_cache = cache::Cache::default();
    let mut summaries: Vec<FileSummary> = Vec::new();
    for rel in workspace_sources(root)? {
        let class = classify_path(&rel).unwrap_or(FileClass::Lib);
        let relpath = rel.display().to_string();
        let src = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("read {}: {e}", rel.display()))?;
        let crate_name = crate_name_for(&rel);
        let hash = cache::content_hash(&crate_name, &relpath, &src);
        let summary = match old_cache.entries.get(&relpath) {
            Some((h, s)) if *h == hash => s.clone(),
            _ => parse::summarize_file(&relpath, class, &crate_name, &src),
        };
        if opts.incremental {
            new_cache.entries.insert(relpath, (hash, summary.clone()));
        }
        summaries.push(summary);
    }
    if opts.incremental {
        new_cache.save(&cache_path)?;
    }
    Ok(semantic_report(summaries))
}

/// Backwards-compatible entry point: a cold (non-incremental)
/// [`analyze_workspace`] run.
///
/// # Errors
///
/// See [`analyze_workspace`].
pub fn analyze_source(root: &Path) -> Result<Report, String> {
    analyze_workspace(root, &WorkspaceOptions::default())
}

/// Findings from a summary set: cached/fresh textual findings, the
/// two semantic passes over the rebuilt graph, then staleness warns
/// for suppressions no pass consumed.
fn semantic_report(summaries: Vec<FileSummary>) -> Report {
    let mut report = Report {
        files_checked: summaries.len(),
        ..Report::default()
    };
    for s in &summaries {
        for f in &s.textual {
            // Rule ids round-tripping through the cache arrive as
            // strings; anything unknown would mean a cache from a
            // different rule set, which the fingerprint already
            // prevents.
            if let Some(rule) = rules::static_rule_id(&f.rule) {
                report.findings.push(Finding {
                    file: s.relpath.clone(),
                    line: f.line,
                    col: f.col,
                    rule,
                    severity: f.severity,
                    message: f.message.clone(),
                    suggestion: f.suggestion.clone(),
                });
            }
        }
    }
    let g = graph::build(&summaries);
    let (taint_findings, taint_used) = taint::check(&summaries, &g);
    let (lock_findings, lock_used) = locks::check(&summaries, &g);
    report.findings.extend(taint_findings);
    report.findings.extend(lock_findings);
    let used: BTreeSet<(String, u32)> = taint_used.union(&lock_used).cloned().collect();
    for s in &summaries {
        for sp in &s.suppressions {
            if !sp.used_by_textual && !used.contains(&(s.relpath.clone(), sp.line)) {
                report.findings.push(rules::unused_suppression_finding(
                    &s.relpath, &sp.rule, sp.line,
                ));
            }
        }
    }
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_classes_cover_the_layout() {
        let class = |p: &str| classify_path(Path::new(p));
        assert_eq!(class("crates/sim/src/config.rs"), Some(FileClass::Lib));
        assert_eq!(class("crates/bench/src/bin/repro.rs"), Some(FileClass::Bin));
        assert_eq!(class("crates/sim/tests/golden.rs"), Some(FileClass::Test));
        assert_eq!(
            class("crates/bench/benches/explore.rs"),
            Some(FileClass::Test)
        );
        assert_eq!(
            class("crates/cacti/examples/sweep.rs"),
            Some(FileClass::Example)
        );
        assert_eq!(class("vendor/serde/src/lib.rs"), None);
        assert_eq!(class("target/debug/build/out.rs"), None);
        assert_eq!(class("crates/analyze/tests/fixtures/bad.rs"), None);
    }

    #[test]
    fn walker_finds_this_crate_and_skips_vendor() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let sources = workspace_sources(&root).expect("walk");
        assert!(
            sources
                .iter()
                .any(|p| p.ends_with("crates/analyze/src/lib.rs")),
            "must see itself"
        );
        assert!(
            !sources.iter().any(|p| p.starts_with("vendor")),
            "vendored code is not ours to lint"
        );
        let mut sorted = sources.clone();
        sorted.sort();
        assert_eq!(sources, sorted, "walk order is deterministic");
    }
}
