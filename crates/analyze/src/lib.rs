//! # xps-analyze — project-specific static analysis
//!
//! The workspace's invariants — bit-identical parallel output,
//! byte-identical journal resume, checksummed atomic persistence —
//! were enforced by convention until this crate. It makes them
//! *structural*: a source lint pass forbids the known nondeterminism
//! and crash-unsafety leak vectors, and an artifact checker validates
//! every on-disk data file against the model domains, so a regression
//! in either shows up as a red CI job instead of an irreproducible
//! matrix three PRs later.
//!
//! Two engines:
//!
//! * [`analyze_source`] — lex every workspace `.rs` file with the
//!   hand-rolled lossless [`lexer`] (the workspace is offline; no
//!   `syn`) and run the [`rules`] registry over the token stream.
//!   Findings carry `file:line:col`, a rule id, a message, and a
//!   suggestion; `// xps-allow(rule-id): reason` suppresses a finding
//!   on the same or next line, and the reason is mandatory.
//! * [`artifact::check_dir`] — validate journals, queue journals,
//!   store records, and measured-results files against their checksum
//!   formats and the model domains, without running a simulation.
//!
//! Both are exposed through the `xps-analyze` binary and the
//! `repro analyze` subcommand; `.github/workflows/ci.yml` runs them as
//! a required job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod diag;
pub mod lexer;
pub mod rules;

pub use diag::{Finding, Report, Severity};
pub use rules::{all_rules, FileClass, Rule};

use std::path::{Path, PathBuf};

/// Directory names the source walker never descends into: build
/// output, vendored third-party code, VCS metadata, and lint-fixture
/// trees (which contain *seeded* violations by design).
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

/// Classify a workspace-relative `.rs` path into the file class that
/// decides rule applicability, or `None` for paths the lint pass
/// ignores entirely.
pub fn classify_path(rel: &Path) -> Option<FileClass> {
    let comps: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    if comps.iter().any(|c| SKIP_DIRS.contains(c)) {
        return None;
    }
    if comps.contains(&"examples") {
        return Some(FileClass::Example);
    }
    if comps.contains(&"tests") || comps.contains(&"benches") {
        return Some(FileClass::Test);
    }
    if let Some(src) = comps.iter().position(|&c| c == "src") {
        if comps.get(src + 1) == Some(&"bin") {
            return Some(FileClass::Bin);
        }
        return Some(FileClass::Lib);
    }
    None
}

/// Every lintable `.rs` file under `root`, workspace-relative and
/// sorted (deterministic report order for any filesystem).
///
/// # Errors
///
/// Returns a message naming the unreadable directory.
pub fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    walk(root, root, &mut out).map_err(|e| format!("walk {}: {e}", root.display()))?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                walk(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            if classify_path(rel).is_some() {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Lint one source text as if it lived at `rel` (workspace-relative).
pub fn analyze_file(rel: &Path, class: FileClass, src: &str) -> Vec<Finding> {
    let tokens = lexer::lex(src);
    let ctx = rules::file_ctx(&rel.display().to_string(), class, &tokens);
    rules::lint_file(&ctx)
}

/// Run the source lint pass over every workspace `.rs` file under
/// `root`.
///
/// # Errors
///
/// Returns a message when the tree cannot be walked or a source file
/// cannot be read — an unreadable workspace must not report "clean".
pub fn analyze_source(root: &Path) -> Result<Report, String> {
    let mut report = Report::default();
    for rel in workspace_sources(root)? {
        let class = classify_path(&rel).unwrap_or(FileClass::Lib);
        let src = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("read {}: {e}", rel.display()))?;
        report.findings.extend(analyze_file(&rel, class, &src));
        report.files_checked += 1;
    }
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_classes_cover_the_layout() {
        let class = |p: &str| classify_path(Path::new(p));
        assert_eq!(class("crates/sim/src/config.rs"), Some(FileClass::Lib));
        assert_eq!(class("crates/bench/src/bin/repro.rs"), Some(FileClass::Bin));
        assert_eq!(class("crates/sim/tests/golden.rs"), Some(FileClass::Test));
        assert_eq!(
            class("crates/bench/benches/explore.rs"),
            Some(FileClass::Test)
        );
        assert_eq!(
            class("crates/cacti/examples/sweep.rs"),
            Some(FileClass::Example)
        );
        assert_eq!(class("vendor/serde/src/lib.rs"), None);
        assert_eq!(class("target/debug/build/out.rs"), None);
        assert_eq!(class("crates/analyze/tests/fixtures/bad.rs"), None);
    }

    #[test]
    fn walker_finds_this_crate_and_skips_vendor() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let sources = workspace_sources(&root).expect("walk");
        assert!(
            sources
                .iter()
                .any(|p| p.ends_with("crates/analyze/src/lib.rs")),
            "must see itself"
        );
        assert!(
            !sources.iter().any(|p| p.starts_with("vendor")),
            "vendored code is not ours to lint"
        );
        let mut sorted = sources.clone();
        sorted.sort();
        assert_eq!(sources, sorted, "walk order is deterministic");
    }
}
