//! Item-level parsing: one lossless token stream in, one owned
//! [`FileSummary`] out.
//!
//! This is deliberately *not* a Rust grammar. The semantic passes
//! ([`crate::taint`], [`crate::locks`]) need exactly five things per
//! file — module structure, `use` trees, fn signatures with their
//! bodies' call expressions, determinism source/sink marks, and lock
//! acquisitions with guard extents — and all five fall out of a
//! single forward walk over the significant tokens with brace
//! matching. No expression grammar, no types, no macros expanded.
//!
//! Everything produced here is owned (`String`, not `&str`) so a
//! summary can round-trip through the incremental cache
//! ([`crate::cache`]) and be rebuilt from disk without re-lexing the
//! file.

use crate::diag::Severity;
use crate::lexer::lex;
use crate::rules::{self, FileClass, FileCtx};

/// A finding that owns its strings — the cacheable form of
/// [`crate::diag::Finding`], with the rule id as a `String` so it can
/// round-trip through JSON (restored via [`rules::static_rule_id`]).
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedFinding {
    /// Rule id as text.
    pub rule: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Severity of the owning rule.
    pub severity: Severity,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
}

/// An `xps-allow` with its textual-pass usage already decided.
/// Whether it is *stale* is decided only after the semantic passes
/// have had their chance to use it.
#[derive(Debug, Clone, PartialEq)]
pub struct SuppressionState {
    /// Rule id the allow names.
    pub rule: String,
    /// Line the allow sits on.
    pub line: u32,
    /// Did the per-file textual pass consume it?
    pub used_by_textual: bool,
}

/// One expanded `use` entry: `alias` names `path` in this file.
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    /// Local name the import binds (`as` alias or last segment).
    pub alias: String,
    /// Full path segments, `crate`/`self`/`super` already resolved
    /// against the owning module.
    pub path: Vec<String>,
    /// A `use path::*;` glob (alias is `*`).
    pub glob: bool,
}

/// What kind of guard a lock acquisition produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `.lock()` — always a Mutex acquisition.
    Lock,
    /// `.read()` — an RwLock acquisition *iff* the receiver is a
    /// declared RwLock name (the filter lives in [`crate::locks`]).
    Read,
    /// `.write()` — same filter as [`LockKind::Read`].
    Write,
}

impl LockKind {
    /// The method name that produced this kind.
    pub fn method(self) -> &'static str {
        match self {
            LockKind::Lock => "lock",
            LockKind::Read => "read",
            LockKind::Write => "write",
        }
    }
}

/// One lock acquisition and the extent its guard stays live.
#[derive(Debug, Clone, PartialEq)]
pub struct LockAcq {
    /// Receiver name: a field/local ident, or `f()` for a
    /// call-returned lock (`self.campaign_lock(id).lock()`).
    pub name: String,
    /// The local the guard is `let`-bound to, when it is (`let mut
    /// state = self.state.lock()` → `state`). Condvar waits name this
    /// binding to hand the guard back.
    pub bound: Option<String>,
    /// Which method acquired it.
    pub kind: LockKind,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// 1-based column of the acquisition.
    pub col: u32,
    /// Significant-token index of the acquisition site.
    pub tok: u32,
    /// Guard liveness as a half-open significant-token range
    /// `(tok, guard_end]`: bound guards run to the enclosing block
    /// close (or an explicit `drop(name)`), temporaries to the end of
    /// their statement.
    pub guard_end: u32,
}

/// A call expression inside a fn body.
#[derive(Debug, Clone, PartialEq)]
pub struct Call {
    /// Path segments for `a::b::f(…)` calls; empty for method calls.
    pub path: Vec<String>,
    /// Method name for `recv.m(…)` calls.
    pub method: Option<String>,
    /// Receiver name for method calls, where recoverable.
    pub recv: Option<String>,
    /// 1-based line of the call.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Significant-token index (for guard-range containment).
    pub tok: u32,
}

/// A determinism source or sink site inside a fn body.
#[derive(Debug, Clone, PartialEq)]
pub struct Mark {
    /// Human-readable description of the site (`Instant::now()`,
    /// `unordered iteration over jobs`, `println!`, …).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A potentially-blocking operation inside a fn body.
#[derive(Debug, Clone, PartialEq)]
pub struct Blocking {
    /// The operation (`recv`, `join`, `sleep`, …).
    pub what: String,
    /// For condvar `wait`/`wait_timeout`: the guard ident passed in —
    /// that lock is atomically *released* for the duration of the
    /// wait, so it is exempt from the held-while-blocking check.
    pub released: Option<String>,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Significant-token index (for guard-range containment).
    pub tok: u32,
}

/// Everything the semantic passes need to know about one fn.
#[derive(Debug, Clone, PartialEq)]
pub struct FnSummary {
    /// Fn name.
    pub name: String,
    /// `Self` type when the fn sits in an `impl` block.
    pub self_ty: Option<String>,
    /// In-file module path (`mod a { mod b { … } }` → `["a","b"]`),
    /// appended to the file's own module path.
    pub module: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Under `#[test]`/`#[cfg(test)]` — excluded from the graph.
    pub is_test: bool,
    /// Every call expression in the body.
    pub calls: Vec<Call>,
    /// Determinism sources (wall clock, entropy, hash iteration).
    pub sources: Vec<Mark>,
    /// Serialized-output sinks (`println!`, `write_atomic`,
    /// `serde_json::to_string*`, `.to_value()`).
    pub sinks: Vec<Mark>,
    /// Lock acquisitions with guard extents.
    pub locks: Vec<LockAcq>,
    /// Blocking operations.
    pub blocking: Vec<Blocking>,
}

/// The owned, cacheable analysis summary of one source file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileSummary {
    /// Workspace-relative path.
    pub relpath: String,
    /// Build role.
    pub class: FileClass,
    /// Lib-ident of the owning crate (`xps_serve`), folded into the
    /// cache hash so a moved file re-summarizes.
    pub crate_name: String,
    /// Module path of the file within its crate.
    pub module: Vec<String>,
    /// Expanded `use` entries.
    pub imports: Vec<Import>,
    /// Every fn item.
    pub fns: Vec<FnSummary>,
    /// Names declared with an `RwLock` type in this file.
    pub rwlock_names: Vec<String>,
    /// Every `xps-allow` with textual usage decided.
    pub suppressions: Vec<SuppressionState>,
    /// Unsuppressed findings of the per-file textual pass.
    pub textual: Vec<OwnedFinding>,
}

/// Idents that draw from ambient entropy (taint sources anywhere,
/// not just the generator crates).
const ENTROPY_TOKENS: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Methods that iterate a hash-ordered container in its (unordered)
/// internal order.
const HASH_ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Tokens that make a hash-iteration statement order-independent:
/// explicit sorts, order-erasing reductions, re-keying into ordered
/// containers, and point lookups/mutations that never observe
/// iteration order at all.
const ORDER_EXEMPT_TOKENS: [&str; 29] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sum",
    "product",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "count",
    "fold",
    "len",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "get",
    "get_mut",
    "extend",
    "retain",
    "any",
    "all",
];

/// Methods that block the calling thread (flagged while a guard is
/// live). `write_all`/`flush` are deliberately absent: journal writes
/// under the campaign lock are the serve engine's intended design.
const BLOCKING_METHODS: [&str; 11] = [
    "recv",
    "recv_timeout",
    "accept",
    "connect",
    "connect_timeout",
    "wait",
    "wait_timeout",
    "sleep",
    "park",
    "read_to_end",
    "read_to_string",
];

/// Keywords that can start a statement but never name a call.
const KEYWORDS: [&str; 30] = [
    "if", "else", "while", "for", "loop", "match", "return", "let", "fn", "pub", "mod", "use",
    "impl", "struct", "enum", "trait", "const", "static", "mut", "ref", "move", "in", "as",
    "break", "continue", "where", "unsafe", "dyn", "type", "await",
];

/// Summarize one file: lex, run the textual rule pass, and extract
/// the item/call/lock structure the semantic passes consume.
pub fn summarize_file(relpath: &str, class: FileClass, crate_name: &str, src: &str) -> FileSummary {
    let tokens = lex(src);
    let ctx = rules::file_ctx(relpath, class, &tokens);
    let textual = rules::lint_file_raw(&ctx)
        .into_iter()
        .map(|f| OwnedFinding {
            rule: f.rule.to_string(),
            line: f.line,
            col: f.col,
            severity: f.severity,
            message: f.message,
            suggestion: f.suggestion,
        })
        .collect();
    let suppressions = ctx
        .suppressions
        .iter()
        .map(|s| SuppressionState {
            rule: s.rule.clone(),
            line: s.line,
            used_by_textual: s.used.get(),
        })
        .collect();
    let module = module_path(relpath);
    let mut summary = FileSummary {
        relpath: relpath.to_string(),
        class,
        crate_name: crate_name.to_string(),
        module,
        imports: Vec::new(),
        fns: Vec::new(),
        rwlock_names: Vec::new(),
        suppressions,
        textual,
    };
    let hash_names = collect_typed_names(&ctx, &["HashMap", "HashSet"]);
    summary.rwlock_names = collect_typed_names(&ctx, &["RwLock"]);
    parse_items(&ctx, &hash_names, &mut summary);
    summary
}

/// The module path a file occupies within its crate, derived from its
/// workspace-relative path: `crates/serve/src/client.rs` → `[client]`,
/// `src/bin/repro.rs` → `[bin, repro]`, `tests/daemon.rs` →
/// `[tests, daemon]`. Hyphens become underscores (binary names).
pub fn module_path(relpath: &str) -> Vec<String> {
    let comps: Vec<&str> = relpath.split('/').collect();
    // Everything after `src/`, or after the crate dir for tests/
    // benches/examples trees.
    let tail: &[&str] = if let Some(src) = comps.iter().position(|&c| c == "src") {
        &comps[src + 1..]
    } else if let Some(t) = comps
        .iter()
        .position(|&c| matches!(c, "tests" | "benches" | "examples"))
    {
        &comps[t..]
    } else {
        &comps[..]
    };
    let mut out = Vec::new();
    for (i, c) in tail.iter().enumerate() {
        let last = i + 1 == tail.len();
        if last {
            let stem = c.strip_suffix(".rs").unwrap_or(c);
            if stem != "lib" && stem != "mod" && stem != "main" {
                out.push(stem.replace('-', "_"));
            }
        } else {
            out.push(c.replace('-', "_"));
        }
    }
    out
}

/// Names declared anywhere in the file with a type mentioning one of
/// `type_names` — struct fields (`name: Arc<Mutex<…>>`), statics, and
/// annotated lets — plus, for hash containers, `let name =
/// HashMap::new()`-style initializations.
fn collect_typed_names(ctx: &FileCtx<'_>, type_names: &[&str]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for i in 0..ctx.len() {
        // `name :` followed by a type span mentioning the target.
        if ctx.tok(i).is_some_and(|t| is_ident(t.text()))
            && ctx.is(i + 1, ":")
            && !ctx.is(i + 2, ":")
            && !ctx.is(i.wrapping_sub(1), ":")
        {
            let mut depth = 0i32;
            let mut j = i + 2;
            while let Some(t) = ctx.tok(j) {
                match t.text() {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    "," | ";" | "=" | "{" | "}" if depth == 0 => break,
                    text if type_names.contains(&text) => {
                        names.push(ctx.tok(i).map(|t| t.text().to_string()).unwrap_or_default());
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // `let [mut] name = HashMap::new()` / `with_capacity` /
        // `default`.
        if ctx.tok(i).is_some_and(|t| type_names.contains(&t.text()))
            && ctx.is(i + 1, ":")
            && ctx.is(i + 2, ":")
            && ctx
                .tok(i + 3)
                .is_some_and(|t| matches!(t.text(), "new" | "with_capacity" | "default"))
            && ctx.is(i.wrapping_sub(1), "=")
        {
            let mut k = i.wrapping_sub(2);
            // Skip back over a `: Type` annotation if present.
            while k > 0 && !ctx.is(k.wrapping_sub(1), "let") && !ctx.is(k, "let") {
                if ctx.tok(k).is_some_and(|t| is_ident(t.text()))
                    && (ctx.is(k.wrapping_sub(1), "let") || ctx.is(k.wrapping_sub(1), "mut"))
                {
                    break;
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            if let Some(t) = ctx.tok(k) {
                if is_ident(t.text()) {
                    names.push(t.text().to_string());
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        && !KEYWORDS.contains(&s)
        && s != "self"
        && s != "Self"
        && s != "super"
        && s != "crate"
}

/// One item scope on the stack during the walk.
enum Scope {
    Mod(String, usize),
    Impl(Option<String>, usize),
}

impl Scope {
    fn close(&self) -> usize {
        match self {
            Scope::Mod(_, c) | Scope::Impl(_, c) => *c,
        }
    }
}

/// The single forward walk: items (mod/impl/use/fn) at any nesting
/// depth, fn bodies scanned for calls/marks/locks on the spot.
fn parse_items(ctx: &FileCtx<'_>, hash_names: &[String], out: &mut FileSummary) {
    let mut stack: Vec<Scope> = Vec::new();
    let mut i = 0usize;
    while i < ctx.len() {
        while stack.last().is_some_and(|s| i > s.close()) {
            stack.pop();
        }
        if ctx.is(i, "mod") && ctx.tok(i + 1).is_some_and(|t| is_ident(t.text())) {
            if ctx.is(i + 2, "{") {
                let name = ctx
                    .tok(i + 1)
                    .map(|t| t.text().to_string())
                    .unwrap_or_default();
                stack.push(Scope::Mod(name, ctx.matching_close(i + 2)));
                i += 3;
            } else {
                i += 2; // `mod x;` — the target file is walked separately.
            }
            continue;
        }
        if ctx.is(i, "impl") {
            let mut j = i + 1;
            while j < ctx.len() && !ctx.is(j, "{") && !ctx.is(j, ";") {
                j += 1;
            }
            if ctx.is(j, "{") {
                stack.push(Scope::Impl(impl_self_ty(ctx, i, j), ctx.matching_close(j)));
                i = j + 1;
            } else {
                i = j + 1;
            }
            continue;
        }
        if ctx.is(i, "use") && !ctx.is(i.wrapping_sub(1), ":") {
            i = parse_use(ctx, i + 1, &module_of(&stack, out), out);
            continue;
        }
        if ctx.is(i, "fn") && ctx.tok(i + 1).is_some_and(|t| is_ident(t.text())) {
            let Some((name, line, col)) = ctx
                .tok(i + 1)
                .map(|t| (t.text().to_string(), t.line(), t.col()))
            else {
                i += 1;
                continue;
            };
            let mut j = i + 2;
            while j < ctx.len() && !ctx.is(j, "{") && !ctx.is(j, ";") {
                j += 1;
            }
            if ctx.is(j, "{") {
                let close = ctx.matching_close(j);
                let mut f = FnSummary {
                    name,
                    self_ty: stack
                        .iter()
                        .rev()
                        .find_map(|s| match s {
                            Scope::Impl(ty, _) => Some(ty.clone()),
                            Scope::Mod(..) => None,
                        })
                        .flatten(),
                    module: module_of(&stack, out),
                    line,
                    col,
                    is_test: ctx.in_test(i),
                    calls: Vec::new(),
                    sources: Vec::new(),
                    sinks: Vec::new(),
                    locks: Vec::new(),
                    blocking: Vec::new(),
                };
                scan_body(ctx, j, close, hash_names, &mut f);
                out.fns.push(f);
                i = close + 1;
            } else {
                i = j + 1; // trait method declaration
            }
            continue;
        }
        i += 1;
    }
}

fn module_of(stack: &[Scope], file: &FileSummary) -> Vec<String> {
    let mut m = file.module.clone();
    for s in stack {
        if let Scope::Mod(name, _) = s {
            m.push(name.clone());
        }
    }
    m
}

/// The `Self` type of an `impl` header: the first type ident after
/// `for` if present, else the first type ident after the generics.
fn impl_self_ty(ctx: &FileCtx<'_>, start: usize, open: usize) -> Option<String> {
    let range: Vec<usize> = (start + 1..open).collect();
    let mut depth = 0i32;
    let mut after_for: Option<String> = None;
    let mut first: Option<String> = None;
    let mut saw_for = false;
    for &k in &range {
        let Some(t) = ctx.tok(k) else { continue };
        match t.text() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "for" if depth == 0 => saw_for = true,
            "where" if depth == 0 => break,
            text if depth == 0 && is_ident(text) => {
                if saw_for {
                    if after_for.is_none() {
                        after_for = Some(text.to_string());
                    }
                } else if first.is_none() {
                    first = Some(text.to_string());
                }
            }
            _ => {}
        }
    }
    after_for.or(first)
}

/// Parse one `use` tree starting after the `use` keyword; returns the
/// index after the terminating `;`. Prefixes `crate`/`self`/`super`
/// resolve against the owning module.
fn parse_use(ctx: &FileCtx<'_>, start: usize, module: &[String], out: &mut FileSummary) -> usize {
    let mut end = start;
    while end < ctx.len() && !ctx.is(end, ";") {
        end += 1;
    }
    let mut prefix: Vec<String> = Vec::new();
    collect_use_tree(ctx, start, end, &mut prefix, module, out);
    end + 1
}

fn resolve_prefix(seg: &str, module: &[String], out: &FileSummary) -> Vec<String> {
    match seg {
        "crate" => vec![out.crate_name.clone()],
        "self" => {
            let mut p = vec![out.crate_name.clone()];
            p.extend(module.iter().cloned());
            p
        }
        "super" => {
            let mut p = vec![out.crate_name.clone()];
            p.extend(module.iter().cloned());
            p.pop();
            p
        }
        other => vec![other.to_string()],
    }
}

/// Walk the token slice of one use (sub)tree, appending imports.
fn collect_use_tree(
    ctx: &FileCtx<'_>,
    mut i: usize,
    end: usize,
    prefix: &mut Vec<String>,
    module: &[String],
    out: &mut FileSummary,
) {
    let base_len = prefix.len();
    while i < end {
        let Some(t) = ctx.tok(i) else { break };
        match t.text() {
            "{" => {
                // Each comma-separated subtree restarts from the
                // current prefix.
                let close = ctx.matching_close(i).min(end);
                let mut j = i + 1;
                while j < close {
                    let mut depth = 0i32;
                    let mut k = j;
                    while k < close {
                        match ctx.tok(k).map(|t| t.text()) {
                            Some("{") => depth += 1,
                            Some("}") => depth -= 1,
                            Some(",") if depth == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    let mut sub = prefix.clone();
                    collect_use_tree(ctx, j, k, &mut sub, module, out);
                    j = k + 1;
                }
                prefix.truncate(base_len);
                return;
            }
            "*" => {
                out.imports.push(Import {
                    alias: "*".to_string(),
                    path: prefix.clone(),
                    glob: true,
                });
                prefix.truncate(base_len);
                return;
            }
            ":" => {
                i += 1; // half of `::`
            }
            "as" => {
                if let Some(a) = ctx.tok(i + 1) {
                    out.imports.push(Import {
                        alias: a.text().to_string(),
                        path: prefix.clone(),
                        glob: false,
                    });
                }
                prefix.truncate(base_len);
                return;
            }
            "," | "pub" => {
                i += 1;
            }
            seg => {
                if prefix.len() == base_len && base_len == 0 {
                    prefix.extend(resolve_prefix(seg, module, out));
                } else {
                    prefix.push(seg.to_string());
                }
                i += 1;
            }
        }
    }
    // Tree ended on a plain segment: alias = last segment.
    if prefix.len() > base_len || (base_len > 0 && prefix.len() == base_len) {
        if let Some(last) = prefix.last().cloned() {
            out.imports.push(Import {
                alias: last,
                path: prefix.clone(),
                glob: false,
            });
        }
    }
    prefix.truncate(base_len);
}

/// Scan one fn body `(open, close)` for calls, determinism marks,
/// lock acquisitions, and blocking operations.
fn scan_body(
    ctx: &FileCtx<'_>,
    open: usize,
    close: usize,
    hash_names: &[String],
    f: &mut FnSummary,
) {
    let mut k = open + 1;
    while k < close {
        let Some(t) = ctx.tok(k) else { break };
        let (line, col) = (t.line(), t.col());
        // Macro invocation: `name ! (`.
        if is_ident(t.text()) && ctx.is(k + 1, "!") {
            if matches!(t.text(), "println" | "print") {
                f.sinks.push(Mark {
                    what: format!("{}!", t.text()),
                    line,
                    col,
                });
            }
            k += 2;
            continue;
        }
        // Ambient entropy idents are sources wherever they appear.
        if ENTROPY_TOKENS.contains(&t.text()) {
            f.sources.push(Mark {
                what: format!("`{}` (ambient entropy)", t.text()),
                line,
                col,
            });
            k += 1;
            continue;
        }
        // Path or bare call: IDENT (:: IDENT)* [::<…>] (
        if (is_ident(t.text()) || matches!(t.text(), "self" | "Self" | "crate" | "super"))
            && !ctx.is(k.wrapping_sub(1), ".")
            && !ctx.is(k.wrapping_sub(1), "fn")
            && !(ctx.is(k.wrapping_sub(1), ":") && ctx.is(k.wrapping_sub(2), ":"))
        {
            let mut segs = vec![t.text().to_string()];
            let mut j = k + 1;
            while ctx.is(j, ":") && ctx.is(j + 1, ":") {
                if ctx.is(j + 2, "<") {
                    // turbofish: skip to the matching `>`
                    let mut depth = 0i32;
                    let mut m = j + 2;
                    while m < close {
                        match ctx.tok(m).map(|t| t.text()) {
                            Some("<") => depth += 1,
                            Some(">") => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    j = m + 1;
                    break;
                }
                match ctx.tok(j + 2) {
                    Some(s) if is_ident(s.text()) || matches!(s.text(), "self" | "Self") => {
                        segs.push(s.text().to_string());
                        j += 3;
                    }
                    _ => break,
                }
            }
            if ctx.is(j, "(") {
                if segs.len() > 1 || is_ident(&segs[0]) {
                    record_path_call(ctx, k, &segs, line, col, hash_names, f);
                }
                k = j + 1;
                continue;
            }
        }
        // Method call: `. IDENT (`.
        if t.text() == "."
            && ctx.tok(k + 1).is_some_and(|m| is_ident(m.text()))
            && ctx.is(k + 2, "(")
        {
            let m = ctx
                .tok(k + 1)
                .map(|t| t.text().to_string())
                .unwrap_or_default();
            let (mline, mcol) = ctx
                .tok(k + 1)
                .map(|t| (t.line(), t.col()))
                .unwrap_or((line, col));
            let recv = receiver_name(ctx, k);
            record_method_call(ctx, open, close, k, &m, recv, mline, mcol, hash_names, f);
            k += 3;
            continue;
        }
        // `for PAT in <hash> {` — iteration in hash order.
        if t.text() == "for" {
            let mut j = k + 1;
            while j < close && !ctx.is(j, "in") {
                j += 1;
            }
            let mut h = j + 1;
            while h < close && !ctx.is(h, "{") {
                if let Some(ht) = ctx.tok(h) {
                    // Direct iteration only (`in &s.jobs {`): a
                    // `.iter()`-style header is marked by the
                    // method-call path instead.
                    if hash_names.contains(&ht.text().to_string())
                        && !ctx.is(h + 1, ".")
                        && !span_is_order_exempt(ctx, h)
                    {
                        f.sources.push(Mark {
                            what: format!("iteration over `{}` in hash order", ht.text()),
                            line: ht.line(),
                            col: ht.col(),
                        });
                        break;
                    }
                }
                h += 1;
            }
        }
        k += 1;
    }
}

/// Does the statement around token `i` neutralize iteration order
/// (sort, reduction, re-keying into an ordered container, point
/// lookup)?
fn span_is_order_exempt(ctx: &FileCtx<'_>, i: usize) -> bool {
    let span = rules::statement_span(ctx, i);
    if span.clone().any(|k| {
        ctx.tok(k)
            .is_some_and(|t| ORDER_EXEMPT_TOKENS.contains(&t.text()))
    }) {
        return true;
    }
    // Collect-then-sort: `let NAME = <hash>.iter()….collect(); NAME.sort…();`
    // normalizes the order before anything observes it.
    if ctx.is(span.start, "let") {
        let mut n = span.start + 1;
        if ctx.is(n, "mut") {
            n += 1;
        }
        if let Some(name) = ctx.tok(n).map(|t| t.text().to_string()) {
            if ctx.is(span.end, &name)
                && ctx.is(span.end + 1, ".")
                && ctx
                    .tok(span.end + 2)
                    .is_some_and(|t| t.text().starts_with("sort"))
            {
                return true;
            }
        }
    }
    false
}

/// Record a resolved-path (or bare-ident) call plus any source/sink/
/// blocking classification it implies.
fn record_path_call(
    ctx: &FileCtx<'_>,
    k: usize,
    segs: &[String],
    line: u32,
    col: u32,
    _hash_names: &[String],
    f: &mut FnSummary,
) {
    let n = segs.len();
    let last = segs[n - 1].as_str();
    // Wall-clock sources (outside test regions — test fns are dropped
    // from the graph anyway, but marks inside `#[cfg(test)]` blocks of
    // lib files must not taint the enclosing file).
    if last == "now"
        && n >= 2
        && matches!(segs[n - 2].as_str(), "Instant" | "SystemTime")
        && !ctx.in_test(k)
    {
        f.sources.push(Mark {
            what: format!("`{}::now()` (wall clock)", segs[n - 2]),
            line,
            col,
        });
    }
    // Serialization sinks.
    if n >= 2
        && segs[n - 2] == "serde_json"
        && matches!(last, "to_string" | "to_string_pretty" | "to_writer")
    {
        f.sinks.push(Mark {
            what: format!("serde_json::{last}"),
            line,
            col,
        });
    }
    if last == "write_atomic" {
        f.sinks.push(Mark {
            what: "write_atomic".to_string(),
            line,
            col,
        });
    }
    // Blocking free functions (`thread::sleep`, `park`, …).
    if BLOCKING_METHODS.contains(&last) {
        f.blocking.push(Blocking {
            what: last.to_string(),
            released: None,
            line,
            col,
            tok: k as u32,
        });
    }
    f.calls.push(Call {
        path: segs.to_vec(),
        method: None,
        recv: None,
        line,
        col,
        tok: k as u32,
    });
}

/// Record a `.m(…)` call plus lock/blocking/iteration classification.
#[allow(clippy::too_many_arguments)]
fn record_method_call(
    ctx: &FileCtx<'_>,
    open: usize,
    close: usize,
    k: usize,
    m: &str,
    recv: Option<String>,
    line: u32,
    col: u32,
    hash_names: &[String],
    f: &mut FnSummary,
) {
    // Lock acquisitions.
    let lock_kind = match m {
        "lock" => Some(LockKind::Lock),
        "read" => Some(LockKind::Read),
        "write" => Some(LockKind::Write),
        _ => None,
    };
    if let (Some(kind), Some(name)) = (lock_kind, recv.clone()) {
        let (end, bound) = guard_extent(ctx, open, close, k);
        f.locks.push(LockAcq {
            name,
            bound,
            kind,
            line,
            col,
            tok: k as u32,
            guard_end: end as u32,
        });
    }
    // Blocking methods; `.join()` only with zero args (thread join,
    // not `Path::join(seg)`).
    if BLOCKING_METHODS.contains(&m) || (m == "join" && ctx.is(k + 3, ")")) {
        // `cv.wait_timeout(guard, …)` releases `guard` while waiting.
        let released = if matches!(m, "wait" | "wait_timeout") {
            ctx.tok(k + 3)
                .filter(|t| is_ident(t.text()))
                .map(|t| t.text().to_string())
        } else {
            None
        };
        f.blocking.push(Blocking {
            what: m.to_string(),
            released,
            line,
            col,
            tok: k as u32,
        });
    }
    // Hash-order iteration.
    if HASH_ITER_METHODS.contains(&m) {
        if let Some(name) = &recv {
            if hash_names.contains(name) && !span_is_order_exempt(ctx, k) && !ctx.in_test(k) {
                f.sources.push(Mark {
                    what: format!("iteration over `{name}` in hash order"),
                    line,
                    col,
                });
            }
        }
    }
    // Serialization sinks.
    if matches!(m, "to_value" | "serialize") {
        f.sinks.push(Mark {
            what: format!(".{m}()"),
            line,
            col,
        });
    }
    f.calls.push(Call {
        path: Vec::new(),
        method: Some(m.to_string()),
        recv,
        line,
        col,
        tok: k as u32,
    });
}

/// The receiver name of the method call whose `.` sits at `dot`:
/// the ident before the dot (skipping one level of `self.`), `f()`
/// for a call-returned receiver, or the indexed base for `x[i]`.
fn receiver_name(ctx: &FileCtx<'_>, dot: usize) -> Option<String> {
    let before = dot.checked_sub(1)?;
    let t = ctx.tok(before)?;
    if is_ident(t.text()) {
        return Some(t.text().to_string());
    }
    if t.text() == "self" {
        return Some("self".to_string());
    }
    if t.text() == ")" || t.text() == "]" {
        let (open_s, close_s) = if t.text() == ")" {
            ("(", ")")
        } else {
            ("[", "]")
        };
        let mut depth = 0i32;
        let mut j = before;
        loop {
            let tj = ctx.tok(j)?;
            if tj.text() == close_s {
                depth += 1;
            } else if tj.text() == open_s {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j = j.checked_sub(1)?;
        }
        let base = ctx.tok(j.checked_sub(1)?)?;
        if is_ident(base.text()) {
            return if t.text() == ")" {
                Some(format!("{}()", base.text()))
            } else {
                Some(base.text().to_string())
            };
        }
    }
    None
}

/// Where the guard produced by the acquisition at `dot` dies, plus
/// its `let`-bound name when it has one:
/// * `let NAME = …` — the enclosing block's close, or an explicit
///   `drop(NAME)` before it;
/// * `let _ = …` / no binding — the end of the statement (temporary
///   guards drop at the semicolon).
fn guard_extent(
    ctx: &FileCtx<'_>,
    open: usize,
    close: usize,
    dot: usize,
) -> (usize, Option<String>) {
    let stmt = rules::statement_span(ctx, dot);
    let bound_name: Option<String> = if ctx.is(stmt.start, "let") {
        let mut n = stmt.start + 1;
        if ctx.is(n, "mut") {
            n += 1;
        }
        match ctx.tok(n) {
            Some(t) if is_ident(t.text()) => Some(t.text().to_string()),
            _ => None,
        }
    } else {
        None
    };
    match bound_name.clone() {
        Some(name) => {
            // Innermost block enclosing the acquisition.
            let mut stack: Vec<usize> = Vec::new();
            let mut j = open;
            while j < dot {
                if ctx.is(j, "{") {
                    stack.push(ctx.matching_close(j));
                } else if ctx.is(j, "}") {
                    stack.pop();
                }
                j += 1;
            }
            let block_close = stack.last().copied().unwrap_or(close);
            // An explicit `drop(name)` ends the guard early.
            for d in dot..block_close {
                if ctx.is(d, "drop")
                    && ctx.is(d + 1, "(")
                    && ctx.is(d + 2, &name)
                    && ctx.is(d + 3, ")")
                {
                    return (d + 3, bound_name);
                }
            }
            (block_close, bound_name)
        }
        // Temporary guard: dead at the statement's own terminator
        // (the token *before* `stmt.end`, which is exclusive).
        None => (stmt.end.saturating_sub(1).min(close), None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summarize(src: &str) -> FileSummary {
        summarize_file("crates/x/src/lib.rs", FileClass::Lib, "xps_x", src)
    }

    #[test]
    fn fn_items_carry_module_and_impl_context() {
        let s = summarize(
            "mod inner {\n\
                 struct Engine;\n\
                 impl Engine {\n\
                     fn run(&self) { helper(); }\n\
                 }\n\
                 fn helper() {}\n\
             }\n",
        );
        let names: Vec<(String, Option<String>, Vec<String>)> = s
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.self_ty.clone(), f.module.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                (
                    "run".to_string(),
                    Some("Engine".to_string()),
                    vec!["inner".to_string()]
                ),
                ("helper".to_string(), None, vec!["inner".to_string()]),
            ]
        );
        assert_eq!(s.fns[0].calls.len(), 1);
        assert_eq!(s.fns[0].calls[0].path, vec!["helper".to_string()]);
    }

    #[test]
    fn use_trees_expand_groups_aliases_and_globs() {
        let s =
            summarize("use crate::a::{b, c as d, e::f};\nuse std::collections::*;\nfn g() {}\n");
        let have: Vec<(String, Vec<String>, bool)> = s
            .imports
            .iter()
            .map(|i| (i.alias.clone(), i.path.clone(), i.glob))
            .collect();
        assert_eq!(
            have,
            vec![
                (
                    "b".to_string(),
                    vec!["xps_x".into(), "a".into(), "b".into()],
                    false
                ),
                (
                    "d".to_string(),
                    vec!["xps_x".into(), "a".into(), "c".into()],
                    false
                ),
                (
                    "f".to_string(),
                    vec!["xps_x".into(), "a".into(), "e".into(), "f".into()],
                    false
                ),
                (
                    "*".to_string(),
                    vec!["std".into(), "collections".into()],
                    true
                ),
            ]
        );
    }

    #[test]
    fn sources_and_sinks_are_marked() {
        let s = summarize(
            "fn stamp() -> u64 { let t = SystemTime::now(); 0 }\n\
             fn emit(v: &V) { println!(\"{}\", serde_json::to_string(v)); }\n",
        );
        assert_eq!(s.fns[0].sources.len(), 1);
        assert!(s.fns[0].sources[0].what.contains("SystemTime::now"));
        let sinks: Vec<&str> = s.fns[1].sinks.iter().map(|m| m.what.as_str()).collect();
        assert_eq!(sinks, vec!["println!", "serde_json::to_string"]);
    }

    #[test]
    fn wallclock_in_test_region_is_not_a_source() {
        let s = summarize("#[cfg(test)]\nmod tests {\n    fn t() { let x = Instant::now(); }\n}\n");
        assert!(s.fns[0].is_test);
        assert!(s.fns[0].sources.is_empty());
    }

    #[test]
    fn hash_iteration_is_a_source_unless_order_exempt() {
        let s = summarize(
            "struct S { jobs: HashMap<String, u32> }\n\
             fn bad(s: &S) { for (k, v) in s.jobs.iter() { emit(k, v); } }\n\
             fn fine(s: &S) { let n: u32 = s.jobs.values().sum(); }\n\
             fn rekey(s: &S) { let m: BTreeMap<_, _> = s.jobs.iter().collect(); }\n\
             fn norm(s: &S) {\n\
                 let mut ids: Vec<&String> = s.jobs.values().map(|j| &j.id).collect();\n\
                 ids.sort();\n\
             }\n",
        );
        assert_eq!(s.fns[0].sources.len(), 1, "{:?}", s.fns[0].sources);
        assert!(s.fns[0].sources[0].what.contains("jobs"));
        assert!(s.fns[1].sources.is_empty(), "{:?}", s.fns[1].sources);
        assert!(s.fns[2].sources.is_empty(), "{:?}", s.fns[2].sources);
        // Collect-then-sort normalizes the order before use.
        assert!(s.fns[3].sources.is_empty(), "{:?}", s.fns[3].sources);
    }

    #[test]
    fn lock_guard_extends_to_block_close_for_bound_guards() {
        let s = summarize(
            "struct S { state: Mutex<u32> }\n\
             fn f(s: &S) {\n\
                 let g = s.state.lock();\n\
                 work();\n\
             }\n\
             fn h(s: &S) { s.state.lock(); tail(); }\n",
        );
        let bound = &s.fns[0].locks[0];
        assert_eq!(bound.name, "state");
        assert_eq!(bound.kind, LockKind::Lock);
        // `work()` falls inside the bound guard's range…
        let work_tok = s.fns[0]
            .calls
            .iter()
            .find(|c| c.path == ["work"])
            .unwrap()
            .tok;
        assert!((bound.tok..=bound.guard_end).contains(&work_tok));
        // …but `tail()` falls outside the temporary guard's.
        let temp = &s.fns[1].locks[0];
        let tail_tok = s.fns[1]
            .calls
            .iter()
            .find(|c| c.path == ["tail"])
            .unwrap()
            .tok;
        assert!(tail_tok > temp.guard_end);
    }

    #[test]
    fn drop_ends_a_bound_guard_early() {
        let s = summarize(
            "struct S { state: Mutex<u32> }\n\
             fn f(s: &S) {\n\
                 let g = s.state.lock();\n\
                 early();\n\
                 drop(g);\n\
                 late();\n\
             }\n",
        );
        let l = &s.fns[0].locks[0];
        let early = s.fns[0]
            .calls
            .iter()
            .find(|c| c.path == ["early"])
            .unwrap()
            .tok;
        let late = s.fns[0]
            .calls
            .iter()
            .find(|c| c.path == ["late"])
            .unwrap()
            .tok;
        assert!(early <= l.guard_end && late > l.guard_end);
    }

    #[test]
    fn call_returned_receiver_gets_pseudo_name() {
        let s = summarize("fn f(e: &Engine) { let g = e.campaign_lock(id).lock(); }\n");
        assert_eq!(s.fns[0].locks[0].name, "campaign_lock()");
    }

    #[test]
    fn join_is_blocking_only_with_zero_args() {
        let s = summarize("fn f(h: Handle, p: &Path) { h.join(); let q = p.join(\"x\"); }\n");
        let what: Vec<&str> = s.fns[0].blocking.iter().map(|b| b.what.as_str()).collect();
        assert_eq!(what, vec!["join"]);
    }

    #[test]
    fn rwlock_names_are_collected() {
        let s =
            summarize("struct S { table: Arc<RwLock<Vec<u32>>>, plain: Mutex<u32> }\nfn f() {}\n");
        assert_eq!(s.rwlock_names, vec!["table".to_string()]);
    }

    #[test]
    fn module_paths_from_relpaths() {
        assert!(module_path("crates/serve/src/lib.rs").is_empty());
        assert_eq!(module_path("crates/serve/src/client.rs"), vec!["client"]);
        assert_eq!(
            module_path("crates/bench/src/bin/repro.rs"),
            vec!["bin", "repro"]
        );
        assert_eq!(
            module_path("crates/serve/tests/daemon.rs"),
            vec!["tests", "daemon"]
        );
        assert_eq!(module_path("src/lib.rs"), Vec::<String>::new());
    }
}
