//! The lint-rule registry and the rules themselves.
//!
//! Each rule encodes an invariant this repository's guarantees already
//! depend on (bit-identical parallel output, byte-identical resume,
//! checksummed atomic persistence) but which was previously enforced
//! only by convention:
//!
//! | rule id | invariant |
//! |---------|-----------|
//! | `no-raw-fs-write` | data-path writes go through the shared atomic helper |
//! | `no-unwrap-in-lib` | library code fails through the typed error hierarchy |
//! | `no-panic-in-worker` | worker closures stay inside the `catch_unwind` boundary |
//! | `no-alloc-in-sim-hot-path` | the cycle engine's per-op step stays free of hash lookups and heap allocation |
//! | `net-timeouts-and-bounded-retries` | outbound connections carry deadlines; retry loops are bounded |
//! | `seeded-rng-only-in-generators` | the workload generators draw randomness only from derived seeds, never ambient entropy or wall time |
//! | `malformed-suppression` | every `xps-allow` carries a rule id and a reason |
//!
//! Two further rules — `determinism-provenance` and `lock-discipline`
//! — are *semantic*: they run over the cross-crate call graph built by
//! [`crate::parse`]/[`crate::graph`] rather than over one file's
//! tokens, and subsume the former textual determinism rules
//! (`no-wallclock-in-deterministic-paths`,
//! `no-unordered-iteration-to-output`). Their metadata lives in
//! [`semantic_rules`] so the catalog and the suppression validator see
//! one registry.
//!
//! Suppression: a finding on line *L* is suppressed by a comment
//! `// xps-allow(rule-id): reason` on line *L* or *L − 1*. The reason
//! is mandatory — an allow without one is itself a (deny) finding, so
//! the tree can never accumulate unexplained exemptions. Unused
//! suppressions are reported at warn severity.

use crate::diag::{Finding, Severity};
use crate::lexer::{Token, TokenKind};

/// How a file participates in the build — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `src/**` of a crate (excluding `src/bin`): library code.
    Lib,
    /// `src/bin/**`: a binary entry point (CLI code).
    Bin,
    /// `tests/**`, `benches/**`: test harness code.
    Test,
    /// `examples/**`: demonstration code.
    Example,
}

/// One rule of the registry.
pub struct Rule {
    /// Stable id, used in diagnostics and `xps-allow`.
    pub id: &'static str,
    /// Deny fails the run; warn is advisory.
    pub severity: Severity,
    /// One-line description for the rule catalog.
    pub summary: &'static str,
    /// Which file classes the rule examines.
    pub applies_to: &'static [FileClass],
    check: fn(&FileCtx<'_>, &Rule, &mut Vec<Finding>),
}

/// Every registered rule, in catalog order.
pub fn all_rules() -> Vec<Rule> {
    vec![
        Rule {
            id: "no-raw-fs-write",
            severity: Severity::Deny,
            summary: "direct std::fs::write/File::create instead of the shared \
                      atomic temp+rename+checksum helper",
            applies_to: &[FileClass::Lib, FileClass::Bin],
            check: check_raw_fs_write,
        },
        Rule {
            id: "no-unwrap-in-lib",
            severity: Severity::Deny,
            summary: ".unwrap()/.expect() in non-test library code instead of \
                      the typed error hierarchy",
            applies_to: &[FileClass::Lib],
            check: check_unwrap,
        },
        Rule {
            id: "no-panic-in-worker",
            severity: Severity::Deny,
            summary: "panicking macros inside thread-spawn closures outside \
                      the catch_unwind boundary",
            applies_to: &[FileClass::Lib, FileClass::Bin],
            check: check_panic_in_worker,
        },
        Rule {
            id: "no-alloc-in-sim-hot-path",
            severity: Severity::Deny,
            summary: "HashMap/HashSet access or heap allocation inside the cycle \
                      engine's per-op `fn step` (crates/sim/src/engine.rs)",
            applies_to: &[FileClass::Lib],
            check: check_sim_hot_path,
        },
        Rule {
            id: "net-timeouts-and-bounded-retries",
            severity: Severity::Deny,
            summary: "TcpStream::connect without a deadline, connections used \
                      without a read timeout, or infinite retry loops around \
                      network I/O",
            applies_to: &[FileClass::Lib, FileClass::Bin],
            check: check_net_timeouts,
        },
        Rule {
            id: "seeded-rng-only-in-generators",
            severity: Severity::Deny,
            summary: "ambient entropy (thread_rng/from_entropy/OsRng/getrandom) or \
                      wall-clock seeding inside the workload generator crates \
                      (crates/workload, crates/scenario), tests included",
            applies_to: &[
                FileClass::Lib,
                FileClass::Bin,
                FileClass::Test,
                FileClass::Example,
            ],
            check: check_seeded_rng,
        },
    ]
}

/// Metadata of a whole-workspace semantic pass. Unlike a [`Rule`],
/// a semantic rule is not a per-file token check: it runs over the
/// cross-crate call graph ([`crate::taint`], [`crate::locks`]) and its
/// findings may cite chains spanning many files. It still shares the
/// suppression mechanism (an `xps-allow` at the finding's anchor
/// line) and the catalog.
pub struct SemanticRule {
    /// Stable id, used in diagnostics and `xps-allow`.
    pub id: &'static str,
    /// Deny fails the run; warn is advisory.
    pub severity: Severity,
    /// One-line description for the rule catalog.
    pub summary: &'static str,
}

/// The whole-workspace semantic passes, in catalog order.
pub fn semantic_rules() -> Vec<SemanticRule> {
    vec![
        SemanticRule {
            id: "determinism-provenance",
            severity: Severity::Deny,
            summary: "a wall-clock read, ambient entropy draw, or unordered \
                      HashMap/HashSet iteration connected to serialized output \
                      through the cross-crate call graph (diagnostic prints the \
                      full call chain)",
        },
        SemanticRule {
            id: "lock-discipline",
            severity: Severity::Deny,
            summary: "lock-order inversions (potential deadlock cycles) in the \
                      cross-crate lock-acquisition-order graph, and blocking \
                      operations (socket IO, recv, join, sleep) performed while \
                      a Mutex/RwLock guard is live",
        },
    ]
}

/// Rule ids that may appear in an `xps-allow`: the textual rules, the
/// semantic passes, and the artifact checker's ids (an artifact
/// fixture cannot carry Rust comments, but the id must still be
/// recognized as real when mentioned). Anything else in an allow is a
/// deny finding — an unknown id suppresses nothing and must not sit
/// in the tree looking like it does.
pub fn known_rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = all_rules().iter().map(|r| r.id).collect();
    ids.extend(semantic_rules().iter().map(|r| r.id));
    ids.extend(crate::artifact::RULE_IDS);
    ids
}

/// Map a rule id back to its registry's `&'static str` — the identity
/// every [`Finding`] carries. Used when findings round-trip through
/// the incremental cache, where ids arrive as parsed strings.
pub fn static_rule_id(id: &str) -> Option<&'static str> {
    known_rule_ids()
        .into_iter()
        .chain(["malformed-suppression", "unused-suppression"])
        .find(|k| *k == id)
}

/// The rule catalog as a markdown table: every textual rule, semantic
/// pass, artifact check, and meta rule, with severity and summary.
/// `xps-analyze --catalog` prints exactly this, and the committed
/// README/DESIGN sections are generated from it (CI diffs them).
pub fn catalog_markdown() -> String {
    fn squash(s: &str) -> String {
        s.split_whitespace().collect::<Vec<_>>().join(" ")
    }
    let mut out = String::from("| rule | severity | checks |\n|---|---|---|\n");
    for r in all_rules() {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            r.id,
            r.severity.label(),
            squash(r.summary)
        ));
    }
    for r in semantic_rules() {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            r.id,
            r.severity.label(),
            squash(r.summary)
        ));
    }
    for (id, summary) in crate::artifact::RULE_SUMMARIES {
        out.push_str(&format!("| `{id}` | deny | {} |\n", squash(summary)));
    }
    out.push_str(
        "| `malformed-suppression` | deny | an `xps-allow` without a rule id, naming an \
         unknown rule id, missing its mandatory reason, or hidden in a block comment |\n",
    );
    out.push_str(
        "| `unused-suppression` | warn | an `xps-allow` that no longer suppresses \
         anything on its own or the next line |\n",
    );
    out
}

/// A parsed `// xps-allow(rule-id): reason` comment.
#[derive(Debug, Clone)]
pub(crate) struct Suppression {
    pub(crate) rule: String,
    pub(crate) line: u32,
    pub(crate) used: std::cell::Cell<bool>,
}

/// A significant (non-whitespace, non-comment) token.
#[derive(Debug, Clone)]
pub struct Sig<'a> {
    pub(crate) kind: TokenKind,
    pub(crate) text: &'a str,
    pub(crate) line: u32,
    pub(crate) col: u32,
}

impl Sig<'_> {
    /// Classification of the token.
    pub fn kind(&self) -> TokenKind {
        self.kind
    }

    /// The exact source text of the token.
    pub fn text(&self) -> &str {
        self.text
    }

    /// 1-based line of the first byte.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based byte column of the first byte.
    pub fn col(&self) -> u32 {
        self.col
    }
}

/// Everything a rule sees about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path used in diagnostics.
    pub relpath: String,
    /// Build role of the file.
    pub class: FileClass,
    pub(crate) sig: Vec<Sig<'a>>,
    /// Half-open significant-token ranges under `#[test]` /
    /// `#[cfg(test)]` items.
    pub(crate) test_regions: Vec<(usize, usize)>,
    pub(crate) suppressions: Vec<Suppression>,
    /// Findings produced while building the context (malformed
    /// suppressions).
    pub(crate) preflight: Vec<Finding>,
}

impl<'a> FileCtx<'a> {
    pub(crate) fn tok(&self, i: usize) -> Option<&Sig<'a>> {
        self.sig.get(i)
    }

    pub(crate) fn is(&self, i: usize, text: &str) -> bool {
        self.tok(i).is_some_and(|t| t.text == text)
    }

    /// Does the token sequence starting at `i` spell out `seq`
    /// (ignoring whitespace/comments, which are already stripped)?
    pub(crate) fn matches_seq(&self, i: usize, seq: &[&str]) -> bool {
        seq.iter().enumerate().all(|(k, s)| self.is(i + k, s))
    }

    pub(crate) fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| (a..b).contains(&i))
    }

    /// Number of significant tokens.
    pub(crate) fn len(&self) -> usize {
        self.sig.len()
    }

    /// Index of the matching closer for the opener at `i` (which must
    /// be `(`, `[`, or `{`), or the end of the token stream.
    pub(crate) fn matching_close(&self, i: usize) -> usize {
        let (open, close) = match self.tok(i).map(|t| t.text) {
            Some("(") => ("(", ")"),
            Some("[") => ("[", "]"),
            Some("{") => ("{", "}"),
            _ => return i,
        };
        let mut depth = 0usize;
        for j in i..self.sig.len() {
            if self.is(j, open) {
                depth += 1;
            } else if self.is(j, close) {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        self.sig.len()
    }
}

/// Parse one file into a rule context: lex, strip insignificant
/// tokens, locate test regions, and collect suppressions.
pub fn file_ctx<'a>(relpath: &str, class: FileClass, tokens: &[Token<'a>]) -> FileCtx<'a> {
    let mut ctx = FileCtx {
        relpath: relpath.to_string(),
        class,
        sig: tokens
            .iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|t| Sig {
                kind: t.kind,
                text: t.text,
                line: t.line,
                col: t.col,
            })
            .collect(),
        test_regions: Vec::new(),
        suppressions: Vec::new(),
        preflight: Vec::new(),
    };
    find_test_regions(&mut ctx);
    collect_suppressions(relpath, tokens, &mut ctx);
    ctx
}

/// Mark the body of every item carrying a `test`-mentioning attribute
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`) as a test
/// region: from the attribute to the item's closing brace (or
/// terminating semicolon).
fn find_test_regions(ctx: &mut FileCtx<'_>) {
    let mut i = 0usize;
    while i < ctx.sig.len() {
        // Outer attribute `#[ … ]` (inner `#![ … ]` never guards an
        // item body).
        if !(ctx.is(i, "#") && ctx.is(i + 1, "[")) {
            i += 1;
            continue;
        }
        let close = ctx.matching_close(i + 1);
        let mentions_test = (i + 2..close).any(|k| ctx.is(k, "test"));
        if !mentions_test {
            i = close + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = close + 1;
        while ctx.is(j, "#") && ctx.is(j + 1, "[") {
            j = ctx.matching_close(j + 1) + 1;
        }
        // The guarded item runs to its closing brace, or to a `;` for
        // brace-less items (a guarded `use`, a unit struct).
        let mut end = ctx.sig.len();
        for k in j..ctx.sig.len() {
            if ctx.is(k, "{") {
                end = ctx.matching_close(k) + 1;
                break;
            }
            if ctx.is(k, ";") {
                end = k + 1;
                break;
            }
        }
        ctx.test_regions.push((i, end));
        i = end;
    }
}

/// Pull `xps-allow` suppressions out of the comment tokens, reporting
/// malformed ones (no reason, unknown rule) as deny findings.
fn collect_suppressions(relpath: &str, tokens: &[Token<'_>], ctx: &mut FileCtx<'_>) {
    let known = known_rule_ids();
    for t in tokens {
        // A suppression hidden in a block comment silently does
        // nothing (the line-based lookup never sees it) — that is a
        // trap, so writing one is itself a deny finding.
        if t.kind == TokenKind::BlockComment {
            if t.text.contains("xps-allow") && !t.text.starts_with("/**") {
                ctx.preflight.push(Finding {
                    file: relpath.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: "malformed-suppression",
                    severity: Severity::Deny,
                    message: "xps-allow inside a block comment suppresses nothing".to_string(),
                    suggestion: "use a line comment: `// xps-allow(rule-id): reason` on the \
                                 finding's line or the line above"
                        .to_string(),
                });
            }
            continue;
        }
        if t.kind != TokenKind::LineComment {
            continue;
        }
        // Doc comments are documentation *about* the syntax, not
        // directives — only plain `//` comments carry suppressions.
        if t.text.starts_with("///") || t.text.starts_with("//!") {
            continue;
        }
        let Some(at) = t.text.find("xps-allow") else {
            continue;
        };
        let spec = &t.text[at + "xps-allow".len()..];
        let malformed = |message: String| Finding {
            file: relpath.to_string(),
            line: t.line,
            col: t.col,
            rule: "malformed-suppression",
            severity: Severity::Deny,
            message,
            suggestion: "write `// xps-allow(rule-id): reason`, with a real rule id and a \
                         non-empty reason"
                .to_string(),
        };
        let Some(rest) = spec.strip_prefix('(') else {
            ctx.preflight
                .push(malformed("xps-allow without a (rule-id)".to_string()));
            continue;
        };
        let Some((rule, rest)) = rest.split_once(')') else {
            ctx.preflight
                .push(malformed("unclosed xps-allow(rule-id)".to_string()));
            continue;
        };
        let rule = rule.trim();
        if !known.contains(&rule) {
            ctx.preflight.push(malformed(format!(
                "xps-allow names unknown rule `{rule}` (known: {})",
                known.join(", ")
            )));
            continue;
        }
        let reason = rest.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            ctx.preflight.push(malformed(format!(
                "xps-allow({rule}) has no reason — suppressions must say why"
            )));
            continue;
        }
        ctx.suppressions.push(Suppression {
            rule: rule.to_string(),
            line: t.line,
            used: std::cell::Cell::new(false),
        });
    }
}

/// Run every applicable textual rule over one file's context.
/// Suppressed findings are dropped and their suppressions marked used
/// (via the `used` cells in `ctx`); unused suppressions are NOT
/// reported here — the semantic passes may still use them, so the
/// workspace driver decides staleness after every pass has run.
pub fn lint_file_raw(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings: Vec<Finding> = ctx.preflight.clone();
    for rule in all_rules() {
        if !rule.applies_to.contains(&ctx.class) {
            continue;
        }
        let mut raw = Vec::new();
        (rule.check)(ctx, &rule, &mut raw);
        for f in raw {
            let suppressed = ctx
                .suppressions
                .iter()
                .find(|s| s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line));
            match suppressed {
                Some(s) => s.used.set(true),
                None => findings.push(f),
            }
        }
    }
    findings
}

/// The warn finding for one stale suppression.
pub(crate) fn unused_suppression_finding(file: &str, rule: &str, line: u32) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        col: 1,
        rule: "unused-suppression",
        severity: Severity::Warn,
        message: format!("xps-allow({rule}) suppresses nothing on this or the next line"),
        suggestion: "remove the stale suppression".to_string(),
    }
}

/// [`lint_file_raw`] plus staleness: suppressions used by no textual
/// rule become warn findings. This is the single-file view — the
/// workspace driver uses the raw form so semantic passes get their
/// chance to use a suppression first.
pub fn lint_file(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = lint_file_raw(ctx);
    for s in &ctx.suppressions {
        if !s.used.get() {
            findings.push(unused_suppression_finding(&ctx.relpath, &s.rule, s.line));
        }
    }
    findings
}

fn finding(ctx: &FileCtx<'_>, rule: &Rule, i: usize, message: String, suggestion: &str) -> Finding {
    let (line, col) = ctx.tok(i).map_or((0, 0), |t| (t.line, t.col));
    Finding {
        file: ctx.relpath.clone(),
        line,
        col,
        rule: rule.id,
        severity: rule.severity,
        message,
        suggestion: suggestion.to_string(),
    }
}

// ---------------------------------------------------------------------
// no-raw-fs-write

fn check_raw_fs_write(ctx: &FileCtx<'_>, rule: &Rule, out: &mut Vec<Finding>) {
    for i in 0..ctx.sig.len() {
        if ctx.in_test(i) {
            continue;
        }
        let hit = if ctx.matches_seq(i, &["fs", ":", ":", "write"]) {
            Some("std::fs::write")
        } else if ctx.matches_seq(i, &["File", ":", ":", "create"]) {
            Some("File::create")
        } else {
            None
        };
        if let Some(api) = hit {
            out.push(finding(
                ctx,
                rule,
                i,
                format!(
                    "{api} writes a data path non-atomically — a crash mid-write leaves a \
                     torn file"
                ),
                "route the write through xps_core::explore::write_atomic (temp file + \
                 rename in the same directory)",
            ));
        }
    }
}

// ---------------------------------------------------------------------
// no-unwrap-in-lib

fn check_unwrap(ctx: &FileCtx<'_>, rule: &Rule, out: &mut Vec<Finding>) {
    for i in 0..ctx.sig.len() {
        if ctx.in_test(i) || !ctx.is(i, ".") {
            continue;
        }
        let hit = if ctx.matches_seq(i, &[".", "unwrap", "(", ")"]) {
            Some("unwrap()")
        } else if ctx.matches_seq(i + 1, &["expect"]) && ctx.is(i + 2, "(") {
            Some("expect()")
        } else {
            None
        };
        if let Some(api) = hit {
            out.push(finding(
                ctx,
                rule,
                i + 1,
                format!(".{api} in library code panics instead of returning a typed error"),
                "propagate through the crate's typed error hierarchy (ExploreError / \
                 PipelineError / ServeError), or justify the invariant with an \
                 xps-allow reason",
            ));
        }
    }
}

/// The statement enclosing token `i`: back to the previous `;`/`{`/`}`
/// and forward to the statement's own `;` (at balanced depth) or the
/// end of the block opened inside it (a `for` body).
pub(crate) fn statement_span(ctx: &FileCtx<'_>, i: usize) -> std::ops::Range<usize> {
    let mut start = i;
    while start > 0 {
        let t = &ctx.sig[start - 1];
        if matches!(t.text, ";" | "{" | "}") {
            break;
        }
        start -= 1;
    }
    let mut depth = 0i32;
    let mut end = ctx.sig.len();
    for k in i..ctx.sig.len() {
        match ctx.sig[k].text {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" => {
                // A block opened inside the statement (closure or loop
                // body): include it whole and stop at its close.
                end = ctx.matching_close(k) + 1;
                break;
            }
            ";" if depth <= 0 => {
                end = k + 1;
                break;
            }
            _ => {}
        }
    }
    start..end
}

// ---------------------------------------------------------------------
// no-alloc-in-sim-hot-path

/// Hash-ordered (and hash-costed) container names that have no place
/// in the per-op step: the hot-loop overhaul replaced them with dense
/// rings precisely because a hash probe per op dominated the profile.
const HOT_PATH_HASH_TOKENS: [&str; 4] = ["HashMap", "HashSet", "BTreeMap", "BTreeSet"];

/// Tokens that allocate (or strongly suggest allocating) on the heap.
/// One allocation per simulated micro-op is millions per evaluation.
const HOT_PATH_ALLOC_TOKENS: [&str; 8] = [
    "Vec",
    "vec",
    "Box",
    "String",
    "to_string",
    "to_owned",
    "to_vec",
    "format",
];

/// The optimized engine's throughput contract, enforced structurally:
/// inside `fn step` of `crates/sim/src/engine.rs` (the function every
/// simulated micro-op funnels through), no hash-structure access and
/// no heap allocation. The reference engine (`reference.rs`) is
/// deliberately out of scope — its job is to stay unoptimized — and a
/// reasoned `xps-allow` remains the escape hatch for a future step
/// that can argue its allocation is amortized.
fn check_sim_hot_path(ctx: &FileCtx<'_>, rule: &Rule, out: &mut Vec<Finding>) {
    if !ctx.relpath.ends_with("sim/src/engine.rs") {
        return;
    }
    let mut i = 0usize;
    while i < ctx.sig.len() {
        if !(ctx.is(i, "fn") && ctx.is(i + 1, "step")) || ctx.in_test(i) {
            i += 1;
            continue;
        }
        let mut open = i + 2;
        while open < ctx.sig.len() && !ctx.is(open, "{") {
            open += 1;
        }
        let close = ctx.matching_close(open);
        for k in (open + 1)..close {
            let Some(t) = ctx.tok(k) else { continue };
            if HOT_PATH_HASH_TOKENS.contains(&t.text) {
                out.push(finding(
                    ctx,
                    rule,
                    k,
                    format!(
                        "{} access inside the per-op `fn step` — a hash probe per \
                         micro-op was exactly what the hot-loop overhaul removed",
                        t.text
                    ),
                    "use the dense ring / SoA structures the engine already carries, \
                     or justify with an xps-allow reason",
                ));
            } else if HOT_PATH_ALLOC_TOKENS.contains(&t.text) {
                out.push(finding(
                    ctx,
                    rule,
                    k,
                    format!(
                        "`{}` inside the per-op `fn step` allocates per micro-op — \
                         millions of allocations per evaluation",
                        t.text
                    ),
                    "hoist the allocation to construction time (Simulator::new) or \
                     per-run state, or justify with an xps-allow reason",
                ));
            }
        }
        i = close + 1;
    }
}

// ---------------------------------------------------------------------
// net-timeouts-and-bounded-retries

/// Idents inside a `loop` body that mark it as performing network I/O.
const NET_CALL_TOKENS: [&str; 5] = [
    "connect",
    "connect_timeout",
    "roundtrip",
    "request",
    "request_retrying",
];

/// The fleet's failure model, enforced structurally: every outbound
/// connection carries a connect deadline (`TcpStream::connect_timeout`,
/// never bare `TcpStream::connect`), every connecting function sets a
/// read timeout before I/O (a peer that accepts and then hangs must
/// surface as an error, not wedge the caller), and `loop`s around
/// network calls must be bounded (`break`/`return`/`?` inside) — an
/// unreachable peer costs a typed error after N attempts, never an
/// infinite retry. A reasoned `xps-allow` remains the escape hatch.
fn check_net_timeouts(ctx: &FileCtx<'_>, rule: &Rule, out: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < ctx.sig.len() {
        if !ctx.is(i, "fn") || ctx.in_test(i) {
            i += 1;
            continue;
        }
        // The function body: from the first `{` after the signature
        // (trait-declaration signatures ending in `;` have none).
        let mut open = i + 1;
        while open < ctx.sig.len() && !ctx.is(open, "{") && !ctx.is(open, ";") {
            open += 1;
        }
        if open >= ctx.sig.len() || !ctx.is(open, "{") {
            i = open + 1;
            continue;
        }
        let close = ctx.matching_close(open);
        let body = (open + 1)..close;
        let has_read_timeout = body.clone().any(|k| ctx.is(k, "set_read_timeout"));
        for k in body.clone() {
            if ctx.matches_seq(k, &["TcpStream", ":", ":", "connect"]) && ctx.is(k + 4, "(") {
                out.push(finding(
                    ctx,
                    rule,
                    k,
                    "TcpStream::connect has no connect deadline — a dead or unroutable \
                     peer hangs the caller indefinitely"
                        .to_string(),
                    "resolve the address and use TcpStream::connect_timeout, then set \
                     read/write timeouts on the stream",
                ));
            }
            if ctx.matches_seq(k, &["TcpStream", ":", ":", "connect_timeout"]) && !has_read_timeout
            {
                out.push(finding(
                    ctx,
                    rule,
                    k,
                    "connection opened without a read timeout in this function — a peer \
                     that accepts and then hangs wedges the caller"
                        .to_string(),
                    "call set_read_timeout (and set_write_timeout) on the stream before \
                     any I/O, or justify with an xps-allow reason",
                ));
            }
            if ctx.is(k, "loop") && ctx.is(k + 1, "{") {
                let lclose = ctx.matching_close(k + 1);
                let lbody = (k + 2)..lclose;
                let network = lbody.clone().any(|m| {
                    ctx.tok(m)
                        .is_some_and(|t| NET_CALL_TOKENS.contains(&t.text))
                });
                let bounded = lbody.clone().any(|m| {
                    ctx.tok(m)
                        .is_some_and(|t| matches!(t.text, "break" | "return" | "?"))
                });
                if network && !bounded {
                    out.push(finding(
                        ctx,
                        rule,
                        k,
                        "infinite `loop` around network I/O with no break or return — an \
                         unreachable peer retries forever"
                            .to_string(),
                        "bound the attempts (`for attempt in 0..n`) with deterministic \
                         backoff, or justify with an xps-allow reason",
                    ));
                }
            }
        }
        i = close + 1;
    }
}

// ---------------------------------------------------------------------
// no-panic-in-worker

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn check_panic_in_worker(ctx: &FileCtx<'_>, rule: &Rule, out: &mut Vec<Finding>) {
    for i in 0..ctx.sig.len() {
        if ctx.in_test(i) {
            continue;
        }
        // `spawn(`, `spawn_scoped(`, `execute(` — the thread-pool
        // entry points; the argument span is the closure.
        let spawns = ["spawn", "spawn_scoped", "execute"];
        if !(ctx.tok(i).is_some_and(|t| spawns.contains(&t.text)) && ctx.is(i + 1, "(")) {
            continue;
        }
        let close = ctx.matching_close(i + 1);
        let body = (i + 2)..close;
        if body.clone().any(|k| ctx.is(k, "catch_unwind")) {
            continue;
        }
        for k in body {
            if ctx.tok(k).is_some_and(|t| PANIC_MACROS.contains(&t.text)) && ctx.is(k + 1, "!") {
                out.push(finding(
                    ctx,
                    rule,
                    k,
                    format!(
                        "{}! inside a thread-spawn closure unwinds the worker outside the \
                         catch_unwind boundary, killing the whole fan-out",
                        ctx.sig[k].text
                    ),
                    "return a typed error from the task, or wrap the body in \
                     catch_unwind like crates/explore/src/recovery.rs does",
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// seeded-rng-only-in-generators

/// Identifiers that draw from ambient entropy.
const ENTROPY_TOKENS: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// The generator crates' determinism charter: every workload profile
/// is a pure function of `(population seed, family, index)`, so the
/// crates that generate profiles and traces (`crates/workload`,
/// `crates/scenario`) may obtain randomness only from seeds derived
/// off that chain — never `thread_rng`/`from_entropy`/`OsRng`/
/// `getrandom`, and never wall-clock reads that could leak host time
/// into a seed. Unlike the general wall-clock rule this applies to
/// test regions too: a test that seeds from entropy cannot reproduce
/// its own failures.
fn check_seeded_rng(ctx: &FileCtx<'_>, rule: &Rule, out: &mut Vec<Finding>) {
    if !["crates/workload/", "crates/scenario/"]
        .iter()
        .any(|p| ctx.relpath.contains(p))
    {
        return;
    }
    for i in 0..ctx.sig.len() {
        let Some(t) = ctx.tok(i) else { continue };
        if ENTROPY_TOKENS.contains(&t.text) {
            out.push(finding(
                ctx,
                rule,
                i,
                format!(
                    "`{}` draws from ambient entropy inside a generator crate — \
                     profiles must be pure functions of (population seed, family, index)",
                    t.text
                ),
                "seed a SmallRng with SeedableRng::seed_from_u64 from a seed derived \
                 off the population seed (see xps_scenario::derive_seed)",
            ));
        } else {
            for clock in ["Instant", "SystemTime"] {
                if ctx.matches_seq(i, &[clock, ":", ":", "now"]) {
                    out.push(finding(
                        ctx,
                        rule,
                        i,
                        format!(
                            "{clock}::now() inside a generator crate can leak host time \
                             into seeding or generation"
                        ),
                        "derive all randomness and ordering from the population seed; \
                         wall time must never reach a generator, tests included",
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lint(relpath: &str, class: FileClass, src: &str) -> Vec<Finding> {
        let tokens = lex(src);
        lint_file(&file_ctx(relpath, class, &tokens))
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn suppression_with_reason_works_same_and_next_line() {
        let same = "fn f() { std::fs::write(p, d); } // xps-allow(no-raw-fs-write): scratch file\n";
        assert!(lint("src/a.rs", FileClass::Lib, same).is_empty());
        let above =
            "// xps-allow(no-raw-fs-write): scratch file\nfn f() { std::fs::write(p, d); }\n";
        assert!(lint("src/a.rs", FileClass::Lib, above).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_a_finding() {
        let src = "// xps-allow(no-raw-fs-write)\nfn f() { std::fs::write(p, d); }\n";
        let f = lint("src/a.rs", FileClass::Lib, src);
        assert!(rules_of(&f).contains(&"malformed-suppression"), "{f:?}");
        // And the malformed allow does NOT suppress.
        assert!(rules_of(&f).contains(&"no-raw-fs-write"));
    }

    #[test]
    fn suppression_in_block_comment_is_a_finding() {
        let src = "fn f() { std::fs::write(p, d); /* xps-allow(no-raw-fs-write): hidden */ }\n";
        let f = lint("src/a.rs", FileClass::Lib, src);
        assert!(rules_of(&f).contains(&"malformed-suppression"), "{f:?}");
        // And it does NOT suppress.
        assert!(rules_of(&f).contains(&"no-raw-fs-write"), "{f:?}");
    }

    #[test]
    fn semantic_and_artifact_rule_ids_are_known_to_allows() {
        // An allow naming a semantic pass or an artifact check is a
        // real (if possibly stale) suppression, never "unknown rule".
        for id in [
            "determinism-provenance",
            "lock-discipline",
            "journal-record",
        ] {
            let src = format!("// xps-allow({id}): documented reason\nfn f() {{}}\n");
            let f = lint("src/a.rs", FileClass::Lib, &src);
            assert_eq!(rules_of(&f), vec!["unused-suppression"], "{id}: {f:?}");
        }
    }

    #[test]
    fn suppression_of_unknown_rule_is_a_finding() {
        let f = lint(
            "src/a.rs",
            FileClass::Lib,
            "// xps-allow(no-such-rule): because\nfn f() {}\n",
        );
        assert_eq!(rules_of(&f), vec!["malformed-suppression"]);
    }

    #[test]
    fn unused_suppression_is_a_warning() {
        let f = lint(
            "src/a.rs",
            FileClass::Lib,
            "// xps-allow(no-unwrap-in-lib): never fires here\nfn f() {}\n",
        );
        assert_eq!(rules_of(&f), vec!["unused-suppression"]);
        assert_eq!(f[0].severity, Severity::Warn);
    }

    #[test]
    fn raw_write_found_and_helper_excluded_by_allow() {
        let f = lint(
            "src/a.rs",
            FileClass::Lib,
            "fn save() { std::fs::write(path, data); }\n",
        );
        assert_eq!(rules_of(&f), vec!["no-raw-fs-write"]);
        let f = lint(
            "src/a.rs",
            FileClass::Lib,
            "fn save() { let f = File::create(path); }\n",
        );
        assert_eq!(rules_of(&f), vec!["no-raw-fs-write"]);
    }

    #[test]
    fn unwrap_in_lib_but_not_bin_or_test() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); z.unwrap_or(0); }\n";
        let f = lint("src/a.rs", FileClass::Lib, src);
        assert_eq!(
            rules_of(&f),
            vec!["no-unwrap-in-lib", "no-unwrap-in-lib"],
            "{f:?}"
        );
        assert!(lint("src/bin/a.rs", FileClass::Bin, src).is_empty());
        assert!(lint("tests/a.rs", FileClass::Test, src).is_empty());
    }

    #[test]
    fn panic_in_worker_found_unless_caught() {
        let src = "fn f(scope: &S) { scope.spawn(|| { panic!(\"boom\"); }); }\n";
        let f = lint("src/a.rs", FileClass::Lib, src);
        assert_eq!(rules_of(&f), vec!["no-panic-in-worker"]);
        let caught = "fn f(scope: &S) { scope.spawn(|| { let r = catch_unwind(|| g()); \
                      if r.is_err() { panic!(\"boom\"); } }); }\n";
        assert!(lint("src/a.rs", FileClass::Lib, caught).is_empty());
    }

    #[test]
    fn hot_path_rule_scoped_to_engine_step() {
        let src = "impl Simulator {\n\
                       fn step(&mut self, op: &MicroOp) {\n\
                           let used = self.issue_slots.entry(c).or_insert(0);\n\
                           let v: Vec<u64> = Vec::new();\n\
                       }\n\
                   }\n\
                   struct S { issue_slots: HashMap<u64, u32> }\n";
        let f = lint("crates/sim/src/engine.rs", FileClass::Lib, src);
        assert_eq!(
            rules_of(&f),
            vec!["no-alloc-in-sim-hot-path", "no-alloc-in-sim-hot-path"],
            "{f:?}"
        );
        // The reference oracle keeps its HashMap on purpose.
        assert!(lint("crates/sim/src/reference.rs", FileClass::Lib, src).is_empty());
        // Outside `fn step`, construction-time allocation is fine.
        let ctor = "impl Simulator {\n\
                        fn new() -> Simulator { Simulator { ring: vec![0; 64] } }\n\
                        fn step(&mut self, op: &MicroOp) { self.ring[0] = 1; }\n\
                    }\n";
        assert!(lint("crates/sim/src/engine.rs", FileClass::Lib, ctor).is_empty());
    }

    #[test]
    fn hot_path_rule_honors_suppression() {
        let src = "impl Simulator {\n\
                       fn step(&mut self, op: &MicroOp) {\n\
                           // xps-allow(no-alloc-in-sim-hot-path): amortized growth, once per 4096 ops\n\
                           self.spill.push(c);\n\
                       }\n\
                   }\n";
        // `push` alone is not flagged (growth is amortized and the
        // target may be a fixed ring) — but a flagged token under an
        // allow stays quiet and the allow counts as used.
        let with_vec = "impl Simulator {\n\
                            fn step(&mut self, op: &MicroOp) {\n\
                                // xps-allow(no-alloc-in-sim-hot-path): scratch buffer reused via capacity\n\
                                let mut scratch: Vec<u64> = Vec::with_capacity(0);\n\
                            }\n\
                        }\n";
        assert!(lint("crates/sim/src/engine.rs", FileClass::Lib, with_vec).is_empty());
        let f = lint("crates/sim/src/engine.rs", FileClass::Lib, src);
        assert_eq!(rules_of(&f), vec!["unused-suppression"], "{f:?}");
    }

    #[test]
    fn bare_tcp_connect_found_in_lib_and_bin_but_not_test() {
        let src = "fn dial(addr: &str) { let s = TcpStream::connect(addr); }\n";
        let f = lint("src/a.rs", FileClass::Lib, src);
        assert_eq!(rules_of(&f), vec!["net-timeouts-and-bounded-retries"]);
        let f = lint("src/bin/a.rs", FileClass::Bin, src);
        assert_eq!(rules_of(&f), vec!["net-timeouts-and-bounded-retries"]);
        assert!(lint("tests/a.rs", FileClass::Test, src).is_empty());
        let in_test_mod = format!("#[cfg(test)]\nmod tests {{\n    {src}}}\n");
        assert!(lint("src/a.rs", FileClass::Lib, &in_test_mod).is_empty());
    }

    #[test]
    fn connect_timeout_needs_a_read_timeout_in_the_same_fn() {
        let bare = "fn dial(t: &SocketAddr) -> R {\n\
                        let s = TcpStream::connect_timeout(t, CONNECT)?;\n\
                        Ok(s)\n\
                    }\n";
        let f = lint("src/a.rs", FileClass::Lib, bare);
        assert_eq!(rules_of(&f), vec!["net-timeouts-and-bounded-retries"]);
        assert_eq!(f[0].line, 2);
        let guarded = "fn dial(t: &SocketAddr) -> R {\n\
                           let s = TcpStream::connect_timeout(t, CONNECT)?;\n\
                           s.set_read_timeout(Some(IO))?;\n\
                           s.set_write_timeout(Some(IO))?;\n\
                           Ok(s)\n\
                       }\n";
        assert!(lint("src/a.rs", FileClass::Lib, guarded).is_empty());
    }

    #[test]
    fn unbounded_retry_loop_around_network_io_found() {
        let unbounded = "fn poll(addr: &str) {\n\
                             loop {\n\
                                 let _ = request(addr, \"GET\", \"/healthz\", None);\n\
                             }\n\
                         }\n";
        let f = lint("src/a.rs", FileClass::Lib, unbounded);
        assert_eq!(rules_of(&f), vec!["net-timeouts-and-bounded-retries"]);
        assert_eq!(f[0].line, 2);
        let bounded = "fn poll(addr: &str) -> R {\n\
                           loop {\n\
                               if let Ok(r) = request(addr, \"GET\", \"/healthz\", None) {\n\
                                   return Ok(r);\n\
                               }\n\
                           }\n\
                       }\n";
        assert!(lint("src/a.rs", FileClass::Lib, bounded).is_empty());
        let no_network = "fn spin(rx: &Receiver<u64>) {\n\
                              loop {\n\
                                  let _ = rx.recv();\n\
                              }\n\
                          }\n";
        assert!(lint("src/a.rs", FileClass::Lib, no_network).is_empty());
    }

    #[test]
    fn net_rule_honors_suppression() {
        let src = "fn dial(addr: &str) {\n\
                       // xps-allow(net-timeouts-and-bounded-retries): probe socket closed immediately, cannot hang\n\
                       let s = TcpStream::connect(addr);\n\
                   }\n";
        assert!(lint("src/a.rs", FileClass::Lib, src).is_empty());
    }

    #[test]
    fn rule_catalog_is_stable() {
        let ids: Vec<&str> = all_rules().iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            vec![
                "no-raw-fs-write",
                "no-unwrap-in-lib",
                "no-panic-in-worker",
                "no-alloc-in-sim-hot-path",
                "net-timeouts-and-bounded-retries",
                "seeded-rng-only-in-generators",
            ]
        );
        let semantic: Vec<&str> = semantic_rules().iter().map(|r| r.id).collect();
        assert_eq!(semantic, vec!["determinism-provenance", "lock-discipline"]);
        // The catalog carries every id an allow may name, plus the
        // two meta rules.
        let catalog = catalog_markdown();
        for id in known_rule_ids()
            .into_iter()
            .chain(["malformed-suppression", "unused-suppression"])
        {
            assert!(catalog.contains(&format!("`{id}`")), "{id} not in catalog");
        }
    }

    #[test]
    fn entropy_in_generator_crate_is_denied_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let mut r = thread_rng(); }\n}\n";
        let f = lint("crates/scenario/src/family.rs", FileClass::Lib, src);
        assert_eq!(rules_of(&f), vec!["seeded-rng-only-in-generators"]);
        let f = lint(
            "crates/workload/tests/edge_cases.rs",
            FileClass::Test,
            "fn f() { let mut r = SmallRng::from_entropy(); }\n",
        );
        assert_eq!(rules_of(&f), vec!["seeded-rng-only-in-generators"]);
    }

    #[test]
    fn wallclock_seeding_in_generator_test_is_denied() {
        let f = lint(
            "crates/scenario/tests/props.rs",
            FileClass::Test,
            "fn f() { let s = SystemTime::now(); }\n",
        );
        assert_eq!(rules_of(&f), vec!["seeded-rng-only-in-generators"]);
    }

    #[test]
    fn entropy_outside_generator_crates_is_out_of_scope() {
        let f = lint(
            "crates/serve/src/fleet.rs",
            FileClass::Lib,
            "fn f() { let mut r = thread_rng(); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn seeded_rng_in_generator_crate_is_fine() {
        let f = lint(
            "crates/scenario/src/dist.rs",
            FileClass::Lib,
            "fn f() { let mut r = SmallRng::seed_from_u64(7); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn seeded_rng_suppression_is_honored() {
        let src = "// xps-allow(seeded-rng-only-in-generators): fuzz target, reproduced via printed seed\nfn f() { let mut r = thread_rng(); }\n";
        let f = lint("crates/workload/src/gen.rs", FileClass::Lib, src);
        assert!(f.is_empty(), "{f:?}");
    }
}
