//! Lock discipline over the call graph: acquisition-order cycles
//! (potential deadlocks) and blocking operations performed while a
//! guard is live.
//!
//! Lock identity is `crate:receiver` — the receiver name of the
//! acquisition, qualified by the acquiring crate so two crates'
//! unrelated `inner` fields never alias. `.lock()` always acquires;
//! `.read()`/`.write()` only count when the receiver is a declared
//! `RwLock` name somewhere in the workspace (otherwise they are IO
//! methods).
//!
//! Order edges `a → b` arise two ways:
//!
//! * **intraprocedural** — `b` is acquired while `a`'s guard is live
//!   in the same fn;
//! * **interprocedural** — a call made while `a`'s guard is live
//!   reaches a fn whose transitive *lock closure* contains `b`.
//!
//! A cycle in that graph (including a self-edge: re-acquiring a lock
//! already held) is a deny finding citing both witness sites. A
//! blocking operation (`recv`, zero-arg `join`, `sleep`, socket
//! accept/connect, …) inside a live guard range is a deny finding at
//! the blocking site; deliberate exceptions carry
//! `// xps-allow(lock-discipline): reason`.

use crate::diag::{Finding, Severity};
use crate::graph::{qual_of, Graph};
use crate::parse::{FileSummary, LockKind};
use std::collections::{BTreeMap, BTreeSet};

/// One acquisition-order edge witness.
#[derive(Debug, Clone)]
struct EdgeSite {
    file: String,
    line: u32,
    col: u32,
    /// Human description of how the edge arises (nested acquisition
    /// or a call into a locking callee).
    how: String,
}

/// Run the pass. Returns findings plus the `(relpath, allow-line)`
/// suppressions consumed.
pub fn check(files: &[FileSummary], graph: &Graph) -> (Vec<Finding>, BTreeSet<(String, u32)>) {
    let mut findings = Vec::new();
    let mut used: BTreeSet<(String, u32)> = BTreeSet::new();

    // Workspace-wide RwLock receiver names: `.read()`/`.write()` on
    // anything else is IO, not a lock.
    let rwlock_names: BTreeSet<&str> = files
        .iter()
        .flat_map(|f| f.rwlock_names.iter().map(String::as_str))
        .collect();
    let effective = |l: &crate::parse::LockAcq| -> bool {
        match l.kind {
            LockKind::Lock => true,
            LockKind::Read | LockKind::Write => rwlock_names.contains(l.name.as_str()),
        }
    };

    // Per-node direct lock ids, then the transitive closure over
    // callees (fixpoint — the graph may have cycles).
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (q, site) in &graph.nodes {
        let (fi, gi) = site.fn_ref;
        let file = &files[fi];
        let ids: BTreeSet<String> = file.fns[gi]
            .locks
            .iter()
            .filter(|l| effective(l))
            .map(|l| format!("{}:{}", file.crate_name, l.name))
            .collect();
        direct.insert(q.clone(), ids);
    }
    let mut closure = direct.clone();
    loop {
        let mut changed = false;
        for (q, callees) in &graph.edges {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for callee in callees.keys() {
                if let Some(ids) = closure.get(callee) {
                    add.extend(ids.iter().cloned());
                }
            }
            if let Some(own) = closure.get_mut(q) {
                let before = own.len();
                own.extend(add);
                changed |= own.len() != before;
            }
        }
        if !changed {
            break;
        }
    }

    // Build the order graph with one (first) witness per edge, and
    // collect blocking-while-locked findings along the way.
    let mut order: BTreeMap<String, BTreeMap<String, EdgeSite>> = BTreeMap::new();
    for (q, site) in &graph.nodes {
        let (fi, gi) = site.fn_ref;
        let file = &files[fi];
        let f = &file.fns[gi];
        for a in f.locks.iter().filter(|l| effective(l)) {
            let a_id = format!("{}:{}", file.crate_name, a.name);
            let range = (a.tok + 1)..=a.guard_end;
            // Nested acquisitions.
            for b in f.locks.iter().filter(|l| effective(l)) {
                if std::ptr::eq(a, b) || !range.contains(&b.tok) {
                    continue;
                }
                let b_id = format!("{}:{}", file.crate_name, b.name);
                order
                    .entry(a_id.clone())
                    .or_default()
                    .entry(b_id)
                    .or_insert(EdgeSite {
                        file: file.relpath.clone(),
                        line: b.line,
                        col: b.col,
                        how: format!(
                            "`{}` acquired while `{}` guard is live in {q}",
                            b.name, a.name
                        ),
                    });
            }
            // Calls into locking callees.
            for c in &f.calls {
                if !range.contains(&c.tok) {
                    continue;
                }
                let Some(callee) = resolve_call_for_locks(graph, file, f, c) else {
                    continue;
                };
                if let Some(ids) = closure.get(&callee) {
                    // A callee acquiring `a_id` itself records a
                    // self-edge — re-entrant acquisition through a
                    // call, reported as a cycle below.
                    for b_id in ids {
                        order
                            .entry(a_id.clone())
                            .or_default()
                            .entry(b_id.clone())
                            .or_insert(EdgeSite {
                                file: file.relpath.clone(),
                                line: c.line,
                                col: c.col,
                                how: format!(
                                    "call into {callee} (which acquires `{}`) while `{}` \
                                     guard is live in {q}",
                                    b_id, a.name
                                ),
                            });
                    }
                }
            }
            // Blocking ops inside the guard range. A condvar wait
            // that is *handed this guard* atomically releases it for
            // the wait's duration — that is the correct pattern, not
            // a held-lock stall.
            for b in &f.blocking {
                if !range.contains(&b.tok) {
                    continue;
                }
                if b.released.is_some()
                    && (b.released == a.bound || b.released.as_deref() == Some(a.name.as_str()))
                {
                    continue;
                }
                if let Some(s) = file.suppressions.iter().find(|s| {
                    s.rule == "lock-discipline" && (s.line == b.line || s.line + 1 == b.line)
                }) {
                    used.insert((file.relpath.clone(), s.line));
                    continue;
                }
                findings.push(Finding {
                    file: file.relpath.clone(),
                    line: b.line,
                    col: b.col,
                    rule: "lock-discipline",
                    severity: Severity::Deny,
                    message: format!(
                        "blocking `{}` while the `{}` guard is live (acquired {}:{}) — \
                         every other thread needing that lock stalls behind this wait",
                        b.what, a.name, file.relpath, a.line
                    ),
                    suggestion: "shrink the critical section: copy what you need out of the \
                                 guard, drop it, then block; or justify with \
                                 `// xps-allow(lock-discipline): reason`"
                        .to_string(),
                });
            }
        }
    }

    // Cycles: self-edges, then two-way reachability between edge
    // endpoints.
    let reachable = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(cur) = stack.pop() {
            if cur == to {
                return true;
            }
            if let Some(next) = order.get(cur) {
                for n in next.keys() {
                    if seen.insert(n) {
                        stack.push(n);
                    }
                }
            }
        }
        false
    };
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for (a, outs) in &order {
        for (b, site) in outs {
            let is_cycle = if a == b { true } else { reachable(b, a) };
            if !is_cycle {
                continue;
            }
            let key = if a <= b {
                (a.clone(), b.clone())
            } else {
                (b.clone(), a.clone())
            };
            if !reported.insert(key) {
                continue;
            }
            if let Some(s) = files.iter().find(|f| f.relpath == site.file).and_then(|f| {
                f.suppressions.iter().find(|s| {
                    s.rule == "lock-discipline" && (s.line == site.line || s.line + 1 == site.line)
                })
            }) {
                used.insert((site.file.clone(), s.line));
                continue;
            }
            let message = if a == b {
                format!(
                    "lock-order cycle: `{a}` is re-acquired while already held ({}) — \
                     a std Mutex self-deadlocks here",
                    site.how
                )
            } else {
                let back = order
                    .get(b)
                    .and_then(|m| m.get(a))
                    .map(|s| format!("{}:{} ({})", s.file, s.line, s.how))
                    .unwrap_or_else(|| format!("reachable transitively from `{b}`"));
                format!(
                    "lock-order inversion between `{a}` and `{b}`: {} at {}:{}, but the \
                     opposite order holds at {back} — two threads interleaving these paths \
                     deadlock",
                    site.how, site.file, site.line
                )
            };
            findings.push(Finding {
                file: site.file.clone(),
                line: site.line,
                col: site.col,
                rule: "lock-discipline",
                severity: Severity::Deny,
                message,
                suggestion: "impose one global acquisition order (document it at the lock \
                             declarations) or collapse the two locks into one; or justify \
                             with `// xps-allow(lock-discipline): reason`"
                    .to_string(),
            });
        }
    }
    (findings, used)
}

/// Call resolution for the lock pass: reuse the graph's resolved
/// edges (caller → callee), matching this call site by position.
fn resolve_call_for_locks(
    graph: &Graph,
    file: &FileSummary,
    f: &crate::parse::FnSummary,
    c: &crate::parse::Call,
) -> Option<String> {
    let caller = qual_of(file, f);
    let callees = graph.edges.get(&caller)?;
    callees
        .iter()
        .find(|(_, (site_file, site_line))| site_file == &file.relpath && *site_line == c.line)
        .map(|(callee, _)| callee.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build;
    use crate::parse::summarize_file;
    use crate::rules::FileClass;

    fn run(src: &str) -> Vec<Finding> {
        let files = vec![summarize_file(
            "crates/a/src/lib.rs",
            FileClass::Lib,
            "xps_a",
            src,
        )];
        let g = build(&files);
        check(&files, &g).0
    }

    #[test]
    fn nested_inversion_across_two_fns_is_a_deadlock_finding() {
        let f = run("struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             fn one(s: &S) { let g = s.a.lock(); let h = s.b.lock(); }\n\
             fn two(s: &S) { let g = s.b.lock(); let h = s.a.lock(); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-discipline");
        assert!(
            f[0].message.contains("lock-order inversion"),
            "{}",
            f[0].message
        );
        assert!(f[0].message.contains("xps_a:a"), "{}", f[0].message);
        assert!(f[0].message.contains("xps_a:b"), "{}", f[0].message);
    }

    #[test]
    fn consistent_order_is_quiet() {
        let f = run("struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             fn one(s: &S) { let g = s.a.lock(); let h = s.b.lock(); }\n\
             fn two(s: &S) { let g = s.a.lock(); let h = s.b.lock(); }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn interprocedural_inversion_through_a_callee_is_found() {
        let f = run("struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             fn lock_b(s: &S) { let g = s.b.lock(); }\n\
             fn one(s: &S) { let g = s.a.lock(); lock_b(s); }\n\
             fn lock_a(s: &S) { let g = s.a.lock(); }\n\
             fn two(s: &S) { let g = s.b.lock(); lock_a(s); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("inversion"), "{}", f[0].message);
    }

    #[test]
    fn blocking_while_guard_live_found_and_dropped_guard_quiet() {
        let f = run("struct S { state: Mutex<u32> }\n\
             fn f(s: &S, rx: &Receiver<u32>) {\n\
                 let g = s.state.lock();\n\
                 let v = rx.recv();\n\
             }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("blocking `recv`"), "{}", f[0].message);
        let quiet = run("struct S { state: Mutex<u32> }\n\
             fn f(s: &S, rx: &Receiver<u32>) {\n\
                 { let g = s.state.lock(); }\n\
                 let v = rx.recv();\n\
             }\n");
        assert!(quiet.is_empty(), "{quiet:?}");
    }

    #[test]
    fn read_write_only_count_for_declared_rwlocks() {
        // `.read()` on a non-RwLock receiver is IO, not a lock.
        let f = run("struct S { state: Mutex<u32> }\n\
             fn f(s: &S, sock: &TcpStream) {\n\
                 let g = s.state.lock();\n\
                 let n = sock.read(&mut buf);\n\
             }\n");
        assert!(f.is_empty(), "{f:?}");
        // Declared RwLock + blocking inside the write guard → finding.
        let f = run("struct S { table: RwLock<u32> }\n\
             fn f(s: &S, rx: &Receiver<u32>) {\n\
                 let g = s.table.write();\n\
                 let v = rx.recv();\n\
             }\n");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn condvar_wait_releasing_the_held_guard_is_quiet() {
        // `cv.wait_timeout(state, …)` hands the guard to the condvar,
        // which unlocks it for the duration of the wait.
        let f = run("struct S { state: Mutex<u32>, wake: Condvar }\n\
             fn f(s: &S) {\n\
                 let mut state = s.state.lock();\n\
                 let (next, _) = s.wake.wait_timeout(state, TICK);\n\
                 state = next;\n\
             }\n");
        assert!(f.is_empty(), "{f:?}");
        // …but waiting on one condvar while a *different* guard is
        // live still stalls that other lock.
        let f = run(
            "struct S { state: Mutex<u32>, other: Mutex<u32>, wake: Condvar }\n\
             fn f(s: &S) {\n\
                 let held = s.other.lock();\n\
                 let mut state = s.state.lock();\n\
                 let (next, _) = s.wake.wait_timeout(state, TICK);\n\
                 state = next;\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`other` guard"), "{}", f[0].message);
    }

    #[test]
    fn lock_discipline_allow_suppresses_blocking_finding() {
        let f = run(
            "struct S { state: Mutex<u32> }\n\
             fn f(s: &S, rx: &Receiver<u32>) {\n\
                 let g = s.state.lock();\n\
                 // xps-allow(lock-discipline): single-consumer channel, send side never locks state\n\
                 let v = rx.recv();\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
