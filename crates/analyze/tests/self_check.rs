//! The analyzer's own acceptance gate: the workspace it ships in must
//! lint clean (every remaining wall-clock/unwrap/write site is either
//! fixed or carries a reasoned `xps-allow`), and the checked-in
//! measured results must validate against the model domains. CI runs
//! the same checks through the binary; this test keeps `cargo test`
//! equivalent to the CI gate.

use std::path::{Path, PathBuf};

use xps_analyze::{analyze_source, artifact, rules, Severity};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_sources_lint_clean() {
    let report = analyze_source(&workspace_root()).expect("walk workspace");
    assert!(
        report.files_checked > 50,
        "the walker must actually see the workspace ({} files)",
        report.files_checked
    );
    assert!(
        report.is_clean(),
        "the workspace must lint clean; fix or suppress (with a reason):\n{}",
        report.render_human("source")
    );
}

#[test]
fn workspace_has_no_warn_findings_either() {
    // Unused suppressions are warn-severity; a clean tree has none, so
    // stale allows cannot accumulate.
    let report = analyze_source(&workspace_root()).expect("walk workspace");
    let warns: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Warn)
        .collect();
    assert!(warns.is_empty(), "stale suppressions: {warns:#?}");
}

#[test]
fn docs_carry_the_current_rule_catalog() {
    // README.md and DESIGN.md embed the `xps-analyze --catalog` output
    // between `<!-- analyzer-catalog:begin/end -->` markers; the CI
    // drift check diffs those regions against the binary, and this
    // test keeps `cargo test` equivalent to that gate.
    let expected = rules::catalog_markdown();
    for doc in ["README.md", "DESIGN.md"] {
        let text = std::fs::read_to_string(workspace_root().join(doc))
            .unwrap_or_else(|e| panic!("read {doc}: {e}"));
        let begin = "<!-- analyzer-catalog:begin -->";
        let end = "<!-- analyzer-catalog:end -->";
        let start = text
            .find(begin)
            .unwrap_or_else(|| panic!("{doc} is missing the `{begin}` marker"));
        let stop = text
            .find(end)
            .unwrap_or_else(|| panic!("{doc} is missing the `{end}` marker"));
        let region = text[start + begin.len()..stop].trim_matches('\n');
        assert_eq!(
            region,
            expected.trim_end_matches('\n'),
            "{doc} analyzer catalog is stale; paste `xps-analyze --catalog` between the markers"
        );
    }
}

#[test]
fn checked_in_results_validate_against_model_domains() {
    let results = workspace_root().join("results");
    if !results.is_dir() {
        return; // a fresh checkout before any experiment has no results
    }
    let report = artifact::check_dir(&results).expect("walk results");
    assert!(
        report.is_clean(),
        "checked-in artifacts violate the model domains:\n{}",
        report.render_human("data")
    );
}
