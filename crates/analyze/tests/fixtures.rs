//! Fixture-driven end-to-end tests: seeded source violations must be
//! reported with exact rule ids and positions, valid suppressions must
//! silence them, malformed suppressions must themselves be findings,
//! seeded bad artifacts must be rejected — and the standalone binary
//! must turn each of those into a non-zero exit code.

use std::path::{Path, PathBuf};
use std::process::Command;

use xps_analyze::{analyze_file, artifact, FileClass, Finding, Severity};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture(name: &str) -> String {
    std::fs::read_to_string(fixture_dir().join(name)).expect("read fixture")
}

/// Lint a fixture as if it were a library source file.
fn lint_as_lib(name: &str) -> Vec<Finding> {
    let src = fixture(name);
    let mut f = analyze_file(Path::new("crates/fix/src/lib.rs"), FileClass::Lib, &src);
    f.sort_by_key(|f| (f.line, f.col, f.rule));
    f
}

/// 1-based column of `needle` on 1-based `line` of the fixture — the
/// expected positions are derived from the fixture text itself, so the
/// assertions stay exact without hand-counted magic columns.
fn col_of(src: &str, line: u32, needle: &str) -> u32 {
    let text = src
        .lines()
        .nth(line as usize - 1)
        .expect("fixture line exists");
    text.find(needle).expect("needle on fixture line") as u32 + 1
}

/// 1-based line whose text contains `needle`.
fn line_of(src: &str, needle: &str) -> u32 {
    src.lines()
        .position(|l| l.contains(needle))
        .expect("needle in fixture") as u32
        + 1
}

#[test]
fn violations_fixture_reports_every_rule_at_exact_positions() {
    let src = fixture("violations.rs");
    let findings = lint_as_lib("violations.rs");

    let wallclock = line_of(&src, "Instant::now()");
    let write = line_of(&src, "std::fs::write");
    let iter = line_of(&src, "for (k, v)");
    let panic = line_of(&src, "panic!(\"boom\")");

    let got: Vec<(u32, u32, &str)> = findings.iter().map(|f| (f.line, f.col, f.rule)).collect();
    let want = vec![
        (
            wallclock,
            col_of(&src, wallclock, "Instant"),
            "determinism-provenance",
        ),
        (write, col_of(&src, write, "fs"), "no-raw-fs-write"),
        (write, col_of(&src, write, "unwrap"), "no-unwrap-in-lib"),
        (iter, col_of(&src, iter, "rows"), "determinism-provenance"),
        (panic, col_of(&src, panic, "panic"), "no-panic-in-worker"),
    ];
    assert_eq!(got, want, "full findings: {findings:#?}");
    assert!(
        findings.iter().all(|f| f.severity == Severity::Deny),
        "all seeded rules are deny severity"
    );
    assert!(
        findings.iter().all(|f| !f.suggestion.is_empty()),
        "every finding must carry a suggestion"
    );
}

#[test]
fn violations_fixture_is_exempt_in_test_code() {
    let src = fixture("violations.rs");
    let findings = analyze_file(
        Path::new("crates/fix/tests/golden.rs"),
        FileClass::Test,
        &src,
    );
    let lib_only: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "no-unwrap-in-lib")
        .collect();
    assert!(
        lib_only.is_empty(),
        "no-unwrap-in-lib must not apply to test code: {lib_only:?}"
    );
}

#[test]
fn suppressed_fixture_is_clean() {
    let findings = lint_as_lib("suppressed.rs");
    assert!(
        findings.is_empty(),
        "valid xps-allow with a reason silences the finding: {findings:#?}"
    );
}

#[test]
fn malformed_suppressions_are_deny_findings_and_do_not_silence() {
    let src = fixture("bad_allow.rs");
    let findings = lint_as_lib("bad_allow.rs");
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();

    // Both bad allows are reported...
    assert_eq!(
        rules
            .iter()
            .filter(|r| **r == "malformed-suppression")
            .count(),
        2,
        "reason-less and unknown-rule allows are each findings: {findings:#?}"
    );
    // ...and the reason-less one does NOT suppress the wallclock hit.
    let wallclock = line_of(&src, "Instant::now()");
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "determinism-provenance" && f.line == wallclock),
        "a malformed allow must not silence anything: {findings:#?}"
    );
}

#[test]
fn seeded_bad_artifacts_are_all_rejected() {
    let report = artifact::check_dir(&fixture_dir().join("data")).expect("walk fixture data");
    assert_eq!(report.files_checked, 4);
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    for expected in [
        "journal-record",
        "store-record",
        "measured-envelope",
        "queue-journal",
    ] {
        assert!(
            rules.contains(&expected),
            "expected a {expected} finding, got {rules:?}"
        );
    }
    assert!(report.deny_count() >= 4);
}

#[test]
fn binary_exits_nonzero_on_bad_artifacts_and_names_the_rules() {
    let out = Command::new(env!("CARGO_BIN_EXE_xps-analyze"))
        .arg("data")
        .arg(fixture_dir().join("data"))
        .output()
        .expect("run xps-analyze");
    assert_eq!(
        out.status.code(),
        Some(1),
        "seeded violations must fail the run: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in ["journal-record", "store-record", "measured-envelope"] {
        assert!(stdout.contains(rule), "diagnostics name {rule}: {stdout}");
    }
}

#[test]
fn binary_exits_nonzero_on_seeded_source_violations() {
    // The walker skips directories named `fixtures`, so stage the
    // seeded file into a scratch tree shaped like a real crate.
    let scratch = std::env::temp_dir().join(format!("xps-analyze-fix-{}", std::process::id()));
    let src_dir = scratch.join("crates/fix/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir scratch");
    std::fs::write(src_dir.join("lib.rs"), fixture("violations.rs")).expect("stage fixture");

    let out = Command::new(env!("CARGO_BIN_EXE_xps-analyze"))
        .arg("source")
        .arg(&scratch)
        .output()
        .expect("run xps-analyze");
    std::fs::remove_dir_all(&scratch).ok();

    assert_eq!(
        out.status.code(),
        Some(1),
        "seeded source violations must fail the run: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("determinism-provenance"),
        "human output names the rule id: {stdout}"
    );
    assert!(stdout.contains("help:"), "diagnostics carry help: {stdout}");
}

#[test]
fn binary_json_output_is_machine_readable() {
    let out = Command::new(env!("CARGO_BIN_EXE_xps-analyze"))
        .arg("--json")
        .arg("data")
        .arg(fixture_dir().join("data"))
        .output()
        .expect("run xps-analyze");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let v: serde::Value = serde_json::from_str(stdout.trim()).expect("valid JSON report");
    let findings = v.member("findings").expect("findings array");
    if let serde::Value::Arr(items) = findings {
        assert!(!items.is_empty());
        let first = &items[0];
        for key in [
            "file",
            "line",
            "col",
            "rule",
            "severity",
            "message",
            "suggestion",
        ] {
            assert!(first.member(key).is_ok(), "finding has `{key}`: {stdout}");
        }
    } else {
        panic!("findings is not an array: {stdout}");
    }
}
