//! Property tests for the lossless lexer: any source assembled from a
//! hostile fragment vocabulary (comments, strings, raw strings at
//! several hash depths, unterminated literals, multibyte text) must
//! round-trip byte-identically through the token stream with
//! consistent positions — and text inside comments or string literals
//! must never fabricate a lint finding, while the same text outside
//! them must.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;
use std::path::Path;

use xps_analyze::lexer::{lex, TokenKind};
use xps_analyze::{analyze_file, FileClass};

/// Fragments chosen to stress every lexer mode and the transitions
/// between them. Concatenations are allowed to merge (`0` + `.5`
/// becomes one number; an unterminated `"` swallows the rest) — the
/// losslessness property must hold regardless.
fn arb_fragment() -> impl Strategy<Value = &'static str> {
    select(vec![
        "fn main() { }",
        "let x = 1;",
        " ",
        "\n",
        "\t",
        "// line comment\n",
        "/// doc comment\n",
        "/* block */",
        "/* nested /* deep /* deeper */ */ */",
        "/* unterminated",
        "\"string with // no comment\"",
        "\"esc \\\" quote\"",
        "\"unterminated",
        "r\"raw\"",
        "r#\"raw /* with */ hash\"#",
        "r##\"deeper \"# still raw\"##",
        "r###\"deepest\"###",
        "r#\"unterminated raw",
        "b\"bytes\"",
        "b\"unterminated bytes",
        "br##\"raw bytes \"# inside\"##",
        "b'q'",
        "'c'",
        "'\\n'",
        "'\\''",
        "'static",
        "<'a>",
        "0",
        ".5",
        "1.5e-3",
        "0x_ff",
        "émigré",
        "ident_1",
        "::",
        ".unwrap()",
        "#[test]",
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lexing_is_lossless_with_consistent_positions(
        fragments in vec(arb_fragment(), 8),
        keep in 0usize..9,
    ) {
        let src: String = fragments[..keep].concat();
        let tokens = lex(&src);

        // Losslessness: the token texts concatenate back to the input.
        let rebuilt: String = tokens.iter().map(|t| t.text).collect();
        prop_assert_eq!(&rebuilt, &src, "token stream must cover every byte");
        prop_assert!(tokens.iter().all(|t| !t.text.is_empty()), "no empty tokens");

        // Positions: each token starts exactly where the previous
        // one's text ends, counting lines and byte columns.
        let (mut line, mut col) = (1u32, 1u32);
        for t in &tokens {
            prop_assert_eq!((t.line, t.col), (line, col), "token {:?}", t.text);
            for b in t.text.bytes() {
                if b == b'\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
        }
    }

    #[test]
    fn comments_and_strings_never_hide_or_fabricate_findings(
        shield in select(vec!["// {}\n", "/* {} */", "\"{}\"", "r#\"{}\"#"]),
        noise in vec(arb_fragment(), 3),
    ) {
        // The violation text buried inside a comment or string must
        // not be reported — the fn is a real sink (`println!`), so a
        // leak of the shielded `Instant::now()` into the token stream
        // would connect source to sink and fire.
        let buried = format!(
            "fn quiet() {{ println!(\"ok\"); let _ = {}; }}\n",
            shield.replace("{}", "Instant::now()")
        );
        let f = analyze_file(Path::new("crates/x/src/lib.rs"), FileClass::Lib, &buried);
        prop_assert!(
            !f.iter().any(|f| f.rule == "determinism-provenance"),
            "shielded text fabricated a finding: {:?}",
            f
        );

        // ...while the same text as code must be, no matter what
        // comment/string noise surrounds it.
        // Noise that would *legitimately* change rule applicability is
        // neutralized: an unterminated string/comment swallows the
        // code, and #[test] marks the next item as exempt test code.
        let noise = noise
            .concat()
            .replace('"', " ")
            .replace("#[test]", "#[cold]")
            .replace("/* unterminated", "/* terminated */")
            .replace("r# unterminated raw", "r# terminated raw")
            .replace("b unterminated bytes", "b terminated bytes");
        let live = format!("{noise}\nfn loud() {{ println!(\"{{:?}}\", Instant::now()); }}\n");
        let f = analyze_file(Path::new("crates/x/src/lib.rs"), FileClass::Lib, &live);
        prop_assert!(
            f.iter().any(|f| f.rule == "determinism-provenance"),
            "live violation was hidden by surrounding noise `{}`: {:?}",
            live,
            f
        );
    }

    #[test]
    fn token_kinds_partition_code_from_non_code(fragments in vec(arb_fragment(), 6)) {
        let src: String = fragments.concat();
        for t in lex(&src) {
            match t.kind {
                TokenKind::LineComment => prop_assert!(t.text.starts_with("//")),
                TokenKind::BlockComment => prop_assert!(t.text.starts_with("/*")),
                TokenKind::Whitespace => {
                    prop_assert!(t.text.chars().all(char::is_whitespace));
                }
                // Code tokens never contain a newline except string
                // and comment literals, so line-based suppression
                // lookup is sound.
                TokenKind::Ident | TokenKind::Number | TokenKind::Punct | TokenKind::Lifetime => {
                    prop_assert!(!t.text.contains('\n'), "code token spans lines: {:?}", t.text);
                }
                TokenKind::Str | TokenKind::RawStr | TokenKind::Char => {}
            }
        }
    }
}
