// The same violations as violations.rs, every one carrying a valid
// suppression with a reason — the analyzer must report nothing.

use std::time::Instant;

pub fn stamp() -> Instant {
    // xps-allow(determinism-provenance): fixture: documented timing-only site
    Instant::now()
}

pub fn document() {
    println!("{:?}", stamp());
}

pub fn save(path: &std::path::Path, data: &str) {
    // xps-allow(no-raw-fs-write): fixture: scratch file outside the data tree
    std::fs::write(path, data).unwrap(); // xps-allow(no-unwrap-in-lib): fixture: documented infallible write
}
