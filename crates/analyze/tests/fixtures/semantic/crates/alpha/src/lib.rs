// Semantic-pass fixture, hop one: the wall clock read in `tick`
// reaches beta's serializer three hops away, and `fwd`/`rev` acquire
// the same two locks in opposite order. Lives under `fixtures`, which
// the workspace walker skips, so the self-check stays clean.

use xps_beta::relay;

pub struct Pair {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

pub fn tick() {
    let t = Instant::now();
    relay(t);
}

pub fn fwd(p: &Pair) {
    let g = p.a.lock();
    let h = p.b.lock();
}

pub fn rev(p: &Pair) {
    let g = p.b.lock();
    let h = p.a.lock();
}
