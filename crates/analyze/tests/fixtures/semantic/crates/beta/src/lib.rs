// Semantic-pass fixture, hops two and three: `relay` forwards into
// `out::emit`, which serializes — the sink end of alpha's chain.

pub fn relay(t: u64) {
    crate::out::emit(t);
}

pub mod out {
    pub fn emit(t: u64) {
        println!("{t}");
    }
}
