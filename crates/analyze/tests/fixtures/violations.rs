// Seeded violations for the analyzer's own tests. This file lives
// under a `fixtures` directory, which the workspace walker skips, so
// the self-check stays clean while these stay red.

use std::collections::HashMap;
use std::time::Instant;

pub struct Table {
    pub rows: HashMap<String, u64>,
}

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn document() {
    println!("{:?}", stamp());
}

pub fn save(path: &std::path::Path, data: &str) {
    std::fs::write(path, data).unwrap();
}

pub fn render(t: &Table) {
    for (k, v) in &t.rows {
        println!("{k}={v}");
    }
}

pub fn fan(pool: &Pool) {
    pool.execute(|| panic!("boom"));
}
