// Malformed suppressions: each must itself be reported as a deny
// finding, and must NOT silence anything.

use std::time::Instant;

// xps-allow(determinism-provenance)
pub fn missing_reason() {
    println!("{:?}", Instant::now());
}

// xps-allow(no-such-rule): the rule id does not exist
pub fn unknown_rule() {}
