// Malformed suppressions: each must itself be reported as a deny
// finding, and must NOT silence anything.

use std::time::Instant;

// xps-allow(no-wallclock-in-deterministic-paths)
pub fn missing_reason() -> Instant {
    Instant::now()
}

// xps-allow(no-such-rule): the rule id does not exist
pub fn unknown_rule() {}
