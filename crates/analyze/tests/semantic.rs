//! End-to-end tests for the semantic passes over a committed fixture
//! workspace: the determinism-provenance chain must be reported with
//! its exact three-hop path (file:line per hop), the seeded lock-order
//! inversion must be detected, and the whole report must be
//! byte-identical across runs and between incremental and cold cache
//! modes.

use std::path::{Path, PathBuf};

use xps_analyze::{analyze_workspace, Finding, WorkspaceOptions};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/semantic")
}

fn cold_findings() -> Vec<Finding> {
    analyze_workspace(&fixture_root(), &WorkspaceOptions::default())
        .expect("walk semantic fixture")
        .findings
}

/// 1-based line whose text contains `needle` in the fixture file.
fn line_in(rel: &str, needle: &str) -> u32 {
    let src = std::fs::read_to_string(fixture_root().join(rel)).expect("read fixture");
    let idx = src
        .lines()
        .position(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("`{needle}` in {rel}"));
    u32::try_from(idx).expect("fixture fits u32") + 1
}

#[test]
fn three_hop_cross_crate_chain_is_reported_with_exact_path() {
    let findings = cold_findings();
    let taint: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "determinism-provenance")
        .collect();
    assert_eq!(taint.len(), 1, "{findings:#?}");
    let f = taint[0];
    assert_eq!(f.file, "crates/alpha/src/lib.rs");
    assert_eq!(f.line, line_in("crates/alpha/src/lib.rs", "Instant::now()"));
    let chain = format!(
        "xps_alpha::tick (crates/alpha/src/lib.rs:{}) \u{2192} \
         xps_beta::relay (crates/beta/src/lib.rs:{}) \u{2192} \
         xps_beta::out::emit (crates/beta/src/lib.rs:{})",
        line_in("crates/alpha/src/lib.rs", "pub fn tick"),
        line_in("crates/beta/src/lib.rs", "pub fn relay"),
        line_in("crates/beta/src/lib.rs", "pub fn emit"),
    );
    assert!(
        f.message.contains(&chain),
        "expected chain `{chain}` in message `{}`",
        f.message
    );
    assert!(f.message.contains("wall clock"), "{}", f.message);
}

#[test]
fn seeded_lock_order_inversion_is_detected() {
    let findings = cold_findings();
    let locks: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "lock-discipline")
        .collect();
    assert_eq!(locks.len(), 1, "{findings:#?}");
    let f = locks[0];
    assert!(f.message.contains("lock-order inversion"), "{}", f.message);
    assert!(f.message.contains("xps_alpha:a"), "{}", f.message);
    assert!(f.message.contains("xps_alpha:b"), "{}", f.message);
    // Both witness sites appear with file:line.
    assert!(
        f.message.matches("crates/alpha/src/lib.rs:").count() >= 1,
        "{}",
        f.message
    );
}

#[test]
fn report_json_is_byte_identical_across_runs_and_cache_modes() {
    let root = fixture_root();
    let cold_a = analyze_workspace(&root, &WorkspaceOptions::default())
        .expect("cold run")
        .render_json("source");
    let cold_b = analyze_workspace(&root, &WorkspaceOptions::default())
        .expect("cold run")
        .render_json("source");
    assert_eq!(cold_a, cold_b, "cold runs must be byte-identical");

    let scratch = std::env::temp_dir().join(format!("xps-analyze-sem-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("mkdir scratch");
    let opts = WorkspaceOptions {
        incremental: true,
        cache_path: Some(scratch.join("cache.json")),
    };
    // First incremental run populates the cache, the second consumes
    // every summary from it; both must match the cold report exactly.
    let warm_a = analyze_workspace(&root, &opts)
        .expect("incremental run")
        .render_json("source");
    let warm_b = analyze_workspace(&root, &opts)
        .expect("cached run")
        .render_json("source");
    std::fs::remove_dir_all(&scratch).ok();
    assert_eq!(cold_a, warm_a, "incremental (cold cache) must match cold");
    assert_eq!(cold_a, warm_b, "incremental (warm cache) must match cold");
}
