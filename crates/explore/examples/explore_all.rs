//! Run the full exploration campaign over all eleven benchmarks with
//! the default budgets and print each customized configuration — the
//! measured analogue of the paper's Table 4, without the matrix step.
//!
//! ```text
//! cargo run --release -p xps-explore --example dbg
//! ```
//! (Takes a few minutes; for the persisted full pipeline use
//! `repro explore` from the `xps-bench` crate.)

use std::time::Instant;
use xps_explore::{Campaign, ExploreOptions};
use xps_workload::spec;

fn main() {
    let t0 = Instant::now();
    let explorer = Campaign::new(ExploreOptions::default());
    let r = explorer.explore(&spec::all_profiles());
    println!(
        "elapsed {:.1}s, cross-seeding adoptions {}",
        t0.elapsed().as_secs_f64(),
        r.adoptions
    );
    for c in &r.cores {
        let cfg = &c.config;
        println!(
            "{:8} ipt {:.2} clk {:.2} w{} fe{} rob{:4} iq{:3} lsq{:3} wk{} sd{} L1 {:4}KB({}w,{}B,{}cy) L2 {:6}KB({}w,{}B,{}cy)",
            c.profile.name,
            c.ipt,
            cfg.clock_ns,
            cfg.width,
            cfg.frontend_depth,
            cfg.rob_size,
            cfg.iq_size,
            cfg.lsq_size,
            cfg.wakeup_extra,
            cfg.sched_depth,
            cfg.l1.geometry.capacity_bytes() / 1024,
            cfg.l1.geometry.assoc,
            cfg.l1.geometry.block_bytes,
            cfg.l1.latency,
            cfg.l2.geometry.capacity_bytes() / 1024,
            cfg.l2.geometry.assoc,
            cfg.l2.geometry.block_bytes,
            cfg.l2.latency,
        );
    }
}
