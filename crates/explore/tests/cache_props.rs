//! Property test: for arbitrary valid design points, a cache-hit
//! evaluation returns exactly the `SimStats` a fresh simulation would.
//! This is the invariant that makes memoization safe inside annealing
//! walks — any drift would silently perturb the search.

use proptest::prelude::*;
use proptest::sample::select;
use xps_cacti::Technology;
use xps_explore::{DesignPoint, EvalCache};
use xps_sim::Simulator;
use xps_workload::{spec, TraceGenerator};

const OPS: u64 = 3000;

/// An arbitrary design point within the annealer's own move ranges.
/// Sampled as two tuples (core knobs, cache preferences) to stay
/// within the tuple-arity limit.
fn arb_point() -> impl Strategy<Value = DesignPoint> {
    let core = (
        0.08f64..1.2, // clock_ns
        1u32..=8,     // width
        1u32..=5,     // sched_depth
        0u32..=1,     // wakeup_slack
        1u32..=4,     // lsq_depth
        1u32..=8,     // l1_cycles
        2u32..=40,    // l2_cycles
    );
    let caches = (
        select(vec![1u32, 2, 4, 8, 16]),        // l1_assoc
        select(vec![8u32, 16, 32, 64, 128]),    // l1_block
        select(vec![1u32, 2, 4, 8, 16]),        // l2_assoc
        select(vec![32u32, 64, 128, 256, 512]), // l2_block
    );
    (core, caches).prop_map(
        |(
            (clock_ns, width, sched_depth, wakeup_slack, lsq_depth, l1_cycles, l2_cycles),
            (l1_assoc, l1_block, l2_assoc, l2_block),
        )| DesignPoint {
            clock_ns,
            width,
            sched_depth,
            wakeup_slack,
            lsq_depth,
            l1_cycles,
            l2_cycles,
            l1_assoc,
            l1_block,
            l2_assoc,
            l2_block,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cache_hit_equals_fresh_evaluation(
        point in arb_point(),
        bench in select(vec!["gzip", "mcf", "twolf", "gcc", "vpr"]),
    ) {
        let tech = Technology::default();
        let profile = spec::profile(bench).expect("known benchmark");
        // Some sampled points do not realize under the technology
        // (nothing fits the stage budget) — the annealer rejects those
        // moves, so the cache never sees them either.
        if let Some(cfg) = point.realize(&tech, "prop") {
            let fresh =
                Simulator::new(&cfg).run(TraceGenerator::new(profile.clone()), OPS);
            let cache = EvalCache::new();
            let miss = cache.stats(&profile, &cfg, OPS);
            let hit = cache.stats(&profile, &cfg, OPS);
            prop_assert_eq!(&miss, &fresh, "first (miss) evaluation must match fresh");
            prop_assert_eq!(&hit, &fresh, "second (hit) evaluation must match fresh");
            let c = cache.counters();
            prop_assert_eq!(c.hits, 1);
            prop_assert_eq!(c.misses, 1);
        }
    }
}
