//! Property tests of the checkpoint journal: records survive a
//! write → reopen cycle byte-for-byte for arbitrary keys and payloads,
//! f64 payloads round-trip bit-exactly through the JSON encoding (the
//! invariant that makes resumed runs byte-identical), and truncating
//! the file never yields garbage — only a detected error or a clean
//! prefix of the records.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use xps_explore::Journal;

static SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("xps-journal-props");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!(
        "{tag}-{}-{}.jsonl",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Task labels exercising the separator characters of the keyspace
/// plus JSON-hostile content (quotes, backslashes, non-ASCII).
fn arb_label() -> impl Strategy<Value = &'static str> {
    select(vec![
        "anneal",
        "seed",
        "rematrix",
        "a#b/c",
        "with space",
        "q\"uote",
        "back\\slash",
        "émigré",
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn records_survive_reopen_byte_for_byte(
        labels in vec(arb_label(), 5),
        fans in vec(0u64..1_000_000, 5),
        values in vec(-1.0e300f64..1.0e300, 5),
    ) {
        let path = tmp("roundtrip");
        let journal = Journal::create(&path).expect("create");
        let mut expect = Vec::new();
        for (i, ((label, fan), v)) in labels.iter().zip(&fans).zip(&values).enumerate() {
            let task = format!("{label}#{fan}/{i}");
            let value = serde_json::to_string(v).expect("serialize");
            journal.record(&task, value.clone()).expect("record");
            expect.push((task, value));
        }
        let back = Journal::open(&path).expect("reopen");
        prop_assert_eq!(back.loaded(), expect.len());
        for (task, value) in &expect {
            prop_assert_eq!(back.get(task).as_deref(), Some(value.as_str()));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn f64_payloads_roundtrip_bit_exactly(x in -1.0e300f64..1.0e300) {
        let json = serde_json::to_string(&x).expect("serialize");
        let back: f64 = serde_json::from_str(&json).expect("parse");
        prop_assert_eq!(back.to_bits(), x.to_bits(), "payload {} drifted", x);
    }

    #[test]
    fn truncation_yields_a_clean_prefix_or_a_detected_error(
        values in vec(-1.0e6f64..1.0e6, 3),
        cut in 1usize..120,
    ) {
        let path = tmp("truncate");
        let journal = Journal::create(&path).expect("create");
        let mut expect = Vec::new();
        for (i, v) in values.iter().enumerate() {
            let task = format!("cell#0/{i}");
            let value = serde_json::to_string(v).expect("serialize");
            journal.record(&task, value.clone()).expect("record");
            expect.push((task, value));
        }
        let bytes = std::fs::read(&path).expect("read");
        if cut < bytes.len() {
            std::fs::write(&path, &bytes[..bytes.len() - cut]).expect("truncate");
            match Journal::open(&path) {
                // A cut landing on a record boundary just loses the
                // tail: every record that does load must be
                // byte-identical.
                Ok(j) => {
                    prop_assert!(j.loaded() < expect.len());
                    for (task, value) in &expect {
                        if let Some(got) = j.get(task) {
                            prop_assert_eq!(&got, value);
                        }
                    }
                }
                // Mid-record cuts must be *detected*, never
                // half-parsed.
                Err(e) => {
                    let msg = e.to_string();
                    prop_assert!(!msg.is_empty());
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
