//! Property tests of the checkpoint journal: records survive a
//! write → reopen cycle byte-for-byte for arbitrary keys and payloads,
//! f64 payloads round-trip bit-exactly through the JSON encoding (the
//! invariant that makes resumed runs byte-identical), and truncating
//! the file never yields garbage — only a detected error or a clean
//! prefix of the records.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use xps_explore::{fnv64, Journal, JournalError};

static SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("xps-journal-props");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!(
        "{tag}-{}-{}.jsonl",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Task labels exercising the separator characters of the keyspace
/// plus JSON-hostile content (quotes, backslashes, non-ASCII).
fn arb_label() -> impl Strategy<Value = &'static str> {
    select(vec![
        "anneal",
        "seed",
        "rematrix",
        "a#b/c",
        "with space",
        "q\"uote",
        "back\\slash",
        "émigré",
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn records_survive_reopen_byte_for_byte(
        labels in vec(arb_label(), 5),
        fans in vec(0u64..1_000_000, 5),
        values in vec(-1.0e300f64..1.0e300, 5),
    ) {
        let path = tmp("roundtrip");
        let journal = Journal::create(&path).expect("create");
        let mut expect = Vec::new();
        for (i, ((label, fan), v)) in labels.iter().zip(&fans).zip(&values).enumerate() {
            let task = format!("{label}#{fan}/{i}");
            let value = serde_json::to_string(v).expect("serialize");
            journal.record(&task, value.clone()).expect("record");
            expect.push((task, value));
        }
        let back = Journal::open(&path).expect("reopen");
        prop_assert_eq!(back.loaded(), expect.len());
        for (task, value) in &expect {
            prop_assert_eq!(back.get(task).as_deref(), Some(value.as_str()));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn f64_payloads_roundtrip_bit_exactly(x in -1.0e300f64..1.0e300) {
        let json = serde_json::to_string(&x).expect("serialize");
        let back: f64 = serde_json::from_str(&json).expect("parse");
        prop_assert_eq!(back.to_bits(), x.to_bits(), "payload {} drifted", x);
    }

    #[test]
    fn truncation_yields_a_clean_prefix_or_a_detected_error(
        values in vec(-1.0e6f64..1.0e6, 3),
        cut in 1usize..120,
    ) {
        let path = tmp("truncate");
        let journal = Journal::create(&path).expect("create");
        let mut expect = Vec::new();
        for (i, v) in values.iter().enumerate() {
            let task = format!("cell#0/{i}");
            let value = serde_json::to_string(v).expect("serialize");
            journal.record(&task, value.clone()).expect("record");
            expect.push((task, value));
        }
        let bytes = std::fs::read(&path).expect("read");
        if cut < bytes.len() {
            std::fs::write(&path, &bytes[..bytes.len() - cut]).expect("truncate");
            match Journal::open(&path) {
                // A cut landing on a record boundary just loses the
                // tail: every record that does load must be
                // byte-identical.
                Ok(j) => {
                    prop_assert!(j.loaded() < expect.len());
                    for (task, value) in &expect {
                        if let Some(got) = j.get(task) {
                            prop_assert_eq!(&got, value);
                        }
                    }
                }
                // Mid-record cuts must be *detected*, never
                // half-parsed.
                Err(e) => {
                    let msg = e.to_string();
                    prop_assert!(!msg.is_empty());
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

// ---------------------------------------------------------------------------
// Direct corruption cases. The properties above sweep random cut
// points; these pin the two failure shapes a crashed run actually
// leaves behind — a half-written final record and a task recorded
// twice — to their exact recovery semantics.

/// A valid on-disk record line for `task`/`value`, checksummed the
/// same way the journal does (FNV over task then value).
fn record_line(task: &str, value: &str) -> String {
    let crc = format!(
        "{:016x}",
        fnv64(fnv64(0, task.as_bytes()), value.as_bytes())
    );
    format!(r#"{{"task":"{task}","crc":"{crc}","value":"{value}"}}"#)
}

#[test]
fn truncated_final_record_is_detected_with_its_line_number() {
    let path = tmp("cut-final");
    let journal = Journal::create(&path).expect("create");
    for i in 0..3 {
        journal
            .record(&format!("cell#0/{i}"), format!("{}.5", i))
            .expect("record");
    }
    drop(journal);
    let bytes = std::fs::read(&path).expect("read");
    // Chop into the middle of the last record (newline plus a few
    // payload bytes), as an interrupted non-atomic write would.
    std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("truncate");
    match Journal::open(&path) {
        Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 3, "blames the cut record"),
        other => panic!("expected Corrupt at line 3, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncation_on_a_record_boundary_loads_the_clean_prefix() {
    let path = tmp("cut-boundary");
    let journal = Journal::create(&path).expect("create");
    for i in 0..3 {
        journal
            .record(&format!("cell#0/{i}"), format!("{}.5", i))
            .expect("record");
    }
    drop(journal);
    let text = std::fs::read_to_string(&path).expect("read");
    let lines: Vec<&str> = text.lines().collect();
    std::fs::write(&path, format!("{}\n{}\n", lines[0], lines[1])).expect("truncate");
    let back = Journal::open(&path).expect("a clean prefix reopens");
    assert_eq!(back.loaded(), 2);
    assert_eq!(back.get("cell#0/0").as_deref(), Some("0.5"));
    assert_eq!(back.get("cell#0/1").as_deref(), Some("1.5"));
    assert_eq!(back.get("cell#0/2"), None, "the lost tail re-executes");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn duplicate_task_on_disk_keeps_the_last_record() {
    // Two records for the same task (e.g. the file of a run that was
    // resumed with an older journal appended): the later line wins,
    // and the journal counts one record, not two.
    let path = tmp("dup-disk");
    let text = format!(
        "{}\n{}\n{}\n",
        record_line("anneal#0/0", "1.25"),
        record_line("anneal#0/1", "2.5"),
        record_line("anneal#0/0", "9.75"),
    );
    std::fs::write(&path, &text).expect("write");
    let journal = Journal::open(&path).expect("open");
    assert_eq!(journal.loaded(), 2, "duplicates collapse");
    assert_eq!(journal.get("anneal#0/0").as_deref(), Some("9.75"));
    assert_eq!(journal.get("anneal#0/1").as_deref(), Some("2.5"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn re_recording_a_task_overwrites_in_memory_and_on_disk() {
    let path = tmp("dup-record");
    let journal = Journal::create(&path).expect("create");
    journal.record("anneal#0/0", "1.0".into()).expect("record");
    journal
        .record("anneal#0/0", "2.0".into())
        .expect("re-record");
    assert_eq!(journal.get("anneal#0/0").as_deref(), Some("2.0"));
    drop(journal);
    let back = Journal::open(&path).expect("reopen");
    assert_eq!(back.loaded(), 1, "one task, one record");
    assert_eq!(back.get("anneal#0/0").as_deref(), Some("2.0"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_checksum_is_rejected_by_task_and_line() {
    let path = tmp("bad-crc");
    let good = record_line("anneal#0/0", "1.25");
    let tampered = good.replace("1.25", "1.26"); // payload changed, crc not
    std::fs::write(&path, format!("{good}\n{tampered}\n")).expect("write");
    match Journal::open(&path) {
        Err(JournalError::Checksum { task, line }) => {
            assert_eq!(task, "anneal#0/0");
            assert_eq!(line, 2);
        }
        other => panic!("expected Checksum at line 2, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}
