//! Behavioral contracts of the simulated-annealing walk: the cooling
//! schedule, greedy acceptance at near-zero temperature, and the
//! option-validation surface.

use std::sync::{Arc, Mutex, PoisonError};
use xps_cacti::Technology;
use xps_explore::{
    anneal_observed, AnnealOptions, DesignPoint, ExploreError, ProgressEvent, ProgressSink,
};
use xps_trace::{with_recorder, AttrValue, Event, EventKind, SpanRecorder};
use xps_workload::spec;

fn tiny_opts() -> AnnealOptions {
    let mut opts = AnnealOptions::quick();
    opts.iterations = 40;
    opts.eval_ops_early = 2_000;
    opts.eval_ops_late = 4_000;
    opts
}

/// Run one observed walk and capture both the progress steps and the
/// trace events.
fn run_walk(opts: &AnnealOptions) -> (Vec<(u32, f64, f64)>, Vec<Event>) {
    let profile = spec::profile("gzip").expect("known benchmark");
    let steps: Arc<Mutex<Vec<(u32, f64, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = {
        let steps = steps.clone();
        ProgressSink::new(move |ev| {
            if let ProgressEvent::AnnealStep {
                iteration,
                temperature,
                best,
                ..
            } = ev
            {
                steps.lock().unwrap_or_else(PoisonError::into_inner).push((
                    *iteration,
                    *temperature,
                    *best,
                ));
            }
        })
    };
    let tech = Technology::default();
    let (rec, _result) = with_recorder(SpanRecorder::new(), || {
        anneal_observed(
            &profile,
            &DesignPoint::initial(),
            opts,
            &tech,
            None,
            Some(&sink),
        )
    });
    let steps = steps.lock().unwrap_or_else(PoisonError::into_inner).clone();
    (steps, rec.finish())
}

fn walk_end_attr(events: &[Event], key: &str) -> u64 {
    let end = events
        .iter()
        .find(|e| e.kind == EventKind::End && e.name == "anneal.walk")
        .expect("walk End event recorded");
    match end.attrs.iter().find(|(k, _)| *k == key) {
        Some((_, AttrValue::U64(n))) => *n,
        other => panic!("attr `{key}` missing or not a counter: {other:?}"),
    }
}

#[test]
fn cooling_schedule_is_monotone_geometric() {
    let opts = tiny_opts();
    let (steps, _) = run_walk(&opts);
    assert_eq!(
        steps.len(),
        opts.iterations as usize,
        "one step per iteration"
    );
    // Iterations arrive in order, temperatures decay geometrically.
    for (i, &(iteration, temperature, _)) in steps.iter().enumerate() {
        assert_eq!(iteration, i as u32 + 1);
        let expected = opts.temperature * opts.cooling.powi(i as i32 + 1);
        assert!(
            (temperature - expected).abs() <= 1e-12 * expected,
            "step {iteration}: temperature {temperature} != {expected}"
        );
    }
    for pair in steps.windows(2) {
        assert!(
            pair[1].1 < pair[0].1,
            "temperature must strictly decrease: {} -> {}",
            pair[0].1,
            pair[1].1
        );
    }
    // The best-so-far series never regresses.
    for pair in steps.windows(2) {
        assert!(pair[1].2 >= pair[0].2, "best IPT is monotone");
    }
}

#[test]
fn near_zero_temperature_rejects_every_worse_move() {
    let mut opts = tiny_opts();
    opts.temperature = 1e-12;
    opts.cooling = 1.0; // stay frozen for the whole walk
    let (_, events) = run_walk(&opts);
    assert_eq!(
        walk_end_attr(&events, "accepted_worse"),
        0,
        "a frozen walk is greedy: no strictly-worse move may be accepted"
    );
    // The walk still moved: it accepted improvements or rejected
    // proposals, it did not stall.
    let decided = walk_end_attr(&events, "accepted") + walk_end_attr(&events, "rejected");
    assert!(decided > 0, "the walk must still evaluate moves");
}

#[test]
fn warm_walk_accepts_some_worse_moves() {
    // Sanity check of the previous test's instrument: with a hot,
    // slow-cooling schedule the same counter is non-zero, so the
    // zero above is meaningful.
    let mut opts = tiny_opts();
    opts.iterations = 80;
    opts.temperature = 10.0;
    opts.cooling = 0.999;
    let (_, events) = run_walk(&opts);
    assert!(
        walk_end_attr(&events, "accepted_worse") > 0,
        "a hot walk explores: some worse moves are accepted"
    );
}

type BreakFn = fn(&mut AnnealOptions);

#[test]
fn validate_rejects_each_broken_invariant_by_name() {
    let cases: [(&str, BreakFn, &str); 6] = [
        ("iterations", |o| o.iterations = 0, "iterations"),
        ("eval budget", |o| o.eval_ops_late = 0, "budgets"),
        (
            "early fraction",
            |o| o.early_fraction = 1.5,
            "early_fraction",
        ),
        ("temperature", |o| o.temperature = 0.0, "temperature"),
        ("cooling", |o| o.cooling = 1.1, "cooling"),
        (
            "rollback fraction",
            |o| o.rollback_fraction = -0.1,
            "rollback_fraction",
        ),
    ];
    for (label, break_it, needle) in cases {
        let mut opts = AnnealOptions::default();
        opts.validate().expect("defaults are valid");
        break_it(&mut opts);
        match opts.validate() {
            Err(ExploreError::InvalidOptions(msg)) => {
                assert!(
                    msg.contains(needle),
                    "{label}: message `{msg}` lacks `{needle}`"
                );
            }
            other => panic!("{label}: expected InvalidOptions, got {other:?}"),
        }
    }
    // NaN is rejected everywhere a float invariant exists.
    for break_it in [
        (|o: &mut AnnealOptions| o.temperature = f64::NAN) as fn(&mut AnnealOptions),
        |o| o.cooling = f64::NAN,
        |o| o.early_fraction = f64::NAN,
        |o| o.rollback_fraction = f64::NAN,
    ] {
        let mut opts = AnnealOptions::default();
        break_it(&mut opts);
        assert!(opts.validate().is_err(), "NaN must never validate");
    }
}
