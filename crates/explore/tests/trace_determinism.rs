//! The trace journal is part of the deterministic output surface:
//! running the identical campaign on one worker and on four must
//! produce byte-identical NDJSON, because tracks are keyed by task —
//! not by thread or completion order — and logical clocks are
//! per-task.

use xps_explore::{Campaign, EvalCache, ExploreOptions, RunContext};
use xps_trace::{with_recorder, TraceSink};
use xps_workload::spec;

/// Run one quick two-benchmark campaign under `jobs` workers and
/// return the serialized trace.
fn traced_run(jobs: usize) -> String {
    let profiles: Vec<_> = ["gzip", "mcf"]
        .iter()
        .map(|n| spec::profile(n).expect("known benchmark"))
        .collect();
    let mut opts = ExploreOptions::quick();
    opts.anneal.iterations = 6;
    opts.anneal.eval_ops_early = 2_000;
    opts.anneal.eval_ops_late = 4_000;
    opts.reanneal_iterations = 2;
    opts.jobs = jobs;
    let trace = TraceSink::new();
    let ctx = RunContext::new().with_trace(trace.clone());
    let cache = EvalCache::new();
    let explorer = Campaign::new(opts);
    let (root, result) = with_recorder(trace.recorder(), || {
        explorer.explore_recoverable(&profiles, &cache, &ctx)
    });
    trace.attach("main", root);
    result.expect("campaign succeeds");
    trace.to_ndjson()
}

#[test]
fn trace_journal_is_byte_identical_across_worker_counts() {
    let serial = traced_run(1);
    let parallel = traced_run(4);
    assert!(!serial.is_empty(), "the trace must record something");
    if serial != parallel {
        let diff = serial
            .lines()
            .zip(parallel.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        match diff {
            Some((i, (a, b))) => panic!(
                "trace diverges at line {}:\n  jobs=1: {a}\n  jobs=4: {b}",
                i + 1
            ),
            None => panic!(
                "trace lengths differ: {} vs {} bytes",
                serial.len(),
                parallel.len()
            ),
        }
    }
}

#[test]
fn trace_journal_is_stable_across_repeated_runs() {
    // Same worker count twice: catches any wall-clock or iteration-
    // order leak into the serialized events that the cross-jobs test
    // could miss if it leaked identically.
    assert_eq!(traced_run(2), traced_run(2));
}
