//! The explorer behavioral battery: every strategy in the portfolio
//! must (1) converge on a known-optimum toy grid, (2) spend exactly
//! its evaluation budget — counted at the cache seam, the only place
//! simulations happen, (3) be a pure function of its seed, and
//! (4) produce byte-identical results through the remote task
//! dispatcher. These are the contracts the equal-budget bake-off
//! stands on; an explorer that cheats any of them makes the
//! comparison meaningless.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xps_cacti::Technology;
use xps_explore::{
    explorer_by_name, search, EvalCache, RunContext, SearchOptions, TaskDispatcher, TaskSpec,
    EXPLORER_NAMES,
};
use xps_workload::{spec, WorkloadProfile};

fn gzip() -> WorkloadProfile {
    spec::profile("gzip").expect("gzip exists")
}

fn opts(budget: u64, seed: u64) -> SearchOptions {
    SearchOptions {
        budget,
        eval_ops: 4_000,
        seed,
    }
}

/// The toy grid: the coarse exploration lattice, small enough to
/// enumerate exhaustively. Its optimum is *known* — computed by brute
/// force — and every explorer, given a budget comparable to the
/// lattice size, must find a design at least as good as 95% of it.
/// (The explorers search the continuous neighbourhood space, so they
/// may legitimately beat the lattice.)
#[test]
fn every_explorer_converges_near_the_known_grid_optimum() {
    let tech = Technology::default();
    let profile = gzip();
    let cache = EvalCache::new();
    let grid_best = xps_explore::GridSpec::default()
        .points()
        .iter()
        .filter_map(|p| p.realize(&tech, &profile.name))
        .map(|cfg| cache.ipt(&profile, &cfg, 4_000))
        .fold(f64::MIN, f64::max);
    assert!(
        grid_best > 0.0,
        "the lattice must contain realizable points"
    );
    for name in EXPLORER_NAMES {
        let e = explorer_by_name(name).expect("registered");
        let r = search(&*e, &profile, &tech, &opts(120, 0x5EED), &cache).expect("searches");
        assert!(
            r.ipt >= 0.95 * grid_best,
            "{name} found {:.4} IPT, below 95% of the known grid optimum {:.4}",
            r.ipt,
            grid_best
        );
    }
}

/// Budget-exhaustion exactness, counted at the cache seam. A fresh
/// cache sees exactly one `stats` call per billed evaluation — no
/// explorer can simulate off the books, and none may stop early.
#[test]
fn budget_is_exact_at_the_cache_seam() {
    let tech = Technology::default();
    for name in EXPLORER_NAMES {
        for budget in [1, 7, 40] {
            let e = explorer_by_name(name).expect("registered");
            let cache = EvalCache::new();
            let r = search(&*e, &gzip(), &tech, &opts(budget, 3), &cache).expect("searches");
            assert_eq!(r.evals, budget, "{name} must spend exactly {budget}");
            let c = cache.counters();
            assert_eq!(
                c.hits + c.misses,
                budget,
                "{name}: the cache seam must see exactly one lookup per evaluation"
            );
        }
    }
}

/// Same seed, same everything; a different seed takes a visibly
/// different walk. The comparison is on the full serialized outcome —
/// point, config, curve, front — not just the headline IPT.
#[test]
fn outcomes_are_pure_functions_of_the_seed() {
    let tech = Technology::default();
    for name in EXPLORER_NAMES {
        let e = explorer_by_name(name).expect("registered");
        let run = |seed: u64| {
            let r =
                search(&*e, &gzip(), &tech, &opts(30, seed), &EvalCache::new()).expect("searches");
            serde_json::to_string(&r).expect("serializes")
        };
        assert_eq!(run(11), run(11), "{name} must be seed-deterministic");
        assert_ne!(
            run(11),
            run(12),
            "{name} ignored its seed — every walk would be identical"
        );
    }
}

/// The degenerate remote worker: executes search specs in-process via
/// the same wire path a fleet worker uses.
#[derive(Debug, Default)]
struct InProcessDispatcher {
    cache: EvalCache,
    served: AtomicU64,
}

impl TaskDispatcher for InProcessDispatcher {
    fn dispatch(&self, _key: &str, spec: &TaskSpec) -> Option<String> {
        self.served.fetch_add(1, Ordering::Relaxed);
        spec.execute(&self.cache).ok()
    }
}

/// A fan of searches through the dispatcher seam returns the same
/// bytes as the local closures — the property that lets `repro
/// bakeoff --workers ..` scale over a fleet without changing the
/// report.
#[test]
fn dispatched_searches_match_local_searches_byte_for_byte() {
    let tech = Technology::default();
    let profile = gzip();
    let o = opts(8, 5);
    let run = |dispatcher: Option<Arc<dyn TaskDispatcher>>| {
        let cache = EvalCache::new();
        let mut ctx = RunContext::new();
        if let Some(d) = dispatcher {
            ctx = ctx.with_dispatcher(d);
        }
        let fan = ctx
            .run_fan_tasks(
                2,
                "battery",
                EXPLORER_NAMES.len(),
                |i| Some(TaskSpec::search(&profile, EXPLORER_NAMES[i], &o, &tech)),
                |i| {
                    let e = explorer_by_name(EXPLORER_NAMES[i]).expect("registered");
                    search(&*e, &profile, &tech, &o, &cache).expect("searches")
                },
            )
            .expect("fan");
        let items: Vec<String> = fan
            .items
            .into_iter()
            .map(|r| serde_json::to_string(&r.expect("ok")).expect("serializes"))
            .collect();
        (items, ctx.remote_dispatched())
    };
    let dispatcher = Arc::new(InProcessDispatcher::default());
    let (local, r0) = run(None);
    let (remote, r1) = run(Some(dispatcher.clone()));
    assert_eq!(r0, 0);
    assert_eq!(r1, EXPLORER_NAMES.len() as u64, "every search went remote");
    assert_eq!(
        dispatcher.served.load(Ordering::Relaxed),
        EXPLORER_NAMES.len() as u64
    );
    assert_eq!(local, remote, "the wire round trip must not move a byte");
}
