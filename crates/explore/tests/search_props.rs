//! Property tests for the GA's operators and the budget seam's
//! best-tracking. The operators must be *closed over the move-kernel
//! domain* — any child of valid parents passes
//! [`DesignPoint::validate`] — because the genetic explorer feeds
//! children straight to the budget, and an out-of-domain point would
//! make the bake-off compare strategies over different spaces. And a
//! genetic run must never lose its incumbent best (elitism): the
//! reported result is the maximum over everything ever measured.

use proptest::prelude::*;
use proptest::sample::select;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use xps_cacti::Technology;
use xps_explore::{
    crossover, mutate, search, DesignPoint, EvalCache, GeneticExplorer, SearchOptions,
};
use xps_workload::spec;

/// An arbitrary design point inside the move-kernel domain — the same
/// ranges [`DesignPoint::validate`] checks.
fn arb_point() -> impl Strategy<Value = DesignPoint> {
    let core = (
        0.08f64..1.2, // clock_ns
        1u32..=8,     // width
        1u32..=5,     // sched_depth
        0u32..=1,     // wakeup_slack
        1u32..=4,     // lsq_depth
        1u32..=8,     // l1_cycles
        2u32..=40,    // l2_cycles
    );
    let caches = (
        select(vec![1u32, 2, 4, 8, 16]),        // l1_assoc
        select(vec![8u32, 16, 32, 64, 128]),    // l1_block
        select(vec![1u32, 2, 4, 8, 16]),        // l2_assoc
        select(vec![32u32, 64, 128, 256, 512]), // l2_block
    );
    (core, caches).prop_map(
        |(
            (clock_ns, width, sched_depth, wakeup_slack, lsq_depth, l1_cycles, l2_cycles),
            (l1_assoc, l1_block, l2_assoc, l2_block),
        )| DesignPoint {
            clock_ns,
            width,
            sched_depth,
            wakeup_slack,
            lsq_depth,
            l1_cycles,
            l2_cycles,
            l1_assoc,
            l1_block,
            l2_assoc,
            l2_block,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crossover of two in-domain parents yields an in-domain child,
    /// for any RNG stream.
    #[test]
    fn crossover_is_closed_over_the_domain(
        a in arb_point(),
        b in arb_point(),
        seed in any::<u64>(),
    ) {
        prop_assert!(a.validate().is_ok() && b.validate().is_ok());
        let mut rng = SmallRng::seed_from_u64(seed);
        let child = crossover(&mut rng, &a, &b);
        prop_assert!(
            child.validate().is_ok(),
            "invalid child {child:?} from valid parents"
        );
    }

    /// A chain of mutations never leaves the domain — the move kernel
    /// clamps every knob to its admissible range.
    #[test]
    fn mutation_chains_are_closed_over_the_domain(
        p in arb_point(),
        seed in any::<u64>(),
    ) {
        prop_assert!(p.validate().is_ok());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut q = p;
        for step in 0..8 {
            q = mutate(&mut rng, &q);
            prop_assert!(
                q.validate().is_ok(),
                "mutation step {step} left the domain: {q:?}"
            );
        }
    }
}

proptest! {
    // Each case runs a real (tiny) genetic search, so keep the count
    // small; determinism makes the sample reliable anyway.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Elitism: for any seed, the genetic run's reported best equals
    /// the running maximum of its own convergence curve and never
    /// falls below the start incumbent — the best individual is
    /// carried through every generation, never lost to selection.
    #[test]
    fn genetic_never_loses_the_incumbent_best(seed in any::<u64>()) {
        let tech = Technology::default();
        let profile = spec::profile("gzip").expect("gzip exists");
        let opts = SearchOptions { budget: 15, eval_ops: 2_000, seed };
        let r = search(&GeneticExplorer, &profile, &tech, &opts, &EvalCache::new())
            .expect("searches");
        let start_ipt = r.curve[0].ipt;
        let curve_max = r.curve.iter().map(|c| c.ipt).fold(f64::MIN, f64::max);
        prop_assert!(r.ipt >= start_ipt, "lost the start incumbent");
        prop_assert!(
            (r.ipt - curve_max).abs() < 1e-12,
            "reported {} but the curve reached {}",
            r.ipt,
            curve_max
        );
        prop_assert!(
            r.curve.windows(2).all(|w| w[0].ipt < w[1].ipt),
            "the best-so-far curve must be strictly improving"
        );
    }
}
