//! Exhaustive grid search over a coarse design-space lattice.
//!
//! The paper contrasts two exploration regimes (its Figure 3 and §2.3):
//! exhaustive search, feasible only after the space is cut down, and
//! guided search (simulated annealing) over the full space. This module
//! supplies the exhaustive baseline: a coarse but *complete* lattice of
//! design points. It serves two purposes:
//!
//! * validation — on the lattice itself, annealing restricted to
//!   lattice moves can be compared against the true lattice optimum
//!   (`tests`);
//! * honesty about cost — [`GridSpec::len`] makes the combinatorial
//!   explosion the paper talks about a number you can print.

use crate::anneal::{score_with, AnnealOptions};
use crate::cache::EvalCache;
use crate::parallel::run_parallel;
use crate::point::DesignPoint;
use serde::{Deserialize, Serialize};
use xps_cacti::Technology;
use xps_sim::CoreConfig;
use xps_workload::WorkloadProfile;

/// The lattice: every combination of the listed values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Clock periods, ns.
    pub clocks: Vec<f64>,
    /// Widths.
    pub widths: Vec<u32>,
    /// Scheduler depths.
    pub sched_depths: Vec<u32>,
    /// L1 latencies, cycles.
    pub l1_cycles: Vec<u32>,
    /// L2 latencies, cycles.
    pub l2_cycles: Vec<u32>,
}

impl Default for GridSpec {
    /// A deliberately coarse lattice (~200 points) that still spans the
    /// paper's Table 4 ranges.
    fn default() -> GridSpec {
        GridSpec {
            clocks: vec![0.21, 0.28, 0.36, 0.45],
            widths: vec![4, 6, 8],
            sched_depths: vec![1, 2, 3],
            l1_cycles: vec![2, 3, 5],
            l2_cycles: vec![8, 14, 22],
        }
    }
}

impl GridSpec {
    /// Number of lattice points (before unrealizable ones are
    /// discarded).
    pub fn len(&self) -> usize {
        self.clocks.len()
            * self.widths.len()
            * self.sched_depths.len()
            * self.l1_cycles.len()
            * self.l2_cycles.len()
    }

    /// True if any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize every lattice point (cache-shape preferences and
    /// the LSQ depth stay at the Table 3 defaults; sizes are fitted as
    /// always).
    pub fn points(&self) -> Vec<DesignPoint> {
        let mut out = Vec::with_capacity(self.len());
        for &clock in &self.clocks {
            for &width in &self.widths {
                for &sched in &self.sched_depths {
                    for &l1 in &self.l1_cycles {
                        for &l2 in &self.l2_cycles {
                            let mut p = DesignPoint::initial();
                            p.clock_ns = clock;
                            p.width = width;
                            p.sched_depth = sched;
                            p.l1_cycles = l1;
                            p.l2_cycles = l2;
                            out.push(p);
                        }
                    }
                }
            }
        }
        out
    }
}

/// The outcome of an exhaustive lattice search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridResult {
    /// The best lattice point.
    pub point: DesignPoint,
    /// Its realized configuration.
    pub config: CoreConfig,
    /// Its objective score.
    pub score: f64,
    /// Lattice points evaluated (realizable ones).
    pub evaluated: usize,
    /// Lattice points that failed to realize.
    pub unrealizable: usize,
}

/// Exhaustively evaluate the lattice for one workload and return the
/// best point.
///
/// # Panics
///
/// Panics if the grid is empty or no lattice point realizes.
pub fn grid_search(
    profile: &WorkloadProfile,
    spec: &GridSpec,
    opts: &AnnealOptions,
    tech: &Technology,
) -> GridResult {
    grid_search_with(profile, spec, opts, tech, 1, None)
}

/// [`grid_search`] fanned out over `jobs` workers (0 = available
/// parallelism), optionally memoizing evaluations in `cache` so a grid
/// baseline shared across workloads or repeated after exploration never
/// re-simulates a lattice point.
///
/// Lattice points are evaluated in parallel but merged in lattice
/// order with the serial tie-break (first of equals wins), so the
/// result is identical for every worker count.
///
/// # Panics
///
/// Panics if the grid is empty or no lattice point realizes.
pub fn grid_search_with(
    profile: &WorkloadProfile,
    spec: &GridSpec,
    opts: &AnnealOptions,
    tech: &Technology,
    jobs: usize,
    cache: Option<&EvalCache>,
) -> GridResult {
    assert!(!spec.is_empty(), "grid must have at least one point");
    let points = spec.points();
    let fan = run_parallel(jobs, points.len(), |i| {
        points[i].realize(tech, &profile.name).map(|cfg| {
            let s = score_with(
                profile,
                &cfg,
                opts.eval_ops_late,
                opts.objective,
                tech,
                cache,
            );
            (cfg, s)
        })
    });
    let mut best: Option<(DesignPoint, CoreConfig, f64)> = None;
    let mut evaluated = 0;
    let mut unrealizable = 0;
    for (p, outcome) in points.into_iter().zip(fan.results) {
        match outcome {
            Some((cfg, s)) => {
                evaluated += 1;
                if best.as_ref().map(|(_, _, bs)| s > *bs).unwrap_or(true) {
                    best = Some((p, cfg, s));
                }
            }
            None => unrealizable += 1,
        }
    }
    // xps-allow(no-unwrap-in-lib): the lattice includes the validated Table 3 start, which always realizes
    let (point, config, score) = best.expect("at least one lattice point must realize");
    GridResult {
        point,
        config,
        score,
        evaluated,
        unrealizable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anneal::anneal;
    use xps_workload::spec;

    fn tiny_grid() -> GridSpec {
        GridSpec {
            clocks: vec![0.28, 0.40],
            widths: vec![4, 8],
            sched_depths: vec![1, 2],
            l1_cycles: vec![3],
            l2_cycles: vec![10],
        }
    }

    #[test]
    fn grid_enumerates_fully() {
        let g = tiny_grid();
        assert_eq!(g.len(), 8);
        assert_eq!(g.points().len(), 8);
        assert!(!g.is_empty());
    }

    #[test]
    fn grid_search_finds_a_realizable_optimum() {
        let tech = Technology::default();
        let p = spec::profile("gzip").expect("gzip exists");
        let mut opts = AnnealOptions::quick();
        opts.eval_ops_late = 20_000;
        let r = grid_search(&p, &tiny_grid(), &opts, &tech);
        assert!(r.score > 0.0);
        assert_eq!(r.evaluated + r.unrealizable, 8);
        r.config.validate().expect("grid optimum is valid");
    }

    #[test]
    fn annealing_approaches_the_coarse_grid_optimum() {
        // On the full continuous space the annealer should not be far
        // below the optimum of a coarse lattice it contains.
        let tech = Technology::default();
        let p = spec::profile("gap").expect("gap exists");
        let mut opts = AnnealOptions::quick();
        opts.iterations = 120;
        opts.eval_ops_late = 20_000;
        opts.eval_ops_early = 10_000;
        let grid = grid_search(&p, &GridSpec::default(), &opts, &tech);
        let annealed = anneal(&p, &DesignPoint::initial(), &opts, &tech);
        assert!(
            annealed.ipt > grid.score * 0.9,
            "annealing ({}) must come close to the lattice optimum ({})",
            annealed.ipt,
            grid.score
        );
    }

    #[test]
    fn parallel_grid_matches_serial_and_caches() {
        let tech = Technology::default();
        let p = spec::profile("mcf").expect("mcf exists");
        let mut opts = AnnealOptions::quick();
        opts.eval_ops_late = 10_000;
        let serial = grid_search(&p, &tiny_grid(), &opts, &tech);
        let cache = EvalCache::new();
        let par = grid_search_with(&p, &tiny_grid(), &opts, &tech, 4, Some(&cache));
        assert_eq!(serial.point, par.point);
        assert_eq!(serial.config, par.config);
        assert!((serial.score - par.score).abs() == 0.0);
        // A second sweep over the same lattice is served entirely from
        // the cache.
        let misses = cache.counters().misses;
        let again = grid_search_with(&p, &tiny_grid(), &opts, &tech, 2, Some(&cache));
        assert_eq!(again.point, serial.point);
        assert_eq!(cache.counters().misses, misses);
        assert!(cache.counters().hits >= misses);
    }

    #[test]
    #[should_panic(expected = "grid must have")]
    fn empty_grid_panics() {
        let tech = Technology::default();
        let p = spec::profile("gzip").expect("gzip exists");
        let g = GridSpec {
            clocks: vec![],
            ..GridSpec::default()
        };
        grid_search(&p, &g, &AnnealOptions::quick(), &tech);
    }
}
