//! A minimal scoped worker pool for deterministic fan-out.
//!
//! The exploration layer parallelizes three independent-task shapes —
//! per-benchmark anneals with their multi-start corner seeds, the
//! cross-evaluation of every configuration on every workload, and grid
//! baselines. All three reduce to "evaluate item `i` of `n` with a pure
//! function": tasks never share mutable state, so the pool can hand
//! them out dynamically (work-stealing over an atomic counter) while
//! the caller merges results **in item order**, making the output
//! bit-identical to a serial run regardless of scheduling.
//!
//! Built on [`std::thread::scope`] only — no external runtime.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a `--jobs`-style knob to a concrete worker count: `0` means
/// "use the machine's available parallelism", anything else is taken
/// literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        jobs
    }
}

/// The outcome of one [`run_parallel`] fan-out.
#[derive(Debug)]
pub struct ParallelRun<T> {
    /// Per-item results, in item order (index `i` holds `f(i)`).
    pub results: Vec<T>,
    /// How many items each worker evaluated; one entry per worker.
    pub per_worker: Vec<u64>,
}

/// Evaluate `f(0), f(1), …, f(n - 1)` on a pool of `jobs` workers
/// (0 = available parallelism) and return the results in item order.
///
/// Items are claimed dynamically from a shared counter so an uneven
/// workload still balances, but because `f` is required to be a pure
/// function of its index, the merged `results` vector is independent of
/// which worker ran what. `jobs == 1` (or `n <= 1`) degenerates to a
/// serial loop on the calling thread with no spawning overhead.
pub fn run_parallel<T, F>(jobs: usize, n: usize, f: F) -> ParallelRun<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_jobs(jobs).min(n.max(1));
    if workers <= 1 {
        let results: Vec<T> = (0..n).map(&f).collect();
        return ParallelRun {
            results,
            per_worker: vec![n as u64],
        };
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut per_worker = vec![0u64; workers];

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        mine.push((i, f(i)));
                    }
                    mine
                })
            })
            .collect();
        for (w, handle) in handles.into_iter().enumerate() {
            // A worker thread only unwinds when `f` itself panicked —
            // the recovery layer catches per-task panics before they
            // get here. Re-raise the original payload on the caller
            // thread so the real message (not a generic join error)
            // reaches the user.
            let mine = match handle.join() {
                Ok(mine) => mine,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            per_worker[w] = mine.len() as u64;
            for (i, value) in mine {
                slots[i] = Some(value);
            }
        }
    });

    let results = slots
        .into_iter()
        // xps-allow(no-unwrap-in-lib): the claim counter hands each index to exactly one worker; every slot is filled at join
        .map(|s| s.expect("every item claimed exactly once"))
        .collect();
    ParallelRun {
        results,
        per_worker,
    }
}

/// Accumulate one fan-out's per-worker counts into a running total,
/// growing the total if this run used more workers than any before it.
pub fn merge_counts(total: &mut Vec<u64>, part: &[u64]) {
    if total.len() < part.len() {
        total.resize(part.len(), 0);
    }
    for (t, p) in total.iter_mut().zip(part) {
        *t += p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_item_order_any_worker_count() {
        for jobs in [1, 2, 3, 4, 9] {
            let run = run_parallel(jobs, 23, |i| i * i);
            assert_eq!(run.results, (0..23).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(run.per_worker.iter().sum::<u64>(), 23, "jobs {jobs}");
        }
    }

    #[test]
    fn zero_items_and_single_item() {
        let run = run_parallel(4, 0, |i| i);
        assert!(run.results.is_empty());
        assert_eq!(run.per_worker, vec![0]);
        let run = run_parallel(4, 1, |i| i + 10);
        assert_eq!(run.results, vec![10]);
    }

    #[test]
    fn resolve_jobs_zero_means_machine() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    fn merge_counts_grows_and_adds() {
        let mut total = vec![1, 2];
        merge_counts(&mut total, &[10, 10, 10]);
        assert_eq!(total, vec![11, 12, 10]);
        merge_counts(&mut total, &[1]);
        assert_eq!(total, vec![12, 12, 10]);
    }
}
