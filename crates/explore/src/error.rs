//! Typed errors for the exploration pipeline.
//!
//! The crash-safety layer never reports failures as bare strings: every
//! way a run can go wrong has a variant here, so callers can
//! distinguish "a task kept panicking" from "the journal on disk is
//! corrupt" from "the options are nonsense" and react accordingly
//! (retry, degrade, or refuse to start).

use crate::journal::JournalError;
use std::fmt;

/// The terminal failure mode of one task, after its retry budget was
/// spent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskFailure {
    /// The task panicked; carries the panic message when it was a
    /// string payload (the common case), or a placeholder otherwise.
    Panicked(String),
    /// The task failed with an injected (or otherwise reported) error.
    Failed(String),
    /// The task was skipped because the run was cancelled (graceful
    /// shutdown); it was never attempted and is *not* a failure — a
    /// resumed run re-executes it.
    Cancelled,
}

impl fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskFailure::Panicked(msg) => write!(f, "panicked: {msg}"),
            TaskFailure::Failed(msg) => write!(f, "failed: {msg}"),
            TaskFailure::Cancelled => write!(f, "cancelled before execution"),
        }
    }
}

/// One task (an anneal, a cross evaluation, a matrix cell) that failed
/// on every attempt. The surrounding run keeps going — the error is
/// recorded, reported, and the result degraded — unless nothing at all
/// survived (see [`ExploreError::WorkloadFailed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Stable identity of the task in the run's journal keyspace,
    /// e.g. `anneal#0/4`.
    pub task: String,
    /// Attempts made (1 + retries).
    pub attempts: u32,
    /// How the final attempt failed.
    pub failure: TaskFailure,
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task `{}` {} after {} attempt(s)",
            self.task, self.failure, self.attempts
        )
    }
}

impl std::error::Error for TaskError {}

/// Everything that can abort an exploration run.
///
/// Per-task failures do **not** abort a run (they degrade it and are
/// listed in the run's [`RecoveryStats`](crate::RecoveryStats)); these
/// are the conditions with no sensible degradation.
#[derive(Debug)]
pub enum ExploreError {
    /// The options violate an invariant (caught at construction, not
    /// deep inside an anneal).
    InvalidOptions(String),
    /// The workload set is empty.
    EmptyWorkloads,
    /// Every multi-start anneal of one workload failed permanently, so
    /// there is no configuration to report for it.
    WorkloadFailed {
        /// The workload whose anneals all failed.
        workload: String,
        /// The last start's terminal error.
        error: TaskError,
    },
    /// The checkpoint journal could not be read or written.
    Journal(JournalError),
    /// The run was cancelled (graceful shutdown). Completed tasks are
    /// already journaled, so a resumed run picks up where this one
    /// stopped.
    Cancelled,
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::InvalidOptions(msg) => write!(f, "invalid exploration options: {msg}"),
            ExploreError::EmptyWorkloads => write!(f, "need at least one workload"),
            ExploreError::WorkloadFailed { workload, error } => {
                write!(f, "every anneal of `{workload}` failed; last: {error}")
            }
            ExploreError::Journal(e) => write!(f, "journal: {e}"),
            ExploreError::Cancelled => {
                write!(
                    f,
                    "run cancelled; completed tasks are checkpointed for resume"
                )
            }
        }
    }
}

impl std::error::Error for ExploreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExploreError::WorkloadFailed { error, .. } => Some(error),
            ExploreError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JournalError> for ExploreError {
    fn from(e: JournalError) -> ExploreError {
        ExploreError::Journal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_carry_context() {
        let t = TaskError {
            task: "anneal#0/2".into(),
            attempts: 3,
            failure: TaskFailure::Panicked("boom".into()),
        };
        let s = t.to_string();
        assert!(s.contains("anneal#0/2") && s.contains("3 attempt") && s.contains("boom"));
        let e = ExploreError::WorkloadFailed {
            workload: "mcf".into(),
            error: t,
        };
        assert!(e.to_string().contains("mcf"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(ExploreError::EmptyWorkloads
            .to_string()
            .contains("at least one workload"));
    }
}
