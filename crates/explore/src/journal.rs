//! Crash-safe checkpoint journal for exploration runs.
//!
//! A full campaign is hours of independent tasks — 33 multi-start
//! anneals, hundreds of cross-matrix cells, replacement-pass
//! re-measurements. The journal is a write-ahead record of every
//! *completed* task result: as each task finishes, its result is
//! serialized, checksummed, and persisted, so an interrupt (SIGKILL,
//! OOM, power loss) costs at most the tasks that were in flight.
//! Because the engine is deterministic, replaying the journal and
//! re-running only the missing tasks reproduces the uninterrupted run
//! byte for byte.
//!
//! Two properties make it crash-safe rather than merely convenient:
//!
//! * **Atomic persistence** — every write goes to a temp file in the
//!   same directory which is then renamed over the journal, so the
//!   on-disk file is always a complete, parseable snapshot; a torn
//!   write can never be observed.
//! * **Per-record checksums** — each line carries an FNV-1a checksum
//!   of its task key and payload; a flipped bit or hand-edited record
//!   surfaces as a typed [`JournalError::Checksum`] instead of
//!   silently steering a resumed run.
//!
//! The format is JSON lines (one record per line, sorted by task key),
//! human-inspectable with standard tools.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// Ways the journal can fail. Distinct from task failures: these are
/// about the checkpoint file itself.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O operation on the journal file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// What was being attempted (`read`, `write`, `rename`, …).
        op: &'static str,
        /// The underlying error.
        source: io::Error,
    },
    /// A line is not a valid journal record.
    Corrupt {
        /// The file involved.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// Parser detail.
        detail: String,
    },
    /// A record parsed but its checksum does not match its payload.
    Checksum {
        /// The task key of the offending record.
        task: String,
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, op, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            JournalError::Corrupt { path, line, detail } => {
                write!(f, "{}:{line}: corrupt record: {detail}", path.display())
            }
            JournalError::Checksum { task, line } => {
                write!(f, "line {line}: checksum mismatch on task `{task}`")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// FNV-1a over `bytes`, folded in after `seed`. Used for journal
/// record checksums and for deterministic fault selection; also
/// exported for the measured-results file in the bench harness.
pub fn fnv64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Write `contents` to `path` atomically: the bytes go to a temp file
/// in the same directory (so the rename cannot cross filesystems),
/// which is then renamed over `path`. Readers observe either the old
/// complete file or the new complete file, never a prefix.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    // xps-allow(no-raw-fs-write): this IS the atomic helper — the raw write goes to the temp sibling, never the data path
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// One persisted record: a task key, its serialized result, and a
/// checksum over both. The checksum is stored as fixed-width hex so
/// records remain valid JSON for any value.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Record {
    task: String,
    crc: String,
    value: String,
}

fn record_crc(task: &str, value: &str) -> String {
    format!(
        "{:016x}",
        fnv64(fnv64(0, task.as_bytes()), value.as_bytes())
    )
}

/// The write-ahead journal of one exploration run.
///
/// Thread-safe: workers record completed tasks concurrently; each
/// record is persisted (atomically) before `record` returns, so a
/// crash immediately afterwards still finds it on resume.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    inner: Mutex<BTreeMap<String, Record>>,
    loaded: usize,
}

impl Journal {
    /// Start a fresh journal at `path`, discarding any existing file.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the old file cannot be
    /// removed.
    pub fn create(path: impl Into<PathBuf>) -> Result<Journal, JournalError> {
        let path = path.into();
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(source) => {
                return Err(JournalError::Io {
                    path,
                    op: "remove",
                    source,
                })
            }
        }
        Ok(Journal {
            path,
            inner: Mutex::new(BTreeMap::new()),
            loaded: 0,
        })
    }

    /// Open the journal at `path` for a resumed run, replaying every
    /// record already on disk. A missing file is an empty journal, not
    /// an error (resume of a run that died before its first record).
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Corrupt`] / [`JournalError::Checksum`]
    /// when a record cannot be trusted — resuming from a damaged
    /// journal would silently diverge, so this is fatal by design.
    pub fn open(path: impl Into<PathBuf>) -> Result<Journal, JournalError> {
        let path = path.into();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(source) => {
                return Err(JournalError::Io {
                    path,
                    op: "read",
                    source,
                })
            }
        };
        let mut records = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec: Record = serde_json::from_str(line).map_err(|e| JournalError::Corrupt {
                path: path.clone(),
                line: i + 1,
                detail: e.to_string(),
            })?;
            if rec.crc != record_crc(&rec.task, &rec.value) {
                return Err(JournalError::Checksum {
                    task: rec.task,
                    line: i + 1,
                });
            }
            records.insert(rec.task.clone(), rec);
        }
        let loaded = records.len();
        Ok(Journal {
            path,
            inner: Mutex::new(records),
            loaded,
        })
    }

    /// The serialized result of `task`, when a previous (or the
    /// current) run completed it.
    pub fn get(&self, task: &str) -> Option<String> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(task)
            .map(|r| r.value.clone())
    }

    /// Record a completed task and persist the journal atomically
    /// before returning.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the snapshot cannot be
    /// written; the in-memory record is kept either way, so a later
    /// record may still persist it.
    pub fn record(&self, task: &str, value: String) -> Result<(), JournalError> {
        let rec = Record {
            task: task.to_string(),
            crc: record_crc(task, &value),
            value,
        };
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.insert(rec.task.clone(), rec);
        self.persist(&inner)
    }

    fn persist(&self, records: &BTreeMap<String, Record>) -> Result<(), JournalError> {
        let mut out = String::new();
        for rec in records.values() {
            // xps-allow(no-unwrap-in-lib): a Record is three plain strings; serializing it cannot fail
            out.push_str(&serde_json::to_string(rec).expect("journal records serialize"));
            out.push('\n');
        }
        write_atomic(&self.path, &out).map_err(|source| JournalError::Io {
            path: self.path.clone(),
            op: "write",
            source,
        })
    }

    /// Number of records currently held (loaded + recorded).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records replayed from disk when this journal was
    /// opened (0 for a fresh journal).
    pub fn loaded(&self) -> usize {
        self.loaded
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Delete the journal file (the run completed; the checkpoint has
    /// served its purpose). A missing file is fine.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] for any other removal failure.
    pub fn discard(self) -> Result<(), JournalError> {
        match std::fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(source) => Err(JournalError::Io {
                path: self.path,
                op: "remove",
                source,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("xps-journal-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn record_and_reopen_roundtrip() {
        let path = tmp("roundtrip");
        let j = Journal::create(&path).expect("create");
        j.record("a#0/0", "[1.5,2.5]".into()).expect("record");
        j.record("a#0/1", "\"text\"".into()).expect("record");
        assert_eq!(j.len(), 2);
        assert_eq!(j.loaded(), 0);
        let j2 = Journal::open(&path).expect("open");
        assert_eq!(j2.loaded(), 2);
        assert_eq!(j2.get("a#0/0").as_deref(), Some("[1.5,2.5]"));
        assert_eq!(j2.get("a#0/1").as_deref(), Some("\"text\""));
        assert_eq!(j2.get("missing"), None);
        j2.discard().expect("discard");
        assert!(!path.exists());
    }

    #[test]
    fn writes_are_atomic_no_temp_residue() {
        let path = tmp("atomic");
        let j = Journal::create(&path).expect("create");
        j.record("t#0/0", "1".into()).expect("record");
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        assert!(
            !PathBuf::from(tmp_name).exists(),
            "temp file must be renamed away"
        );
        assert!(path.exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_truncates_previous_run() {
        let path = tmp("truncate");
        let j = Journal::create(&path).expect("create");
        j.record("old#0/0", "1".into()).expect("record");
        let j = Journal::create(&path).expect("recreate");
        assert!(j.is_empty());
        assert_eq!(Journal::open(&path).expect("open").loaded(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_line_is_a_typed_error() {
        let path = tmp("corrupt");
        std::fs::write(&path, "{not json\n").expect("write");
        match Journal::open(&path) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checksum_mismatch_is_detected() {
        let path = tmp("checksum");
        let j = Journal::create(&path).expect("create");
        j.record("t#0/0", "3.25".into()).expect("record");
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, text.replace("3.25", "4.25")).expect("tamper");
        match Journal::open(&path) {
            Err(JournalError::Checksum { task, line }) => {
                assert_eq!(task, "t#0/0");
                assert_eq!(line, 1);
            }
            other => panic!("expected Checksum, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_opens_empty() {
        let path = tmp("missing-nonexistent");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).expect("open");
        assert!(j.is_empty());
        assert_eq!(j.loaded(), 0);
    }

    #[test]
    fn fnv64_distinguishes_seed_and_bytes() {
        assert_ne!(fnv64(0, b"abc"), fnv64(1, b"abc"));
        assert_ne!(fnv64(0, b"abc"), fnv64(0, b"abd"));
        assert_eq!(fnv64(7, b"abc"), fnv64(7, b"abc"));
    }
}
