//! Simulated annealing over the design space for one workload.

use crate::cache::EvalCache;
use crate::point::DesignPoint;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xps_cacti::Technology;
use xps_sim::{energy_delay_product, CoreConfig, SimStats};
use xps_trace::{ProgressEvent, ProgressSink};
use xps_workload::WorkloadProfile;

/// What the annealer maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Instructions per nanosecond — the paper's objective.
    Ipt,
    /// The reciprocal of the energy-delay product: the power-aware
    /// extension the paper's §3 leaves open. Scores are comparable
    /// only within a run (the annealer just needs an ordering).
    InverseEnergyDelay,
}

/// Tuning knobs of one annealing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnealOptions {
    /// Number of annealing iterations (accepted or not).
    pub iterations: u32,
    /// Trace length (ops) for evaluations in the early phase — the
    /// paper's "first 10 million instructions" stage, scaled.
    pub eval_ops_early: u64,
    /// Trace length for the late phase and the final measurement — the
    /// paper's 100 M SimPoint stage, scaled.
    pub eval_ops_late: u64,
    /// Fraction of iterations that run in the early (short-trace)
    /// phase.
    pub early_fraction: f64,
    /// Initial acceptance temperature, in IPT units.
    pub temperature: f64,
    /// Multiplicative cooling factor per iteration.
    pub cooling: f64,
    /// Roll back to the best point when current IPT falls below this
    /// fraction of the best (the paper uses one half).
    pub rollback_fraction: f64,
    /// RNG seed; combined with the workload seed so each benchmark's
    /// walk is independent but reproducible.
    pub seed: u64,
    /// The figure of merit being maximized.
    pub objective: Objective,
}

impl Default for AnnealOptions {
    fn default() -> AnnealOptions {
        AnnealOptions {
            iterations: 260,
            eval_ops_early: 60_000,
            eval_ops_late: 400_000,
            early_fraction: 0.7,
            temperature: 0.10,
            cooling: 0.985,
            rollback_fraction: 0.5,
            seed: 0x5EED,
            objective: Objective::Ipt,
        }
    }
}

impl AnnealOptions {
    /// A much cheaper setting for tests and demos.
    pub fn quick() -> AnnealOptions {
        AnnealOptions {
            iterations: 60,
            eval_ops_early: 15_000,
            eval_ops_late: 40_000,
            ..AnnealOptions::default()
        }
    }

    /// Check every invariant the annealing loop relies on, so bad
    /// options fail at construction with one actionable message
    /// instead of panicking (or spinning) deep inside a walk.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidOptions`] naming the first
    /// violated invariant.
    pub fn validate(&self) -> Result<(), crate::ExploreError> {
        let bad = |msg: String| Err(crate::ExploreError::InvalidOptions(msg));
        if self.iterations == 0 {
            return bad("iterations must be >= 1".into());
        }
        if self.eval_ops_early == 0 || self.eval_ops_late == 0 {
            return bad(format!(
                "evaluation budgets must be >= 1 op (early {}, late {})",
                self.eval_ops_early, self.eval_ops_late
            ));
        }
        if !(0.0..=1.0).contains(&self.early_fraction) {
            return bad(format!(
                "early_fraction {} outside [0, 1]",
                self.early_fraction
            ));
        }
        if !self.temperature.is_finite() || self.temperature <= 0.0 {
            return bad(format!("temperature {} must be positive", self.temperature));
        }
        if !self.cooling.is_finite() || self.cooling <= 0.0 || self.cooling > 1.0 {
            return bad(format!("cooling {} outside (0, 1]", self.cooling));
        }
        if !(0.0..=1.0).contains(&self.rollback_fraction) {
            return bad(format!(
                "rollback_fraction {} outside [0, 1]",
                self.rollback_fraction
            ));
        }
        Ok(())
    }
}

/// Outcome of one annealing run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnealResult {
    /// The best design point found.
    pub point: DesignPoint,
    /// Its realized configuration.
    pub config: CoreConfig,
    /// Its IPT measured at the late trace length.
    pub ipt: f64,
    /// IPT of the best point after each iteration (for convergence
    /// plots).
    pub history: Vec<f64>,
    /// How many proposed moves failed to realize (nothing fit).
    pub rejected_unrealizable: u32,
}

/// The stats of one evaluation, via the memoization cache when one is
/// supplied. Either way the trace generator is rebuilt from the
/// profile's own seed, so results never depend on annealing state.
fn stats_for(
    profile: &WorkloadProfile,
    cfg: &CoreConfig,
    ops: u64,
    cache: Option<&EvalCache>,
) -> SimStats {
    match cache {
        Some(cache) => cache.stats(profile, cfg, ops),
        None => xps_sim::evaluate(profile, cfg, ops),
    }
}

/// Evaluate a configuration under an explicit objective (higher is
/// better for both variants).
pub fn score(
    profile: &WorkloadProfile,
    cfg: &CoreConfig,
    ops: u64,
    objective: Objective,
    tech: &Technology,
) -> f64 {
    score_with(profile, cfg, ops, objective, tech, None)
}

/// [`score`] with an optional memoization cache. A cache hit returns
/// exactly the stats a fresh simulation would produce, so annealing
/// walks are unchanged by caching.
pub fn score_with(
    profile: &WorkloadProfile,
    cfg: &CoreConfig,
    ops: u64,
    objective: Objective,
    tech: &Technology,
    cache: Option<&EvalCache>,
) -> f64 {
    let stats = stats_for(profile, cfg, ops, cache);
    match objective {
        Objective::Ipt => stats.ipt(),
        Objective::InverseEnergyDelay => 1.0 / energy_delay_product(tech, cfg, &stats),
    }
}

/// Propose a neighbouring design point: either move the clock (all
/// units re-fit on realization), or move one unit's depth /
/// organization preference (that unit re-fits). Shared with the
/// explorer portfolio (`crate::search`): the GA's mutation operator
/// and the surrogate searcher's candidate generator use the same
/// move kernel so the bake-off compares strategies, not move sets.
pub(crate) fn propose(rng: &mut SmallRng, p: &DesignPoint) -> DesignPoint {
    let mut q = p.clone();
    match rng.gen_range(0..10u32) {
        // Clock moves get the largest share, as in the paper's loop.
        0..=2 => {
            let factor = rng.gen_range(0.85..1.18);
            q.clock_ns = (p.clock_ns * factor).clamp(0.08, 1.2);
        }
        3 => {
            q.width = if rng.gen() {
                (p.width + 1).min(8)
            } else {
                (p.width - 1).max(1)
            };
        }
        4 | 5 => {
            q.sched_depth = if rng.gen() {
                (p.sched_depth + 1).min(5)
            } else {
                (p.sched_depth - 1).max(1)
            };
            q.wakeup_slack = rng.gen_range(0..=1);
        }
        6 => {
            q.l1_cycles = if rng.gen() {
                (p.l1_cycles + 1).min(8)
            } else {
                (p.l1_cycles - 1).max(1)
            };
        }
        7 => {
            let step = rng.gen_range(1..=3);
            q.l2_cycles = if rng.gen() {
                (p.l2_cycles + step).min(40)
            } else {
                p.l2_cycles.saturating_sub(step).max(2)
            };
        }
        8 => {
            if rng.gen() {
                q.l1_assoc = DesignPoint::step_assoc(p.l1_assoc, rng.gen());
                q.l1_block = DesignPoint::step_block(p.l1_block, rng.gen());
            } else {
                q.l2_assoc = DesignPoint::step_assoc(p.l2_assoc, rng.gen());
                q.l2_block = DesignPoint::step_block(p.l2_block, rng.gen());
            }
        }
        _ => {
            q.lsq_depth = if rng.gen() {
                (p.lsq_depth + 1).min(4)
            } else {
                (p.lsq_depth - 1).max(1)
            };
        }
    }
    q
}

/// Run simulated annealing for one workload, starting from `start`
/// (use [`DesignPoint::initial`] for the paper's Table 3 start).
///
/// Deterministic for fixed `(profile, start, opts, tech)`.
pub fn anneal(
    profile: &WorkloadProfile,
    start: &DesignPoint,
    opts: &AnnealOptions,
    tech: &Technology,
) -> AnnealResult {
    anneal_with(profile, start, opts, tech, None)
}

/// [`anneal`] with an optional memoization cache shared across runs.
/// Rollback re-evaluations, cross-seeding, and repeated visits to one
/// design then reuse stats instead of re-simulating; because cached
/// stats are bit-identical to fresh ones and the walk RNG is never
/// consulted during evaluation, the result is bit-identical to an
/// uncached run.
pub fn anneal_with(
    profile: &WorkloadProfile,
    start: &DesignPoint,
    opts: &AnnealOptions,
    tech: &Technology,
    cache: Option<&EvalCache>,
) -> AnnealResult {
    anneal_observed(profile, start, opts, tech, cache, None)
}

/// [`anneal_with`] plus an optional progress sink that receives one
/// [`ProgressEvent::AnnealStep`] per iteration (tagged `start: 0`; a
/// multi-start caller re-tags through a wrapping sink). Observation is
/// read-only: the walk, and therefore the result, is bit-identical
/// with or without a sink.
pub fn anneal_observed(
    profile: &WorkloadProfile,
    start: &DesignPoint,
    opts: &AnnealOptions,
    tech: &Technology,
    cache: Option<&EvalCache>,
    sink: Option<&ProgressSink>,
) -> AnnealResult {
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ profile.seed);
    let name = profile.name.clone();
    let walk = xps_trace::span("anneal.walk");
    let (mut accepted, mut accepted_worse, mut rejected) = (0u32, 0u32, 0u32);
    let mut rollbacks = 0u32;

    let mut cur = start.clone();
    // A start that does not realize under this technology (e.g. a
    // fast-clock corner on a slow process) is relaxed by slowing its
    // clock until something fits — exploration then proceeds from the
    // nearest feasible point rather than failing.
    let cur_cfg = loop {
        match cur.realize(tech, &name) {
            Some(cfg) => break cfg,
            None => {
                assert!(
                    cur.clock_ns < 2.0,
                    "no realizable design even at a {} ns clock",
                    cur.clock_ns
                );
                cur.clock_ns *= 1.25;
            }
        }
    };
    let early_iters = (f64::from(opts.iterations) * opts.early_fraction) as u32;

    let mut cur_ipt = score_with(
        profile,
        &cur_cfg,
        opts.eval_ops_early,
        opts.objective,
        tech,
        cache,
    );
    let mut best = cur.clone();
    let mut best_cfg = cur_cfg;
    let mut best_ipt = cur_ipt;
    let mut temp = opts.temperature;
    let mut history = Vec::with_capacity(opts.iterations as usize);
    let mut rejected_unrealizable = 0;

    for it in 0..opts.iterations {
        let ops = if it < early_iters {
            opts.eval_ops_early
        } else {
            opts.eval_ops_late
        };
        let cand = propose(&mut rng, &cur);
        if let Some(cfg) = cand.realize(tech, &name) {
            let ipt = score_with(profile, &cfg, ops, opts.objective, tech, cache);
            let accept = ipt > cur_ipt || {
                let delta = ipt - cur_ipt;
                rng.gen::<f64>() < (delta / temp.max(1e-6)).exp()
            };
            if accept {
                accepted += 1;
                // Lateral (equal-IPT) moves are not "worse": only a
                // strict degradation counts, so at T ≈ 0 this counter
                // is exactly zero.
                if ipt < cur_ipt {
                    accepted_worse += 1;
                }
                cur = cand;
                cur_ipt = ipt;
            } else {
                rejected += 1;
            }
            xps_trace::instant("anneal.move", || {
                xps_trace::attrs([("it", (it + 1).into()), ("accepted", accept.into())])
            });
            if ipt > best_ipt {
                best = cur.clone();
                best_cfg = cfg;
                best_ipt = ipt;
            }
            // The paper's rule: if the walk degrades to less than half
            // the best seen, roll back to the best solution.
            if cur_ipt < opts.rollback_fraction * best_ipt {
                rollbacks += 1;
                cur = best.clone();
                cur_ipt = best_ipt;
            }
        } else {
            rejected_unrealizable += 1;
            xps_trace::instant("anneal.move", || {
                xps_trace::attrs([("it", (it + 1).into()), ("unrealizable", true.into())])
            });
        }
        temp *= opts.cooling;
        history.push(best_ipt);
        if let Some(sink) = sink {
            sink.emit(&ProgressEvent::AnnealStep {
                workload: name.clone(),
                start: 0,
                iteration: it + 1,
                iterations: opts.iterations,
                temperature: temp,
                best: best_ipt,
            });
        }
    }

    // Final measurement at the long trace length for a fair Table 5.
    let final_ipt = score_with(
        profile,
        &best_cfg,
        opts.eval_ops_late,
        opts.objective,
        tech,
        cache,
    );
    walk.end_with(|| {
        xps_trace::attrs([
            ("workload", name.as_str().into()),
            ("accepted", accepted.into()),
            ("accepted_worse", accepted_worse.into()),
            ("rejected", rejected.into()),
            ("rollbacks", rollbacks.into()),
            ("unrealizable", rejected_unrealizable.into()),
        ])
    });
    AnnealResult {
        point: best,
        config: best_cfg,
        ipt: final_ipt,
        history,
        rejected_unrealizable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xps_workload::spec;

    #[test]
    fn annealing_improves_over_initial() {
        let tech = Technology::default();
        let p = spec::profile("gzip").expect("gzip exists");
        let opts = AnnealOptions::quick();
        let start = DesignPoint::initial();
        let init_cfg = start.realize(&tech, "init").expect("realizable");
        let init_ipt = score(&p, &init_cfg, opts.eval_ops_late, Objective::Ipt, &tech);
        let result = anneal(&p, &start, &opts, &tech);
        assert!(
            result.ipt >= init_ipt * 0.98,
            "annealing must not end below the start: {} vs {init_ipt}",
            result.ipt
        );
        assert_eq!(result.history.len(), opts.iterations as usize);
    }

    #[test]
    fn history_is_monotone_nondecreasing() {
        let tech = Technology::default();
        let p = spec::profile("twolf").expect("twolf exists");
        let result = anneal(&p, &DesignPoint::initial(), &AnnealOptions::quick(), &tech);
        for w in result.history.windows(2) {
            assert!(w[1] >= w[0], "best-so-far curve never decreases");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let tech = Technology::default();
        let p = spec::profile("gap").expect("gap exists");
        let a = anneal(&p, &DesignPoint::initial(), &AnnealOptions::quick(), &tech);
        let b = anneal(&p, &DesignPoint::initial(), &AnnealOptions::quick(), &tech);
        assert_eq!(a.point, b.point);
        assert!((a.ipt - b.ipt).abs() < 1e-12);
    }

    #[test]
    fn cached_anneal_bit_identical_to_uncached() {
        let tech = Technology::default();
        let p = spec::profile("vpr").expect("vpr exists");
        let opts = AnnealOptions::quick();
        let plain = anneal(&p, &DesignPoint::initial(), &opts, &tech);
        let cache = EvalCache::new();
        let cached = anneal_with(&p, &DesignPoint::initial(), &opts, &tech, Some(&cache));
        assert_eq!(plain.point, cached.point);
        assert_eq!(plain.config, cached.config);
        assert!(
            (plain.ipt - cached.ipt).abs() == 0.0,
            "must be bit-identical"
        );
        assert_eq!(plain.history, cached.history);
        // Re-running against the warm cache hits for every evaluation
        // and still reproduces the identical walk.
        let before = cache.counters();
        let rerun = anneal_with(&p, &DesignPoint::initial(), &opts, &tech, Some(&cache));
        let after = cache.counters();
        assert_eq!(rerun.history, plain.history);
        assert_eq!(after.misses, before.misses, "warm rerun must not simulate");
        assert!(after.hits > before.hits);
    }

    #[test]
    fn edp_objective_prefers_leaner_designs() {
        use xps_sim::{estimate_energy, Simulator};
        use xps_workload::TraceGenerator;
        let tech = Technology::default();
        let p = spec::profile("gzip").expect("gzip exists");
        let mut perf_opts = AnnealOptions::quick();
        perf_opts.iterations = 80;
        let mut edp_opts = perf_opts.clone();
        edp_opts.objective = Objective::InverseEnergyDelay;
        let perf = anneal(&p, &DesignPoint::initial(), &perf_opts, &tech);
        let edp = anneal(&p, &DesignPoint::initial(), &edp_opts, &tech);
        let energy_of = |cfg: &xps_sim::CoreConfig| {
            let stats = Simulator::new(cfg).run(TraceGenerator::new(p.clone()), 30_000);
            estimate_energy(&tech, cfg, &stats).total_nj()
        };
        let e_perf = energy_of(&perf.config);
        let e_edp = energy_of(&edp.config);
        assert!(
            e_edp <= e_perf * 1.05,
            "EDP-optimized design must not burn more energy: {e_edp} vs {e_perf}"
        );
    }

    #[test]
    fn different_seeds_walk_differently() {
        let tech = Technology::default();
        let p = spec::profile("gap").expect("gap exists");
        let mut o1 = AnnealOptions::quick();
        o1.seed = 1;
        let mut o2 = AnnealOptions::quick();
        o2.seed = 2;
        let a = anneal(&p, &DesignPoint::initial(), &o1, &tech);
        let b = anneal(&p, &DesignPoint::initial(), &o2, &tech);
        // Not a hard guarantee, but with 60 iterations the walks
        // essentially always diverge.
        assert!(a.point != b.point || (a.ipt - b.ipt).abs() > 1e-9);
    }
}
