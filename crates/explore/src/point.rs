//! The annealer's search state and the clock/depth fit rule.

use serde::{Deserialize, Serialize};
use xps_cacti::{cache_access_time, fit, CacheGeometry, Technology};
use xps_sim::{CacheConfig, CoreConfig};

/// Candidate associativities explored for each cache level.
const ASSOC_STEPS: [u32; 5] = [1, 2, 4, 8, 16];
/// Candidate block sizes (bytes) explored for each cache level.
const BLOCK_STEPS: [u32; 7] = [8, 16, 32, 64, 128, 256, 512];
/// Minimum acceptable L1 capacity; below this the realization fails and
/// the move is rejected.
const MIN_L1_BYTES: u64 = 4 * 1024;

/// A point in the explored design space: everything the annealer is
/// free to change. Structure *sizes* are not here — they are derived by
/// [`DesignPoint::realize`], which fits each unit to its stage budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Clock period, ns.
    pub clock_ns: f64,
    /// Dispatch/issue/commit width.
    pub width: u32,
    /// Scheduler / register-file pipeline depth, stages.
    pub sched_depth: u32,
    /// Extra wakeup slack on top of `sched_depth - 1` (0 or 1); the
    /// realized wakeup latency is `sched_depth - 1 + wakeup_slack`,
    /// matching the (depth, min-awaken-latency) pairs of the paper's
    /// Table 4.
    pub wakeup_slack: u32,
    /// LSQ pipeline depth, stages.
    pub lsq_depth: u32,
    /// L1 access latency, cycles.
    pub l1_cycles: u32,
    /// L2 access latency, cycles.
    pub l2_cycles: u32,
    /// L1 associativity preference.
    pub l1_assoc: u32,
    /// L1 block size preference, bytes.
    pub l1_block: u32,
    /// L2 associativity preference.
    pub l2_assoc: u32,
    /// L2 block size preference, bytes.
    pub l2_block: u32,
}

impl DesignPoint {
    /// The paper's Table 3 starting point expressed as a design point.
    pub fn initial() -> DesignPoint {
        DesignPoint {
            clock_ns: 0.33,
            width: 3,
            sched_depth: 1,
            wakeup_slack: 1,
            lsq_depth: 2,
            l1_cycles: 4,
            l2_cycles: 12,
            l1_assoc: 2,
            l1_block: 64,
            l2_assoc: 4,
            l2_block: 128,
        }
    }

    /// A fast-clock, deeply-pipelined corner of the design space, used
    /// as an extra annealing start so small-footprint, predictable
    /// workloads can find the paper's crafty/perl-style customizations
    /// without having to cross the valley from the Table 3 start.
    pub fn fast_corner() -> DesignPoint {
        DesignPoint {
            clock_ns: 0.21,
            width: 6,
            sched_depth: 3,
            wakeup_slack: 0,
            lsq_depth: 2,
            l1_cycles: 3,
            l2_cycles: 8,
            l1_assoc: 2,
            l1_block: 32,
            l2_assoc: 4,
            l2_block: 128,
        }
    }

    /// A slow-clock, big-window corner (the paper's mcf-style shape):
    /// single-cycle scheduler with back-to-back wakeup, large caches.
    pub fn big_corner() -> DesignPoint {
        DesignPoint {
            clock_ns: 0.42,
            width: 4,
            sched_depth: 1,
            wakeup_slack: 0,
            lsq_depth: 2,
            l1_cycles: 3,
            l2_cycles: 16,
            l1_assoc: 2,
            l1_block: 64,
            l2_assoc: 8,
            l2_block: 256,
        }
    }

    /// Largest set count for which (`sets`, `assoc`, `block`) fits in
    /// `budget` ns, if any.
    fn fit_sets(tech: &Technology, budget: f64, assoc: u32, block: u32) -> Option<u32> {
        fit::CACHE_SETS
            .iter()
            .copied()
            .filter(|&sets| {
                cache_access_time(tech, &CacheGeometry::new(sets, assoc, block)) <= budget
            })
            .max()
    }

    /// Realize the point into a simulatable [`CoreConfig`] by fitting
    /// every sized unit into its stage budget, or `None` if any unit
    /// cannot fit at all (the move is then rejected, exactly as an
    /// unrealizable design is rejected in the paper's loop).
    pub fn realize(&self, tech: &Technology, name: &str) -> Option<CoreConfig> {
        if !(0.05..=2.0).contains(&self.clock_ns) {
            return None;
        }
        let sched_budget = fit::stage_budget(tech, self.clock_ns, self.sched_depth);
        let iq = fit::fit_issue_queue(tech, sched_budget, self.width)?;
        let rob = fit::fit_rob(tech, sched_budget, self.width)?;
        let iq = iq.min(rob);
        let lsq_budget = fit::stage_budget(tech, self.clock_ns, self.lsq_depth);
        let lsq = fit::fit_lsq(tech, lsq_budget)?;

        let l1_budget = fit::stage_budget(tech, self.clock_ns, self.l1_cycles);
        let l1_sets = Self::fit_sets(tech, l1_budget, self.l1_assoc, self.l1_block)?;
        let l1_geom = CacheGeometry::new(l1_sets, self.l1_assoc, self.l1_block);
        if l1_geom.capacity_bytes() < MIN_L1_BYTES {
            return None;
        }

        let l2_budget = fit::stage_budget(tech, self.clock_ns, self.l2_cycles);
        let l2_sets = Self::fit_sets(tech, l2_budget, self.l2_assoc, self.l2_block)?;
        let l2_geom = CacheGeometry::new(l2_sets, self.l2_assoc, self.l2_block);
        if l2_geom.capacity_bytes() < l1_geom.capacity_bytes() {
            return None;
        }

        let cfg = CoreConfig {
            name: name.to_string(),
            clock_ns: self.clock_ns,
            width: self.width,
            frontend_depth: CoreConfig::derived_frontend_depth(self.clock_ns, tech.latch_ns()),
            rob_size: rob,
            iq_size: iq,
            lsq_size: lsq,
            wakeup_extra: self.sched_depth - 1 + self.wakeup_slack,
            sched_depth: self.sched_depth,
            lsq_depth: self.lsq_depth,
            l1: CacheConfig {
                geometry: l1_geom,
                latency: self.l1_cycles,
            },
            l2: CacheConfig {
                geometry: l2_geom,
                latency: self.l2_cycles,
            },
        };
        cfg.validate().ok()?;
        Some(cfg)
    }

    /// Check that every knob lies inside the move kernel's domain:
    /// the bounds `crate::anneal`'s `propose` clamps to, plus the
    /// associativity/block candidate lists. All corners and lattice
    /// points satisfy this, and any sequence of proposal moves or
    /// field-wise recombinations of valid points preserves it — the
    /// invariant the GA operator proptests pin down.
    ///
    /// Domain validity is necessary but not sufficient for
    /// [`DesignPoint::realize`] to succeed: a valid point can still
    /// fail to fit under a given technology.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first knob outside its domain.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.08..=1.2).contains(&self.clock_ns) {
            return Err(format!("clock_ns {} outside [0.08, 1.2]", self.clock_ns));
        }
        if !(1..=8).contains(&self.width) {
            return Err(format!("width {} outside [1, 8]", self.width));
        }
        if !(1..=5).contains(&self.sched_depth) {
            return Err(format!("sched_depth {} outside [1, 5]", self.sched_depth));
        }
        if self.wakeup_slack > 1 {
            return Err(format!("wakeup_slack {} outside [0, 1]", self.wakeup_slack));
        }
        if !(1..=4).contains(&self.lsq_depth) {
            return Err(format!("lsq_depth {} outside [1, 4]", self.lsq_depth));
        }
        if !(1..=8).contains(&self.l1_cycles) {
            return Err(format!("l1_cycles {} outside [1, 8]", self.l1_cycles));
        }
        if !(2..=40).contains(&self.l2_cycles) {
            return Err(format!("l2_cycles {} outside [2, 40]", self.l2_cycles));
        }
        for (label, assoc) in [("l1_assoc", self.l1_assoc), ("l2_assoc", self.l2_assoc)] {
            if !ASSOC_STEPS.contains(&assoc) {
                return Err(format!("{label} {assoc} not in {ASSOC_STEPS:?}"));
            }
        }
        for (label, block) in [("l1_block", self.l1_block), ("l2_block", self.l2_block)] {
            if !BLOCK_STEPS.contains(&block) {
                return Err(format!("{label} {block} not in {BLOCK_STEPS:?}"));
            }
        }
        Ok(())
    }

    /// Step an associativity preference up or down the candidate list.
    pub(crate) fn step_assoc(cur: u32, up: bool) -> u32 {
        let i = ASSOC_STEPS.iter().position(|&a| a == cur).unwrap_or(0);
        let j = if up {
            (i + 1).min(ASSOC_STEPS.len() - 1)
        } else {
            i.saturating_sub(1)
        };
        ASSOC_STEPS[j]
    }

    /// Step a block-size preference up or down the candidate list.
    pub(crate) fn step_block(cur: u32, up: bool) -> u32 {
        let i = BLOCK_STEPS.iter().position(|&b| b == cur).unwrap_or(0);
        let j = if up {
            (i + 1).min(BLOCK_STEPS.len() - 1)
        } else {
            i.saturating_sub(1)
        };
        BLOCK_STEPS[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::default()
    }

    #[test]
    fn initial_point_realizes() {
        let cfg = DesignPoint::initial()
            .realize(&tech(), "init")
            .expect("Table 3 must be realizable");
        cfg.validate().expect("realized configs are valid");
        assert_eq!(cfg.width, 3);
        assert!(cfg.rob_size >= 128, "sched budget fits a decent ROB");
    }

    #[test]
    fn faster_clock_shrinks_structures() {
        // At identical pipeline depths, a faster clock leaves smaller
        // per-stage budgets, so every fitted structure shrinks (or
        // stays equal) — the Figure 2 coupling.
        let mut p = DesignPoint::initial();
        p.clock_ns = 0.45;
        let slow = p.realize(&tech(), "slow").expect("realizable");
        p.clock_ns = 0.30;
        let fast = p.realize(&tech(), "fast").expect("realizable");
        assert!(fast.rob_size <= slow.rob_size);
        assert!(fast.iq_size <= slow.iq_size);
        assert!(
            fast.l1.geometry.capacity_bytes() <= slow.l1.geometry.capacity_bytes(),
            "same-cycle L1 must shrink at a faster clock"
        );
        assert!(fast.l2.geometry.capacity_bytes() <= slow.l2.geometry.capacity_bytes());
    }

    #[test]
    fn deeper_cache_pipe_buys_capacity() {
        let mut p = DesignPoint::initial();
        p.l2_cycles = 6;
        let shallow = p.realize(&tech(), "a").expect("realizable");
        p.l2_cycles = 24;
        let deep = p.realize(&tech(), "b").expect("realizable");
        assert!(deep.l2.geometry.capacity_bytes() >= shallow.l2.geometry.capacity_bytes());
    }

    #[test]
    fn unrealizable_clock_rejected() {
        let mut p = DesignPoint::initial();
        p.clock_ns = 0.04; // below the floor
        assert!(p.realize(&tech(), "x").is_none());
        p.clock_ns = 5.0; // above the ceiling
        assert!(p.realize(&tech(), "x").is_none());
    }

    #[test]
    fn impossible_stage_budget_rejected() {
        let mut p = DesignPoint::initial();
        p.clock_ns = 0.08;
        p.sched_depth = 1;
        // At 0.08 ns no issue queue fits in one stage.
        assert!(p.realize(&tech(), "x").is_none());
    }

    #[test]
    fn wakeup_latency_derivation() {
        let mut p = DesignPoint::initial();
        p.sched_depth = 3;
        p.wakeup_slack = 0;
        let c = p.realize(&tech(), "w").expect("realizable");
        assert_eq!(c.wakeup_extra, 2);
        p.wakeup_slack = 1;
        let c = p.realize(&tech(), "w").expect("realizable");
        assert_eq!(c.wakeup_extra, 3);
    }

    #[test]
    fn step_helpers_clamp() {
        assert_eq!(DesignPoint::step_assoc(16, true), 16);
        assert_eq!(DesignPoint::step_assoc(1, false), 1);
        assert_eq!(DesignPoint::step_assoc(2, true), 4);
        assert_eq!(DesignPoint::step_block(512, true), 512);
        assert_eq!(DesignPoint::step_block(8, false), 8);
        assert_eq!(DesignPoint::step_block(64, false), 32);
    }
}
