//! Panic-isolated, retrying, journaled task execution.
//!
//! [`RunContext`] wraps the raw worker pool of [`run_parallel`] with
//! the three crash-safety behaviours the long-haul pipeline needs:
//!
//! * **Panic isolation** — every task runs under `catch_unwind`, so a
//!   panicking evaluation becomes a typed [`TaskError`] instead of
//!   tearing down the whole campaign.
//! * **Bounded retries** — a failed attempt is retried up to the
//!   context's retry budget before the task is declared failed; the
//!   caller then degrades (skip the start, report the cell) rather
//!   than aborting.
//! * **Write-ahead journaling** — each completed task result is
//!   persisted through the [`Journal`] before the fan-out returns it,
//!   and journaled results are replayed instead of re-executed, which
//!   is what makes `--resume` re-run only the missing work.
//!
//! Task identity is `label#fan/item`: the fan sequence number is
//! deterministic because the pipeline's control flow is a pure
//! function of task results, which are themselves deterministic — so
//! a resumed run asks for exactly the same keys in exactly the same
//! order.

use crate::error::{ExploreError, TaskError, TaskFailure};
use crate::fault::{FaultKind, FaultPlan};
use crate::journal::{Journal, JournalError};
use crate::parallel::run_parallel;
use crate::task::{TaskDispatcher, TaskSpec};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use xps_trace::{with_recorder, ProgressEvent, ProgressSink, TraceSink};

/// Default retry budget: a task may fail twice and still succeed on
/// its third attempt before being declared failed.
pub const DEFAULT_RETRIES: u32 = 2;

/// Counters of one run's crash-safety machinery. Informational — the
/// explored results never depend on them — except `failed_tasks`,
/// which lists every task that exhausted its retries and was degraded
/// around.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Tasks executed in this process (successful attempts).
    pub executed: u64,
    /// Tasks served from the journal without re-running.
    pub salvaged: u64,
    /// Extra attempts made after a failed first attempt.
    pub retried: u64,
    /// Faults the [`FaultPlan`] injected.
    pub faults_injected: u64,
    /// Journal keys of tasks that failed every attempt.
    pub failed_tasks: Vec<String>,
}

/// The outcome of one journaled fan-out: per-item results in item
/// order (failed tasks carry their [`TaskError`]) plus the pool's
/// per-worker task counts.
#[derive(Debug)]
pub struct FanOutcome<T> {
    /// Item `i` holds task `i`'s result or its terminal error.
    pub items: Vec<Result<T, TaskError>>,
    /// How many items each worker ran (journal-salvaged items are not
    /// counted — they never reached the pool).
    pub per_worker: Vec<u64>,
}

/// Crash-safety context threaded through an exploration run: the
/// optional checkpoint journal, the optional fault plan, the retry
/// budget, and the counters that report what happened.
#[derive(Debug)]
pub struct RunContext {
    journal: Option<Journal>,
    faults: Option<FaultPlan>,
    cancel: Option<Arc<AtomicBool>>,
    observer: Option<ProgressSink>,
    trace: Option<TraceSink>,
    dispatcher: Option<Arc<dyn TaskDispatcher>>,
    retries: u32,
    fan_seq: AtomicU64,
    executed: AtomicU64,
    salvaged: AtomicU64,
    retried: AtomicU64,
    injected: AtomicU64,
    remote: AtomicU64,
    failed: Mutex<Vec<String>>,
    journal_error: Mutex<Option<JournalError>>,
}

impl Default for RunContext {
    fn default() -> RunContext {
        RunContext::new()
    }
}

impl RunContext {
    /// A context with no journal, no faults, and the default retry
    /// budget.
    pub fn new() -> RunContext {
        RunContext {
            journal: None,
            faults: None,
            cancel: None,
            observer: None,
            trace: None,
            dispatcher: None,
            retries: DEFAULT_RETRIES,
            fan_seq: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            salvaged: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            remote: AtomicU64::new(0),
            failed: Mutex::new(Vec::new()),
            journal_error: Mutex::new(None),
        }
    }

    /// [`RunContext::new`] plus the fault plan configured in the
    /// `XPS_FAULTS` environment variable, when set. This is what the
    /// default pipeline entry points use, so CI can exercise the
    /// isolation and retry paths of the entire test suite by exporting
    /// one variable.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidOptions`] for a malformed
    /// `XPS_FAULTS` value.
    pub fn from_env() -> Result<RunContext, ExploreError> {
        let faults = FaultPlan::from_env().map_err(ExploreError::InvalidOptions)?;
        Ok(RunContext {
            faults,
            ..RunContext::new()
        })
    }

    /// Attach a checkpoint journal: completed tasks are persisted and
    /// already-journaled tasks are replayed instead of re-run.
    pub fn with_journal(mut self, journal: Journal) -> RunContext {
        self.journal = Some(journal);
        self
    }

    /// Attach a fault plan (tests and the `--faults` flag).
    pub fn with_faults(mut self, faults: FaultPlan) -> RunContext {
        self.faults = Some(faults);
        self
    }

    /// Attach a cancellation flag (graceful shutdown). Once the flag
    /// is set, not-yet-started tasks are skipped and the surrounding
    /// fan returns [`ExploreError::Cancelled`]; tasks that already
    /// completed are journaled as usual, so a resumed run re-executes
    /// only the skipped work.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> RunContext {
        self.cancel = Some(cancel);
        self
    }

    /// Attach a progress observer, called once per finished task
    /// (executed or journal-salvaged). Observational only: results are
    /// bit-identical with or without an observer.
    pub fn with_observer(mut self, observer: ProgressSink) -> RunContext {
        self.observer = Some(observer);
        self
    }

    /// Attach a trace sink: every executed task records its spans into
    /// a private per-task recorder, filed under the task's journal key
    /// when the task succeeds. Tracks are keyed deterministically, so
    /// the serialized trace is byte-identical across worker counts.
    /// Caller-thread events (phase spans, salvage instants) land in
    /// whatever recorder the process edge installed.
    pub fn with_trace(mut self, trace: TraceSink) -> RunContext {
        self.trace = Some(trace);
        self
    }

    /// Attach a task dispatcher: fan items that describe themselves as
    /// a [`TaskSpec`] are offered to it before running locally. A
    /// declined or undecodable dispatch falls back to the local
    /// closure, so attaching a dispatcher never changes results — only
    /// where tasks execute. Remote results skip local span recording
    /// (their spans live on the worker) but journal identically.
    pub fn with_dispatcher(mut self, dispatcher: Arc<dyn TaskDispatcher>) -> RunContext {
        self.dispatcher = Some(dispatcher);
        self
    }

    /// The attached trace sink, if any.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// How many tasks a dispatcher ran remotely (informational; not
    /// part of [`RecoveryStats`], whose serialized shape is stable).
    pub fn remote_dispatched(&self) -> u64 {
        self.remote.load(Ordering::Relaxed)
    }

    /// Whether the cancellation flag is set.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// Override the retry budget (extra attempts after a failure).
    pub fn with_retries(mut self, retries: u32) -> RunContext {
        self.retries = retries;
        self
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Detach and return the journal (to discard it after a completed
    /// run).
    pub fn take_journal(&mut self) -> Option<Journal> {
        self.journal.take()
    }

    /// Snapshot of the recovery counters.
    pub fn stats(&self) -> RecoveryStats {
        RecoveryStats {
            executed: self.executed.load(Ordering::Relaxed),
            salvaged: self.salvaged.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            faults_injected: self.injected.load(Ordering::Relaxed),
            failed_tasks: self
                .failed
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        }
    }

    /// Evaluate tasks `f(0) … f(n-1)` on `jobs` workers with panic
    /// isolation, retries, and journaling. Results come back in item
    /// order; a task that failed every attempt yields `Err(TaskError)`
    /// in its slot (and is listed in [`RecoveryStats::failed_tasks`])
    /// so the caller can degrade instead of aborting.
    ///
    /// `label` names the fan in the journal keyspace; each call gets a
    /// fresh fan sequence number, so keys are unique and reproducible
    /// across a resumed run.
    ///
    /// # Errors
    ///
    /// Only journal problems (unreadable record, failed persist) abort
    /// the fan — task failures are per-item by design.
    pub fn run_fan<T, F>(
        &self,
        jobs: usize,
        label: &str,
        n: usize,
        f: F,
    ) -> Result<FanOutcome<T>, ExploreError>
    where
        T: Send + Serialize + Deserialize,
        F: Fn(usize) -> T + Sync,
    {
        self.run_fan_tasks(jobs, label, n, |_| None, f)
    }

    /// [`run_fan`](RunContext::run_fan) for fans whose items can
    /// describe themselves as wire-format [`TaskSpec`]s: when a
    /// dispatcher is attached, each missing item is first offered to
    /// it (`describe(i)` → [`TaskDispatcher::dispatch`]); a successful
    /// dispatch's body is decoded as the item value, and any decline
    /// or decode failure falls back to the local closure `f`. Without
    /// a dispatcher — or when `describe` returns `None` — this is
    /// exactly `run_fan`. Journaling, retries, cancellation, and
    /// result ordering are identical either way, which is what keeps a
    /// fleet-gathered campaign byte-identical to a single-node run.
    ///
    /// # Errors
    ///
    /// As [`run_fan`](RunContext::run_fan): only journal problems.
    pub fn run_fan_tasks<T, F, D>(
        &self,
        jobs: usize,
        label: &str,
        n: usize,
        describe: D,
        f: F,
    ) -> Result<FanOutcome<T>, ExploreError>
    where
        T: Send + Serialize + Deserialize,
        F: Fn(usize) -> T + Sync,
        D: Fn(usize) -> Option<TaskSpec> + Sync,
    {
        let fan = self.fan_seq.fetch_add(1, Ordering::Relaxed);
        let key_of = |i: usize| format!("{label}#{fan}/{i}");
        if self.cancelled() {
            return Err(ExploreError::Cancelled);
        }
        let mut slots: Vec<Option<Result<T, TaskError>>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut missing: Vec<usize> = Vec::with_capacity(n);
        if let Some(journal) = &self.journal {
            for (i, slot) in slots.iter_mut().enumerate() {
                let key = key_of(i);
                match journal.get(&key) {
                    Some(json) => {
                        let value: T =
                            serde_json::from_str(&json).map_err(|e| JournalError::Corrupt {
                                path: journal.path().to_path_buf(),
                                line: 0,
                                detail: format!("task `{key}` does not deserialize: {e}"),
                            })?;
                        self.salvaged.fetch_add(1, Ordering::Relaxed);
                        // Salvages happen serially on the caller
                        // thread, so this instant lands on the edge
                        // recorder in deterministic order.
                        xps_trace::instant("journal.salvage", || {
                            xps_trace::attr("task", key.as_str())
                        });
                        if let Some(obs) = &self.observer {
                            obs.emit(&ProgressEvent::TaskDone {
                                key,
                                salvaged: true,
                            });
                        }
                        *slot = Some(Ok(value));
                    }
                    None => missing.push(i),
                }
            }
        } else {
            missing.extend(0..n);
        }

        let mut per_worker = vec![0u64];
        if !missing.is_empty() {
            let run = run_parallel(jobs, missing.len(), |k| {
                let i = missing[k];
                let key = key_of(i);
                let result = match self.dispatch_remote(&key, i, &describe) {
                    Some(value) => Ok(value),
                    None => self.run_local(&key, i, &f),
                };
                if let (Ok(value), Some(journal)) = (&result, &self.journal) {
                    let json =
                        // xps-allow(no-unwrap-in-lib): task results are plain data structs; serialization cannot fail
                        serde_json::to_string(value).expect("task results serialize to JSON");
                    if let Err(e) = journal.record(&key, json) {
                        // Keep the computed value; surface the persist
                        // failure once the fan completes.
                        let mut slot = self
                            .journal_error
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner);
                        slot.get_or_insert(e);
                    }
                }
                if result.is_ok() {
                    if let Some(obs) = &self.observer {
                        obs.emit(&ProgressEvent::TaskDone {
                            key,
                            salvaged: false,
                        });
                    }
                }
                result
            });
            per_worker = run.per_worker;
            for (k, result) in run.results.into_iter().enumerate() {
                slots[missing[k]] = Some(result);
            }
        }
        if let Some(e) = self
            .journal_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            return Err(e.into());
        }
        // A cancelled fan aborts the run *after* persisting whatever
        // completed: the journal now holds every finished task, and the
        // skipped ones re-run on resume.
        if self.cancelled() {
            return Err(ExploreError::Cancelled);
        }
        let items = slots
            .into_iter()
            // xps-allow(no-unwrap-in-lib): the fan joins only after every task stored its slot or the run aborted with an error
            .map(|s| s.expect("every slot filled"))
            .collect();
        Ok(FanOutcome { items, per_worker })
    }

    /// [`run_fan`](RunContext::run_fan) for a single inline task (the
    /// re-anneal after a cross-seeding adoption).
    ///
    /// # Errors
    ///
    /// As [`run_fan`](RunContext::run_fan): only journal problems.
    pub fn run_task<T, F>(&self, label: &str, f: F) -> Result<Result<T, TaskError>, ExploreError>
    where
        T: Send + Serialize + Deserialize,
        F: Fn() -> T + Sync,
    {
        let mut fan = self.run_fan(1, label, 1, |_| f())?;
        // xps-allow(no-unwrap-in-lib): run_fan(1, ..) returns exactly one item on success
        Ok(fan.items.pop().expect("one item"))
    }

    /// [`run_task`](RunContext::run_task) with a wire description, so
    /// an attached dispatcher can relocate the single task too.
    ///
    /// # Errors
    ///
    /// As [`run_fan`](RunContext::run_fan): only journal problems.
    pub fn run_task_described<T, F>(
        &self,
        label: &str,
        spec: TaskSpec,
        f: F,
    ) -> Result<Result<T, TaskError>, ExploreError>
    where
        T: Send + Serialize + Deserialize,
        F: Fn() -> T + Sync,
    {
        let mut fan = self.run_fan_tasks(1, label, 1, |_| Some(spec.clone()), |_| f())?;
        // xps-allow(no-unwrap-in-lib): run_fan_tasks(1, ..) returns exactly one item on success
        Ok(fan.items.pop().expect("one item"))
    }

    /// Offer one fan item to the attached dispatcher. Any reason not
    /// to run remotely — no dispatcher, no task description, a
    /// cancelled run, a declined dispatch, or a response body that
    /// does not decode as the item type — yields `None`, and the item
    /// runs locally instead.
    fn dispatch_remote<T, D>(&self, key: &str, i: usize, describe: &D) -> Option<T>
    where
        T: Deserialize,
        D: Fn(usize) -> Option<TaskSpec>,
    {
        let dispatcher = self.dispatcher.as_ref()?;
        if self.cancelled() {
            return None;
        }
        let spec = describe(i)?;
        let body = dispatcher.dispatch(key, &spec)?;
        match serde_json::from_str::<T>(&body) {
            Ok(value) => {
                self.remote.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            // A body that parsed as JSON upstream but not as the item
            // type is treated like any other bad response: degrade to
            // local execution.
            Err(_) => None,
        }
    }

    /// Run one fan item on this machine, recording its spans when a
    /// trace sink is attached.
    fn run_local<T, F>(&self, key: &str, i: usize, f: &F) -> Result<T, TaskError>
    where
        F: Fn(usize) -> T,
    {
        match &self.trace {
            Some(trace) => {
                // Record the task into a private recorder whose
                // logical clock starts at zero; attach it under
                // the deterministic task key only on success,
                // so failed attempts leave no trace events.
                let (rec, result) = with_recorder(trace.recorder(), || self.attempt(key, || f(i)));
                if result.is_ok() {
                    trace.attach(key, rec);
                }
                result
            }
            None => self.attempt(key, || f(i)),
        }
    }

    /// Run one task with fault injection, panic isolation, and
    /// retries.
    fn attempt<T>(&self, key: &str, f: impl Fn() -> T) -> Result<T, TaskError> {
        let max_attempts = self.retries.saturating_add(1);
        let mut failure = TaskFailure::Failed("no attempts made".into());
        for attempt in 0..max_attempts {
            // Cancellation short-circuits tasks that have not run yet;
            // this is a skip, not a failure, so it is neither retried
            // nor listed in the failed-task report.
            if self.cancelled() {
                return Err(TaskError {
                    task: key.to_string(),
                    attempts: attempt,
                    failure: TaskFailure::Cancelled,
                });
            }
            if attempt > 0 {
                self.retried.fetch_add(1, Ordering::Relaxed);
            }
            let injected = self.faults.as_ref().and_then(|p| p.injects(key, attempt));
            if injected.is_some() {
                self.injected.fetch_add(1, Ordering::Relaxed);
            }
            if injected == Some(FaultKind::Error) {
                failure = TaskFailure::Failed(format!("injected fault (attempt {attempt})"));
                continue;
            }
            // Tasks are pure functions of their index: nothing observes
            // a half-updated state after an unwind, so AssertUnwindSafe
            // is sound here.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if injected == Some(FaultKind::Panic) {
                    panic!("injected fault in `{key}` (attempt {attempt})");
                }
                f()
            }));
            match outcome {
                Ok(value) => {
                    self.executed.fetch_add(1, Ordering::Relaxed);
                    return Ok(value);
                }
                Err(payload) => failure = TaskFailure::Panicked(panic_message(payload.as_ref())),
            }
        }
        self.failed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(key.to_string());
        Err(TaskError {
            task: key.to_string(),
            attempts: max_attempts,
            failure,
        })
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("xps-recovery-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn clean_fan_matches_direct_evaluation() {
        let ctx = RunContext::new();
        let fan = ctx.run_fan(3, "sq", 10, |i| (i * i) as u64).expect("fan");
        let values: Vec<u64> = fan.items.into_iter().map(|r| r.expect("ok")).collect();
        assert_eq!(values, (0..10).map(|i| (i * i) as u64).collect::<Vec<_>>());
        let s = ctx.stats();
        assert_eq!(s.executed, 10);
        assert_eq!((s.salvaged, s.retried, s.faults_injected), (0, 0, 0));
    }

    #[test]
    fn injected_panics_retry_to_success() {
        let ctx = RunContext::new()
            .with_faults(FaultPlan::rate(100, 0, 2, FaultKind::Panic))
            .with_retries(2);
        let fan = ctx.run_fan(2, "t", 6, |i| i as u64).expect("fan");
        for (i, r) in fan.items.iter().enumerate() {
            assert_eq!(*r.as_ref().expect("third attempt succeeds"), i as u64);
        }
        let s = ctx.stats();
        assert_eq!(s.executed, 6);
        assert_eq!(s.retried, 12, "two retries per task");
        assert_eq!(s.faults_injected, 12);
        assert!(s.failed_tasks.is_empty());
    }

    #[test]
    fn exhausted_retries_isolate_the_failing_task() {
        let ctx = RunContext::new()
            .with_faults(FaultPlan::targets(["t#0/2"], u32::MAX, FaultKind::Panic))
            .with_retries(1);
        let fan = ctx.run_fan(2, "t", 5, |i| i as u64).expect("fan");
        for (i, r) in fan.items.iter().enumerate() {
            if i == 2 {
                let e = r.as_ref().expect_err("task 2 fails permanently");
                assert_eq!(e.attempts, 2);
                assert!(matches!(e.failure, TaskFailure::Panicked(_)));
            } else {
                assert_eq!(*r.as_ref().expect("others unaffected"), i as u64);
            }
        }
        assert_eq!(ctx.stats().failed_tasks, vec!["t#0/2".to_string()]);
    }

    #[test]
    fn error_faults_fail_without_unwinding() {
        let ctx = RunContext::new()
            .with_faults(FaultPlan::targets(["t#0/0"], u32::MAX, FaultKind::Error))
            .with_retries(0);
        let fan = ctx.run_fan(1, "t", 1, |i| i as u64).expect("fan");
        let e = fan.items[0].as_ref().expect_err("fails");
        assert!(matches!(e.failure, TaskFailure::Failed(_)));
    }

    #[test]
    fn journaled_tasks_are_salvaged_not_rerun() {
        let path = tmp("salvage");
        let calls = AtomicUsize::new(0);
        {
            let journal = Journal::create(&path).expect("create");
            let ctx = RunContext::new().with_journal(journal);
            let fan = ctx
                .run_fan(2, "v", 8, |i| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    i as f64 + 0.5
                })
                .expect("fan");
            assert_eq!(fan.items.len(), 8);
            assert_eq!(calls.load(Ordering::Relaxed), 8);
        }
        // Resume: all eight tasks replay from disk; f never runs.
        let journal = Journal::open(&path).expect("open");
        assert_eq!(journal.loaded(), 8);
        let ctx = RunContext::new().with_journal(journal);
        let fan = ctx
            .run_fan(2, "v", 8, |i| {
                calls.fetch_add(1, Ordering::Relaxed);
                i as f64 + 0.5
            })
            .expect("fan");
        assert_eq!(calls.load(Ordering::Relaxed), 8, "no task re-ran");
        for (i, r) in fan.items.iter().enumerate() {
            assert_eq!(*r.as_ref().expect("ok"), i as f64 + 0.5);
        }
        let s = ctx.stats();
        assert_eq!((s.executed, s.salvaged), (0, 8));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_tasks_are_not_journaled() {
        let path = tmp("failed-not-journaled");
        let journal = Journal::create(&path).expect("create");
        let ctx = RunContext::new()
            .with_journal(journal)
            .with_faults(FaultPlan::targets(["w#0/1"], u32::MAX, FaultKind::Panic))
            .with_retries(0);
        let fan = ctx.run_fan(1, "w", 3, |i| i as u64).expect("fan");
        assert!(fan.items[1].is_err());
        let journal = Journal::open(&path).expect("open");
        assert_eq!(journal.loaded(), 2, "only the two successes persist");
        assert!(journal.get("w#0/1").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cancellation_skips_pending_tasks_and_resumes() {
        let path = tmp("cancel");
        let cancel = Arc::new(AtomicBool::new(false));
        let calls = AtomicUsize::new(0);
        {
            let ctx = RunContext::new()
                .with_journal(Journal::create(&path).expect("create"))
                .with_cancel(cancel.clone());
            let err = ctx
                .run_fan(1, "c", 6, |i| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    if i == 2 {
                        cancel.store(true, Ordering::Relaxed);
                    }
                    i as u64
                })
                .expect_err("cancelled mid-fan");
            assert!(matches!(err, ExploreError::Cancelled));
            // One worker runs items in order: 0, 1, 2 complete, the
            // flag flips during 2, and 3..6 are skipped.
            assert_eq!(calls.load(Ordering::Relaxed), 3);
            // Skips are not failures.
            assert!(ctx.stats().failed_tasks.is_empty());
        }
        // Resume without the flag: only the skipped tasks execute.
        let ctx = RunContext::new().with_journal(Journal::open(&path).expect("open"));
        let fan = ctx
            .run_fan(1, "c", 6, |i| {
                calls.fetch_add(1, Ordering::Relaxed);
                i as u64
            })
            .expect("resumed fan");
        for (i, r) in fan.items.iter().enumerate() {
            assert_eq!(*r.as_ref().expect("ok"), i as u64);
        }
        let s = ctx.stats();
        assert_eq!((s.salvaged, s.executed), (3, 3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn already_cancelled_context_refuses_new_fans() {
        let cancel = Arc::new(AtomicBool::new(true));
        let ctx = RunContext::new().with_cancel(cancel);
        let err = ctx
            .run_fan(2, "c", 4, |i| i as u64)
            .expect_err("refused up front");
        assert!(matches!(err, ExploreError::Cancelled));
        assert_eq!(ctx.stats().executed, 0);
    }

    #[test]
    fn observer_reports_executed_and_salvaged_tasks() {
        let seen: Arc<Mutex<Vec<(String, bool)>>> = Arc::default();
        let sink = {
            let seen = seen.clone();
            ProgressSink::new(move |e| {
                if let ProgressEvent::TaskDone { key, salvaged } = e {
                    seen.lock().unwrap().push((key.clone(), *salvaged));
                }
            })
        };
        let path = tmp("observer");
        {
            let ctx = RunContext::new()
                .with_journal(Journal::create(&path).expect("create"))
                .with_observer(sink.clone());
            ctx.run_fan(1, "o", 2, |i| i as u64).expect("fan");
        }
        let ctx = RunContext::new()
            .with_journal(Journal::open(&path).expect("open"))
            .with_observer(sink);
        ctx.run_fan(1, "o", 2, |i| i as u64).expect("fan");
        let events = seen.lock().unwrap().clone();
        assert_eq!(events.len(), 4);
        assert!(events[..2].iter().all(|(_, salvaged)| !*salvaged));
        assert!(events[2..].iter().all(|(_, salvaged)| *salvaged));
        let _ = std::fs::remove_file(&path);
    }

    /// A dispatcher that executes specs in-process — the degenerate
    /// "remote" worker, sharing nothing with the local closure except
    /// the deterministic engine.
    #[derive(Debug, Default)]
    struct InProcessDispatcher {
        cache: crate::cache::EvalCache,
        served: AtomicU64,
        garble: bool,
        decline: bool,
    }

    impl crate::task::TaskDispatcher for InProcessDispatcher {
        fn dispatch(&self, _key: &str, spec: &crate::task::TaskSpec) -> Option<String> {
            if self.decline {
                return None;
            }
            self.served.fetch_add(1, Ordering::Relaxed);
            if self.garble {
                return Some("{\"not\":\"a result\"}".to_string());
            }
            spec.execute(&self.cache).ok()
        }
    }

    fn eval_spec(ops: u64) -> crate::task::TaskSpec {
        let profile = xps_workload::spec::profile("gzip").expect("gzip exists");
        crate::task::TaskSpec::eval(&profile, &xps_sim::CoreConfig::initial(), ops)
    }

    #[test]
    fn dispatched_fan_is_byte_identical_to_local_fan() {
        let profile = xps_workload::spec::profile("gzip").expect("gzip exists");
        let config = xps_sim::CoreConfig::initial();
        let run = |dispatcher: Option<Arc<dyn crate::task::TaskDispatcher>>| {
            let cache = crate::cache::EvalCache::new();
            let mut ctx = RunContext::new();
            if let Some(d) = dispatcher {
                ctx = ctx.with_dispatcher(d);
            }
            let fan = ctx
                .run_fan_tasks(
                    2,
                    "cell",
                    4,
                    |i| Some(eval_spec(1_000 + 500 * i as u64)),
                    |i| cache.ipt(&profile, &config, 1_000 + 500 * i as u64),
                )
                .expect("fan");
            let values: Vec<f64> = fan.items.into_iter().map(|r| r.expect("ok")).collect();
            (values, ctx.remote_dispatched(), ctx.stats().executed)
        };
        let dispatcher = Arc::new(InProcessDispatcher::default());
        let (local, r0, e0) = run(None);
        let (remote, r1, e1) = run(Some(dispatcher.clone()));
        assert_eq!((r0, e0), (0, 4));
        assert_eq!((r1, e1), (4, 0), "every item went remote");
        assert_eq!(dispatcher.served.load(Ordering::Relaxed), 4);
        // Bit-identical, not approximately equal: the serialized round
        // trip must not perturb a single ULP.
        assert!(local.iter().zip(&remote).all(|(a, b)| a == b));
    }

    #[test]
    fn declined_and_garbled_dispatches_fall_back_to_local() {
        for (garble, decline) in [(false, true), (true, false)] {
            let cache = crate::cache::EvalCache::new();
            let dispatcher = Arc::new(InProcessDispatcher {
                garble,
                decline,
                ..InProcessDispatcher::default()
            });
            let ctx = RunContext::new().with_dispatcher(dispatcher);
            let profile = xps_workload::spec::profile("gzip").expect("gzip exists");
            let config = xps_sim::CoreConfig::initial();
            let fan = ctx
                .run_fan_tasks(
                    1,
                    "cell",
                    3,
                    |_| Some(eval_spec(2_000)),
                    |_| cache.ipt(&profile, &config, 2_000),
                )
                .expect("fan");
            assert!(fan.items.iter().all(|r| r.is_ok()));
            assert_eq!(ctx.remote_dispatched(), 0, "nothing counted as remote");
            assert_eq!(ctx.stats().executed, 3, "all items ran locally");
        }
    }

    #[test]
    fn undescribed_items_never_reach_the_dispatcher() {
        let dispatcher = Arc::new(InProcessDispatcher::default());
        let ctx = RunContext::new().with_dispatcher(dispatcher.clone());
        let fan = ctx
            .run_fan_tasks(2, "plain", 5, |_| None, |i| i as u64)
            .expect("fan");
        assert_eq!(fan.items.len(), 5);
        assert_eq!(dispatcher.served.load(Ordering::Relaxed), 0);
        assert_eq!(ctx.stats().executed, 5);
    }

    #[test]
    fn fan_sequence_distinguishes_same_label() {
        let ctx = RunContext::new();
        let a = ctx.run_task("x", || 1u64).expect("fan").expect("ok");
        let b = ctx.run_task("x", || 2u64).expect("fan").expect("ok");
        assert_eq!((a, b), (1, 2));
        // With a journal the two calls must land on distinct keys.
        let path = tmp("fan-seq");
        let ctx = RunContext::new().with_journal(Journal::create(&path).expect("create"));
        ctx.run_task("x", || 1u64).expect("fan").expect("ok");
        ctx.run_task("x", || 2u64).expect("fan").expect("ok");
        assert_eq!(ctx.journal().expect("journal").len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
