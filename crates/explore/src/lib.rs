//! # xps-explore — the xp-scalar design-space exploration tool
//!
//! This crate is the reproduction of the paper's §3: a simulated
//! annealing search over the superscalar design space that finds, for
//! each workload, its customized configuration — its **configurational
//! characteristics**.
//!
//! The search state is a [`DesignPoint`]: the clock period, the
//! widths, and the pipeline depths and organization preferences of each
//! unit. The *sizes* of the units are never free variables — they are
//! **fitted**: each unit is scaled to the largest candidate whose
//! CACTI-modeled access time fits in `depth × (clock − latch)`, the
//! paper's central coupling between clock period and structure sizing
//! ([`DesignPoint::realize`]).
//!
//! Annealing moves mirror the paper: *either* the clock period is
//! varied and every unit re-fitted, *or* one unit's pipeline depth (or
//! organization preference) is varied and that unit re-fitted. A move
//! whose realization fails (nothing fits) is rejected. The process
//! rolls back to the best-seen point whenever the current IPT falls
//! below half the best (the paper's §3 rule), and evaluation uses short
//! traces early and longer traces late (the paper's 10 M → 100 M
//! staging, scaled down).
//!
//! [`Campaign`] orchestrates the full §4 methodology across a set of
//! workloads, including the paper's cross-configuration seeding rule:
//! *"If a workload was found to perform better on some other workload's
//! optimal configuration, that configuration would replace its own."*
//!
//! Beyond the paper, the [`Explorer`] portfolio ([`search`] module)
//! makes the annealer one of several seeded, evaluation-budgeted
//! search strategies — genetic and surrogate-guided competitors —
//! comparable head-to-head at equal simulation budgets (`repro
//! bakeoff`).
//!
//! ## Example
//!
//! ```no_run
//! use xps_explore::{ExploreOptions, Campaign};
//! use xps_workload::spec;
//!
//! let explorer = Campaign::new(ExploreOptions::quick());
//! let result = explorer.explore(&spec::all_profiles());
//! for core in &result.cores {
//!     println!("{}: {:.2} IPT @ {:.2} ns", core.profile.name, core.ipt, core.config.clock_ns);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod cache;
mod error;
mod explorer;
mod fault;
mod grid;
pub mod journal;
mod parallel;
mod point;
mod recovery;
mod search;
mod stats;
mod task;

pub use anneal::{
    anneal, anneal_observed, anneal_with, score, score_with, AnnealOptions, AnnealResult, Objective,
};
pub use cache::{CacheCounters, EvalCache};
pub use error::{ExploreError, TaskError, TaskFailure};
pub use explorer::{Campaign, CustomizedCore, ExplorationResult, ExploreOptions, ExploreStats};
pub use fault::{FaultKind, FaultPlan};
pub use grid::{grid_search, grid_search_with, GridResult, GridSpec};
pub use journal::{fnv64, write_atomic, Journal, JournalError};
pub use parallel::{merge_counts, resolve_jobs, run_parallel, ParallelRun};
pub use point::DesignPoint;
pub use recovery::{FanOutcome, RecoveryStats, RunContext, DEFAULT_RETRIES};
pub use search::{
    crossover, explorer_by_name, mutate, search, AnnealExplorer, CurvePoint, EvalBudget, Explorer,
    GeneticExplorer, Probe, SearchOptions, SearchOutcome, SurrogateExplorer, EXPLORER_NAMES,
};
pub use stats::EngineStats;
pub use task::{TaskDispatcher, TaskKind, TaskSpec};
pub use xps_trace::{ProgressEvent, ProgressSink};

/// Re-exported fixed design constants (the paper's Table 2).
pub mod constants {
    /// Main-memory access latency, ns.
    pub use xps_sim::config::MEMORY_LATENCY_NS;

    /// Front-end latency added to misprediction penalties, ns.
    pub use xps_sim::config::FRONTEND_LATENCY_NS;

    /// Bit width of an issue-queue entry.
    pub use xps_cacti::units::IQ_ENTRY_BITS;

    /// Latch latency per pipeline stage, ns.
    pub const LATCH_NS: f64 = 0.03;
}
