//! Deterministic fault injection for the exploration worker pool.
//!
//! A crash-safety layer is only trustworthy if its failure paths run
//! constantly, not just on the day something real breaks. A
//! [`FaultPlan`] makes chosen tasks panic (or return an error) on
//! their first N attempts, selected **deterministically** from the
//! task's journal key and a seed — the same plan injects the same
//! faults on every run, every machine, and every worker count, so
//! tests can assert exact retry counts and byte-identical recovered
//! output.
//!
//! Plans come from three places: tests construct them directly, the
//! `repro` binary accepts `--faults rate=20,seed=7,attempts=1,kind=panic`,
//! and the `XPS_FAULTS` environment variable applies the same spec to
//! any run (CI sets it to exercise isolation and retry paths on every
//! push).

use crate::journal::fnv64;

/// What an injected fault does to the task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The attempt panics (exercises `catch_unwind` isolation).
    Panic,
    /// The attempt reports a typed task error without panicking.
    Error,
}

/// A seeded, deterministic plan of which task attempts fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Percentage of tasks selected for failure (0–100), by hash of
    /// the task key. Ignored when `targets` is non-empty.
    rate_pct: u8,
    /// Seed mixed into the selection hash.
    seed: u64,
    /// Selected tasks fail their first `attempts` attempts and succeed
    /// afterwards; `u32::MAX` means fail forever (a permanent fault).
    attempts: u32,
    /// How the selected attempts fail.
    kind: FaultKind,
    /// Explicit task-key substrings to fail instead of rate-based
    /// selection (for targeted tests).
    targets: Vec<String>,
}

impl FaultPlan {
    /// Fail `rate_pct`% of tasks (selected by hash with `seed`) on
    /// their first `attempts` attempts.
    pub fn rate(rate_pct: u8, seed: u64, attempts: u32, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            rate_pct: rate_pct.min(100),
            seed,
            attempts,
            kind,
            targets: Vec::new(),
        }
    }

    /// Fail exactly the tasks whose key contains one of `targets`, on
    /// their first `attempts` attempts (`u32::MAX` = forever).
    pub fn targets<I, S>(targets: I, attempts: u32, kind: FaultKind) -> FaultPlan
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        FaultPlan {
            rate_pct: 0,
            seed: 0,
            attempts,
            kind,
            targets: targets.into_iter().map(Into::into).collect(),
        }
    }

    /// Parse a `key=value` comma spec: `rate=20,seed=7,attempts=1,kind=panic`
    /// (`kind` is `panic` or `error`; `target=SUBSTR` may repeat and
    /// switches selection from rate to explicit targets). Unset keys
    /// default to `rate=0,seed=0,attempts=1,kind=panic`.
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the first malformed field.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::rate(0, 0, 1, FaultKind::Panic);
        for field in spec.split(',').filter(|f| !f.trim().is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault spec field `{field}` is not key=value"))?;
            match key.trim() {
                "rate" => {
                    let pct: u8 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault rate `{value}` is not a percentage"))?;
                    if pct > 100 {
                        return Err(format!("fault rate {pct} exceeds 100%"));
                    }
                    plan.rate_pct = pct;
                }
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault seed `{value}` is not an integer"))?;
                }
                "attempts" => {
                    plan.attempts = if value.trim() == "forever" {
                        u32::MAX
                    } else {
                        value
                            .trim()
                            .parse()
                            .map_err(|_| format!("fault attempts `{value}` is not an integer"))?
                    };
                }
                "kind" => {
                    plan.kind = match value.trim() {
                        "panic" => FaultKind::Panic,
                        "error" => FaultKind::Error,
                        other => return Err(format!("fault kind `{other}` (use panic|error)")),
                    };
                }
                "target" => plan.targets.push(value.trim().to_string()),
                other => {
                    return Err(format!(
                        "unknown fault field `{other}` (use rate/seed/attempts/kind/target)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// The plan configured in the `XPS_FAULTS` environment variable,
    /// if any.
    ///
    /// # Errors
    ///
    /// Returns the parse failure for a malformed variable — a typo in
    /// CI should fail loudly, not silently disable injection.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("XPS_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec)
                .map(Some)
                .map_err(|e| format!("XPS_FAULTS: {e}")),
            _ => Ok(None),
        }
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.attempts > 0 && (self.rate_pct > 0 || !self.targets.is_empty())
    }

    /// The fault to inject into attempt `attempt` (0-based) of `task`,
    /// if any. Pure function of `(plan, task, attempt)`.
    pub fn injects(&self, task: &str, attempt: u32) -> Option<FaultKind> {
        if attempt >= self.attempts {
            return None;
        }
        let selected = if self.targets.is_empty() {
            self.rate_pct > 0 && fnv64(self.seed, task.as_bytes()) % 100 < u64::from(self.rate_pct)
        } else {
            self.targets.iter().any(|t| task.contains(t))
        };
        selected.then_some(self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_is_deterministic_and_seeded() {
        let plan = FaultPlan::rate(50, 7, 1, FaultKind::Panic);
        for i in 0..64 {
            let task = format!("anneal#0/{i}");
            assert_eq!(plan.injects(&task, 0), plan.injects(&task, 0));
            assert_eq!(plan.injects(&task, 1), None, "only the first attempt");
        }
        let other_seed = FaultPlan::rate(50, 8, 1, FaultKind::Panic);
        let differs = (0..64).any(|i| {
            let task = format!("anneal#0/{i}");
            plan.injects(&task, 0) != other_seed.injects(&task, 0)
        });
        assert!(differs, "different seeds must select different tasks");
    }

    #[test]
    fn rate_bounds() {
        let never = FaultPlan::rate(0, 1, 1, FaultKind::Panic);
        let always = FaultPlan::rate(100, 1, 1, FaultKind::Error);
        for i in 0..32 {
            let task = format!("cell#{i}/0");
            assert_eq!(never.injects(&task, 0), None);
            assert_eq!(always.injects(&task, 0), Some(FaultKind::Error));
        }
        assert!(!never.is_active());
        assert!(always.is_active());
    }

    #[test]
    fn targeted_plans_hit_only_their_tasks() {
        let plan = FaultPlan::targets(["anneal#0/1"], u32::MAX, FaultKind::Panic);
        assert_eq!(plan.injects("anneal#0/1", 0), Some(FaultKind::Panic));
        assert_eq!(plan.injects("anneal#0/1", 999), Some(FaultKind::Panic));
        assert_eq!(plan.injects("anneal#0/2", 0), None);
    }

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse("rate=20,seed=7,attempts=2,kind=error").expect("parses");
        assert_eq!(plan, FaultPlan::rate(20, 7, 2, FaultKind::Error));
        let t = FaultPlan::parse("target=anneal#0,attempts=forever,kind=panic").expect("parses");
        assert_eq!(t.injects("anneal#0/2", 50), Some(FaultKind::Panic));
    }

    #[test]
    fn parse_rejects_malformed_fields() {
        assert!(FaultPlan::parse("rate=crash").is_err());
        assert!(FaultPlan::parse("rate=150").is_err());
        assert!(FaultPlan::parse("kind=explode").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("noequals").is_err());
    }
}
