//! Wire-format task descriptions: the exploration DAG, exported.
//!
//! Every expensive unit of work the pipeline fans out — an annealing
//! walk from one start, one cross-seeding or matrix-cell evaluation —
//! is a pure function of a small, serializable description. A
//! [`TaskSpec`] is that description: shipped to a fleet worker it
//! reproduces *exactly* the value the local closure would have
//! computed, because both sides run the same deterministic engine on
//! the same inputs. That equivalence is what lets a coordinator
//! scatter tasks over the wire and still gather a byte-identical
//! result for any worker count, topology, or failure schedule: a task
//! that cannot be dispatched (no healthy worker, exhausted retries,
//! garbage response) simply runs locally, and nobody downstream can
//! tell the difference.
//!
//! A [`TaskDispatcher`] is the seam between the recovery layer and
//! whatever remote execution exists: [`RunContext`] asks it for each
//! describable task, and treats `None` — for any reason — as "run it
//! here". The dispatcher owns every networking concern (deadlines,
//! retries, backoff, quarantine); this crate never opens a socket.
//!
//! [`RunContext`]: crate::recovery::RunContext

use crate::anneal::{anneal_with, AnnealOptions};
use crate::cache::EvalCache;
use crate::point::DesignPoint;
use crate::search::{explorer_by_name, SearchOptions};
use serde::{Deserialize, Serialize};
use xps_cacti::Technology;
use xps_sim::CoreConfig;
use xps_workload::WorkloadProfile;

/// Which pipeline task a [`TaskSpec`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// A full annealing walk from one start point (`anneal` and
    /// `reanneal` fan items).
    Anneal,
    /// One IPT evaluation of a workload on a configuration (`seed`,
    /// `matrix`, and `rematrix` fan items).
    Eval,
    /// One budgeted portfolio search — one explorer against one
    /// workload (`bakeoff` fan items).
    Search,
}

/// A self-contained, serializable description of one pipeline task.
///
/// The vendored serde derive handles unit enum variants only, so this
/// is a struct tagged by [`TaskKind`] with the variant payloads as
/// optional fields; the constructors keep the combinations coherent
/// and [`execute`](TaskSpec::execute) validates them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskSpec {
    /// What to run.
    pub kind: TaskKind,
    /// The workload, inline (not by name) so a worker needs no shared
    /// registry to reproduce the exact model.
    pub profile: WorkloadProfile,
    /// Annealing start point ([`TaskKind::Anneal`] only).
    pub start: Option<DesignPoint>,
    /// Annealing options, with the multi-start seed already mixed in
    /// ([`TaskKind::Anneal`] only).
    pub opts: Option<AnnealOptions>,
    /// Technology point the anneal realizes against
    /// ([`TaskKind::Anneal`] only).
    pub tech: Option<Technology>,
    /// The configuration to evaluate on ([`TaskKind::Eval`] only).
    pub config: Option<CoreConfig>,
    /// Registry name of the search strategy ([`TaskKind::Search`]
    /// only).
    pub explorer: Option<String>,
    /// Budgeted-search options ([`TaskKind::Search`] only; `tech`
    /// carries the technology, as for anneals).
    pub search: Option<SearchOptions>,
    /// Trace length in micro-ops ([`TaskKind::Eval`] only; 0 for
    /// anneals and searches, which carry their own trace lengths via
    /// `opts` / `search`).
    pub ops: u64,
}

impl TaskSpec {
    /// Describe one annealing walk.
    pub fn anneal(
        profile: &WorkloadProfile,
        start: &DesignPoint,
        opts: &AnnealOptions,
        tech: &Technology,
    ) -> TaskSpec {
        TaskSpec {
            kind: TaskKind::Anneal,
            profile: profile.clone(),
            start: Some(start.clone()),
            opts: Some(opts.clone()),
            tech: Some(tech.clone()),
            config: None,
            explorer: None,
            search: None,
            ops: 0,
        }
    }

    /// Describe one IPT evaluation.
    pub fn eval(profile: &WorkloadProfile, config: &CoreConfig, ops: u64) -> TaskSpec {
        TaskSpec {
            kind: TaskKind::Eval,
            profile: profile.clone(),
            start: None,
            opts: None,
            tech: None,
            config: Some(config.clone()),
            explorer: None,
            search: None,
            ops,
        }
    }

    /// Describe one budgeted portfolio search.
    pub fn search(
        profile: &WorkloadProfile,
        explorer: &str,
        opts: &SearchOptions,
        tech: &Technology,
    ) -> TaskSpec {
        TaskSpec {
            kind: TaskKind::Search,
            profile: profile.clone(),
            start: None,
            opts: None,
            tech: Some(tech.clone()),
            config: None,
            explorer: Some(explorer.to_string()),
            search: Some(opts.clone()),
            ops: 0,
        }
    }

    /// The canonical JSON of this spec: derived struct serialization
    /// is field-ordered, so equal tasks — built on the coordinator or
    /// re-parsed on a worker — canonicalize to equal bytes. Fleet
    /// content-addressing fingerprints exactly this string.
    pub fn canonical(&self) -> String {
        // xps-allow(no-unwrap-in-lib): task specs are plain data structs built from validated campaign options; serialization cannot fail
        serde_json::to_string(self).expect("task specs serialize to JSON")
    }

    /// Run the task and serialize its result — the exact JSON the
    /// local fan closure's result would journal, so a dispatched
    /// result deserializes into the identical in-memory value.
    ///
    /// # Errors
    ///
    /// Returns a one-line description when the spec is incoherent
    /// (missing payload for its kind) or invalid (bad annealing
    /// options). Execution itself is infallible: the engine is total
    /// over validated inputs.
    pub fn execute(&self, cache: &EvalCache) -> Result<String, String> {
        match self.kind {
            TaskKind::Anneal => {
                let (Some(start), Some(opts), Some(tech)) = (&self.start, &self.opts, &self.tech)
                else {
                    return Err("anneal task missing start/opts/tech".into());
                };
                opts.validate().map_err(|e| e.to_string())?;
                let result = anneal_with(&self.profile, start, opts, tech, Some(cache));
                // xps-allow(no-unwrap-in-lib): task results are plain data structs; serialization cannot fail
                Ok(serde_json::to_string(&result).expect("task results serialize to JSON"))
            }
            TaskKind::Eval => {
                let Some(config) = &self.config else {
                    return Err("eval task missing config".into());
                };
                if self.ops == 0 {
                    return Err("eval task needs ops >= 1".into());
                }
                config.validate().map_err(|e| e.to_string())?;
                let ipt = cache.ipt(&self.profile, config, self.ops);
                // xps-allow(no-unwrap-in-lib): a measured IPT is a finite f64; serialization cannot fail
                Ok(serde_json::to_string(&ipt).expect("task results serialize to JSON"))
            }
            TaskKind::Search => {
                let (Some(name), Some(opts), Some(tech)) =
                    (&self.explorer, &self.search, &self.tech)
                else {
                    return Err("search task missing explorer/search/tech".into());
                };
                let explorer =
                    explorer_by_name(name).ok_or_else(|| format!("unknown explorer {name:?}"))?;
                let outcome = crate::search::search(&*explorer, &self.profile, tech, opts, cache)
                    .map_err(|e| e.to_string())?;
                // xps-allow(no-unwrap-in-lib): task results are plain data structs; serialization cannot fail
                Ok(serde_json::to_string(&outcome).expect("task results serialize to JSON"))
            }
        }
    }
}

/// The remote-execution seam of the recovery layer.
///
/// `dispatch` either returns the serialized result of running `spec`
/// somewhere else — byte-compatible with the local closure's journal
/// serialization — or `None` to decline, in which case the task runs
/// locally. Declining is always sound: it is the graceful-degradation
/// path down to zero workers. Implementations own their failure
/// handling (deadlines, bounded retries, quarantine) and must never
/// panic or block indefinitely; a worker that hangs past its deadline
/// is a decline, not a hang of the whole fan.
pub trait TaskDispatcher: Send + Sync + std::fmt::Debug {
    /// Try to run `spec` remotely. `key` is the task's deterministic
    /// journal key (`label#fan/item`) — stable across runs, so
    /// dispatchers can use it for deterministic fault injection and
    /// backoff jitter without consulting a clock.
    fn dispatch(&self, key: &str, spec: &TaskSpec) -> Option<String>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use xps_workload::spec;

    fn gzip() -> WorkloadProfile {
        spec::profile("gzip").expect("gzip exists")
    }

    #[test]
    fn canonical_round_trips_and_is_stable() {
        let t = TaskSpec::eval(&gzip(), &CoreConfig::initial(), 5_000);
        let json = t.canonical();
        let back: TaskSpec = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back.canonical(), json, "canonicalization is a fixpoint");
        assert_eq!(back.kind, TaskKind::Eval);
        assert_eq!(back.ops, 5_000);
    }

    #[test]
    fn eval_execute_matches_local_evaluation() {
        let cache = EvalCache::new();
        let config = CoreConfig::initial();
        let t = TaskSpec::eval(&gzip(), &config, 4_000);
        let remote = t.execute(&cache).expect("executes");
        let local = cache.ipt(&gzip(), &config, 4_000);
        let back: f64 = serde_json::from_str(&remote).expect("f64 body");
        assert!(
            back == local,
            "remote must be bit-identical: {back} vs {local}"
        );
        // And the wire JSON deserializes into Option<f64> too (the
        // `seed` fan's item type).
        let opt: Option<f64> = serde_json::from_str(&remote).expect("Option<f64> body");
        assert_eq!(opt, Some(local));
    }

    #[test]
    fn anneal_execute_matches_local_anneal() {
        let cache = EvalCache::new();
        let mut opts = AnnealOptions::quick();
        opts.iterations = 6;
        opts.eval_ops_early = 2_000;
        opts.eval_ops_late = 4_000;
        let tech = Technology::default();
        let start = DesignPoint::initial();
        let t = TaskSpec::anneal(&gzip(), &start, &opts, &tech);
        let remote = t.execute(&cache).expect("executes");
        let local = anneal_with(&gzip(), &start, &opts, &tech, Some(&cache));
        let expected = serde_json::to_string(&local).expect("serializes");
        assert_eq!(remote, expected, "remote anneal is byte-identical");
    }

    #[test]
    fn search_execute_matches_local_search() {
        use crate::search::{explorer_by_name, search};
        let cache = EvalCache::new();
        let opts = SearchOptions {
            budget: 8,
            eval_ops: 3_000,
            seed: 5,
        };
        let tech = Technology::default();
        let t = TaskSpec::search(&gzip(), "genetic", &opts, &tech);
        let remote = t.execute(&cache).expect("executes");
        let explorer = explorer_by_name("genetic").expect("registered");
        let local = search(&*explorer, &gzip(), &tech, &opts, &cache).expect("searches");
        let expected = serde_json::to_string(&local).expect("serializes");
        assert_eq!(remote, expected, "remote search is byte-identical");
    }

    #[test]
    fn search_specs_validate_their_payload() {
        let opts = SearchOptions {
            budget: 4,
            eval_ops: 1_000,
            seed: 1,
        };
        let tech = Technology::default();
        let mut t = TaskSpec::search(&gzip(), "anneal", &opts, &tech);
        t.explorer = Some("bogus".into());
        assert!(t.execute(&EvalCache::new()).is_err(), "unknown explorer");
        let mut t = TaskSpec::search(&gzip(), "anneal", &opts, &tech);
        t.search = None;
        assert!(t.execute(&EvalCache::new()).is_err(), "missing options");
        let mut bad = opts.clone();
        bad.budget = 0;
        let t = TaskSpec::search(&gzip(), "anneal", &bad, &tech);
        assert!(t.execute(&EvalCache::new()).is_err(), "invalid options");
    }

    #[test]
    fn incoherent_specs_are_typed_errors() {
        let mut t = TaskSpec::eval(&gzip(), &CoreConfig::initial(), 1_000);
        t.config = None;
        assert!(t.execute(&EvalCache::new()).is_err());
        let mut a = TaskSpec::anneal(
            &gzip(),
            &DesignPoint::initial(),
            &AnnealOptions::quick(),
            &Technology::default(),
        );
        a.opts = None;
        assert!(a.execute(&EvalCache::new()).is_err());
        let mut z = TaskSpec::eval(&gzip(), &CoreConfig::initial(), 0);
        z.ops = 0;
        assert!(z.execute(&EvalCache::new()).is_err());
    }
}
