//! Programmatic execution-counter snapshots.
//!
//! The explore summary used to be the only place the cache hit/miss
//! counters and journal replay counts surfaced — printed, not
//! returned. [`EngineStats`] packages one snapshot of the whole
//! engine's counters (evaluation cache, crash-safety/recovery, journal
//! occupancy) so embedders — the `xps-serve` daemon's `/metrics`
//! endpoint, tests, dashboards — can read them without scraping
//! stderr.

use crate::cache::{CacheCounters, EvalCache};
use crate::recovery::{RecoveryStats, RunContext};
use serde::{Deserialize, Serialize};

/// A point-in-time snapshot of the exploration engine's execution
/// counters. Purely informational: results never depend on it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Evaluation-cache hit/miss counters.
    pub cache: CacheCounters,
    /// Crash-safety counters: executed vs journal-salvaged tasks,
    /// retries, injected faults, permanently failed tasks.
    pub recovery: RecoveryStats,
    /// Records currently held by the attached journal (0 when no
    /// journal is attached).
    pub journal_records: u64,
    /// Records the journal replayed from disk when it was opened
    /// (0 for a fresh journal or none).
    pub journal_loaded: u64,
}

impl EngineStats {
    /// Snapshot the counters of a live cache + run-context pair.
    pub fn snapshot(cache: &EvalCache, ctx: &RunContext) -> EngineStats {
        let (journal_records, journal_loaded) = match ctx.journal() {
            Some(j) => (j.len() as u64, j.loaded() as u64),
            None => (0, 0),
        };
        EngineStats {
            cache: cache.counters(),
            recovery: ctx.stats(),
            journal_records,
            journal_loaded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("xps-stats-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn snapshot_reflects_cache_and_context() {
        let cache = EvalCache::new();
        let ctx = RunContext::new();
        let fan = ctx.run_fan(1, "t", 3, |i| i as u64).expect("fan");
        assert_eq!(fan.items.len(), 3);
        let s = EngineStats::snapshot(&cache, &ctx);
        assert_eq!(s.cache, cache.counters());
        assert_eq!(s.recovery.executed, 3);
        assert_eq!((s.journal_records, s.journal_loaded), (0, 0));
    }

    #[test]
    fn snapshot_counts_journal_replay() {
        let path = tmp("replay");
        {
            let ctx = RunContext::new().with_journal(Journal::create(&path).expect("create"));
            ctx.run_fan(1, "t", 2, |i| i as u64).expect("fan");
        }
        let ctx = RunContext::new().with_journal(Journal::open(&path).expect("open"));
        ctx.run_fan(1, "t", 2, |i| i as u64).expect("fan");
        let s = EngineStats::snapshot(&EvalCache::new(), &ctx);
        assert_eq!(s.recovery.salvaged, 2);
        assert_eq!(s.journal_records, 2);
        assert_eq!(s.journal_loaded, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn round_trips_through_json() {
        let s = EngineStats {
            cache: CacheCounters { hits: 3, misses: 1 },
            recovery: RecoveryStats {
                executed: 4,
                salvaged: 2,
                retried: 1,
                faults_injected: 0,
                failed_tasks: vec!["a#0/1".into()],
            },
            journal_records: 6,
            journal_loaded: 2,
        };
        let json = serde_json::to_string(&s).expect("serializes");
        let back: EngineStats = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, s);
    }
}
