//! The full §4 methodology: per-workload annealing plus
//! cross-configuration seeding across workloads.

use crate::anneal::{anneal_observed, AnnealOptions, AnnealResult};
use crate::cache::{CacheCounters, EvalCache};
use crate::error::{ExploreError, TaskError};
use crate::parallel::{merge_counts, resolve_jobs};
use crate::point::DesignPoint;
use crate::recovery::{RecoveryStats, RunContext};
use serde::{Deserialize, Serialize};
use xps_cacti::Technology;
use xps_sim::CoreConfig;
use xps_trace::{ProgressEvent, ProgressSink};
use xps_workload::WorkloadProfile;

/// Options for a full exploration campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploreOptions {
    /// Per-workload annealing options.
    pub anneal: AnnealOptions,
    /// Rounds of cross-configuration seeding: after each round every
    /// workload is evaluated on every other workload's best
    /// configuration, and adopts it (then re-anneals from it) when it
    /// is better — the paper's §4.1 expedient.
    pub cross_rounds: u32,
    /// Iterations of the re-anneal after adopting a foreign
    /// configuration.
    pub reanneal_iterations: u32,
    /// Worker threads for the parallel fan-outs (0 = available
    /// parallelism). Results are bit-identical for every value.
    pub jobs: usize,
}

impl Default for ExploreOptions {
    fn default() -> ExploreOptions {
        ExploreOptions {
            anneal: AnnealOptions::default(),
            cross_rounds: 2,
            reanneal_iterations: 60,
            jobs: 0,
        }
    }
}

impl ExploreOptions {
    /// Cheap settings for tests and demos.
    pub fn quick() -> ExploreOptions {
        ExploreOptions {
            anneal: AnnealOptions::quick(),
            cross_rounds: 1,
            reanneal_iterations: 15,
            jobs: 0,
        }
    }

    /// Check every invariant of a campaign's options (including the
    /// nested annealing options), so a bad configuration is one typed
    /// error at construction instead of a panic mid-run.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidOptions`] naming the first
    /// violated invariant.
    pub fn validate(&self) -> Result<(), ExploreError> {
        self.anneal.validate()?;
        if self.reanneal_iterations == 0 {
            return Err(ExploreError::InvalidOptions(
                "reanneal_iterations must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// Execution counters of one exploration: how the work spread over the
/// pool and how often the evaluation cache short-circuited a
/// simulation. Purely informational — the explored cores do not depend
/// on any of it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExploreStats {
    /// Worker threads the fan-outs ran on.
    pub workers: usize,
    /// Tasks (anneals or cross evaluations) completed per worker.
    pub per_worker_tasks: Vec<u64>,
    /// Evaluation-cache hit/miss counters.
    pub cache: CacheCounters,
    /// Crash-safety counters: executed vs journal-salvaged tasks,
    /// retries, injected faults, and permanently failed tasks.
    pub recovery: RecoveryStats,
}

/// One workload's customized core: its configurational
/// characterization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CustomizedCore {
    /// The workload.
    pub profile: WorkloadProfile,
    /// The best design point found for it.
    pub point: DesignPoint,
    /// The realized configuration (a row of the paper's Table 4).
    pub config: CoreConfig,
    /// Its IPT on its own customized core.
    pub ipt: f64,
}

/// The outcome of a full exploration: one customized core per
/// workload, in input order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplorationResult {
    /// Customized cores, one per input profile, in input order.
    pub cores: Vec<CustomizedCore>,
    /// Number of configuration adoptions performed by cross seeding.
    pub adoptions: u32,
    /// Parallelism and cache counters of this run.
    pub stats: ExploreStats,
}

/// Orchestrates the paper's exploration methodology over a workload
/// set.
#[derive(Debug, Clone)]
pub struct Campaign {
    opts: ExploreOptions,
    tech: Technology,
    progress: Option<ProgressSink>,
}

impl Campaign {
    /// Build an explorer with the default technology, validating the
    /// options.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidOptions`] when an option
    /// violates an invariant.
    pub fn try_new(opts: ExploreOptions) -> Result<Campaign, ExploreError> {
        opts.validate()?;
        Ok(Campaign {
            opts,
            tech: Technology::default(),
            progress: None,
        })
    }

    /// Build an explorer with the default technology.
    ///
    /// # Panics
    ///
    /// Panics when the options are invalid; use
    /// [`try_new`](Campaign::try_new) for a typed error.
    pub fn new(opts: ExploreOptions) -> Campaign {
        Campaign::try_new(opts).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build an explorer for a specific technology point (the paper
    /// stresses that these physical properties shape the outcome).
    ///
    /// # Panics
    ///
    /// Panics when the options are invalid.
    pub fn with_technology(opts: ExploreOptions, tech: Technology) -> Campaign {
        opts.validate().unwrap_or_else(|e| panic!("{e}"));
        Campaign {
            opts,
            tech,
            progress: None,
        }
    }

    /// Attach a progress sink: every annealing iteration of the
    /// campaign emits one [`ProgressEvent::AnnealStep`] (tagged with
    /// the workload and the multi-start index). Observation is
    /// read-only — results are bit-identical with or without a sink.
    pub fn with_progress(mut self, sink: ProgressSink) -> Campaign {
        self.progress = Some(sink);
        self
    }

    /// The technology in use.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Run the full campaign: anneal each workload from the Table 3
    /// start, then `cross_rounds` of cross-configuration seeding.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn explore(&self, profiles: &[WorkloadProfile]) -> ExplorationResult {
        self.explore_with(profiles, &EvalCache::new())
    }

    /// [`explore`](Campaign::explore) against a caller-supplied
    /// evaluation cache, so a surrounding pipeline can share one cache
    /// between exploration and later cross-performance measurement.
    ///
    /// The per-workload anneals (times three multi-start corners) and
    /// the cross-seeding evaluations fan out over `opts.jobs` workers;
    /// every task owns its own seeded RNG stream and results are merged
    /// in task order, so the outcome is bit-identical to a serial run.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or a workload fails terminally;
    /// use [`explore_recoverable`](Campaign::explore_recoverable) for
    /// typed errors, journaling, and fault injection.
    pub fn explore_with(
        &self,
        profiles: &[WorkloadProfile],
        cache: &EvalCache,
    ) -> ExplorationResult {
        let ctx = RunContext::from_env().unwrap_or_else(|e| panic!("{e}"));
        self.explore_recoverable(profiles, cache, &ctx)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The crash-safe campaign: as
    /// [`explore_with`](Campaign::explore_with), but every task runs
    /// through `ctx` — panic-isolated, retried, optionally journaled
    /// for `--resume`, and optionally fault-injected.
    ///
    /// A task that fails every attempt degrades the run instead of
    /// aborting it: a failed anneal start falls back to the workload's
    /// surviving starts, a failed cross evaluation skips that foreign
    /// candidate, and a failed re-anneal keeps the pre-adoption
    /// configuration. Each such task is listed in
    /// [`ExploreStats::recovery`].
    ///
    /// # Errors
    ///
    /// * [`ExploreError::EmptyWorkloads`] / `InvalidOptions` before
    ///   any work starts;
    /// * [`ExploreError::WorkloadFailed`] when every start of one
    ///   workload failed permanently (nothing to degrade to);
    /// * [`ExploreError::Journal`] when the checkpoint journal cannot
    ///   be read or written.
    pub fn explore_recoverable(
        &self,
        profiles: &[WorkloadProfile],
        cache: &EvalCache,
        ctx: &RunContext,
    ) -> Result<ExplorationResult, ExploreError> {
        if profiles.is_empty() {
            return Err(ExploreError::EmptyWorkloads);
        }
        self.opts.validate()?;
        let workers = resolve_jobs(self.opts.jobs);
        let mut per_worker_tasks = Vec::new();
        // Multi-start annealing: the Table 3 start plus two corner
        // seeds, keeping each workload's best outcome. The corners let
        // the walk reach fast-deep and slow-big customizations without
        // crossing the IPT valley between them.
        let starts = [
            DesignPoint::initial(),
            DesignPoint::fast_corner(),
            DesignPoint::big_corner(),
        ];
        // Fan out every (workload, start) pair: each anneal seeds its
        // own RNG from (opts.seed ^ start index, profile seed), so the
        // walks are identical no matter which worker runs them.
        let anneal_phase = xps_trace::span("explore.anneal");
        let fan = ctx.run_fan_tasks(
            self.opts.jobs,
            "anneal",
            profiles.len() * starts.len(),
            |t| {
                // The wire description of this walk: same profile,
                // start, options (with the multi-start seed mixed in),
                // and technology the local closure below uses, so a
                // dispatched anneal is bit-identical. Remote walks skip
                // the local progress sink — observation only.
                let (p, i) = (&profiles[t / starts.len()], t % starts.len());
                let mut opts = self.opts.anneal.clone();
                opts.seed ^= (i as u64) << 32;
                Some(crate::task::TaskSpec::anneal(
                    p, &starts[i], &opts, &self.tech,
                ))
            },
            |t| {
                let (p, i) = (&profiles[t / starts.len()], t % starts.len());
                let mut opts = self.opts.anneal.clone();
                opts.seed ^= (i as u64) << 32;
                // Wrap the campaign sink so this walk's steps carry
                // their multi-start index (the annealer itself always
                // tags `start: 0`).
                let sink = self.progress.as_ref().map(|outer| {
                    let outer = outer.clone();
                    let start = i as u32;
                    ProgressSink::new(move |e| match e {
                        ProgressEvent::AnnealStep {
                            workload,
                            iteration,
                            iterations,
                            temperature,
                            best,
                            ..
                        } => outer.emit(&ProgressEvent::AnnealStep {
                            workload: workload.clone(),
                            start,
                            iteration: *iteration,
                            iterations: *iterations,
                            temperature: *temperature,
                            best: *best,
                        }),
                        other => outer.emit(other),
                    })
                });
                anneal_observed(p, &starts[i], &opts, &self.tech, Some(cache), sink.as_ref())
            },
        )?;
        anneal_phase.end_with(|| xps_trace::attr("tasks", profiles.len() * starts.len()));
        merge_counts(&mut per_worker_tasks, &fan.per_worker);
        // Keep each workload's best start; `>=` keeps the *last* of
        // tied maxima, matching the serial `max_by` fold. A start that
        // failed every attempt is skipped; a workload with no
        // surviving start is a terminal error.
        let mut runs = fan.items.into_iter();
        let mut results: Vec<AnnealResult> = Vec::with_capacity(profiles.len());
        for p in profiles {
            let mut best: Option<AnnealResult> = None;
            let mut last_err: Option<TaskError> = None;
            for _ in 0..starts.len() {
                // xps-allow(no-unwrap-in-lib): run_parallel returns exactly one result per submitted start; the zip cannot run dry
                match runs.next().expect("one result per task") {
                    Ok(r) => {
                        best = Some(match best {
                            Some(b) if r.ipt < b.ipt => b,
                            _ => r,
                        });
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            match best {
                Some(b) => results.push(b),
                None => {
                    return Err(ExploreError::WorkloadFailed {
                        workload: p.name.clone(),
                        // xps-allow(no-unwrap-in-lib): every start either produced a best or recorded an error; no third outcome exists
                        error: last_err.expect("no best implies at least one error"),
                    });
                }
            }
        }

        let mut adoptions = 0;
        let cross_phase = xps_trace::span("explore.cross");
        for _ in 0..self.opts.cross_rounds {
            let mut improved = false;
            for i in 0..profiles.len() {
                // Evaluate workload i on every other best config, in
                // parallel. Configurations adopted earlier in this
                // round are visible here, exactly as in a serial sweep.
                let cross = ctx.run_fan_tasks(
                    self.opts.jobs,
                    "seed",
                    results.len(),
                    |j| {
                        // The diagonal (i == j) is a constant `None`
                        // cell — nothing to run remotely. A worker's
                        // bare-f64 response deserializes into
                        // `Option<f64>` as `Some`, matching the local
                        // closure's value.
                        (i != j).then(|| {
                            crate::task::TaskSpec::eval(
                                &profiles[i],
                                &results[j].config,
                                self.opts.anneal.eval_ops_late,
                            )
                        })
                    },
                    |j| {
                        if i == j {
                            None
                        } else {
                            Some(cache.ipt(
                                &profiles[i],
                                &results[j].config,
                                self.opts.anneal.eval_ops_late,
                            ))
                        }
                    },
                )?;
                merge_counts(&mut per_worker_tasks, &cross.per_worker);
                let mut best_foreign: Option<(usize, f64)> = None;
                for (j, item) in cross.items.into_iter().enumerate() {
                    // A permanently failed evaluation skips candidate
                    // j — degraded, and recorded in the stats.
                    let Ok(Some(ipt)) = item else { continue };
                    if ipt > results[i].ipt && best_foreign.map(|(_, b)| ipt > b).unwrap_or(true) {
                        best_foreign = Some((j, ipt));
                    }
                }
                if let Some((j, _)) = best_foreign {
                    // Adopt the foreign point and re-anneal briefly
                    // from it to specialize further. A failed re-anneal
                    // keeps workload i's own configuration.
                    let seed_point = results[j].point.clone();
                    let mut re_opts = self.opts.anneal.clone();
                    re_opts.iterations = self.opts.reanneal_iterations;
                    re_opts.early_fraction = 0.0;
                    let respec = crate::task::TaskSpec::anneal(
                        &profiles[i],
                        &seed_point,
                        &re_opts,
                        &self.tech,
                    );
                    let reanneal = ctx.run_task_described("reanneal", respec, || {
                        anneal_observed(
                            &profiles[i],
                            &seed_point,
                            &re_opts,
                            &self.tech,
                            Some(cache),
                            self.progress.as_ref(),
                        )
                    })?;
                    if let Ok(r) = reanneal {
                        if r.ipt > results[i].ipt {
                            results[i] = r;
                            adoptions += 1;
                            improved = true;
                            xps_trace::instant("explore.adopt", || {
                                xps_trace::attrs([
                                    ("workload", profiles[i].name.as_str().into()),
                                    ("from", profiles[j].name.as_str().into()),
                                ])
                            });
                        }
                    }
                }
            }
            if !improved {
                break;
            }
        }
        cross_phase.end_with(|| xps_trace::attr("adoptions", adoptions));

        let cores = profiles
            .iter()
            .zip(results)
            .map(|(p, r)| CustomizedCore {
                profile: p.clone(),
                point: r.point,
                config: CoreConfig {
                    name: p.name.clone(),
                    ..r.config
                },
                ipt: r.ipt,
            })
            .collect();
        Ok(ExplorationResult {
            cores,
            adoptions,
            stats: ExploreStats {
                workers,
                per_worker_tasks,
                cache: cache.counters(),
                recovery: ctx.stats(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xps_workload::spec;

    #[test]
    fn explore_two_workloads_quickly() {
        let profiles = vec![
            spec::profile("gzip").expect("gzip exists"),
            spec::profile("mcf").expect("mcf exists"),
        ];
        let explorer = Campaign::new(ExploreOptions::quick());
        let r = explorer.explore(&profiles);
        assert_eq!(r.cores.len(), 2);
        assert_eq!(r.cores[0].config.name, "gzip");
        assert_eq!(r.cores[1].config.name, "mcf");
        for c in &r.cores {
            assert!(c.ipt > 0.0);
            c.config.validate().expect("explored configs are valid");
        }
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_input_panics() {
        Campaign::new(ExploreOptions::quick()).explore(&[]);
    }

    #[test]
    fn invalid_options_are_typed_errors_at_construction() {
        let mut opts = ExploreOptions::quick();
        opts.anneal.iterations = 0;
        assert!(matches!(
            Campaign::try_new(opts),
            Err(ExploreError::InvalidOptions(_))
        ));
        let mut opts = ExploreOptions::quick();
        opts.anneal.cooling = 1.5;
        assert!(opts.validate().is_err());
        let mut opts = ExploreOptions::quick();
        opts.reanneal_iterations = 0;
        assert!(opts.validate().is_err());
        assert!(ExploreOptions::quick().validate().is_ok());
        assert!(ExploreOptions::default().validate().is_ok());
    }

    #[test]
    fn permanently_failed_start_degrades_to_survivors() {
        use crate::fault::{FaultKind, FaultPlan};
        let profiles = vec![
            spec::profile("gzip").expect("gzip exists"),
            spec::profile("mcf").expect("mcf exists"),
        ];
        let mut opts = ExploreOptions::quick();
        opts.anneal.iterations = 10;
        opts.anneal.eval_ops_early = 3000;
        opts.anneal.eval_ops_late = 6000;
        opts.reanneal_iterations = 3;
        opts.jobs = 2;
        let explorer = Campaign::new(opts);
        // Kill gzip's corner start (task 1 of its three) on every
        // attempt: the run must degrade to its surviving starts.
        let ctx = RunContext::new()
            .with_faults(FaultPlan::targets(
                ["anneal#0/1"],
                u32::MAX,
                FaultKind::Panic,
            ))
            .with_retries(1);
        let r = explorer
            .explore_recoverable(&profiles, &EvalCache::new(), &ctx)
            .expect("degrades, does not abort");
        assert_eq!(r.cores.len(), 2);
        assert!(r.cores.iter().all(|c| c.ipt > 0.0));
        assert_eq!(
            r.stats.recovery.failed_tasks,
            vec!["anneal#0/1".to_string()]
        );
        assert!(r.stats.recovery.retried >= 1);
    }

    #[test]
    fn all_starts_failing_is_a_terminal_typed_error() {
        use crate::fault::{FaultKind, FaultPlan};
        let profiles = vec![spec::profile("gzip").expect("gzip exists")];
        let mut opts = ExploreOptions::quick();
        opts.anneal.iterations = 5;
        opts.anneal.eval_ops_early = 2000;
        opts.anneal.eval_ops_late = 4000;
        let explorer = Campaign::new(opts);
        let ctx = RunContext::new()
            .with_faults(FaultPlan::targets(["anneal#"], u32::MAX, FaultKind::Error))
            .with_retries(0);
        match explorer.explore_recoverable(&profiles, &EvalCache::new(), &ctx) {
            Err(ExploreError::WorkloadFailed { workload, .. }) => assert_eq!(workload, "gzip"),
            other => panic!("expected WorkloadFailed, got {other:?}"),
        }
    }

    #[test]
    fn progress_sink_observes_without_changing_results() {
        use std::sync::{Arc, Mutex};
        let profiles = vec![
            spec::profile("gzip").expect("gzip exists"),
            spec::profile("mcf").expect("mcf exists"),
        ];
        let mut opts = ExploreOptions::quick();
        opts.anneal.iterations = 8;
        opts.anneal.eval_ops_early = 3000;
        opts.anneal.eval_ops_late = 6000;
        opts.reanneal_iterations = 3;
        opts.jobs = 2;
        let plain = Campaign::new(opts.clone()).explore(&profiles);
        let steps: Arc<Mutex<Vec<(String, u32, u32)>>> = Arc::default();
        let sink = {
            let steps = steps.clone();
            ProgressSink::new(move |e| {
                if let ProgressEvent::AnnealStep {
                    workload,
                    start,
                    iteration,
                    ..
                } = e
                {
                    steps
                        .lock()
                        .unwrap()
                        .push((workload.clone(), *start, *iteration));
                }
            })
        };
        let observed = Campaign::new(opts.clone())
            .with_progress(sink)
            .explore(&profiles);
        for (a, b) in plain.cores.iter().zip(&observed.cores) {
            assert_eq!(a.point, b.point);
            assert!((a.ipt - b.ipt).abs() == 0.0, "observation must not perturb");
        }
        let steps = steps.lock().unwrap();
        // Three starts per workload, `iterations` steps per start, plus
        // any re-anneal steps.
        let base = 2 * 3 * opts.anneal.iterations as usize;
        assert!(steps.len() >= base, "{} < {base}", steps.len());
        assert!(steps.iter().any(|(w, _, _)| w == "gzip"));
        assert!(
            steps.iter().any(|(_, s, _)| *s == 2),
            "corner starts tagged"
        );
        assert!(steps
            .iter()
            .all(|(_, _, it)| *it >= 1 && *it <= opts.anneal.iterations));
    }

    #[test]
    fn parallel_exploration_matches_serial() {
        let profiles = vec![
            spec::profile("gzip").expect("gzip exists"),
            spec::profile("mcf").expect("mcf exists"),
            spec::profile("twolf").expect("twolf exists"),
        ];
        let mut opts = ExploreOptions::quick();
        opts.anneal.iterations = 12;
        opts.anneal.eval_ops_early = 4000;
        opts.anneal.eval_ops_late = 8000;
        opts.reanneal_iterations = 4;
        let serial = {
            let mut o = opts.clone();
            o.jobs = 1;
            Campaign::new(o).explore(&profiles)
        };
        let parallel = {
            let mut o = opts.clone();
            o.jobs = 4;
            Campaign::new(o).explore(&profiles)
        };
        assert_eq!(serial.adoptions, parallel.adoptions);
        for (s, p) in serial.cores.iter().zip(&parallel.cores) {
            assert_eq!(s.point, p.point);
            assert_eq!(s.config, p.config);
            assert!((s.ipt - p.ipt).abs() == 0.0, "IPT must be bit-identical");
        }
        // Counters describe the run shape, not the outcome.
        assert_eq!(serial.stats.workers, 1);
        assert_eq!(parallel.stats.workers, 4);
        let total: u64 = parallel.stats.per_worker_tasks.iter().sum();
        let serial_total: u64 = serial.stats.per_worker_tasks.iter().sum();
        assert_eq!(total, serial_total, "same task count either way");
        let c = parallel.stats.cache;
        assert!(c.hits > 0, "anneal revisits must hit the cache");
    }
}
