//! The full §4 methodology: per-workload annealing plus
//! cross-configuration seeding across workloads.

use crate::anneal::{anneal, evaluate, AnnealOptions, AnnealResult};
use crate::point::DesignPoint;
use serde::{Deserialize, Serialize};
use xps_cacti::Technology;
use xps_sim::CoreConfig;
use xps_workload::WorkloadProfile;

/// Options for a full exploration campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploreOptions {
    /// Per-workload annealing options.
    pub anneal: AnnealOptions,
    /// Rounds of cross-configuration seeding: after each round every
    /// workload is evaluated on every other workload's best
    /// configuration, and adopts it (then re-anneals from it) when it
    /// is better — the paper's §4.1 expedient.
    pub cross_rounds: u32,
    /// Iterations of the re-anneal after adopting a foreign
    /// configuration.
    pub reanneal_iterations: u32,
}

impl Default for ExploreOptions {
    fn default() -> ExploreOptions {
        ExploreOptions {
            anneal: AnnealOptions::default(),
            cross_rounds: 2,
            reanneal_iterations: 60,
        }
    }
}

impl ExploreOptions {
    /// Cheap settings for tests and demos.
    pub fn quick() -> ExploreOptions {
        ExploreOptions {
            anneal: AnnealOptions::quick(),
            cross_rounds: 1,
            reanneal_iterations: 15,
        }
    }
}

/// One workload's customized core: its configurational
/// characterization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CustomizedCore {
    /// The workload.
    pub profile: WorkloadProfile,
    /// The best design point found for it.
    pub point: DesignPoint,
    /// The realized configuration (a row of the paper's Table 4).
    pub config: CoreConfig,
    /// Its IPT on its own customized core.
    pub ipt: f64,
}

/// The outcome of a full exploration: one customized core per
/// workload, in input order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplorationResult {
    /// Customized cores, one per input profile, in input order.
    pub cores: Vec<CustomizedCore>,
    /// Number of configuration adoptions performed by cross seeding.
    pub adoptions: u32,
}

/// Orchestrates the paper's exploration methodology over a workload
/// set.
#[derive(Debug, Clone)]
pub struct Explorer {
    opts: ExploreOptions,
    tech: Technology,
}

impl Explorer {
    /// Build an explorer with the default technology.
    pub fn new(opts: ExploreOptions) -> Explorer {
        Explorer {
            opts,
            tech: Technology::default(),
        }
    }

    /// Build an explorer for a specific technology point (the paper
    /// stresses that these physical properties shape the outcome).
    pub fn with_technology(opts: ExploreOptions, tech: Technology) -> Explorer {
        Explorer { opts, tech }
    }

    /// The technology in use.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Run the full campaign: anneal each workload from the Table 3
    /// start, then `cross_rounds` of cross-configuration seeding.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn explore(&self, profiles: &[WorkloadProfile]) -> ExplorationResult {
        assert!(!profiles.is_empty(), "need at least one workload");
        // Multi-start annealing: the Table 3 start plus two corner
        // seeds, keeping each workload's best outcome. The corners let
        // the walk reach fast-deep and slow-big customizations without
        // crossing the IPT valley between them.
        let starts = [
            DesignPoint::initial(),
            DesignPoint::fast_corner(),
            DesignPoint::big_corner(),
        ];
        let mut results: Vec<AnnealResult> = profiles
            .iter()
            .map(|p| {
                starts
                    .iter()
                    .enumerate()
                    .map(|(i, start)| {
                        let mut opts = self.opts.anneal.clone();
                        opts.seed ^= (i as u64) << 32;
                        anneal(p, start, &opts, &self.tech)
                    })
                    .max_by(|a, b| a.ipt.partial_cmp(&b.ipt).expect("IPT is finite"))
                    .expect("at least one start")
            })
            .collect();

        let mut adoptions = 0;
        for _ in 0..self.opts.cross_rounds {
            let mut improved = false;
            for i in 0..profiles.len() {
                // Evaluate workload i on every other best config.
                let mut best_foreign: Option<(usize, f64)> = None;
                for (j, r) in results.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let ipt = evaluate(&profiles[i], &r.config, self.opts.anneal.eval_ops_late);
                    if ipt > results[i].ipt
                        && best_foreign.map(|(_, b)| ipt > b).unwrap_or(true)
                    {
                        best_foreign = Some((j, ipt));
                    }
                }
                if let Some((j, _)) = best_foreign {
                    // Adopt the foreign point and re-anneal briefly
                    // from it to specialize further.
                    let seed_point = results[j].point.clone();
                    let mut re_opts = self.opts.anneal.clone();
                    re_opts.iterations = self.opts.reanneal_iterations;
                    re_opts.early_fraction = 0.0;
                    let r = anneal(&profiles[i], &seed_point, &re_opts, &self.tech);
                    if r.ipt > results[i].ipt {
                        results[i] = r;
                        adoptions += 1;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }

        let cores = profiles
            .iter()
            .zip(results)
            .map(|(p, r)| CustomizedCore {
                profile: p.clone(),
                point: r.point,
                config: CoreConfig {
                    name: p.name.clone(),
                    ..r.config
                },
                ipt: r.ipt,
            })
            .collect();
        ExplorationResult { cores, adoptions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xps_workload::spec;

    #[test]
    fn explore_two_workloads_quickly() {
        let profiles = vec![
            spec::profile("gzip").expect("gzip exists"),
            spec::profile("mcf").expect("mcf exists"),
        ];
        let explorer = Explorer::new(ExploreOptions::quick());
        let r = explorer.explore(&profiles);
        assert_eq!(r.cores.len(), 2);
        assert_eq!(r.cores[0].config.name, "gzip");
        assert_eq!(r.cores[1].config.name, "mcf");
        for c in &r.cores {
            assert!(c.ipt > 0.0);
            c.config.validate().expect("explored configs are valid");
        }
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_input_panics() {
        Explorer::new(ExploreOptions::quick()).explore(&[]);
    }
}
