//! Memoized design-point evaluation.
//!
//! Annealing walks revisit configurations constantly — rollbacks return
//! to the best-so-far, cross-configuration seeding re-evaluates foreign
//! winners, the grid baseline shares lattice points across workloads,
//! and the communal replacement passes re-measure rows and columns that
//! mostly did not change. Because the simulator is a pure function of
//! (workload profile, configuration, op budget), all of those repeats
//! can be served from a cache with results **bit-identical** to fresh
//! simulation.
//!
//! The cache is sharded (64 ways) so parallel workers rarely contend,
//! and the simulation itself always runs outside any lock.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use serde::{Deserialize, Serialize};
use xps_sim::{ConfigKey, CoreConfig, SimStats};
use xps_workload::WorkloadProfile;

const SHARDS: usize = 64;

/// The identity of one evaluation: which workload, which design (by its
/// name-independent canonical key), and how many ops were simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct EvalKey {
    profile_fp: u64,
    cfg: ConfigKey,
    ops: u64,
}

/// Hit/miss counters of an [`EvalCache`], cheap to copy into summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Evaluations served from the cache without simulating.
    pub hits: u64,
    /// Evaluations that had to run the simulator.
    pub misses: u64,
}

impl CacheCounters {
    /// Fraction of lookups served from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, thread-safe memoization cache mapping
/// (workload, configuration, op budget) to the resulting [`SimStats`].
///
/// Simulation is deterministic, so a hit returns exactly the stats a
/// fresh run would produce. Shared by reference across the worker pool;
/// one instance typically spans a whole pipeline run so the exploration
/// phase warms the cache for the communal cross-evaluation phase.
#[derive(Debug)]
pub struct EvalCache {
    shards: Vec<Mutex<HashMap<EvalKey, SimStats>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for EvalCache {
    fn default() -> EvalCache {
        EvalCache::new()
    }
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> EvalCache {
        EvalCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &EvalKey) -> &Mutex<HashMap<EvalKey, SimStats>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Simulate `profile` on `cfg` for `ops` micro-ops, or return the
    /// memoized result of an identical earlier evaluation.
    pub fn stats(&self, profile: &WorkloadProfile, cfg: &CoreConfig, ops: u64) -> SimStats {
        let key = EvalKey {
            profile_fp: profile.fingerprint(),
            cfg: cfg.canonical_key(),
            ops,
        };
        // The *lookup* is deterministic per task (how many evaluations
        // a walk asks for never depends on scheduling), so it may live
        // in the trace journal; whether it *hits* depends on which
        // racing worker populated the shared cache first, so the
        // outcome below is recorded volatile-only.
        xps_trace::instant("cache.lookup", || xps_trace::attr("ops", ops));
        let shard = self.shard(&key);
        if let Some(stats) = shard
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            xps_trace::instant_volatile("cache.hit", xps_trace::Attrs::new);
            return stats.clone();
        }
        // Simulate outside the lock; if two workers race on the same
        // key they both compute the same value and one insert wins.
        xps_trace::instant_volatile("cache.miss", xps_trace::Attrs::new);
        let stats = xps_sim::evaluate(profile, cfg, ops);
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert_with(|| stats.clone());
        stats
    }

    /// Memoized IPT (instructions per nanosecond) of `cfg` on `profile`.
    pub fn ipt(&self, profile: &WorkloadProfile, cfg: &CoreConfig, ops: u64) -> f64 {
        self.stats(profile, cfg, ops).ipt()
    }

    /// Snapshot of the hit/miss counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct evaluations stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Whether the cache holds no evaluations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xps_sim::Simulator;
    use xps_workload::{spec, TraceGenerator};

    const OPS: u64 = 4000;

    #[test]
    fn hit_returns_bit_identical_stats() {
        let cache = EvalCache::new();
        let p = spec::profile("gzip").expect("gzip exists");
        let cfg = CoreConfig::initial();
        let fresh = Simulator::new(&cfg).run(TraceGenerator::new(p.clone()), OPS);
        let miss = cache.stats(&p, &cfg, OPS);
        let hit = cache.stats(&p, &cfg, OPS);
        assert_eq!(miss, fresh);
        assert_eq!(hit, fresh);
        assert_eq!(cache.counters(), CacheCounters { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn rename_hits_but_any_parameter_change_misses() {
        let cache = EvalCache::new();
        let p = spec::profile("mcf").expect("mcf exists");
        let cfg = CoreConfig::initial();
        cache.stats(&p, &cfg, OPS);
        let mut renamed = cfg.clone();
        renamed.name = "mcf-custom".to_string();
        cache.stats(&p, &renamed, OPS);
        assert_eq!(cache.counters(), CacheCounters { hits: 1, misses: 1 });
        let mut widened = cfg.clone();
        widened.width += 1;
        cache.stats(&p, &widened, OPS);
        cache.stats(&p, &cfg, OPS * 2);
        let other = spec::profile("gcc").expect("gcc exists");
        cache.stats(&other, &cfg, OPS);
        assert_eq!(cache.counters(), CacheCounters { hits: 1, misses: 4 });
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn shared_across_threads() {
        let cache = EvalCache::new();
        let p = spec::profile("twolf").expect("twolf exists");
        let cfg = CoreConfig::initial();
        let serial = cache.stats(&p, &cfg, OPS);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    assert_eq!(cache.stats(&p, &cfg, OPS), serial);
                });
            }
        });
        let c = cache.counters();
        assert_eq!(c.hits + c.misses, 5);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn hit_rate_arithmetic() {
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
        let c = CacheCounters { hits: 3, misses: 1 };
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
    }
}
