//! The explorer portfolio: seeded, budgeted search strategies over
//! the design space, comparable head-to-head at equal cost.
//!
//! The paper finds each workload's configurational characteristics
//! with simulated annealing (§3) and never asks whether a different
//! search would find better configurations for the same simulation
//! budget. This module makes that question askable: an [`Explorer`]
//! is any strategy that consumes design-point evaluations from an
//! [`EvalBudget`] — the *only* way it may pay for information — and
//! the portfolio ships three of them:
//!
//! * [`AnnealExplorer`] — the paper's walk (same move kernel, accept
//!   rule, and rollback discipline as [`crate::anneal`]), re-expressed
//!   against the budget seam;
//! * [`GeneticExplorer`] — tournament selection, field-wise
//!   crossover, and move-kernel mutation over a population seeded
//!   from the Table 3 start, the corner points, and the coarse
//!   lattice ([`crate::GridSpec`]);
//! * [`SurrogateExplorer`] — a ridge-regression IPT predictor
//!   trained on the run's own accumulated `(design point → IPT)`
//!   pairs, used to rank move-kernel candidates so only the most
//!   promising ones pay for simulation.
//!
//! ## The contract
//!
//! An explorer is given a seeded RNG, a start point, and a budget; it
//! must draw randomness only from that RNG and measurements only from
//! [`EvalBudget::probe`], and it must keep probing until the budget
//! answers [`Probe::Exhausted`]. Under that contract a search is a
//! pure function of `(profile, technology, options, explorer name)`:
//! byte-identical across reruns, `--jobs` values, and fleet worker
//! counts, and safe to journal and resume. Unrealizable proposals
//! cost nothing (the paper rejects them before simulating, §3); every
//! measured probe costs exactly one evaluation, cache hit or not, so
//! no strategy can stretch its budget by revisiting old points.
//!
//! The budget seam also records everything the bake-off reports need:
//! the best-so-far curve (evals-to-best), and every measured point's
//! `(IPT, energy-per-instruction)` coordinates for Pareto-front
//! extraction ([`xps_communal::pareto_front`]).

use crate::anneal::propose;
use crate::cache::EvalCache;
use crate::error::ExploreError;
use crate::grid::GridSpec;
use crate::journal::fnv64;
use crate::point::DesignPoint;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xps_cacti::Technology;
use xps_communal::{pareto_front, ParetoPoint};
use xps_sim::{estimate_energy, CoreConfig};
use xps_workload::WorkloadProfile;

/// Options of one budgeted search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOptions {
    /// Total number of measured design-point evaluations the explorer
    /// may spend. Unrealizable proposals are free; everything else —
    /// including re-visits served by the cache — costs one.
    pub budget: u64,
    /// Trace length (ops) of every evaluation. One fixed length keeps
    /// the bake-off's budget unit honest: every explorer's evaluation
    /// simulates the same number of ops.
    pub eval_ops: u64,
    /// RNG seed; mixed with the workload seed and the explorer name
    /// so every (workload, explorer) pair walks an independent but
    /// reproducible stream.
    pub seed: u64,
}

impl Default for SearchOptions {
    fn default() -> SearchOptions {
        SearchOptions {
            budget: 400,
            eval_ops: 60_000,
            seed: 0x5EED,
        }
    }
}

impl SearchOptions {
    /// A much cheaper setting for tests and smoke runs.
    pub fn quick() -> SearchOptions {
        SearchOptions {
            budget: 60,
            eval_ops: 12_000,
            ..SearchOptions::default()
        }
    }

    /// Check every invariant the search driver relies on.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidOptions`] naming the first
    /// violated invariant.
    pub fn validate(&self) -> Result<(), ExploreError> {
        if self.budget == 0 {
            return Err(ExploreError::InvalidOptions(
                "search budget must be >= 1 evaluation".into(),
            ));
        }
        if self.eval_ops == 0 {
            return Err(ExploreError::InvalidOptions(
                "eval_ops must be >= 1 op".into(),
            ));
        }
        Ok(())
    }
}

/// The answer to one [`EvalBudget::probe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Probe {
    /// The point realized and was measured: its IPT, at the run's
    /// fixed trace length. One evaluation was spent.
    Measured(f64),
    /// The point failed to realize (nothing fits); no evaluation was
    /// spent. The move is rejected, as in the paper's loop.
    Unrealizable,
    /// The budget is spent. The explorer must stop; no measurement
    /// was taken.
    Exhausted,
}

/// One point of the evals-to-best convergence curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Evaluations spent when this best was established (1-based).
    pub evals: u64,
    /// The best IPT known after that many evaluations.
    pub ipt: f64,
}

/// The metered evaluation seam: the only way an [`Explorer`] may
/// measure a design point. Counts every measured probe against the
/// budget, tracks the incumbent best, the convergence curve, the
/// two-objective coordinates of every measured point, and the
/// `(point, IPT)` training pairs the surrogate learns from.
#[derive(Debug)]
pub struct EvalBudget<'a> {
    profile: &'a WorkloadProfile,
    tech: &'a Technology,
    cache: &'a EvalCache,
    eval_ops: u64,
    budget: u64,
    spent: u64,
    unrealizable: u64,
    best: Option<(DesignPoint, CoreConfig, f64)>,
    curve: Vec<CurvePoint>,
    evaluated: Vec<ParetoPoint>,
    pairs: Vec<(DesignPoint, f64)>,
}

impl<'a> EvalBudget<'a> {
    fn new(
        profile: &'a WorkloadProfile,
        tech: &'a Technology,
        cache: &'a EvalCache,
        opts: &SearchOptions,
    ) -> EvalBudget<'a> {
        EvalBudget {
            profile,
            tech,
            cache,
            eval_ops: opts.eval_ops,
            budget: opts.budget,
            spent: 0,
            unrealizable: 0,
            best: None,
            curve: Vec::new(),
            evaluated: Vec::new(),
            pairs: Vec::new(),
        }
    }

    /// Measure one design point, spending one evaluation if (and only
    /// if) it realizes and the budget is not exhausted.
    pub fn probe(&mut self, point: &DesignPoint) -> Probe {
        if self.spent >= self.budget {
            return Probe::Exhausted;
        }
        let Some(cfg) = point.realize(self.tech, &self.profile.name) else {
            self.unrealizable += 1;
            return Probe::Unrealizable;
        };
        let stats = self.cache.stats(self.profile, &cfg, self.eval_ops);
        let ipt = stats.ipt();
        self.spent += 1;
        // The cost axis of the two-objective figure of merit: the
        // CACTI-derived energy proxy per committed instruction, nJ.
        let cost = estimate_energy(self.tech, &cfg, &stats).total_nj()
            / (stats.instructions.max(1) as f64);
        self.evaluated.push(ParetoPoint { ipt, cost });
        self.pairs.push((point.clone(), ipt));
        if self.best.as_ref().map(|(_, _, b)| ipt > *b).unwrap_or(true) {
            self.best = Some((point.clone(), cfg, ipt));
            self.curve.push(CurvePoint {
                evals: self.spent,
                ipt,
            });
        }
        Probe::Measured(ipt)
    }

    /// Evaluations spent so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Evaluations remaining.
    pub fn remaining(&self) -> u64 {
        self.budget - self.spent
    }

    /// True once the whole budget is spent.
    pub fn exhausted(&self) -> bool {
        self.spent >= self.budget
    }

    /// Proposals rejected as unrealizable (free).
    pub fn unrealizable(&self) -> u64 {
        self.unrealizable
    }

    /// The incumbent best point, if anything measured yet.
    pub fn best_point(&self) -> Option<&DesignPoint> {
        self.best.as_ref().map(|(p, _, _)| p)
    }

    /// The incumbent best IPT, if anything measured yet.
    pub fn best_ipt(&self) -> Option<f64> {
        self.best.as_ref().map(|(_, _, i)| *i)
    }

    /// Every `(design point, IPT)` measurement of this run, in probe
    /// order — the surrogate's training set.
    pub fn pairs(&self) -> &[(DesignPoint, f64)] {
        &self.pairs
    }
}

/// A budgeted, seeded search strategy.
///
/// Implementations must draw randomness only from the supplied RNG
/// and measurements only from the budget, and must keep probing until
/// [`Probe::Exhausted`] — the bake-off's equal-budget comparison is
/// meaningless for a strategy that stops early. Under this contract
/// [`search`] is deterministic for fixed inputs, which is what makes
/// bake-off reports byte-identical across jobs, reruns, and fleet
/// worker counts.
pub trait Explorer: Send + Sync + std::fmt::Debug {
    /// The strategy's registry name (`"anneal"`, `"genetic"`, …).
    fn name(&self) -> &'static str;

    /// Search from `start` (already measured as the budget's
    /// incumbent) until the budget is exhausted.
    fn run(&self, rng: &mut SmallRng, budget: &mut EvalBudget<'_>, start: &DesignPoint);
}

/// Consecutive unrealizable proposals after which a strategy abandons
/// a stuck neighbourhood walk. With the shared move kernel this is
/// essentially unreachable (every realizable point has realizable
/// neighbours), but it bounds the loop deterministically.
const STUCK_LIMIT: u32 = 10_000;

/// The paper's annealing walk, driven by the budget seam: same move
/// kernel, accept rule, rollback-to-best discipline, and geometric
/// cooling as [`crate::anneal`], but iterating until the evaluation
/// budget is spent instead of for a fixed iteration count.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnnealExplorer;

impl Explorer for AnnealExplorer {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn run(&self, rng: &mut SmallRng, budget: &mut EvalBudget<'_>, start: &DesignPoint) {
        let mut cur = start.clone();
        // xps-allow(no-unwrap-in-lib): the driver measures the start before any strategy runs, so an incumbent always exists
        let mut cur_ipt = budget.best_ipt().expect("driver measured the start");
        let mut temp: f64 = 0.10;
        let cooling = 0.985;
        let rollback_fraction = 0.5;
        let mut stuck = 0u32;
        loop {
            let cand = propose(rng, &cur);
            match budget.probe(&cand) {
                Probe::Exhausted => return,
                Probe::Unrealizable => {
                    stuck += 1;
                    if stuck >= STUCK_LIMIT {
                        return;
                    }
                }
                Probe::Measured(ipt) => {
                    stuck = 0;
                    let accept = ipt > cur_ipt || {
                        let delta = ipt - cur_ipt;
                        rng.gen::<f64>() < (delta / temp.max(1e-6)).exp()
                    };
                    if accept {
                        cur = cand;
                        cur_ipt = ipt;
                    }
                    // xps-allow(no-unwrap-in-lib): at least the start has been measured, so a best exists
                    let best_ipt = budget.best_ipt().expect("something measured");
                    if cur_ipt < rollback_fraction * best_ipt {
                        // xps-allow(no-unwrap-in-lib): a best IPT implies a best point
                        cur = budget.best_point().expect("a best exists").clone();
                        cur_ipt = best_ipt;
                    }
                }
            }
            temp *= cooling;
        }
    }
}

/// Field-wise recombination of two design points: each knob is taken
/// from one parent or the other by a fair coin. Both parents inside
/// the move-kernel domain ([`DesignPoint::validate`]) implies the
/// child is too — every field value is one of the parents'.
///
/// Exposed (with [`mutate`]) so the operator proptests can pin the
/// domain-closure invariant down directly.
pub fn crossover(rng: &mut SmallRng, a: &DesignPoint, b: &DesignPoint) -> DesignPoint {
    let pick = |rng: &mut SmallRng, x: u32, y: u32| if rng.gen::<bool>() { x } else { y };
    let clock_ns = if rng.gen::<bool>() {
        a.clock_ns
    } else {
        b.clock_ns
    };
    DesignPoint {
        clock_ns,
        width: pick(rng, a.width, b.width),
        sched_depth: pick(rng, a.sched_depth, b.sched_depth),
        wakeup_slack: pick(rng, a.wakeup_slack, b.wakeup_slack),
        lsq_depth: pick(rng, a.lsq_depth, b.lsq_depth),
        l1_cycles: pick(rng, a.l1_cycles, b.l1_cycles),
        l2_cycles: pick(rng, a.l2_cycles, b.l2_cycles),
        l1_assoc: pick(rng, a.l1_assoc, b.l1_assoc),
        l1_block: pick(rng, a.l1_block, b.l1_block),
        l2_assoc: pick(rng, a.l2_assoc, b.l2_assoc),
        l2_block: pick(rng, a.l2_block, b.l2_block),
    }
}

/// The GA's mutation operator: one application of the shared move
/// kernel. Closed over the move-kernel domain — a valid input yields
/// a valid output ([`DesignPoint::validate`]).
pub fn mutate(rng: &mut SmallRng, p: &DesignPoint) -> DesignPoint {
    propose(rng, p)
}

/// Genetic search over configurations: a population seeded from the
/// start, the corner points, and random coarse-lattice points;
/// 3-way tournament selection; field-wise [`crossover`]; move-kernel
/// [`mutate`]; and single-individual elitism (the incumbent best is
/// carried into every generation with its recorded fitness, so it is
/// never lost and never re-billed).
#[derive(Debug, Clone, Copy, Default)]
pub struct GeneticExplorer;

/// GA population size.
const POPULATION: usize = 10;
/// GA tournament size.
const TOURNAMENT: usize = 3;

fn tournament<'p>(rng: &mut SmallRng, pop: &'p [(DesignPoint, f64)]) -> &'p (DesignPoint, f64) {
    let mut best = &pop[rng.gen_range(0..pop.len())];
    for _ in 1..TOURNAMENT {
        let cand = &pop[rng.gen_range(0..pop.len())];
        if cand.1 > best.1 {
            best = cand;
        }
    }
    best
}

impl Explorer for GeneticExplorer {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn run(&self, rng: &mut SmallRng, budget: &mut EvalBudget<'_>, start: &DesignPoint) {
        let lattice = GridSpec::default().points();
        // xps-allow(no-unwrap-in-lib): the driver measures the start before any strategy runs
        let start_ipt = budget.best_ipt().expect("driver measured the start");
        let mut pop: Vec<(DesignPoint, f64)> = vec![(start.clone(), start_ipt)];
        let mut seeds = vec![DesignPoint::fast_corner(), DesignPoint::big_corner()];
        while pop.len() + seeds.len() < POPULATION {
            seeds.push(lattice[rng.gen_range(0..lattice.len())].clone());
        }
        for p in seeds {
            match budget.probe(&p) {
                Probe::Exhausted => return,
                Probe::Unrealizable => pop.push((p, f64::NEG_INFINITY)),
                Probe::Measured(ipt) => pop.push((p, ipt)),
            }
        }
        loop {
            // Elitism: clone the generation's best (first of ties)
            // into the next generation without re-probing it.
            let elite = pop
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                // xps-allow(no-unwrap-in-lib): the population is never empty
                .expect("population is non-empty")
                .clone();
            let mut next = vec![elite];
            while next.len() < POPULATION {
                let pa = tournament(rng, &pop).0.clone();
                let pb = tournament(rng, &pop).0.clone();
                let mut child = crossover(rng, &pa, &pb);
                if rng.gen::<f64>() < 0.9 {
                    child = mutate(rng, &child);
                }
                if rng.gen::<f64>() < 0.3 {
                    child = mutate(rng, &child);
                }
                match budget.probe(&child) {
                    Probe::Exhausted => return,
                    Probe::Unrealizable => next.push((child, f64::NEG_INFINITY)),
                    Probe::Measured(ipt) => next.push((child, ipt)),
                }
            }
            pop = next;
        }
    }
}

/// Surrogate-guided search: once enough `(point, IPT)` pairs have
/// accumulated, fit a ridge-regression IPT predictor over the knob
/// features, generate a batch of move-kernel candidates around the
/// incumbent, and pay for simulation only on the highest-predicted
/// few. Before the model has data (or if the normal equations turn
/// singular) it degrades to plain neighbourhood probing.
#[derive(Debug, Clone, Copy, Default)]
pub struct SurrogateExplorer;

/// Measurements required before the first model fit.
const BOOTSTRAP: usize = 10;
/// Candidates generated per surrogate round.
const CANDIDATES: usize = 16;
/// Candidates actually simulated per round (the top-predicted).
const PROBES_PER_ROUND: usize = 4;
/// Ridge regularizer.
const LAMBDA: f64 = 1e-3;
/// Feature-vector width: bias + 7 raw knobs + 4 log2 organization
/// preferences.
const FEATURES: usize = 12;

/// The surrogate's feature map. Associativities and block sizes are
/// log2-scaled so their geometric candidate ladders become linear
/// axes; everything else enters raw. Documented in DESIGN.md — keep
/// in sync.
fn features(p: &DesignPoint) -> [f64; FEATURES] {
    [
        1.0,
        p.clock_ns,
        f64::from(p.width),
        f64::from(p.sched_depth),
        f64::from(p.wakeup_slack),
        f64::from(p.lsq_depth),
        f64::from(p.l1_cycles),
        f64::from(p.l2_cycles),
        f64::from(p.l1_assoc).log2(),
        f64::from(p.l1_block).log2(),
        f64::from(p.l2_assoc).log2(),
        f64::from(p.l2_block).log2(),
    ]
}

/// Fit ridge weights by the normal equations, solved with Gaussian
/// elimination under partial pivoting. Returns `None` when the system
/// is numerically singular (e.g. every observation is one point).
fn fit_ridge(pairs: &[(DesignPoint, f64)]) -> Option<[f64; FEATURES]> {
    let mut a = [[0.0f64; FEATURES]; FEATURES];
    let mut b = [0.0f64; FEATURES];
    for (p, y) in pairs {
        let x = features(p);
        for i in 0..FEATURES {
            for j in 0..FEATURES {
                a[i][j] += x[i] * x[j];
            }
            b[i] += x[i] * y;
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += LAMBDA;
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..FEATURES {
        let pivot = (col..FEATURES)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .unwrap_or(col);
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..FEATURES {
            let f = a[row][col] / a[col][col];
            #[allow(clippy::needless_range_loop)]
            for k in col..FEATURES {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut w = [0.0f64; FEATURES];
    for col in (0..FEATURES).rev() {
        let mut acc = b[col];
        for k in col + 1..FEATURES {
            acc -= a[col][k] * w[k];
        }
        w[col] = acc / a[col][col];
    }
    if w.iter().all(|v| v.is_finite()) {
        Some(w)
    } else {
        None
    }
}

fn predict(w: &[f64; FEATURES], p: &DesignPoint) -> f64 {
    let x = features(p);
    x.iter().zip(w).map(|(xi, wi)| xi * wi).sum()
}

impl Explorer for SurrogateExplorer {
    fn name(&self) -> &'static str {
        "surrogate"
    }

    fn run(&self, rng: &mut SmallRng, budget: &mut EvalBudget<'_>, _start: &DesignPoint) {
        let mut stuck = 0u32;
        loop {
            if budget.exhausted() {
                return;
            }
            let incumbent = budget
                .best_point()
                // xps-allow(no-unwrap-in-lib): the driver measures the start before any strategy runs
                .expect("driver measured the start")
                .clone();
            if budget.pairs().len() < BOOTSTRAP {
                // Bootstrap: plain neighbourhood probing until the
                // model has something to learn from.
                let cand = propose(rng, &incumbent);
                match budget.probe(&cand) {
                    Probe::Exhausted => return,
                    Probe::Unrealizable => {
                        stuck += 1;
                        if stuck >= STUCK_LIMIT {
                            return;
                        }
                    }
                    Probe::Measured(_) => stuck = 0,
                }
                continue;
            }
            let model = fit_ridge(budget.pairs());
            // A candidate batch around the incumbent: chains of 1–3
            // kernel moves so the batch spans near and mid-range
            // neighbourhoods.
            let cands: Vec<DesignPoint> = (0..CANDIDATES)
                .map(|i| {
                    let mut q = propose(rng, &incumbent);
                    for _ in 0..(i % 3) {
                        q = propose(rng, &q);
                    }
                    q
                })
                .collect();
            let mut order: Vec<usize> = (0..cands.len()).collect();
            if let Some(w) = &model {
                // Rank by predicted IPT, descending; ties keep
                // generation order so ranking is total and stable.
                order.sort_by(|&i, &j| {
                    predict(w, &cands[j])
                        .total_cmp(&predict(w, &cands[i]))
                        .then_with(|| i.cmp(&j))
                });
            }
            let mut measured_this_round = false;
            for &idx in order.iter().take(PROBES_PER_ROUND) {
                match budget.probe(&cands[idx]) {
                    Probe::Exhausted => return,
                    Probe::Unrealizable => {}
                    Probe::Measured(_) => measured_this_round = true,
                }
            }
            if measured_this_round {
                stuck = 0;
            } else {
                stuck += PROBES_PER_ROUND as u32;
                if stuck >= STUCK_LIMIT {
                    return;
                }
            }
        }
    }
}

/// Registry names of the portfolio, in bake-off order.
pub const EXPLORER_NAMES: [&str; 3] = ["anneal", "genetic", "surrogate"];

/// Look an explorer up by its registry name.
pub fn explorer_by_name(name: &str) -> Option<Box<dyn Explorer>> {
    match name {
        "anneal" => Some(Box::new(AnnealExplorer)),
        "genetic" => Some(Box::new(GeneticExplorer)),
        "surrogate" => Some(Box::new(SurrogateExplorer)),
        _ => None,
    }
}

/// The outcome of one budgeted search: one explorer, one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The explorer's registry name.
    pub explorer: String,
    /// The workload's name.
    pub workload: String,
    /// The best design point found.
    pub point: DesignPoint,
    /// Its realized configuration.
    pub config: CoreConfig,
    /// Its IPT at the run's fixed trace length.
    pub ipt: f64,
    /// Measured evaluations spent (equals the budget unless the
    /// strategy aborted a provably stuck walk).
    pub evals: u64,
    /// Proposals rejected as unrealizable (free).
    pub unrealizable: u64,
    /// The evals-to-best convergence curve.
    pub curve: Vec<CurvePoint>,
    /// The non-dominated (IPT, energy-per-instruction) front over
    /// every measured point of this run.
    pub front: Vec<ParetoPoint>,
}

/// Run one explorer against one workload under a budget.
///
/// The Table 3 start is measured first (relaxing its clock if it does
/// not realize under `tech`, exactly as the annealing campaign does),
/// so every strategy begins from the same incumbent and the budget
/// unit is identical across the portfolio. Deterministic for fixed
/// `(profile, tech, opts, explorer name)`; the shared cache
/// accelerates repeated runs without changing any byte of the result.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidOptions`] when the options violate
/// an invariant.
///
/// # Panics
///
/// Panics if no design realizes under `tech` even at the slowest
/// admissible clock — the same impossibility the annealing campaign
/// asserts on.
pub fn search(
    explorer: &dyn Explorer,
    profile: &WorkloadProfile,
    tech: &Technology,
    opts: &SearchOptions,
    cache: &EvalCache,
) -> Result<SearchOutcome, ExploreError> {
    opts.validate()?;
    let span = xps_trace::span("search.run");
    let mut start = DesignPoint::initial();
    while start.realize(tech, &profile.name).is_none() {
        assert!(
            start.clock_ns < 2.0,
            "no realizable design even at a {} ns clock",
            start.clock_ns
        );
        start.clock_ns *= 1.25;
    }
    let mut budget = EvalBudget::new(profile, tech, cache, opts);
    match budget.probe(&start) {
        Probe::Measured(_) => {}
        other => unreachable!("start probe cannot fail: {other:?}"),
    }
    let mut rng =
        SmallRng::seed_from_u64(opts.seed ^ profile.seed ^ fnv64(0, explorer.name().as_bytes()));
    explorer.run(&mut rng, &mut budget, &start);
    let EvalBudget {
        spent,
        unrealizable,
        best,
        curve,
        evaluated,
        ..
    } = budget;
    // xps-allow(no-unwrap-in-lib): the start probe above guarantees at least one measurement
    let (point, config, ipt) = best.expect("the start was measured");
    span.end_with(|| {
        xps_trace::attrs([
            ("explorer", explorer.name().into()),
            ("workload", profile.name.as_str().into()),
            ("evals", spent.into()),
            ("unrealizable", unrealizable.into()),
        ])
    });
    Ok(SearchOutcome {
        explorer: explorer.name().to_string(),
        workload: profile.name.clone(),
        point,
        config,
        ipt,
        evals: spent,
        unrealizable,
        curve,
        front: pareto_front(&evaluated),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xps_workload::spec;

    fn gzip() -> WorkloadProfile {
        spec::profile("gzip").expect("gzip exists")
    }

    fn tiny() -> SearchOptions {
        SearchOptions {
            budget: 25,
            eval_ops: 4_000,
            seed: 7,
        }
    }

    #[test]
    fn every_explorer_spends_exactly_the_budget() {
        let tech = Technology::default();
        for name in EXPLORER_NAMES {
            let e = explorer_by_name(name).expect("registered");
            let cache = EvalCache::new();
            let r = search(&*e, &gzip(), &tech, &tiny(), &cache).expect("searches");
            assert_eq!(r.evals, tiny().budget, "{name} must exhaust its budget");
            let c = cache.counters();
            assert!(
                c.hits + c.misses >= r.evals,
                "{name}: every spent evaluation passes the cache seam"
            );
            assert!(
                c.misses <= r.evals,
                "{name} simulated more than it was billed for"
            );
        }
    }

    #[test]
    fn outcome_shape_is_coherent() {
        let tech = Technology::default();
        let r = search(&AnnealExplorer, &gzip(), &tech, &tiny(), &cacheless()).expect("searches");
        assert_eq!(r.explorer, "anneal");
        assert_eq!(r.workload, "gzip");
        assert!(r.ipt > 0.0);
        assert!(!r.curve.is_empty());
        assert_eq!(r.curve[0].evals, 1, "the start is evaluation #1");
        assert!(r.curve.windows(2).all(|w| w[0].ipt < w[1].ipt));
        assert!(r.curve.windows(2).all(|w| w[0].evals < w[1].evals));
        assert!(!r.front.is_empty());
        let best_front = r.front.iter().map(|p| p.ipt).fold(f64::MIN, f64::max);
        assert!(
            (best_front - r.ipt).abs() < 1e-12,
            "the best IPT is on the front"
        );
        r.config.validate().expect("best config is valid");
    }

    fn cacheless() -> EvalCache {
        EvalCache::new()
    }

    #[test]
    fn same_seed_same_bytes_and_shared_cache_is_invisible() {
        let tech = Technology::default();
        for name in EXPLORER_NAMES {
            let e = explorer_by_name(name).expect("registered");
            let a = search(&*e, &gzip(), &tech, &tiny(), &EvalCache::new()).expect("searches");
            // Second run against a cache pre-warmed by an unrelated
            // explorer: bytes must not change.
            let warm = EvalCache::new();
            let _ = search(
                &*explorer_by_name("genetic").expect("registered"),
                &gzip(),
                &tech,
                &tiny(),
                &warm,
            );
            let b = search(&*e, &gzip(), &tech, &tiny(), &warm).expect("searches");
            let ja = serde_json::to_string(&a).expect("serializes");
            let jb = serde_json::to_string(&b).expect("serializes");
            assert_eq!(ja, jb, "{name} must be byte-stable");
        }
    }

    #[test]
    fn unknown_explorer_is_none() {
        assert!(explorer_by_name("bogus").is_none());
        for name in EXPLORER_NAMES {
            assert_eq!(explorer_by_name(name).expect("registered").name(), name);
        }
    }

    #[test]
    fn invalid_options_are_typed_errors() {
        let mut o = tiny();
        o.budget = 0;
        assert!(o.validate().is_err());
        let mut o = tiny();
        o.eval_ops = 0;
        assert!(o.validate().is_err());
        assert!(SearchOptions::quick().validate().is_ok());
        assert!(SearchOptions::default().validate().is_ok());
    }

    #[test]
    fn ridge_recovers_a_linear_signal() {
        // y depends linearly on width: the model must rank a wider
        // point above a narrower one.
        let mut pairs = Vec::new();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..40 {
            let p = propose(&mut rng, &DesignPoint::initial());
            let y = 0.5 + 0.3 * f64::from(p.width);
            pairs.push((p, y));
        }
        let w = fit_ridge(&pairs).expect("well-conditioned");
        let mut narrow = DesignPoint::initial();
        narrow.width = 1;
        let mut wide = DesignPoint::initial();
        wide.width = 8;
        assert!(predict(&w, &wide) > predict(&w, &narrow));
    }

    #[test]
    fn ridge_regularizer_keeps_rank_one_data_solvable() {
        // Five observations of one single point: without the ridge
        // term the normal equations would be singular; with it the
        // fit succeeds and reproduces the observed value at the
        // observed point.
        let pairs = vec![(DesignPoint::initial(), 1.0); 5];
        let w = fit_ridge(&pairs).expect("ridge term keeps the system regular");
        let pred = predict(&w, &DesignPoint::initial());
        assert!((pred - 1.0).abs() < 0.05, "prediction {pred} far from 1.0");
    }
}
