//! The micro-op representation consumed by the timing simulator.

use serde::{Deserialize, Serialize};

/// Number of architectural registers in the trace format. Registers
/// `0..8` are treated as long-lived values (always ready); the
/// generator allocates destinations from `8..REG_COUNT`.
pub const REG_COUNT: usize = 64;

/// Operation classes, chosen to match the functional-unit classes of a
/// SimpleScalar-style integer pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Unpipelined integer divide.
    IntDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
}

impl OpClass {
    /// True for memory operations (loads and stores).
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }
}

/// Control-flow annotation carried by branch micro-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchInfo {
    /// The branch's actual outcome in this dynamic instance.
    pub taken: bool,
    /// Branch target (used only for BTB modeling).
    pub target: u64,
}

/// One dynamic micro-operation of a workload trace.
///
/// A trace is an iterator of these; the simulator is *trace-driven*: the
/// outcome of every branch and the effective address of every memory
/// operation are part of the trace, while all timing (when the address
/// can be computed, when the branch resolves, whether the prediction was
/// right) is decided by the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroOp {
    /// Fetch PC of the op.
    pub pc: u64,
    /// Operation class.
    pub class: OpClass,
    /// Destination architectural register, if any.
    pub dest: Option<u8>,
    /// Up to two source architectural registers.
    pub srcs: [Option<u8>; 2],
    /// Effective address for memory ops (0 otherwise).
    pub addr: u64,
    /// Branch annotation for branch ops.
    pub branch: Option<BranchInfo>,
}

impl MicroOp {
    /// A register-to-register ALU op (handy for tests and synthetic
    /// kernels).
    pub fn alu(pc: u64, dest: u8, srcs: [Option<u8>; 2]) -> MicroOp {
        MicroOp {
            pc,
            class: OpClass::IntAlu,
            dest: Some(dest),
            srcs,
            addr: 0,
            branch: None,
        }
    }

    /// A load from `addr` into `dest`, with optional address-source
    /// register.
    pub fn load(pc: u64, dest: u8, addr_src: Option<u8>, addr: u64) -> MicroOp {
        MicroOp {
            pc,
            class: OpClass::Load,
            dest: Some(dest),
            srcs: [addr_src, None],
            addr,
            branch: None,
        }
    }

    /// A store of register `data` to `addr`.
    pub fn store(pc: u64, data: u8, addr: u64) -> MicroOp {
        MicroOp {
            pc,
            class: OpClass::Store,
            dest: None,
            srcs: [Some(data), None],
            addr,
            branch: None,
        }
    }

    /// A conditional branch at `pc` with the given outcome.
    pub fn branch(pc: u64, cond_src: Option<u8>, taken: bool, target: u64) -> MicroOp {
        MicroOp {
            pc,
            class: OpClass::Branch,
            dest: None,
            srcs: [cond_src, None],
            addr: 0,
            branch: Some(BranchInfo { taken, target }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_class() {
        assert_eq!(MicroOp::alu(0, 8, [None, None]).class, OpClass::IntAlu);
        assert_eq!(MicroOp::load(0, 8, None, 64).class, OpClass::Load);
        assert_eq!(MicroOp::store(0, 8, 64).class, OpClass::Store);
        let b = MicroOp::branch(4, None, true, 100);
        assert_eq!(b.class, OpClass::Branch);
        assert!(b.branch.expect("branch info").taken);
    }

    #[test]
    fn mem_classes() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Branch.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
    }
}
