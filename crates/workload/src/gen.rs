//! Deterministic synthetic trace generation from a statistical profile.

use crate::op::{MicroOp, OpClass};
use crate::profile::WorkloadProfile;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng, Uniform};

/// Base virtual address of the code region (branch PCs and sequential
/// fetch PCs live here).
const CODE_BASE: u64 = 0x0040_0000;
/// Base of the hot data region.
const HOT_BASE: u64 = 0x1000_0000;
/// Base of the warm data region.
const WARM_BASE: u64 = 0x4000_0000;
/// Base of the cold data region.
const COLD_BASE: u64 = 0x8000_0000;
/// First allocatable destination register (below this are long-lived
/// values that are always ready).
const FIRST_DEST: u8 = 8;
/// Registers at and above this index are reserved for pointer-chase
/// chains and never allocated to ordinary destinations, so a chain's
/// dependence is not broken by register recycling.
const FIRST_CHASE: u8 = 56;
/// Number of concurrent pointer-chase chains. Real pointer-chasing
/// codes (mcf's network simplex) walk several independent lists, which
/// is exactly what lets a larger instruction window extract memory-level
/// parallelism from them.
const CHASE_CHAINS: usize = 6;
/// How many recent destination registers are remembered for dependence
/// sampling.
const RECENT: usize = 32;
/// Probability a non-chase load writes a long-lived (base-pointer)
/// register instead of an allocated one: pointer updates make the
/// "always ready" pool periodically depend on memory, as in real code.
const LOAD_RENEW_FRAC: f64 = 0.10;
/// Probability a compute op renews a long-lived register (induction
/// variables, accumulated flags).
const ALU_RENEW_FRAC: f64 = 0.05;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BranchKind {
    /// Loop back-edge: taken `period - 1` times, then not taken.
    Loop { period: u32 },
    /// Biased branch with a fixed taken-probability.
    Biased,
    /// Unbiased (hard) branch.
    Hard,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StaticBranch {
    pc: u64,
    target: u64,
    kind: BranchKind,
    /// Loop iteration counter (meaningful only for `Loop`).
    count: u32,
}

/// Infinite, deterministic micro-op stream synthesized from a
/// [`WorkloadProfile`].
///
/// The generator is an [`Iterator`] over [`MicroOp`]s and never ends; the
/// consumer decides the trace length. Two generators constructed from
/// equal profiles produce identical streams (the profile carries the
/// seed), which is what makes every experiment in the repository
/// reproducible.
///
/// # Example
///
/// ```
/// use xps_workload::{spec, TraceGenerator};
///
/// let p = spec::profile("gcc").expect("gcc is a known benchmark");
/// let a: Vec<_> = TraceGenerator::new(p.clone()).take(64).collect();
/// let b: Vec<_> = TraceGenerator::new(p).take(64).collect();
/// assert_eq!(a, b, "same profile, same stream");
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: SmallRng,
    branches: Vec<StaticBranch>,
    /// Indices into `branches` per kind, for dynamic-kind selection.
    loop_pool: Vec<usize>,
    biased_pool: Vec<usize>,
    hard_pool: Vec<usize>,
    /// Sequential-access cursors per region (hot, warm, cold).
    cursors: [u64; 3],
    /// Ring of recently written destination registers.
    recent: [u8; RECENT],
    recent_len: usize,
    recent_head: usize,
    next_dest: u8,
    /// Round-robin index of the next pointer-chase chain to extend.
    chase_chain: usize,
    /// Whether each chase chain has been started (its register holds a
    /// pointer).
    chase_live: [bool; CHASE_CHAINS],
    pc: u64,
    /// The branch table exactly as `build_branches` produced it, before
    /// any loop counter advanced, plus the RNG state right after the
    /// build. [`TraceGenerator::reset`] restores from these instead of
    /// re-drawing the whole construction sequence.
    pristine_branches: Vec<StaticBranch>,
    pristine_rng: SmallRng,
    /// Integer thresholds for every per-op probability compare; see
    /// [`Thresholds`].
    thr: Thresholds,
    /// Offset distributions per region (hot, warm, cold); spans are
    /// `bytes.max(8)`, matching `sample_addr`'s guard.
    d_region: [Uniform; 3],
    /// Index distributions per branch pool (loop, hard, biased); empty
    /// pools get a placeholder that is never drawn from (`gen_branch`
    /// only selects non-empty pools).
    d_pool: [Uniform; 3],
}

/// 2^53, the scale of the `f64` sampler's mantissa.
const TWO53: f64 = 9_007_199_254_740_992.0;

/// Exact integer forms of the generator's probability compares.
///
/// `Rng::gen::<f64>()` is `(next_u64() >> 11) as f64 * 2^-53`. For the
/// 53-bit draw `k` and a constant `p`, `k < ceil(p * 2^53)` decides
/// `gen::<f64>() < p` and `k > floor(p * 2^53)` decides
/// `gen::<f64>() > p`, with bit-for-bit the same outcome: scaling by a
/// power of two is exact in `f64`, and `k` is an integer. Comparing the
/// raw bits skips an int-to-float conversion and a float compare on
/// every draw of the generator's hot loop, where several probability
/// checks run per op. Cumulative mix thresholds also fold the
/// fraction sums, so op-kind dispatch is one compare per arm.
#[derive(Debug, Clone, Copy)]
struct Thresholds {
    /// Cumulative op-mix bounds: load, +store, +branch, +mul, +div.
    mix_load: u64,
    mix_ls: u64,
    mix_lsb: u64,
    mix_lsbm: u64,
    mix_total: u64,
    /// Region bounds (hot, hot+warm) and the spatial-locality check.
    hot: u64,
    hot_warm: u64,
    spatial: u64,
    /// Load shaping: pointer-chase, has-source (0.5), renew fractions.
    chase: u64,
    half: u64,
    load_renew: u64,
    alu_renew: u64,
    second_src: u64,
    /// Dependence sampling: short-distance fraction and the geometric
    /// stop bound (`> 1/mean_dist`).
    short: u64,
    geo_stop: u64,
    /// Branch-kind bounds (loop, loop+hard) and the biased-taken check.
    kf_loop: u64,
    kf_loop_hard: u64,
    bias: u64,
}

/// `k < lt_bits(p)` ⟺ `(k as f64) * 2^-53 < p`, for any 53-bit `k`.
fn lt_bits(p: f64) -> u64 {
    (p * TWO53).ceil().clamp(0.0, u64::MAX as f64) as u64
}

/// `k > gt_bits(p)` ⟺ `(k as f64) * 2^-53 > p`, for any 53-bit `k`.
fn gt_bits(p: f64) -> u64 {
    (p * TWO53).floor().clamp(0.0, u64::MAX as f64) as u64
}

impl Thresholds {
    fn for_profile(p: &WorkloadProfile) -> Thresholds {
        let mix = p.mix;
        Thresholds {
            mix_load: lt_bits(mix.load),
            mix_ls: lt_bits(mix.load + mix.store),
            mix_lsb: lt_bits(mix.load + mix.store + mix.branch),
            mix_lsbm: lt_bits(mix.load + mix.store + mix.branch + mix.mul),
            mix_total: lt_bits(mix.total()),
            hot: lt_bits(p.mem.hot_frac),
            hot_warm: lt_bits(p.mem.hot_frac + p.mem.warm_frac),
            spatial: lt_bits(p.mem.spatial),
            chase: lt_bits(p.mem.pointer_chase_frac),
            half: lt_bits(0.5),
            load_renew: lt_bits(LOAD_RENEW_FRAC),
            alu_renew: lt_bits(ALU_RENEW_FRAC),
            second_src: lt_bits(p.deps.second_src_frac),
            short: lt_bits(p.deps.short_frac),
            geo_stop: gt_bits(1.0 / p.deps.mean_dist),
            kf_loop: lt_bits(p.ctrl.loop_frac),
            kf_loop_hard: lt_bits(p.ctrl.loop_frac + p.ctrl.hard_frac),
            bias: lt_bits(p.ctrl.bias),
        }
    }
}

impl TraceGenerator {
    /// Build a generator for `profile`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation; construct profiles via
    /// [`crate::spec`] or validate before use.
    pub fn new(profile: WorkloadProfile) -> TraceGenerator {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid profile `{}`: {e}", profile.name));
        let mem = profile.mem;
        let mut g = TraceGenerator {
            rng: SmallRng::seed_from_u64(profile.seed),
            thr: Thresholds::for_profile(&profile),
            d_region: [
                Uniform::new(0, mem.hot_bytes.max(8)),
                Uniform::new(0, mem.warm_bytes.max(8)),
                Uniform::new(0, mem.cold_bytes.max(8)),
            ],
            d_pool: [Uniform::new(0, 1); 3],
            profile,
            branches: Vec::new(),
            loop_pool: Vec::new(),
            biased_pool: Vec::new(),
            hard_pool: Vec::new(),
            cursors: [0; 3],
            recent: [FIRST_DEST; RECENT],
            recent_len: 0,
            recent_head: 0,
            next_dest: FIRST_DEST,
            chase_chain: 0,
            chase_live: [false; CHASE_CHAINS],
            pc: CODE_BASE,
            pristine_branches: Vec::new(),
            pristine_rng: SmallRng::seed_from_u64(0),
        };
        g.build_branches();
        g.d_pool = [&g.loop_pool, &g.hard_pool, &g.biased_pool]
            .map(|p| Uniform::new(0, p.len().max(1) as u64));
        g.pristine_branches = g.branches.clone();
        g.pristine_rng = g.rng.clone();
        g
    }

    /// Rewind to the exact state of a freshly constructed generator for
    /// the same profile, reusing the branch-table allocations. After a
    /// reset the op stream restarts bit-identically from the first op,
    /// which is what lets a per-thread generator pool recycle buffers
    /// without perturbing any result.
    pub fn reset(&mut self) {
        // Construction is memoized: iterating only ever mutates loop
        // counters in `branches` and the RNG, so restoring both from
        // the post-build snapshot replays construction exactly without
        // re-drawing it. The kind pools are build-time constants and
        // need no touch-up.
        self.rng.clone_from(&self.pristine_rng);
        self.branches.clone_from(&self.pristine_branches);
        self.cursors = [0; 3];
        self.recent = [FIRST_DEST; RECENT];
        self.recent_len = 0;
        self.recent_head = 0;
        self.next_dest = FIRST_DEST;
        self.chase_chain = 0;
        self.chase_live = [false; CHASE_CHAINS];
        self.pc = CODE_BASE;
    }

    /// Build the static branch tables. Must consume RNG draws in a
    /// fixed order: the post-init `self.rng` state feeds the op
    /// stream. Runs once at construction; [`reset`] restores the
    /// snapshot taken right after this returns.
    ///
    /// [`reset`]: TraceGenerator::reset
    fn build_branches(&mut self) {
        let n = self.profile.ctrl.static_branches as usize;
        self.branches.reserve(n);
        // Split the static pool in proportion to the dynamic kind
        // fractions so each static branch keeps one personality.
        for i in 0..n {
            let f = i as f64 / n as f64;
            let kind = if f < self.profile.ctrl.loop_frac {
                self.loop_pool.push(i);
                BranchKind::Loop {
                    // Cap periods at 10 so patterns stay within the
                    // reach of a 12-bit-history predictor, as inner
                    // loops are for real loop/history predictors.
                    period: 2 + (self.rng.gen::<u32>() % self.profile.ctrl.loop_period.clamp(2, 9)),
                }
            } else if f < self.profile.ctrl.loop_frac + self.profile.ctrl.hard_frac {
                self.hard_pool.push(i);
                BranchKind::Hard
            } else {
                self.biased_pool.push(i);
                BranchKind::Biased
            };
            let pc = CODE_BASE + 4 * self.rng.gen_range(0..65536) as u64;
            self.branches.push(StaticBranch {
                pc,
                target: pc.wrapping_add(4 * self.rng.gen_range(2..64) as u64),
                kind,
                count: self.rng.gen::<u32>() % self.profile.ctrl.loop_period.max(2),
            });
        }
        // Guarantee non-empty fallback pools.
        if self.biased_pool.is_empty() {
            self.biased_pool.push(0);
        }
    }

    /// The profile this generator was built from.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// The 53 bits behind one `gen::<f64>()` draw, for integer-
    /// threshold compares (see [`Thresholds`]). Consumes exactly one
    /// `next_u64`, like the float form.
    #[inline]
    fn draw53(&mut self) -> u64 {
        use rand::RngCore;
        self.rng.next_u64() >> 11
    }

    fn alloc_dest(&mut self) -> u8 {
        let d = self.next_dest;
        self.next_dest += 1;
        if self.next_dest >= FIRST_CHASE {
            self.next_dest = FIRST_DEST;
        }
        self.recent[self.recent_head] = d;
        self.recent_head = (self.recent_head + 1) % RECENT;
        self.recent_len = (self.recent_len + 1).min(RECENT);
        d
    }

    /// Sample a source register: with probability `short_frac` a recent
    /// producer at a geometric backward distance, otherwise a long-lived
    /// always-ready register.
    fn sample_src(&mut self) -> u8 {
        if self.recent_len > 0 && self.draw53() < self.thr.short {
            let mut dist = 1usize;
            while self.draw53() > self.thr.geo_stop && dist < self.recent_len {
                dist += 1;
            }
            let idx = (self.recent_head + RECENT - dist.min(self.recent_len)) % RECENT;
            self.recent[idx]
        } else {
            self.rng.gen_range(0..FIRST_DEST)
        }
    }

    /// Generate a data address according to the region model.
    fn sample_addr(&mut self) -> u64 {
        let m = self.profile.mem;
        let r = self.draw53();
        let (region, base, size) = if r < self.thr.hot {
            (0usize, HOT_BASE, m.hot_bytes)
        } else if r < self.thr.hot_warm {
            (1, WARM_BASE, m.warm_bytes)
        } else {
            (2, COLD_BASE, m.cold_bytes)
        };
        let off = if self.draw53() < self.thr.spatial {
            // `cursor < size` always holds, so the wrap `% size` is a
            // (rarely taken) subtract, not a division.
            let mut c = self.cursors[region] + m.stride;
            while c >= size {
                c -= size;
            }
            self.cursors[region] = c;
            c
        } else {
            let c = self.d_region[region].sample(&mut self.rng) & !7;
            self.cursors[region] = c;
            c
        };
        base + off
    }

    fn next_pc(&mut self) -> u64 {
        self.pc = self.pc.wrapping_add(4);
        if self.pc >= CODE_BASE + 0x10_0000 {
            self.pc = CODE_BASE;
        }
        self.pc
    }

    fn gen_branch(&mut self) -> MicroOp {
        let kf = self.draw53();
        let (pool, d_pool) = if kf < self.thr.kf_loop && !self.loop_pool.is_empty() {
            (&self.loop_pool, &self.d_pool[0])
        } else if kf < self.thr.kf_loop_hard && !self.hard_pool.is_empty() {
            (&self.hard_pool, &self.d_pool[1])
        } else {
            (&self.biased_pool, &self.d_pool[2])
        };
        let bi = pool[d_pool.sample(&mut self.rng) as usize];
        let b = self.branches[bi];
        let taken = match b.kind {
            BranchKind::Loop { period } => {
                let c = self.branches[bi].count;
                self.branches[bi].count = (c + 1) % period.max(2);
                c + 1 != period.max(2)
            }
            BranchKind::Biased => self.draw53() < self.thr.bias,
            BranchKind::Hard => self.draw53() < self.thr.half,
        };
        let cond = self.sample_src();
        MicroOp::branch(b.pc, Some(cond), taken, b.target)
    }

    fn gen_load(&mut self) -> MicroOp {
        let pc = self.next_pc();
        let chase = self.draw53() < self.thr.chase;
        if chase {
            // Extend the next chain round-robin: the load's address
            // depends on the chain register, and its result becomes the
            // next pointer of that chain. Chains are serial internally
            // but independent of each other, so a larger window can
            // overlap them (memory-level parallelism).
            let chain = self.chase_chain;
            self.chase_chain = (self.chase_chain + 1) % CHASE_CHAINS;
            let reg = FIRST_CHASE + chain as u8;
            let src = if self.chase_live[chain] {
                Some(reg)
            } else {
                None
            };
            self.chase_live[chain] = true;
            // Chains walk the *warm* arena: pointer structures have a
            // bounded footprint, so a sufficiently large L2 can capture
            // a chase (the paper's mcf gets exactly this from its 4 MB
            // L2), while small caches send every hop to memory.
            let off = self.d_region[1].sample(&mut self.rng) & !7;
            MicroOp::load(pc, reg, src, WARM_BASE + off)
        } else {
            let src = if self.draw53() < self.thr.half {
                Some(self.sample_src())
            } else {
                None
            };
            let dest = if self.draw53() < self.thr.load_renew {
                // A pointer/base-register update: the long-lived pool
                // now depends on this load's latency.
                self.rng.gen_range(0..FIRST_DEST)
            } else {
                self.alloc_dest()
            };
            let addr = self.sample_addr();
            MicroOp::load(pc, dest, src, addr)
        }
    }

    fn gen_store(&mut self) -> MicroOp {
        let pc = self.next_pc();
        let data = self.sample_src();
        let addr = self.sample_addr();
        let mut op = MicroOp::store(pc, data, addr);
        // Half of stores also carry an address-base dependence.
        if self.draw53() < self.thr.half {
            op.srcs[1] = Some(self.sample_src());
        }
        op
    }

    fn gen_compute(&mut self, class: OpClass) -> MicroOp {
        let pc = self.next_pc();
        let s0 = self.sample_src();
        let s1 = if self.draw53() < self.thr.second_src {
            Some(self.sample_src())
        } else {
            None
        };
        let dest = if self.draw53() < self.thr.alu_renew {
            self.rng.gen_range(0..FIRST_DEST)
        } else {
            self.alloc_dest()
        };
        MicroOp {
            pc,
            class,
            dest: Some(dest),
            srcs: [Some(s0), s1],
            addr: 0,
            branch: None,
        }
    }
}

/// Most generators a single thread keeps pooled; beyond this the extra
/// ones are dropped rather than hoarded.
const POOL_CAP: usize = 16;

thread_local! {
    static GENERATOR_POOL: std::cell::RefCell<Vec<TraceGenerator>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `f` with a trace generator for `profile`, recycling a per-thread
/// pool of generators so repeated evaluations on one worker reuse the
/// branch-table allocations instead of reallocating them.
///
/// The generator handed to `f` is always in the freshly-constructed
/// state ([`TraceGenerator::reset`] replays construction exactly), so
/// the op stream is bit-identical to `TraceGenerator::new(profile)`.
pub fn with_generator<R>(profile: &WorkloadProfile, f: impl FnOnce(&mut TraceGenerator) -> R) -> R {
    let pooled = GENERATOR_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        pool.iter()
            .position(|g| g.profile() == profile)
            .map(|i| pool.swap_remove(i))
    });
    let mut g = match pooled {
        Some(mut g) => {
            g.reset();
            g
        }
        None => TraceGenerator::new(profile.clone()),
    };
    let out = f(&mut g);
    GENERATOR_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < POOL_CAP {
            pool.push(g);
        }
    });
    out
}

/// Largest single trace (in ops) the replay cache will materialize.
/// Bigger requests stream through [`with_generator`] instead — a
/// million-op campaign trace would hold tens of megabytes per thread.
pub const REPLAY_CACHE_MAX_OPS: u64 = 65_536;

/// Total ops the per-thread replay cache holds across traces before
/// evicting the least recently inserted ones.
const REPLAY_CACHE_TOTAL_OPS: u64 = 262_144;

thread_local! {
    static TRACE_CACHE: std::cell::RefCell<Vec<(WorkloadProfile, u64, Vec<MicroOp>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `f` over the first `ops` micro-ops of `profile`'s trace as a
/// slice, memoizing the materialized trace in a per-thread cache.
///
/// A profile's op stream is a pure function of the profile, so every
/// evaluation of a different core configuration on the same workload
/// replays the identical trace; materializing it once turns the
/// generator's per-op sampling work into a linear read for each
/// subsequent evaluation. This is classic trace-driven simulation, and
/// it is what the exploration loop does: dozens to thousands of
/// configurations, a handful of workload profiles.
///
/// Returns `None` (without running `f`) when `ops` exceeds
/// [`REPLAY_CACHE_MAX_OPS`]; callers fall back to streaming via
/// [`with_generator`]. The cached trace is exactly the stream
/// `TraceGenerator::new(profile)` yields, so results are bit-identical
/// to streaming.
pub fn with_cached_trace<R>(
    profile: &WorkloadProfile,
    ops: u64,
    f: impl FnOnce(&[MicroOp]) -> R,
) -> Option<R> {
    if ops > REPLAY_CACHE_MAX_OPS {
        return None;
    }
    let want = ops as usize;
    TRACE_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(i) = cache
            .iter()
            .position(|(p, len, _)| p == profile && *len >= ops)
        {
            return Some(f(&cache[i].2[..want]));
        }
        // Miss: materialize via the pooled generator, then cache.
        let trace: Vec<MicroOp> = with_generator(profile, |g| g.take(want).collect());
        // Drop any shorter trace for this profile — the longer one
        // subsumes it — then evict least recently inserted traces
        // until this one fits.
        cache.retain(|(p, _, _)| p != profile);
        let mut held: u64 = cache.iter().map(|(_, len, _)| *len).sum();
        while held + ops > REPLAY_CACHE_TOTAL_OPS && !cache.is_empty() {
            held -= cache.remove(0).1;
        }
        let out = f(&trace);
        cache.push((profile.clone(), ops, trace));
        Some(out)
    })
}

impl Iterator for TraceGenerator {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        let r = self.draw53();
        let op = if r < self.thr.mix_load {
            self.gen_load()
        } else if r < self.thr.mix_ls {
            self.gen_store()
        } else if r < self.thr.mix_lsb {
            self.gen_branch()
        } else if r < self.thr.mix_lsbm {
            self.gen_compute(OpClass::IntMul)
        } else if r < self.thr.mix_total {
            self.gen_compute(OpClass::IntDiv)
        } else {
            self.gen_compute(OpClass::IntAlu)
        };
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::REG_COUNT;
    use crate::spec;

    #[test]
    fn cached_trace_replays_fresh_stream() {
        let p = spec::profile("gcc").expect("known benchmark");
        let fresh: Vec<MicroOp> = TraceGenerator::new(p.clone()).take(1000).collect();
        // First call materializes, second replays from cache; both see
        // the exact fresh stream.
        for _ in 0..2 {
            let got = with_cached_trace(&p, 1000, |t| t.to_vec()).expect("within cache bound");
            assert_eq!(got, fresh);
        }
        // A shorter request is served from the longer cached trace.
        let short = with_cached_trace(&p, 10, |t| t.to_vec()).expect("within cache bound");
        assert_eq!(short, fresh[..10]);
        // Budgets beyond the bound refuse (callers stream instead).
        assert_eq!(
            with_cached_trace(&p, REPLAY_CACHE_MAX_OPS + 1, |t| t.len()),
            None
        );
    }

    #[test]
    fn integer_thresholds_match_float_compares() {
        // The exactness claim behind `Thresholds`: for every 53-bit
        // draw k, the integer compare decides identically to the float
        // compare it replaces — including at the representability
        // boundaries (p exactly k/2^53).
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..20_000 {
            let k: u64 = rng.gen::<u64>() >> 11;
            let p = if rng.gen::<bool>() {
                rng.gen::<f64>()
            } else {
                // Exactly representable boundary values.
                (rng.gen::<u64>() >> 11) as f64 / TWO53
            };
            let v = k as f64 * (1.0 / TWO53);
            assert_eq!(k < lt_bits(p), v < p, "lt k={k} p={p}");
            assert_eq!(k > gt_bits(p), v > p, "gt k={k} p={p}");
        }
        // Degenerate probabilities.
        for p in [0.0, 1.0] {
            for k in [0u64, 1, (1 << 53) - 1] {
                let v = k as f64 * (1.0 / TWO53);
                assert_eq!(k < lt_bits(p), v < p);
                assert_eq!(k > gt_bits(p), v > p);
            }
        }
    }

    fn count_class(ops: &[MicroOp], class: OpClass) -> usize {
        ops.iter().filter(|o| o.class == class).count()
    }

    #[test]
    fn deterministic_across_clones() {
        let p = spec::profile("twolf").expect("twolf exists");
        let a: Vec<_> = TraceGenerator::new(p.clone()).take(5000).collect();
        let b: Vec<_> = TraceGenerator::new(p).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn reset_replays_identical_stream() {
        let p = spec::profile("mcf").expect("mcf exists");
        let mut g = TraceGenerator::new(p.clone());
        let first: Vec<_> = (&mut g).take(4000).collect();
        g.reset();
        // Right after reset the branch table matches a fresh build
        // (iterating mutates loop counters, so compare before replay).
        let fresh = TraceGenerator::new(p);
        assert_eq!(g.branches, fresh.branches);
        assert_eq!(g.loop_pool, fresh.loop_pool);
        assert_eq!(g.biased_pool, fresh.biased_pool);
        assert_eq!(g.hard_pool, fresh.hard_pool);
        let replay: Vec<_> = (&mut g).take(4000).collect();
        assert_eq!(first, replay);
    }

    #[test]
    fn pooled_generator_matches_fresh() {
        let gzip = spec::profile("gzip").expect("gzip exists");
        let vpr = spec::profile("vpr").expect("vpr exists");
        let fresh: Vec<_> = TraceGenerator::new(gzip.clone()).take(3000).collect();
        // Interleave profiles so the second gzip call exercises the
        // reset-and-reuse path, not just first construction.
        let a = with_generator(&gzip, |g| g.take(3000).collect::<Vec<_>>());
        let _ = with_generator(&vpr, |g| g.take(100).collect::<Vec<_>>());
        let b = with_generator(&gzip, |g| g.take(3000).collect::<Vec<_>>());
        assert_eq!(a, fresh);
        assert_eq!(b, fresh);
    }

    #[test]
    fn mix_fractions_approximately_respected() {
        let p = spec::profile("gcc").expect("gcc exists");
        let n = 200_000;
        let ops: Vec<_> = TraceGenerator::new(p.clone()).take(n).collect();
        let loads = count_class(&ops, OpClass::Load) as f64 / n as f64;
        let branches = count_class(&ops, OpClass::Branch) as f64 / n as f64;
        assert!((loads - p.mix.load).abs() < 0.01, "load freq {loads}");
        assert!(
            (branches - p.mix.branch).abs() < 0.01,
            "branch freq {branches}"
        );
    }

    #[test]
    fn memory_ops_have_addresses_in_regions() {
        let p = spec::profile("mcf").expect("mcf exists");
        for op in TraceGenerator::new(p).take(20_000) {
            if op.class.is_mem() {
                assert!(op.addr >= HOT_BASE, "data addresses live in data regions");
            } else if op.class != OpClass::Branch {
                assert_eq!(op.addr, 0);
            }
        }
    }

    #[test]
    fn pointer_chases_are_dependent() {
        let p = spec::profile("mcf").expect("mcf exists");
        let ops: Vec<_> = TraceGenerator::new(p).take(50_000).collect();
        // Chase loads read and write the same dedicated chain register.
        let chained = ops
            .iter()
            .filter(|o| {
                o.class == OpClass::Load
                    && o.dest.map(|d| d >= FIRST_CHASE).unwrap_or(false)
                    && o.srcs[0] == o.dest
            })
            .count();
        assert!(
            chained > 1000,
            "mcf must exhibit pointer chasing, saw {chained}"
        );
    }

    #[test]
    fn loop_branches_follow_period() {
        let p = spec::profile("bzip").expect("bzip exists");
        let ops: Vec<_> = TraceGenerator::new(p).take(100_000).collect();
        // A loop branch should be mostly taken.
        let branches: Vec<_> = ops.iter().filter(|o| o.class == OpClass::Branch).collect();
        assert!(!branches.is_empty());
        let taken = branches
            .iter()
            .filter(|o| o.branch.expect("branch op").taken)
            .count() as f64
            / branches.len() as f64;
        assert!(taken > 0.6, "bzip branches are mostly taken: {taken}");
    }

    #[test]
    fn dest_register_ranges() {
        let p = spec::profile("perl").expect("perl exists");
        let mut renewals = 0;
        for op in TraceGenerator::new(p).take(10_000) {
            if let Some(d) = op.dest {
                assert!((d as usize) < REG_COUNT);
                if op.class != OpClass::Load {
                    assert!(d < FIRST_CHASE, "only chase loads use chain registers");
                }
                if d < FIRST_DEST {
                    renewals += 1;
                }
            }
        }
        // Long-lived registers are periodically renewed (base-pointer
        // and induction-variable updates), but only occasionally.
        assert!(renewals > 50, "some renewals expected, saw {renewals}");
        assert!(renewals < 2000, "renewals stay rare, saw {renewals}");
    }
}
