//! Deterministic synthetic trace generation from a statistical profile.

use crate::op::{MicroOp, OpClass};
use crate::profile::WorkloadProfile;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Base virtual address of the code region (branch PCs and sequential
/// fetch PCs live here).
const CODE_BASE: u64 = 0x0040_0000;
/// Base of the hot data region.
const HOT_BASE: u64 = 0x1000_0000;
/// Base of the warm data region.
const WARM_BASE: u64 = 0x4000_0000;
/// Base of the cold data region.
const COLD_BASE: u64 = 0x8000_0000;
/// First allocatable destination register (below this are long-lived
/// values that are always ready).
const FIRST_DEST: u8 = 8;
/// Registers at and above this index are reserved for pointer-chase
/// chains and never allocated to ordinary destinations, so a chain's
/// dependence is not broken by register recycling.
const FIRST_CHASE: u8 = 56;
/// Number of concurrent pointer-chase chains. Real pointer-chasing
/// codes (mcf's network simplex) walk several independent lists, which
/// is exactly what lets a larger instruction window extract memory-level
/// parallelism from them.
const CHASE_CHAINS: usize = 6;
/// How many recent destination registers are remembered for dependence
/// sampling.
const RECENT: usize = 32;
/// Probability a non-chase load writes a long-lived (base-pointer)
/// register instead of an allocated one: pointer updates make the
/// "always ready" pool periodically depend on memory, as in real code.
const LOAD_RENEW_FRAC: f64 = 0.10;
/// Probability a compute op renews a long-lived register (induction
/// variables, accumulated flags).
const ALU_RENEW_FRAC: f64 = 0.05;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BranchKind {
    /// Loop back-edge: taken `period - 1` times, then not taken.
    Loop { period: u32 },
    /// Biased branch with a fixed taken-probability.
    Biased,
    /// Unbiased (hard) branch.
    Hard,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StaticBranch {
    pc: u64,
    target: u64,
    kind: BranchKind,
    /// Loop iteration counter (meaningful only for `Loop`).
    count: u32,
}

/// Infinite, deterministic micro-op stream synthesized from a
/// [`WorkloadProfile`].
///
/// The generator is an [`Iterator`] over [`MicroOp`]s and never ends; the
/// consumer decides the trace length. Two generators constructed from
/// equal profiles produce identical streams (the profile carries the
/// seed), which is what makes every experiment in the repository
/// reproducible.
///
/// # Example
///
/// ```
/// use xps_workload::{spec, TraceGenerator};
///
/// let p = spec::profile("gcc").expect("gcc is a known benchmark");
/// let a: Vec<_> = TraceGenerator::new(p.clone()).take(64).collect();
/// let b: Vec<_> = TraceGenerator::new(p).take(64).collect();
/// assert_eq!(a, b, "same profile, same stream");
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: SmallRng,
    branches: Vec<StaticBranch>,
    /// Indices into `branches` per kind, for dynamic-kind selection.
    loop_pool: Vec<usize>,
    biased_pool: Vec<usize>,
    hard_pool: Vec<usize>,
    /// Sequential-access cursors per region (hot, warm, cold).
    cursors: [u64; 3],
    /// Ring of recently written destination registers.
    recent: [u8; RECENT],
    recent_len: usize,
    recent_head: usize,
    next_dest: u8,
    /// Round-robin index of the next pointer-chase chain to extend.
    chase_chain: usize,
    /// Whether each chase chain has been started (its register holds a
    /// pointer).
    chase_live: [bool; CHASE_CHAINS],
    pc: u64,
}

impl TraceGenerator {
    /// Build a generator for `profile`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation; construct profiles via
    /// [`crate::spec`] or validate before use.
    pub fn new(profile: WorkloadProfile) -> TraceGenerator {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid profile `{}`: {e}", profile.name));
        let mut g = TraceGenerator {
            rng: SmallRng::seed_from_u64(profile.seed),
            profile,
            branches: Vec::new(),
            loop_pool: Vec::new(),
            biased_pool: Vec::new(),
            hard_pool: Vec::new(),
            cursors: [0; 3],
            recent: [FIRST_DEST; RECENT],
            recent_len: 0,
            recent_head: 0,
            next_dest: FIRST_DEST,
            chase_chain: 0,
            chase_live: [false; CHASE_CHAINS],
            pc: CODE_BASE,
        };
        g.build_branches();
        g
    }

    /// Rewind to the exact state of a freshly constructed generator for
    /// the same profile, reusing the branch-table allocations. After a
    /// reset the op stream restarts bit-identically from the first op,
    /// which is what lets a per-thread generator pool recycle buffers
    /// without perturbing any result.
    pub fn reset(&mut self) {
        self.rng = SmallRng::seed_from_u64(self.profile.seed);
        self.branches.clear();
        self.loop_pool.clear();
        self.biased_pool.clear();
        self.hard_pool.clear();
        self.build_branches();
        self.cursors = [0; 3];
        self.recent = [FIRST_DEST; RECENT];
        self.recent_len = 0;
        self.recent_head = 0;
        self.next_dest = FIRST_DEST;
        self.chase_chain = 0;
        self.chase_live = [false; CHASE_CHAINS];
        self.pc = CODE_BASE;
    }

    /// Build the static branch tables. Must consume RNG draws in a
    /// fixed order: this runs both at construction and on [`reset`],
    /// and the post-init `self.rng` state feeds the op stream.
    ///
    /// [`reset`]: TraceGenerator::reset
    fn build_branches(&mut self) {
        let n = self.profile.ctrl.static_branches as usize;
        self.branches.reserve(n);
        // Split the static pool in proportion to the dynamic kind
        // fractions so each static branch keeps one personality.
        for i in 0..n {
            let f = i as f64 / n as f64;
            let kind = if f < self.profile.ctrl.loop_frac {
                self.loop_pool.push(i);
                BranchKind::Loop {
                    // Cap periods at 10 so patterns stay within the
                    // reach of a 12-bit-history predictor, as inner
                    // loops are for real loop/history predictors.
                    period: 2 + (self.rng.gen::<u32>() % self.profile.ctrl.loop_period.clamp(2, 9)),
                }
            } else if f < self.profile.ctrl.loop_frac + self.profile.ctrl.hard_frac {
                self.hard_pool.push(i);
                BranchKind::Hard
            } else {
                self.biased_pool.push(i);
                BranchKind::Biased
            };
            let pc = CODE_BASE + 4 * self.rng.gen_range(0..65536) as u64;
            self.branches.push(StaticBranch {
                pc,
                target: pc.wrapping_add(4 * self.rng.gen_range(2..64) as u64),
                kind,
                count: self.rng.gen::<u32>() % self.profile.ctrl.loop_period.max(2),
            });
        }
        // Guarantee non-empty fallback pools.
        if self.biased_pool.is_empty() {
            self.biased_pool.push(0);
        }
    }

    /// The profile this generator was built from.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn alloc_dest(&mut self) -> u8 {
        let d = self.next_dest;
        self.next_dest += 1;
        if self.next_dest >= FIRST_CHASE {
            self.next_dest = FIRST_DEST;
        }
        self.recent[self.recent_head] = d;
        self.recent_head = (self.recent_head + 1) % RECENT;
        self.recent_len = (self.recent_len + 1).min(RECENT);
        d
    }

    /// Sample a source register: with probability `short_frac` a recent
    /// producer at a geometric backward distance, otherwise a long-lived
    /// always-ready register.
    fn sample_src(&mut self) -> u8 {
        if self.recent_len > 0 && self.rng.gen::<f64>() < self.profile.deps.short_frac {
            let p = 1.0 / self.profile.deps.mean_dist;
            let mut dist = 1usize;
            while self.rng.gen::<f64>() > p && dist < self.recent_len {
                dist += 1;
            }
            let idx = (self.recent_head + RECENT - dist.min(self.recent_len)) % RECENT;
            self.recent[idx]
        } else {
            self.rng.gen_range(0..FIRST_DEST)
        }
    }

    /// Generate a data address according to the region model.
    fn sample_addr(&mut self) -> u64 {
        let m = &self.profile.mem;
        let r: f64 = self.rng.gen();
        let (region, base, size) = if r < m.hot_frac {
            (0usize, HOT_BASE, m.hot_bytes)
        } else if r < m.hot_frac + m.warm_frac {
            (1, WARM_BASE, m.warm_bytes)
        } else {
            (2, COLD_BASE, m.cold_bytes)
        };
        let off = if self.rng.gen::<f64>() < m.spatial {
            let c = (self.cursors[region] + m.stride) % size;
            self.cursors[region] = c;
            c
        } else {
            let c = self.rng.gen_range(0..size.max(8)) & !7;
            self.cursors[region] = c;
            c
        };
        base + off
    }

    fn next_pc(&mut self) -> u64 {
        self.pc = self.pc.wrapping_add(4);
        if self.pc >= CODE_BASE + 0x10_0000 {
            self.pc = CODE_BASE;
        }
        self.pc
    }

    fn gen_branch(&mut self) -> MicroOp {
        let kf: f64 = self.rng.gen();
        let pool = if kf < self.profile.ctrl.loop_frac && !self.loop_pool.is_empty() {
            &self.loop_pool
        } else if kf < self.profile.ctrl.loop_frac + self.profile.ctrl.hard_frac
            && !self.hard_pool.is_empty()
        {
            &self.hard_pool
        } else {
            &self.biased_pool
        };
        let bi = pool[self.rng.gen_range(0..pool.len())];
        let b = self.branches[bi];
        let taken = match b.kind {
            BranchKind::Loop { period } => {
                let c = self.branches[bi].count;
                self.branches[bi].count = (c + 1) % period.max(2);
                c + 1 != period.max(2)
            }
            BranchKind::Biased => self.rng.gen::<f64>() < self.profile.ctrl.bias,
            BranchKind::Hard => self.rng.gen::<f64>() < 0.5,
        };
        let cond = self.sample_src();
        MicroOp::branch(b.pc, Some(cond), taken, b.target)
    }

    fn gen_load(&mut self) -> MicroOp {
        let pc = self.next_pc();
        let chase = self.rng.gen::<f64>() < self.profile.mem.pointer_chase_frac;
        if chase {
            // Extend the next chain round-robin: the load's address
            // depends on the chain register, and its result becomes the
            // next pointer of that chain. Chains are serial internally
            // but independent of each other, so a larger window can
            // overlap them (memory-level parallelism).
            let chain = self.chase_chain;
            self.chase_chain = (self.chase_chain + 1) % CHASE_CHAINS;
            let reg = FIRST_CHASE + chain as u8;
            let src = if self.chase_live[chain] {
                Some(reg)
            } else {
                None
            };
            self.chase_live[chain] = true;
            // Chains walk the *warm* arena: pointer structures have a
            // bounded footprint, so a sufficiently large L2 can capture
            // a chase (the paper's mcf gets exactly this from its 4 MB
            // L2), while small caches send every hop to memory.
            let m = &self.profile.mem;
            let off = self.rng.gen_range(0..m.warm_bytes.max(8)) & !7;
            MicroOp::load(pc, reg, src, WARM_BASE + off)
        } else {
            let src = if self.rng.gen::<f64>() < 0.5 {
                Some(self.sample_src())
            } else {
                None
            };
            let dest = if self.rng.gen::<f64>() < LOAD_RENEW_FRAC {
                // A pointer/base-register update: the long-lived pool
                // now depends on this load's latency.
                self.rng.gen_range(0..FIRST_DEST)
            } else {
                self.alloc_dest()
            };
            let addr = self.sample_addr();
            MicroOp::load(pc, dest, src, addr)
        }
    }

    fn gen_store(&mut self) -> MicroOp {
        let pc = self.next_pc();
        let data = self.sample_src();
        let addr = self.sample_addr();
        let mut op = MicroOp::store(pc, data, addr);
        // Half of stores also carry an address-base dependence.
        if self.rng.gen::<f64>() < 0.5 {
            op.srcs[1] = Some(self.sample_src());
        }
        op
    }

    fn gen_compute(&mut self, class: OpClass) -> MicroOp {
        let pc = self.next_pc();
        let s0 = self.sample_src();
        let s1 = if self.rng.gen::<f64>() < self.profile.deps.second_src_frac {
            Some(self.sample_src())
        } else {
            None
        };
        let dest = if self.rng.gen::<f64>() < ALU_RENEW_FRAC {
            self.rng.gen_range(0..FIRST_DEST)
        } else {
            self.alloc_dest()
        };
        MicroOp {
            pc,
            class,
            dest: Some(dest),
            srcs: [Some(s0), s1],
            addr: 0,
            branch: None,
        }
    }
}

/// Most generators a single thread keeps pooled; beyond this the extra
/// ones are dropped rather than hoarded.
const POOL_CAP: usize = 16;

thread_local! {
    static GENERATOR_POOL: std::cell::RefCell<Vec<TraceGenerator>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `f` with a trace generator for `profile`, recycling a per-thread
/// pool of generators so repeated evaluations on one worker reuse the
/// branch-table allocations instead of reallocating them.
///
/// The generator handed to `f` is always in the freshly-constructed
/// state ([`TraceGenerator::reset`] replays construction exactly), so
/// the op stream is bit-identical to `TraceGenerator::new(profile)`.
pub fn with_generator<R>(profile: &WorkloadProfile, f: impl FnOnce(&mut TraceGenerator) -> R) -> R {
    let pooled = GENERATOR_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        pool.iter()
            .position(|g| g.profile() == profile)
            .map(|i| pool.swap_remove(i))
    });
    let mut g = match pooled {
        Some(mut g) => {
            g.reset();
            g
        }
        None => TraceGenerator::new(profile.clone()),
    };
    let out = f(&mut g);
    GENERATOR_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < POOL_CAP {
            pool.push(g);
        }
    });
    out
}

impl Iterator for TraceGenerator {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        let mix = self.profile.mix;
        let r: f64 = self.rng.gen();
        let op = if r < mix.load {
            self.gen_load()
        } else if r < mix.load + mix.store {
            self.gen_store()
        } else if r < mix.load + mix.store + mix.branch {
            self.gen_branch()
        } else if r < mix.load + mix.store + mix.branch + mix.mul {
            self.gen_compute(OpClass::IntMul)
        } else if r < mix.total() {
            self.gen_compute(OpClass::IntDiv)
        } else {
            self.gen_compute(OpClass::IntAlu)
        };
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::REG_COUNT;
    use crate::spec;

    fn count_class(ops: &[MicroOp], class: OpClass) -> usize {
        ops.iter().filter(|o| o.class == class).count()
    }

    #[test]
    fn deterministic_across_clones() {
        let p = spec::profile("twolf").expect("twolf exists");
        let a: Vec<_> = TraceGenerator::new(p.clone()).take(5000).collect();
        let b: Vec<_> = TraceGenerator::new(p).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn reset_replays_identical_stream() {
        let p = spec::profile("mcf").expect("mcf exists");
        let mut g = TraceGenerator::new(p.clone());
        let first: Vec<_> = (&mut g).take(4000).collect();
        g.reset();
        // Right after reset the branch table matches a fresh build
        // (iterating mutates loop counters, so compare before replay).
        let fresh = TraceGenerator::new(p);
        assert_eq!(g.branches, fresh.branches);
        assert_eq!(g.loop_pool, fresh.loop_pool);
        assert_eq!(g.biased_pool, fresh.biased_pool);
        assert_eq!(g.hard_pool, fresh.hard_pool);
        let replay: Vec<_> = (&mut g).take(4000).collect();
        assert_eq!(first, replay);
    }

    #[test]
    fn pooled_generator_matches_fresh() {
        let gzip = spec::profile("gzip").expect("gzip exists");
        let vpr = spec::profile("vpr").expect("vpr exists");
        let fresh: Vec<_> = TraceGenerator::new(gzip.clone()).take(3000).collect();
        // Interleave profiles so the second gzip call exercises the
        // reset-and-reuse path, not just first construction.
        let a = with_generator(&gzip, |g| g.take(3000).collect::<Vec<_>>());
        let _ = with_generator(&vpr, |g| g.take(100).collect::<Vec<_>>());
        let b = with_generator(&gzip, |g| g.take(3000).collect::<Vec<_>>());
        assert_eq!(a, fresh);
        assert_eq!(b, fresh);
    }

    #[test]
    fn mix_fractions_approximately_respected() {
        let p = spec::profile("gcc").expect("gcc exists");
        let n = 200_000;
        let ops: Vec<_> = TraceGenerator::new(p.clone()).take(n).collect();
        let loads = count_class(&ops, OpClass::Load) as f64 / n as f64;
        let branches = count_class(&ops, OpClass::Branch) as f64 / n as f64;
        assert!((loads - p.mix.load).abs() < 0.01, "load freq {loads}");
        assert!(
            (branches - p.mix.branch).abs() < 0.01,
            "branch freq {branches}"
        );
    }

    #[test]
    fn memory_ops_have_addresses_in_regions() {
        let p = spec::profile("mcf").expect("mcf exists");
        for op in TraceGenerator::new(p).take(20_000) {
            if op.class.is_mem() {
                assert!(op.addr >= HOT_BASE, "data addresses live in data regions");
            } else if op.class != OpClass::Branch {
                assert_eq!(op.addr, 0);
            }
        }
    }

    #[test]
    fn pointer_chases_are_dependent() {
        let p = spec::profile("mcf").expect("mcf exists");
        let ops: Vec<_> = TraceGenerator::new(p).take(50_000).collect();
        // Chase loads read and write the same dedicated chain register.
        let chained = ops
            .iter()
            .filter(|o| {
                o.class == OpClass::Load
                    && o.dest.map(|d| d >= FIRST_CHASE).unwrap_or(false)
                    && o.srcs[0] == o.dest
            })
            .count();
        assert!(
            chained > 1000,
            "mcf must exhibit pointer chasing, saw {chained}"
        );
    }

    #[test]
    fn loop_branches_follow_period() {
        let p = spec::profile("bzip").expect("bzip exists");
        let ops: Vec<_> = TraceGenerator::new(p).take(100_000).collect();
        // A loop branch should be mostly taken.
        let branches: Vec<_> = ops.iter().filter(|o| o.class == OpClass::Branch).collect();
        assert!(!branches.is_empty());
        let taken = branches
            .iter()
            .filter(|o| o.branch.expect("branch op").taken)
            .count() as f64
            / branches.len() as f64;
        assert!(taken > 0.6, "bzip branches are mostly taken: {taken}");
    }

    #[test]
    fn dest_register_ranges() {
        let p = spec::profile("perl").expect("perl exists");
        let mut renewals = 0;
        for op in TraceGenerator::new(p).take(10_000) {
            if let Some(d) = op.dest {
                assert!((d as usize) < REG_COUNT);
                if op.class != OpClass::Load {
                    assert!(d < FIRST_CHASE, "only chase loads use chain registers");
                }
                if d < FIRST_DEST {
                    renewals += 1;
                }
            }
        }
        // Long-lived registers are periodically renewed (base-pointer
        // and induction-variable updates), but only occasionally.
        assert!(renewals > 50, "some renewals expected, saw {renewals}");
        assert!(renewals < 2000, "renewals stay rare, saw {renewals}");
    }
}
