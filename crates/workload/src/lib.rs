//! # xps-workload — statistical workload models and characterization
//!
//! The original paper drives its design exploration with the C-language
//! integer benchmarks of SPEC2000 compiled for the PISA instruction set
//! and executed on SimpleScalar. Neither the binaries nor a PISA
//! front-end are reproducible here, so this crate supplies the
//! substitute described in `DESIGN.md`: **statistical workload models**
//! in the tradition of statistical simulation / workload cloning — one
//! [`WorkloadProfile`] per SPEC2000 integer benchmark, each generating a
//! deterministic, seeded stream of micro-ops ([`MicroOp`]) whose
//! aggregate behaviour matches the benchmark's published personality:
//! working-set sizes, branch bias and predictability, density of
//! dependence chains, load/store frequency, and pointer-chasing degree.
//!
//! The crate also implements the *raw* (microarchitecture-independent)
//! characterization the paper contrasts against configurational
//! characterization: [`Characterizer`] measures the five
//! Figure-1 Kiviat axes from a generated trace.
//!
//! ## Example
//!
//! ```
//! use xps_workload::{spec, TraceGenerator};
//!
//! let profile = spec::profile("mcf").expect("mcf is a known benchmark");
//! let mut ops = TraceGenerator::new(profile);
//! let first_thousand: Vec<_> = (&mut ops).take(1000).collect();
//! assert_eq!(first_thousand.len(), 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod characterize;
mod gen;
mod op;
mod profile;
pub mod spec;

pub use characterize::{CharacterVector, Characterizer, HIST_BUCKETS, KIVIAT_AXES};
pub use gen::{with_cached_trace, with_generator, TraceGenerator, REPLAY_CACHE_MAX_OPS};
pub use op::{BranchInfo, MicroOp, OpClass, REG_COUNT};
pub use profile::{ControlBehavior, DependenceBehavior, MemoryBehavior, OpMix, WorkloadProfile};
