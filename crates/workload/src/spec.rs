//! The eleven C-language SPEC2000 integer benchmark models.
//!
//! The paper evaluates the C integer benchmarks of SPEC2000: bzip,
//! crafty, gap, gcc, gzip, mcf, parser, perl, twolf, vortex, and vpr.
//! Each function below builds the statistical model of one benchmark.
//! The parameter values are derived from the published characterization
//! literature the paper itself cites (instruction mixes and footprints
//! from SPEC CPU2000 characterization studies; branch behaviour and
//! pointer-chasing degree from the standard lore: mcf memory-bound with
//! dependent loads, crafty/perl small-footprint and branchy, twolf/vpr
//! cache-sensitive placement-and-route codes, bzip/gzip compression
//! kernels with similar *raw* behaviour).
//!
//! The values are **not** fitted to the paper's result tables; they are
//! inputs chosen once from the benchmark personalities. Whatever
//! configurations the explorer then finds are the reproduction's
//! "measured" results.

use crate::profile::{ControlBehavior, DependenceBehavior, MemoryBehavior, OpMix, WorkloadProfile};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// Names of the eleven benchmarks, in the paper's table order.
pub const BENCHMARKS: [&str; 11] = [
    "bzip", "crafty", "gap", "gcc", "gzip", "mcf", "parser", "perl", "twolf", "vortex", "vpr",
];

/// All eleven profiles, in the paper's table order.
pub fn all_profiles() -> Vec<WorkloadProfile> {
    BENCHMARKS
        .iter()
        // xps-allow(no-unwrap-in-lib): BENCHMARKS and profile() are defined from the same static table; covered by tests
        .map(|n| profile(n).expect("BENCHMARKS entries are all known"))
        .collect()
}

/// The profile of one benchmark by name, or `None` for an unknown name.
pub fn profile(name: &str) -> Option<WorkloadProfile> {
    let p = match name {
        "bzip" => bzip(),
        "crafty" => crafty(),
        "gap" => gap(),
        "gcc" => gcc(),
        "gzip" => gzip(),
        "mcf" => mcf(),
        "parser" => parser(),
        "perl" => perl(),
        "twolf" => twolf(),
        "vortex" => vortex(),
        "vpr" => vpr(),
        _ => return None,
    };
    Some(p)
}

fn base(name: &str, seed: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: name.to_string(),
        seed,
        mix: OpMix {
            load: 0.25,
            store: 0.10,
            branch: 0.12,
            mul: 0.01,
            div: 0.001,
        },
        mem: MemoryBehavior {
            hot_bytes: 32 * KB,
            warm_bytes: 512 * KB,
            cold_bytes: 16 * MB,
            hot_frac: 0.70,
            warm_frac: 0.22,
            spatial: 0.6,
            pointer_chase_frac: 0.02,
            stride: 8,
        },
        ctrl: ControlBehavior {
            static_branches: 512,
            loop_frac: 0.30,
            loop_period: 16,
            hard_frac: 0.10,
            bias: 0.85,
        },
        deps: DependenceBehavior {
            short_frac: 0.55,
            mean_dist: 6.0,
            second_src_frac: 0.4,
        },
        weight: 1.0,
    }
}

/// bzip2: block-sorting compressor. Dense dependence chains and a hot
/// set that outgrows small L1s; benefits from a large window — the
/// paper customizes it to a slow clock, width 5, ROB 512, 64 KB L1.
fn bzip() -> WorkloadProfile {
    let mut p = base("bzip", 0xB21F_0001);
    p.mix = OpMix {
        load: 0.26,
        store: 0.09,
        branch: 0.11,
        mul: 0.004,
        div: 0.0005,
    };
    p.mem.hot_bytes = 48 * KB;
    p.mem.warm_bytes = MB;
    p.mem.cold_bytes = 8 * MB;
    p.mem.hot_frac = 0.62;
    p.mem.warm_frac = 0.30;
    p.mem.spatial = 0.75;
    p.mem.stride = 8;
    p.ctrl.loop_frac = 0.40;
    p.ctrl.hard_frac = 0.05;
    p.ctrl.bias = 0.90;
    p.deps.short_frac = 0.68;
    p.deps.mean_dist = 4.0;
    p
}

/// crafty: chess engine. Tiny data footprint, branch-rich but
/// predictable, locally dense dependencies — thrives on a fast clock
/// and deep pipeline with small structures.
fn crafty() -> WorkloadProfile {
    let mut p = base("crafty", 0xC4AF_0002);
    p.mix = OpMix {
        load: 0.29,
        store: 0.10,
        branch: 0.11,
        mul: 0.002,
        div: 0.0002,
    };
    p.mem.hot_bytes = 12 * KB;
    p.mem.warm_bytes = 96 * KB;
    p.mem.cold_bytes = 256 * KB;
    p.mem.hot_frac = 0.85;
    p.mem.warm_frac = 0.12;
    p.mem.spatial = 0.45;
    p.ctrl.loop_frac = 0.25;
    p.ctrl.hard_frac = 0.02;
    p.ctrl.bias = 0.97;
    p.deps.short_frac = 0.45;
    p.deps.mean_dist = 8.0;
    p
}

/// gap: group-theory interpreter. Moderate footprint, few branches,
/// good predictability.
fn gap() -> WorkloadProfile {
    let mut p = base("gap", 0x6A50_0003);
    p.mix = OpMix {
        load: 0.23,
        store: 0.08,
        branch: 0.07,
        mul: 0.015,
        div: 0.001,
    };
    p.mem.hot_bytes = 24 * KB;
    p.mem.warm_bytes = 256 * KB;
    p.mem.cold_bytes = 768 * KB;
    p.mem.hot_frac = 0.78;
    p.mem.warm_frac = 0.17;
    p.mem.spatial = 0.55;
    p.ctrl.loop_frac = 0.35;
    p.ctrl.hard_frac = 0.04;
    p.ctrl.bias = 0.94;
    p.deps.short_frac = 0.50;
    p.deps.mean_dist = 7.0;
    p
}

/// gcc: compiler. Large, irregular footprint and the highest branch
/// frequency of the suite; the paper finds its customized core the best
/// *single* configuration — a generalist.
fn gcc() -> WorkloadProfile {
    let mut p = base("gcc", 0x6CC0_0004);
    p.mix = OpMix {
        load: 0.24,
        store: 0.12,
        branch: 0.15,
        mul: 0.003,
        div: 0.0003,
    };
    p.mem.hot_bytes = 32 * KB;
    p.mem.warm_bytes = MB;
    p.mem.cold_bytes = 6 * MB;
    p.mem.hot_frac = 0.68;
    p.mem.warm_frac = 0.24;
    p.mem.spatial = 0.55;
    p.ctrl.static_branches = 2048;
    p.ctrl.loop_frac = 0.22;
    p.ctrl.hard_frac = 0.03;
    p.ctrl.bias = 0.95;
    p.deps.short_frac = 0.55;
    p.deps.mean_dist = 6.0;
    p
}

/// gzip: LZ77 compressor. Raw characteristics close to bzip (similar
/// mix, similar measured working set, similar dependence density — the
/// widely documented similarity the paper's §5.3 exploits), but a hot
/// set that fits a 32 KB L1 and very streaming-friendly access, so its
/// *customized* configuration diverges sharply from bzip's.
fn gzip() -> WorkloadProfile {
    let mut p = base("gzip", 0x671F_0005);
    p.mix = OpMix {
        load: 0.25,
        store: 0.08,
        branch: 0.11,
        mul: 0.003,
        div: 0.0003,
    };
    p.mem.hot_bytes = 20 * KB;
    p.mem.warm_bytes = 448 * KB;
    p.mem.cold_bytes = 1536 * KB;
    p.mem.hot_frac = 0.72;
    p.mem.warm_frac = 0.22;
    p.mem.spatial = 0.88;
    p.mem.stride = 8;
    p.ctrl.loop_frac = 0.42;
    p.ctrl.hard_frac = 0.05;
    p.ctrl.bias = 0.91;
    p.deps.short_frac = 0.62;
    p.deps.mean_dist = 5.0;
    p
}

/// mcf: single-depot vehicle scheduling via network simplex. The
/// suite's memory monster: dependent pointer chases over a footprint
/// far beyond any cache, with highly biased branches. Tolerating misses
/// needs an enormous window — the paper customizes a 1024-entry ROB at
/// a slow clock with maximal caches.
fn mcf() -> WorkloadProfile {
    let mut p = base("mcf", 0x3CF0_0006);
    p.mix = OpMix {
        load: 0.30,
        store: 0.08,
        branch: 0.19,
        mul: 0.001,
        div: 0.0001,
    };
    p.mem.hot_bytes = 8 * KB;
    p.mem.warm_bytes = 1536 * KB;
    p.mem.cold_bytes = 64 * MB;
    p.mem.hot_frac = 0.30;
    p.mem.warm_frac = 0.35;
    p.mem.spatial = 0.30;
    p.mem.pointer_chase_frac = 0.40;
    p.ctrl.loop_frac = 0.30;
    p.ctrl.hard_frac = 0.02;
    p.ctrl.bias = 0.96;
    p.deps.short_frac = 0.35;
    p.deps.mean_dist = 10.0;
    p
}

/// parser: natural-language parser. Dictionary walks over a mid-sized
/// footprint, frequent moderately-predictable branches.
fn parser() -> WorkloadProfile {
    let mut p = base("parser", 0xFA45_0007);
    p.mix = OpMix {
        load: 0.24,
        store: 0.08,
        branch: 0.16,
        mul: 0.002,
        div: 0.0002,
    };
    p.mem.hot_bytes = 24 * KB;
    p.mem.warm_bytes = MB;
    p.mem.cold_bytes = 3 * MB;
    p.mem.hot_frac = 0.70;
    p.mem.warm_frac = 0.22;
    p.mem.spatial = 0.60;
    p.mem.pointer_chase_frac = 0.08;
    p.ctrl.static_branches = 1024;
    p.ctrl.loop_frac = 0.28;
    p.ctrl.hard_frac = 0.06;
    p.ctrl.bias = 0.91;
    p.deps.short_frac = 0.58;
    p.deps.mean_dist = 5.0;
    p
}

/// perl: interpreter. Small data footprint, dense dependence chains in
/// the dispatch loop; customized (like crafty) to a fast, deep design.
fn perl() -> WorkloadProfile {
    let mut p = base("perl", 0x9E41_0008);
    p.mix = OpMix {
        load: 0.30,
        store: 0.15,
        branch: 0.14,
        mul: 0.002,
        div: 0.0002,
    };
    p.mem.hot_bytes = 12 * KB;
    p.mem.warm_bytes = 128 * KB;
    p.mem.cold_bytes = 384 * KB;
    p.mem.hot_frac = 0.82;
    p.mem.warm_frac = 0.14;
    p.mem.spatial = 0.50;
    p.ctrl.static_branches = 1024;
    p.ctrl.loop_frac = 0.20;
    p.ctrl.hard_frac = 0.03;
    p.ctrl.bias = 0.95;
    p.deps.short_frac = 0.60;
    p.deps.mean_dist = 4.5;
    p
}

/// twolf: standard-cell place-and-route. Cache-sensitive with a
/// mid-size working set, hard branches, dense chains.
fn twolf() -> WorkloadProfile {
    let mut p = base("twolf", 0x7301_0009);
    p.mix = OpMix {
        load: 0.25,
        store: 0.07,
        branch: 0.12,
        mul: 0.01,
        div: 0.002,
    };
    p.mem.hot_bytes = 56 * KB;
    p.mem.warm_bytes = 768 * KB;
    p.mem.cold_bytes = 3 * MB;
    p.mem.hot_frac = 0.60;
    p.mem.warm_frac = 0.33;
    p.mem.spatial = 0.40;
    p.ctrl.loop_frac = 0.22;
    p.ctrl.hard_frac = 0.10;
    p.ctrl.bias = 0.85;
    p.deps.short_frac = 0.62;
    p.deps.mean_dist = 4.5;
    p
}

/// vortex: object-oriented database. Wide ILP, very predictable
/// branches, store-heavy; the paper customizes a wide (7), deep design.
fn vortex() -> WorkloadProfile {
    let mut p = base("vortex", 0x404E_000A);
    p.mix = OpMix {
        load: 0.28,
        store: 0.17,
        branch: 0.16,
        mul: 0.001,
        div: 0.0001,
    };
    p.mem.hot_bytes = 32 * KB;
    p.mem.warm_bytes = 512 * KB;
    p.mem.cold_bytes = 1536 * KB;
    p.mem.hot_frac = 0.72;
    p.mem.warm_frac = 0.22;
    p.mem.spatial = 0.65;
    p.ctrl.static_branches = 1024;
    p.ctrl.loop_frac = 0.28;
    p.ctrl.hard_frac = 0.02;
    p.ctrl.bias = 0.97;
    p.deps.short_frac = 0.40;
    p.deps.mean_dist = 9.0;
    p
}

/// vpr: FPGA place-and-route. twolf's sibling: similar footprint and
/// hard branches, load-heavy, dense chains.
fn vpr() -> WorkloadProfile {
    let mut p = base("vpr", 0x09F4_000B);
    p.mix = OpMix {
        load: 0.30,
        store: 0.10,
        branch: 0.11,
        mul: 0.012,
        div: 0.003,
    };
    p.mem.hot_bytes = 72 * KB;
    p.mem.warm_bytes = 640 * KB;
    p.mem.cold_bytes = 2 * MB;
    p.mem.hot_frac = 0.62;
    p.mem.warm_frac = 0.31;
    p.mem.spatial = 0.42;
    p.ctrl.loop_frac = 0.24;
    p.ctrl.hard_frac = 0.10;
    p.ctrl.bias = 0.84;
    p.deps.short_frac = 0.60;
    p.deps.mean_dist = 4.8;
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn eleven_benchmarks() {
        assert_eq!(BENCHMARKS.len(), 11);
        assert_eq!(all_profiles().len(), 11);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(profile("eon").is_none(), "eon is C++, not in the C set");
        assert!(profile("").is_none());
    }

    #[test]
    fn names_match_lookup() {
        for p in all_profiles() {
            let again = profile(&p.name).expect("round-trip");
            assert_eq!(again, p);
        }
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: HashSet<u64> = all_profiles().iter().map(|p| p.seed).collect();
        assert_eq!(seeds.len(), 11, "distinct seeds keep traces independent");
    }

    #[test]
    fn mcf_is_the_memory_monster() {
        let m = profile("mcf").expect("mcf exists");
        for p in all_profiles() {
            if p.name != "mcf" {
                assert!(m.mem.cold_bytes >= p.mem.cold_bytes);
                assert!(m.mem.pointer_chase_frac >= p.mem.pointer_chase_frac);
            }
        }
    }

    #[test]
    fn equal_default_weights() {
        for p in all_profiles() {
            assert!((p.weight - 1.0).abs() < 1e-12);
        }
    }
}
