//! Statistical workload profiles.

use serde::{Deserialize, Serialize};

/// Dynamic instruction mix (fractions of the dynamic op stream). The
/// remainder after all listed classes is single-cycle integer ALU work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of conditional branches.
    pub branch: f64,
    /// Fraction of integer multiplies.
    pub mul: f64,
    /// Fraction of integer divides.
    pub div: f64,
}

impl OpMix {
    /// Sum of all non-ALU fractions.
    pub fn total(&self) -> f64 {
        self.load + self.store + self.branch + self.mul + self.div
    }

    /// Validate that the mix is a sub-distribution (all fractions
    /// non-negative, sum at most 1).
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("load", self.load),
            ("store", self.store),
            ("branch", self.branch),
            ("mul", self.mul),
            ("div", self.div),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("op-mix fraction `{name}` out of [0,1]: {v}"));
            }
        }
        if self.total() > 1.0 + 1e-9 {
            return Err(format!("op-mix fractions sum to {} > 1", self.total()));
        }
        Ok(())
    }
}

/// Memory-access behaviour: a three-level region model (hot / warm /
/// cold) with per-region footprints, plus spatial locality and
/// pointer-chasing degree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBehavior {
    /// Bytes of the hot region (innermost working set).
    pub hot_bytes: u64,
    /// Bytes of the warm region (secondary working set).
    pub warm_bytes: u64,
    /// Bytes of the cold region (full footprint).
    pub cold_bytes: u64,
    /// Probability a memory op targets the hot region.
    pub hot_frac: f64,
    /// Probability a memory op targets the warm region (the remainder
    /// goes to the cold region).
    pub warm_frac: f64,
    /// Probability a region access continues sequentially from the
    /// region's cursor (spatial locality) rather than jumping randomly.
    pub spatial: f64,
    /// Fraction of loads that start or continue a pointer chase: the
    /// load's address depends on the value produced by the previous
    /// load in the chain, serializing them (mcf's defining behaviour).
    pub pointer_chase_frac: f64,
    /// Sequential stride in bytes for spatial accesses.
    pub stride: u64,
}

impl MemoryBehavior {
    /// Validate footprints and probabilities.
    pub fn validate(&self) -> Result<(), String> {
        if self.hot_bytes == 0
            || self.warm_bytes < self.hot_bytes
            || self.cold_bytes < self.warm_bytes
        {
            return Err(format!(
                "regions must nest: 0 < hot ({}) <= warm ({}) <= cold ({})",
                self.hot_bytes, self.warm_bytes, self.cold_bytes
            ));
        }
        for (name, v) in [
            ("hot_frac", self.hot_frac),
            ("warm_frac", self.warm_frac),
            ("spatial", self.spatial),
            ("pointer_chase_frac", self.pointer_chase_frac),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("memory fraction `{name}` out of [0,1]: {v}"));
            }
        }
        if self.hot_frac + self.warm_frac > 1.0 + 1e-9 {
            return Err("hot_frac + warm_frac exceeds 1".to_string());
        }
        if self.stride == 0 {
            return Err("stride must be positive".to_string());
        }
        Ok(())
    }
}

/// Control-flow behaviour: a pool of static branches split into
/// loop-like (periodic, highly predictable), biased, and hard (random)
/// branches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlBehavior {
    /// Number of static conditional branches in the pool.
    pub static_branches: u32,
    /// Fraction of dynamic branches that are loop back-edges with the
    /// given period (taken `period - 1` times, then not taken).
    pub loop_frac: f64,
    /// Loop trip count for loop branches.
    pub loop_period: u32,
    /// Fraction of dynamic branches that are essentially random
    /// (hardest to predict); the remaining branches are biased with the
    /// given bias.
    pub hard_frac: f64,
    /// Taken-probability of biased branches (0.5 = random, 1.0 = always
    /// taken).
    pub bias: f64,
}

impl ControlBehavior {
    /// Validate the pool parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.static_branches == 0 {
            return Err("need at least one static branch".to_string());
        }
        if self.loop_period < 2 {
            return Err("loop period must be at least 2".to_string());
        }
        for (name, v) in [
            ("loop_frac", self.loop_frac),
            ("hard_frac", self.hard_frac),
            ("bias", self.bias),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("control fraction `{name}` out of [0,1]: {v}"));
            }
        }
        if self.loop_frac + self.hard_frac > 1.0 + 1e-9 {
            return Err("loop_frac + hard_frac exceeds 1".to_string());
        }
        Ok(())
    }
}

/// Register-dependence behaviour, controlling the density of dependence
/// chains (Kiviat axis C of the paper's Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DependenceBehavior {
    /// Probability that a source register reads a *recent* producer
    /// (dense chains) rather than a long-lived value.
    pub short_frac: f64,
    /// Mean backward distance, in ops, of a recent-producer dependence
    /// (geometric distribution).
    pub mean_dist: f64,
    /// Probability an op has a second source operand.
    pub second_src_frac: f64,
}

impl DependenceBehavior {
    /// Validate the dependence parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.short_frac) {
            return Err(format!("short_frac out of [0,1]: {}", self.short_frac));
        }
        if !(0.0..=1.0).contains(&self.second_src_frac) {
            return Err(format!(
                "second_src_frac out of [0,1]: {}",
                self.second_src_frac
            ));
        }
        if self.mean_dist < 1.0 || self.mean_dist.is_nan() {
            return Err(format!("mean_dist must be >= 1: {}", self.mean_dist));
        }
        Ok(())
    }
}

/// A complete statistical workload model: everything the trace
/// generator needs to synthesize a benchmark-like micro-op stream, plus
/// an importance weight used by communal-customization metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name (e.g. `"mcf"`).
    pub name: String,
    /// RNG seed; fixed per benchmark so traces are reproducible.
    pub seed: u64,
    /// Dynamic instruction mix.
    pub mix: OpMix,
    /// Memory-access behaviour.
    pub mem: MemoryBehavior,
    /// Control-flow behaviour.
    pub ctrl: ControlBehavior,
    /// Register-dependence behaviour.
    pub deps: DependenceBehavior,
    /// Importance weight for communal customization (the paper assumes
    /// equal weights in its main results).
    pub weight: f64,
}

impl WorkloadProfile {
    /// Derive a profile with its data footprints scaled by `factor`,
    /// modeling a larger or smaller input set (the input-set
    /// sensitivity studied by the subsetting literature the paper
    /// cites: raw characteristics shift with inputs, configurational
    /// ones shift only when capacity demands cross cache sizes).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn with_input_scale(&self, factor: f64) -> WorkloadProfile {
        assert!(
            factor.is_finite() && factor > 0.0,
            "input scale must be finite and positive"
        );
        let scale = |bytes: u64| -> u64 { ((bytes as f64 * factor) as u64).max(1024) };
        let mut p = self.clone();
        p.mem.hot_bytes = scale(p.mem.hot_bytes);
        p.mem.warm_bytes = scale(p.mem.warm_bytes).max(p.mem.hot_bytes);
        p.mem.cold_bytes = scale(p.mem.cold_bytes).max(p.mem.warm_bytes);
        p
    }

    /// A 64-bit FNV-1a fingerprint over every field of the profile
    /// (name, seed, and the exact bit patterns of all numeric
    /// parameters). Profiles that generate different traces get
    /// different fingerprints (hash collisions aside); the exploration
    /// layer uses this as the workload identity in its memoization
    /// keys.
    pub fn fingerprint(&self) -> u64 {
        fn eat(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        }
        let mut h = eat(0xcbf2_9ce4_8422_2325, self.name.as_bytes());
        for word in [
            self.seed,
            self.mix.load.to_bits(),
            self.mix.store.to_bits(),
            self.mix.branch.to_bits(),
            self.mix.mul.to_bits(),
            self.mix.div.to_bits(),
            self.mem.hot_bytes,
            self.mem.warm_bytes,
            self.mem.cold_bytes,
            self.mem.hot_frac.to_bits(),
            self.mem.warm_frac.to_bits(),
            self.mem.spatial.to_bits(),
            self.mem.pointer_chase_frac.to_bits(),
            self.mem.stride,
            u64::from(self.ctrl.static_branches),
            self.ctrl.loop_frac.to_bits(),
            u64::from(self.ctrl.loop_period),
            self.ctrl.hard_frac.to_bits(),
            self.ctrl.bias.to_bits(),
            self.deps.short_frac.to_bits(),
            self.deps.mean_dist.to_bits(),
            self.deps.second_src_frac.to_bits(),
            self.weight.to_bits(),
        ] {
            h = eat(h, &word.to_le_bytes());
        }
        h
    }

    /// Validate every component of the profile.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("profile name must not be empty".to_string());
        }
        if self.weight <= 0.0 || self.weight.is_nan() {
            return Err(format!("weight must be positive: {}", self.weight));
        }
        self.mix.validate()?;
        self.mem.validate()?;
        self.ctrl.validate()?;
        self.deps.validate()
    }
}

#[cfg(test)]
mod tests {
    use crate::spec;

    #[test]
    fn all_spec_profiles_validate() {
        for p in spec::all_profiles() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn fingerprints_separate_profiles() {
        let profiles = spec::all_profiles();
        for a in &profiles {
            for b in &profiles {
                if a.name == b.name {
                    assert_eq!(a.fingerprint(), b.fingerprint());
                } else {
                    assert_ne!(a.fingerprint(), b.fingerprint(), "{} vs {}", a.name, b.name);
                }
            }
        }
        // Any parameter change must move the fingerprint.
        let base = spec::profile("gzip").expect("gzip exists");
        let mut p = base.clone();
        p.mem.hot_bytes += 8;
        assert_ne!(base.fingerprint(), p.fingerprint());
        let mut p = base.clone();
        p.deps.short_frac += 1e-9;
        assert_ne!(base.fingerprint(), p.fingerprint());
    }

    #[test]
    fn bad_mix_rejected() {
        let mut p = spec::profile("gcc").expect("gcc exists");
        p.mix.load = 0.9;
        p.mix.store = 0.9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_regions_rejected() {
        let mut p = spec::profile("gcc").expect("gcc exists");
        p.mem.warm_bytes = p.mem.hot_bytes / 2;
        assert!(p.validate().is_err());
    }

    #[test]
    fn input_scaling_grows_footprints() {
        let p = spec::profile("gzip").expect("gzip exists");
        let big = p.with_input_scale(4.0);
        big.validate().expect("scaled profile stays valid");
        assert_eq!(big.mem.cold_bytes, p.mem.cold_bytes * 4);
        assert!(big.mem.hot_bytes >= p.mem.hot_bytes);
        let tiny = p.with_input_scale(1e-9);
        tiny.validate().expect("clamped at the floor");
        assert!(tiny.mem.hot_bytes >= 1024);
    }

    #[test]
    #[should_panic(expected = "input scale")]
    fn bad_input_scale_panics() {
        let p = spec::profile("gzip").expect("gzip exists");
        let _ = p.with_input_scale(0.0);
    }

    #[test]
    fn bad_bias_rejected() {
        let mut p = spec::profile("gcc").expect("gcc exists");
        p.ctrl.bias = 1.5;
        assert!(p.validate().is_err());
    }
}
