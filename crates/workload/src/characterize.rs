//! Microarchitecture-independent (raw) workload characterization.
//!
//! This is the *conventional* characterization the paper argues is an
//! unreliable basis for communal customization: the five Kiviat axes of
//! its Figure 1 — (A) working-set size, (B) branch predictability,
//! (C) density of dependence chains, (D) frequency of loads, and
//! (E) frequency of conditional branches — each normalized to a 0–10
//! scale. The subsetting machinery in `xps-communal` consumes these
//! vectors.

use crate::op::{MicroOp, OpClass, REG_COUNT};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Cache-block granularity used for working-set measurement, bytes.
const BLOCK: u64 = 64;
/// Dependence distance (in ops) at or under which a source read counts
/// as part of a dense chain.
const DENSE_DIST: u64 = 4;

/// Axis labels of the Figure-1 Kiviat graphs, in order.
pub const KIVIAT_AXES: [&str; 5] = [
    "working-set size",
    "branch predictability",
    "dependence-chain density",
    "load frequency",
    "branch frequency",
];

/// The measured raw characteristics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharacterVector {
    /// Unique 64-byte blocks touched (working-set proxy).
    pub working_set_blocks: u64,
    /// Dynamic-count-weighted per-static-branch bias: the accuracy an
    /// ideal bias predictor would achieve (0.5 = random, 1.0 = fully
    /// biased). Microarchitecture-independent, per the paper's
    /// "biasness of branches".
    pub branch_predictability: f64,
    /// Fraction of register source reads whose producer is within
    /// 4 dynamic ops (density of dependence chains).
    pub dep_density: f64,
    /// Fraction of ops that are loads.
    pub load_freq: f64,
    /// Fraction of ops that are conditional branches.
    pub branch_freq: f64,
}

impl CharacterVector {
    /// Normalize to the paper's 0–10 Kiviat scale, axes in
    /// [`KIVIAT_AXES`] order.
    ///
    /// Working set is log-scaled between 8 KB and 64 MB; predictability
    /// maps 0.5→0 and 1.0→10; density maps linearly; frequencies are
    /// scaled against a 0.35 (loads) / 0.20 (branches) full scale.
    pub fn kiviat(&self) -> [f64; 5] {
        let ws_bytes = (self.working_set_blocks.max(1) * BLOCK) as f64;
        let (lo, hi) = ((8.0f64 * 1024.0).log2(), (64.0f64 * 1024.0 * 1024.0).log2());
        let a = ((ws_bytes.log2() - lo) / (hi - lo) * 10.0).clamp(0.0, 10.0);
        let b = ((self.branch_predictability - 0.5) / 0.5 * 10.0).clamp(0.0, 10.0);
        let c = (self.dep_density * 10.0).clamp(0.0, 10.0);
        let d = (self.load_freq / 0.35 * 10.0).clamp(0.0, 10.0);
        let e = (self.branch_freq / 0.20 * 10.0).clamp(0.0, 10.0);
        [a, b, c, d, e]
    }

    /// Euclidean distance between the normalized Kiviat vectors of two
    /// workloads — the similarity measure classic subsetting uses.
    pub fn distance(&self, other: &CharacterVector) -> f64 {
        self.kiviat()
            .iter()
            .zip(other.kiviat())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BranchStat {
    dynamic: u64,
    taken: u64,
}

/// Number of log2 buckets in the reuse- and dependence-distance
/// histograms (bucket `i` counts distances in `[2^i, 2^(i+1))`; the
/// last bucket absorbs the tail).
pub const HIST_BUCKETS: usize = 24;

/// Place a distance in its log2 bucket.
fn bucket_of(dist: u64) -> usize {
    (63 - dist.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

/// Streaming analyzer that measures a [`CharacterVector`] from a
/// micro-op stream.
///
/// # Example
///
/// ```
/// use xps_workload::{spec, Characterizer, TraceGenerator};
///
/// let p = spec::profile("crafty").expect("crafty is a known benchmark");
/// let mut c = Characterizer::new();
/// for op in TraceGenerator::new(p).take(100_000) {
///     c.observe(&op);
/// }
/// let v = c.finish();
/// assert!(v.load_freq > 0.2 && v.load_freq < 0.4);
/// ```
#[derive(Debug, Clone)]
pub struct Characterizer {
    ops: u64,
    loads: u64,
    branches_n: u64,
    blocks: HashSet<u64>,
    branch_stats: HashMap<u64, BranchStat>,
    /// Dynamic index of the last writer of each architectural register.
    last_writer: [Option<u64>; REG_COUNT],
    src_reads: u64,
    dense_reads: u64,
    /// Last access index of each touched block, for reuse distances.
    last_touch: HashMap<u64, u64>,
    mem_accesses: u64,
    /// Log2 histogram of memory reuse distances (time distance between
    /// touches of the same 64-byte block — the standard cheap proxy
    /// for stack distance).
    reuse_hist: [u64; HIST_BUCKETS],
    /// Log2 histogram of register dependence distances.
    dep_hist: [u64; HIST_BUCKETS],
}

impl Default for Characterizer {
    fn default() -> Characterizer {
        Characterizer::new()
    }
}

impl Characterizer {
    /// Fresh analyzer with no observations.
    pub fn new() -> Characterizer {
        Characterizer {
            ops: 0,
            loads: 0,
            branches_n: 0,
            blocks: HashSet::new(),
            branch_stats: HashMap::new(),
            last_writer: [None; REG_COUNT],
            src_reads: 0,
            dense_reads: 0,
            last_touch: HashMap::new(),
            mem_accesses: 0,
            reuse_hist: [0; HIST_BUCKETS],
            dep_hist: [0; HIST_BUCKETS],
        }
    }

    /// Log2 histogram of memory reuse distances: bucket `i` counts
    /// re-touches of a block after `[2^i, 2^(i+1))` intervening memory
    /// accesses. The histogram's mass at small distances is what a
    /// cache of the corresponding capacity can exploit — the
    /// quantitative form of the working-set axis.
    pub fn reuse_histogram(&self) -> &[u64; HIST_BUCKETS] {
        &self.reuse_hist
    }

    /// Log2 histogram of register dependence distances (producer to
    /// consumer, in dynamic ops): the quantitative form of the
    /// dependence-chain-density axis, and an upper bound on extractable
    /// ILP at each window size.
    pub fn dependence_histogram(&self) -> &[u64; HIST_BUCKETS] {
        &self.dep_hist
    }

    /// Number of ops observed so far.
    pub fn len(&self) -> u64 {
        self.ops
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.ops == 0
    }

    /// Feed one micro-op.
    pub fn observe(&mut self, op: &MicroOp) {
        let idx = self.ops;
        self.ops += 1;
        match op.class {
            OpClass::Load => {
                self.loads += 1;
                self.blocks.insert(op.addr / BLOCK);
                self.touch(op.addr / BLOCK);
            }
            OpClass::Store => {
                self.blocks.insert(op.addr / BLOCK);
                self.touch(op.addr / BLOCK);
            }
            OpClass::Branch => {
                self.branches_n += 1;
                let s = self.branch_stats.entry(op.pc).or_default();
                s.dynamic += 1;
                if op.branch.map(|b| b.taken).unwrap_or(false) {
                    s.taken += 1;
                }
            }
            _ => {}
        }
        for src in op.srcs.iter().flatten() {
            self.src_reads += 1;
            if let Some(w) = self.last_writer[*src as usize] {
                let dist = idx - w;
                if dist <= DENSE_DIST {
                    self.dense_reads += 1;
                }
                self.dep_hist[bucket_of(dist)] += 1;
            }
        }
        if let Some(d) = op.dest {
            self.last_writer[d as usize] = Some(idx);
        }
    }

    fn touch(&mut self, block: u64) {
        self.mem_accesses += 1;
        if let Some(prev) = self.last_touch.insert(block, self.mem_accesses) {
            self.reuse_hist[bucket_of(self.mem_accesses - prev)] += 1;
        }
    }

    /// Finish and produce the measured vector.
    ///
    /// # Panics
    ///
    /// Panics if no ops were observed.
    pub fn finish(&self) -> CharacterVector {
        assert!(self.ops > 0, "characterizer observed no ops");
        let predict = if self.branches_n == 0 {
            1.0
        } else {
            let mut acc = 0.0;
            for s in self.branch_stats.values() {
                let p = s.taken as f64 / s.dynamic as f64;
                acc += p.max(1.0 - p) * s.dynamic as f64;
            }
            acc / self.branches_n as f64
        };
        CharacterVector {
            working_set_blocks: self.blocks.len() as u64,
            branch_predictability: predict,
            dep_density: if self.src_reads == 0 {
                0.0
            } else {
                self.dense_reads as f64 / self.src_reads as f64
            },
            load_freq: self.loads as f64 / self.ops as f64,
            branch_freq: self.branches_n as f64 / self.ops as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use crate::TraceGenerator;

    fn vector_of(name: &str, n: usize) -> CharacterVector {
        let p = spec::profile(name).unwrap_or_else(|| panic!("{name} exists"));
        let mut c = Characterizer::new();
        for op in TraceGenerator::new(p).take(n) {
            c.observe(&op);
        }
        c.finish()
    }

    #[test]
    fn mcf_has_largest_working_set() {
        let mcf = vector_of("mcf", 150_000);
        for name in ["crafty", "perl", "gzip"] {
            let other = vector_of(name, 150_000);
            assert!(
                mcf.working_set_blocks > 2 * other.working_set_blocks,
                "mcf WS {} vs {name} {}",
                mcf.working_set_blocks,
                other.working_set_blocks
            );
        }
    }

    #[test]
    fn hard_branch_workloads_less_predictable() {
        let vpr = vector_of("vpr", 100_000);
        let vortex = vector_of("vortex", 100_000);
        assert!(vortex.branch_predictability > vpr.branch_predictability);
    }

    #[test]
    fn dense_chain_workloads_measured_denser() {
        let bzip = vector_of("bzip", 100_000);
        let vortex = vector_of("vortex", 100_000);
        assert!(bzip.dep_density > vortex.dep_density);
    }

    #[test]
    fn kiviat_in_range() {
        for name in spec::BENCHMARKS {
            let v = vector_of(name, 60_000);
            for (axis, value) in KIVIAT_AXES.iter().zip(v.kiviat()) {
                assert!(
                    (0.0..=10.0).contains(&value),
                    "{name} axis {axis} out of range: {value}"
                );
            }
        }
    }

    #[test]
    fn distance_is_a_metric_on_samples() {
        let a = vector_of("bzip", 60_000);
        let b = vector_of("gzip", 60_000);
        let c = vector_of("mcf", 60_000);
        assert!(a.distance(&a) < 1e-12);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert!(a.distance(&b) + b.distance(&c) >= a.distance(&c) - 1e-9);
    }

    #[test]
    fn bzip_gzip_closer_than_bzip_mcf() {
        // The raw-similarity premise of the paper's §5.3.
        let bzip = vector_of("bzip", 100_000);
        let gzip = vector_of("gzip", 100_000);
        let mcf = vector_of("mcf", 100_000);
        assert!(bzip.distance(&gzip) < bzip.distance(&mcf));
    }

    #[test]
    #[should_panic(expected = "no ops")]
    fn empty_finish_panics() {
        Characterizer::new().finish();
    }

    #[test]
    fn reuse_histogram_shapes_follow_footprints() {
        // crafty's tiny footprint re-touches blocks quickly; mcf's
        // chases spread re-touches far out.
        let hist_of = |name: &str| {
            let p = spec::profile(name).unwrap_or_else(|| panic!("{name} exists"));
            let mut c = Characterizer::new();
            for op in TraceGenerator::new(p).take(150_000) {
                c.observe(&op);
            }
            *c.reuse_histogram()
        };
        let mass_below = |h: &[u64; HIST_BUCKETS], bucket: usize| -> f64 {
            let total: u64 = h.iter().sum();
            let below: u64 = h[..bucket].iter().sum();
            below as f64 / total.max(1) as f64
        };
        let crafty = hist_of("crafty");
        let mcf = hist_of("mcf");
        assert!(
            mass_below(&crafty, 10) > mass_below(&mcf, 10),
            "crafty reuses closer than mcf"
        );
    }

    #[test]
    fn dependence_histogram_counts_every_tracked_read() {
        let p = spec::profile("gcc").expect("gcc exists");
        let mut c = Characterizer::new();
        for op in TraceGenerator::new(p).take(20_000) {
            c.observe(&op);
        }
        let dep_total: u64 = c.dependence_histogram().iter().sum();
        assert!(dep_total > 0);
        // Dense chains (the Figure 1 axis) are the histogram's head.
        let head: u64 = c.dependence_histogram()[..3].iter().sum();
        assert!(head > 0);
    }
}
