//! Edge cases of trace generation and characterization: degenerate
//! but valid profiles at the corners of the domain (the kinds the
//! scenario generator's `adversarial` family emits) must generate and
//! characterize without panicking, and every profile must survive a
//! serialization round-trip bit-exactly.

use xps_workload::{spec, Characterizer, TraceGenerator, WorkloadProfile};

/// A known-good baseline to perturb toward the corners.
fn base() -> WorkloadProfile {
    let mut p = spec::profile("gzip").expect("known benchmark");
    p.name = "edge".to_string();
    p.seed = 7;
    p
}

fn characterize(p: &WorkloadProfile, ops: usize) -> xps_workload::CharacterVector {
    let mut c = Characterizer::new();
    for op in TraceGenerator::new(p.clone()).take(ops) {
        c.observe(&op);
    }
    c.finish()
}

#[test]
fn zero_entropy_branches_are_fully_predictable() {
    let mut p = base();
    p.ctrl.static_branches = 1;
    p.ctrl.loop_frac = 0.0;
    p.ctrl.hard_frac = 0.0;
    p.ctrl.bias = 1.0; // every branch always taken
    assert!(p.validate().is_ok(), "{:?}", p.validate());
    let v = characterize(&p, 20_000);
    assert!(
        v.branch_predictability >= 0.99,
        "always-taken branches must be near-perfectly predictable: {}",
        v.branch_predictability
    );
}

#[test]
fn a_profile_with_no_branches_at_all_characterizes() {
    let mut p = base();
    p.mix.branch = 0.0;
    assert!(p.validate().is_ok(), "{:?}", p.validate());
    let v = characterize(&p, 10_000);
    assert_eq!(
        v.branch_predictability, 1.0,
        "no branches means nothing to mispredict"
    );
    for k in v.kiviat() {
        assert!(k.is_finite());
    }
}

#[test]
fn single_block_footprint_collapses_the_working_set() {
    let mut p = base();
    p.mem.hot_bytes = 64;
    p.mem.warm_bytes = 64;
    p.mem.cold_bytes = 64;
    p.mem.hot_frac = 1.0;
    p.mem.warm_frac = 0.0;
    p.mem.stride = 1;
    // Pointer chases walk the warm arena at its own base address, which
    // would add a second block to the working set.
    p.mem.pointer_chase_frac = 0.0;
    assert!(p.validate().is_ok(), "{:?}", p.validate());
    let v = characterize(&p, 10_000);
    assert_eq!(
        v.working_set_blocks, 1,
        "a 64-byte footprint is exactly one block"
    );
    for k in v.kiviat() {
        assert!(k.is_finite());
    }
}

#[test]
fn maximal_reuse_distance_footprint_characterizes() {
    let mut p = base();
    p.mem.hot_bytes = 1 << 20;
    p.mem.warm_bytes = 1 << 24;
    p.mem.cold_bytes = 256 << 20; // 256 MB, every access cold + random
    p.mem.hot_frac = 0.0;
    p.mem.warm_frac = 0.0;
    p.mem.spatial = 0.0;
    assert!(p.validate().is_ok(), "{:?}", p.validate());
    let v = characterize(&p, 50_000);
    assert!(
        v.working_set_blocks > 10_000,
        "a random walk over 256 MB touches many blocks: {}",
        v.working_set_blocks
    );
    for k in v.kiviat() {
        assert!(k.is_finite());
    }
}

#[test]
fn extreme_dependence_distances_generate_and_characterize() {
    for mean_dist in [1.0, 1e6] {
        let mut p = base();
        p.deps.mean_dist = mean_dist;
        p.deps.short_frac = 1.0;
        assert!(p.validate().is_ok(), "{:?}", p.validate());
        let v = characterize(&p, 10_000);
        assert!(
            (0.0..=1.0).contains(&v.dep_density),
            "mean_dist {mean_dist}: dep_density {} out of range",
            v.dep_density
        );
    }
}

#[test]
fn profiles_round_trip_through_serialization() {
    let corners = [
        base(),
        {
            let mut p = base();
            p.mix.branch = 0.0;
            p.ctrl.bias = 1.0;
            p
        },
        {
            let mut p = base();
            p.mem.hot_bytes = 64;
            p.mem.warm_bytes = 64;
            p.mem.cold_bytes = 64;
            p.deps.mean_dist = 1e6;
            p
        },
    ];
    for p in corners {
        let json = serde_json::to_string(&p).expect("profiles serialize");
        let q: WorkloadProfile = serde_json::from_str(&json).expect("profiles deserialize");
        assert_eq!(p, q, "round-trip must be lossless");
        assert_eq!(
            p.fingerprint(),
            q.fingerprint(),
            "identity is preserved bit-exactly"
        );
        let a: Vec<_> = TraceGenerator::new(p).take(500).collect();
        let b: Vec<_> = TraceGenerator::new(q).take(500).collect();
        assert_eq!(a, b, "round-tripped profiles generate identical traces");
    }
}
