//! Property-based tests of trace generation and characterization.

use proptest::prelude::*;
use xps_workload::{spec, Characterizer, OpClass, TraceGenerator, WorkloadProfile};

fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        prop::sample::select(spec::BENCHMARKS.to_vec()),
        any::<u64>(),
        0.05f64..0.35,
        0.02f64..0.18,
        0.03f64..0.20,
    )
        .prop_map(|(name, seed, load, store, branch)| {
            let mut p = spec::profile(name).expect("known benchmark");
            p.seed = seed;
            p.mix.load = load;
            p.mix.store = store;
            p.mix.branch = branch;
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any perturbed profile still validates and generates.
    #[test]
    fn perturbed_profiles_generate(p in arb_profile()) {
        prop_assert!(p.validate().is_ok());
        let ops: Vec<_> = TraceGenerator::new(p).take(2000).collect();
        prop_assert_eq!(ops.len(), 2000);
    }

    /// The generator is a pure function of the profile.
    #[test]
    fn generation_is_deterministic(p in arb_profile()) {
        let a: Vec<_> = TraceGenerator::new(p.clone()).take(1000).collect();
        let b: Vec<_> = TraceGenerator::new(p).take(1000).collect();
        prop_assert_eq!(a, b);
    }

    /// Different seeds produce different streams (astronomically
    /// unlikely to collide).
    #[test]
    fn seeds_differentiate(mut p in arb_profile()) {
        let a: Vec<_> = TraceGenerator::new(p.clone()).take(500).collect();
        p.seed = p.seed.wrapping_add(1);
        let b: Vec<_> = TraceGenerator::new(p).take(500).collect();
        prop_assert_ne!(a, b);
    }

    /// Dynamic class frequencies track the profile's mix.
    #[test]
    fn mix_is_respected(p in arb_profile()) {
        let n = 60_000;
        let ops: Vec<_> = TraceGenerator::new(p.clone()).take(n).collect();
        let frac = |class: OpClass| {
            ops.iter().filter(|o| o.class == class).count() as f64 / n as f64
        };
        prop_assert!((frac(OpClass::Load) - p.mix.load).abs() < 0.02);
        prop_assert!((frac(OpClass::Store) - p.mix.store).abs() < 0.02);
        prop_assert!((frac(OpClass::Branch) - p.mix.branch).abs() < 0.02);
    }

    /// Measured characteristics stay in their domains and the Kiviat
    /// projection stays on the 0-10 scale.
    #[test]
    fn characterization_in_domain(p in arb_profile()) {
        let mut c = Characterizer::new();
        for op in TraceGenerator::new(p).take(30_000) {
            c.observe(&op);
        }
        let v = c.finish();
        prop_assert!(v.branch_predictability >= 0.5 && v.branch_predictability <= 1.0);
        prop_assert!(v.dep_density >= 0.0 && v.dep_density <= 1.0);
        prop_assert!(v.load_freq >= 0.0 && v.load_freq <= 1.0);
        prop_assert!(v.working_set_blocks > 0);
        for axis in v.kiviat() {
            prop_assert!((0.0..=10.0).contains(&axis));
        }
    }

    /// Distance is symmetric and zero on itself.
    #[test]
    fn distance_axioms(p in arb_profile(), q in arb_profile()) {
        let measure = |p: WorkloadProfile| {
            let mut c = Characterizer::new();
            for op in TraceGenerator::new(p).take(10_000) {
                c.observe(&op);
            }
            c.finish()
        };
        let a = measure(p);
        let b = measure(q);
        prop_assert!(a.distance(&a) < 1e-12);
        prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        prop_assert!(a.distance(&b) >= 0.0);
    }

    /// Memory ops always carry non-zero block-aligned-ish addresses;
    /// others carry none.
    #[test]
    fn address_discipline(p in arb_profile()) {
        for op in TraceGenerator::new(p).take(5000) {
            if op.class.is_mem() {
                prop_assert!(op.addr > 0);
            } else if op.class != OpClass::Branch {
                prop_assert_eq!(op.addr, 0);
            }
        }
    }
}
