//! CACTI-model query cost: these run inside the annealer's inner loop,
//! so they must stay cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xps_core::cacti::{cache_access_time, fit, units, CacheGeometry, Technology};

fn queries(c: &mut Criterion) {
    let tech = Technology::default();
    c.bench_function("cacti/l1-access-time", |b| {
        b.iter(|| cache_access_time(&tech, &CacheGeometry::new(black_box(256), 2, 64)))
    });
    c.bench_function("cacti/l2-access-time", |b| {
        b.iter(|| cache_access_time(&tech, &CacheGeometry::new(black_box(8192), 8, 128)))
    });
    c.bench_function("cacti/issue-queue", |b| {
        b.iter(|| units::issue_queue_delay(&tech, black_box(64), 4))
    });
    c.bench_function("cacti/regfile", |b| {
        b.iter(|| units::regfile_access_time(&tech, black_box(512), 6))
    });
}

fn fitting(c: &mut Criterion) {
    let tech = Technology::default();
    c.bench_function("fit/issue-queue", |b| {
        b.iter(|| fit::fit_issue_queue(&tech, black_box(0.4), 4))
    });
    c.bench_function("fit/cache-grid", |b| {
        b.iter(|| fit::cache_geometries_within(&tech, black_box(1.2)).len())
    });
}

criterion_group!(benches, queries, fitting);
criterion_main!(benches);
