//! Analysis-layer costs over the published Table 5: complete search,
//! surrogate assignment, metric kernels, scheduling simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xps_core::communal::{
    assign_surrogates, best_combination, simulate_jobs, JobPolicy, Merit, Propagation,
    ScheduleOptions,
};
use xps_core::paper;

fn complete_search(c: &mut Criterion) {
    let m = paper::table5_matrix();
    for k in [2usize, 4] {
        c.bench_function(format!("search/best-{k}-har"), |b| {
            b.iter(|| best_combination(&m, black_box(k), Merit::HarmonicMean))
        });
    }
    c.bench_function("search/best-2-cw-har", |b| {
        b.iter(|| best_combination(&m, 2, Merit::ContentionWeightedHarmonicMean))
    });
}

fn surrogates(c: &mut Criterion) {
    let m = paper::table5_matrix();
    for (mode, name) in [
        (Propagation::None, "none"),
        (Propagation::Forward, "forward"),
        (Propagation::ForwardBackward, "full"),
    ] {
        c.bench_function(format!("surrogates/{name}"), |b| {
            b.iter(|| assign_surrogates(&m, mode, black_box(1).max(1)))
        });
    }
}

fn scheduling(c: &mut Criterion) {
    let m = paper::table5_matrix();
    let cores = best_combination(&m, 2, Merit::HarmonicMean).cores;
    let mut o = ScheduleOptions::new(cores, JobPolicy::BestAvailable);
    o.jobs = 5000;
    c.bench_function("schedule/5000-jobs", |b| b.iter(|| simulate_jobs(&m, &o)));
}

criterion_group!(benches, complete_search, surrogates, scheduling);
criterion_main!(benches);
