//! Exploration costs: one evaluation (the annealer's unit of work), a
//! full quick anneal, the parallel speedup of the exploration engine
//! across worker counts, and the hit-path cost of the evaluation cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xps_core::cacti::Technology;
use xps_core::explore::{anneal, AnnealOptions, Campaign, DesignPoint, EvalCache, ExploreOptions};
use xps_core::sim::Simulator;
use xps_core::workload::{spec, TraceGenerator};

fn evaluation(c: &mut Criterion) {
    let tech = Technology::default();
    let cfg = DesignPoint::initial()
        .realize(&tech, "bench")
        .expect("Table 3 realizes");
    let p = spec::profile("gcc").expect("known benchmark");
    c.bench_function("explore/one-evaluation-30k", |b| {
        b.iter(|| Simulator::new(&cfg).run(TraceGenerator::new(p.clone()), 30_000))
    });
}

fn quick_anneal(c: &mut Criterion) {
    let tech = Technology::default();
    let p = spec::profile("gzip").expect("known benchmark");
    let mut opts = AnnealOptions::quick();
    opts.iterations = 20;
    opts.eval_ops_early = 8_000;
    opts.eval_ops_late = 15_000;
    let mut group = c.benchmark_group("explore");
    group.sample_size(10);
    group.bench_function("mini-anneal-20-iters", |b| {
        b.iter(|| anneal(&p, &DesignPoint::initial(), &opts, &tech))
    });
    group.finish();
}

/// Parallel speedup of the exploration engine: the same tiny campaign
/// (4 benchmarks × 3 multi-start anneals, no cross rounds) at 1, 2,
/// and 4 workers. The explored cores are bit-identical in every row —
/// only the wall clock moves.
fn parallel_explore(c: &mut Criterion) {
    let profiles: Vec<_> = ["gzip", "mcf", "twolf", "gcc"]
        .iter()
        .map(|n| spec::profile(n).expect("known benchmark"))
        .collect();
    let mut group = c.benchmark_group("explore/parallel-anneal");
    group.sample_size(10);
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            let mut opts = ExploreOptions::quick();
            opts.anneal.iterations = 8;
            opts.anneal.eval_ops_early = 4_000;
            opts.anneal.eval_ops_late = 8_000;
            opts.cross_rounds = 0;
            opts.jobs = jobs;
            let explorer = Campaign::new(opts);
            b.iter(|| explorer.explore(&profiles))
        });
    }
    group.finish();
}

/// Cost of a cache hit versus the simulation it replaces (compare with
/// `explore/one-evaluation-30k`): a hashmap lookup plus a stats clone.
fn evalcache_hit(c: &mut Criterion) {
    let tech = Technology::default();
    let cfg = DesignPoint::initial()
        .realize(&tech, "bench")
        .expect("Table 3 realizes");
    let p = spec::profile("gcc").expect("known benchmark");
    let cache = EvalCache::new();
    cache.stats(&p, &cfg, 30_000); // warm: every iteration below hits
    c.bench_function("explore/evalcache-hit-30k", |b| {
        b.iter(|| cache.stats(&p, &cfg, 30_000))
    });
}

criterion_group!(
    benches,
    evaluation,
    quick_anneal,
    parallel_explore,
    evalcache_hit
);
criterion_main!(benches);
