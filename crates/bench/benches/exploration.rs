//! Exploration costs: one evaluation (the annealer's unit of work) and
//! a full quick anneal.

use criterion::{criterion_group, criterion_main, Criterion};
use xps_core::explore::{anneal, AnnealOptions, DesignPoint};
use xps_core::cacti::Technology;
use xps_core::sim::Simulator;
use xps_core::workload::{spec, TraceGenerator};

fn evaluation(c: &mut Criterion) {
    let tech = Technology::default();
    let cfg = DesignPoint::initial()
        .realize(&tech, "bench")
        .expect("Table 3 realizes");
    let p = spec::profile("gcc").expect("known benchmark");
    c.bench_function("explore/one-evaluation-30k", |b| {
        b.iter(|| Simulator::new(&cfg).run(TraceGenerator::new(p.clone()), 30_000))
    });
}

fn quick_anneal(c: &mut Criterion) {
    let tech = Technology::default();
    let p = spec::profile("gzip").expect("known benchmark");
    let mut opts = AnnealOptions::quick();
    opts.iterations = 20;
    opts.eval_ops_early = 8_000;
    opts.eval_ops_late = 15_000;
    let mut group = c.benchmark_group("explore");
    group.sample_size(10);
    group.bench_function("mini-anneal-20-iters", |b| {
        b.iter(|| anneal(&p, &DesignPoint::initial(), &opts, &tech))
    });
    group.finish();
}

criterion_group!(benches, evaluation, quick_anneal);
criterion_main!(benches);
