//! Cache-hierarchy access cost in isolation: the `Hierarchy::access`
//! path runs once per memory op inside the cycle engine's hot loop, so
//! its cost (hit probe, MSHR fill scan, L2 descent, prefetch hook)
//! gates simulator throughput directly. The address streams mirror the
//! engine's real mix: mostly-hitting strided loops, miss-heavy random
//! sweeps that keep the MSHR fill arrays busy, and a pointer-chase
//! pattern whose overlapping misses exercise the latency-overlap rule.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xps_core::cacti::CacheGeometry;
use xps_core::sim::{CacheConfig, Hierarchy, PrefetchKind};

const ACCESSES: u64 = 100_000;

fn small_l1() -> CacheConfig {
    CacheConfig {
        geometry: CacheGeometry::new(64, 2, 64),
        latency: 2,
    }
}

fn big_l2() -> CacheConfig {
    CacheConfig {
        geometry: CacheGeometry::new(2048, 8, 128),
        latency: 12,
    }
}

/// xorshift64 — a deterministic stand-in for a random address stream
/// without pulling the workload generator into a cache-only bench.
fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// Address-stream step: maps (access index, seed) to (next seed, addr).
type Pattern = fn(u64, u64) -> (u64, u64);

fn access_patterns(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache-hierarchy");
    g.throughput(Throughput::Elements(ACCESSES));
    let patterns: [(&str, Pattern); 3] = [
        // 4 KiB strided loop: virtually all L1 hits, the common case.
        ("strided-hit", |i, seed| (seed, (i * 64) % 4096)),
        // Random over 16 MiB: misses in both levels, MSHRs churn.
        ("random-miss", |i, seed| {
            let s = xorshift(seed.wrapping_add(i | 1));
            (s, s % (16 << 20))
        }),
        // Dependent-looking chase over 1 MiB with short bursts: misses
        // arrive close together so fills overlap in the MSHR window.
        ("burst-chase", |i, seed| {
            let s = if i % 4 == 0 { xorshift(seed + i) } else { seed };
            (s, (s % (1 << 20)) + (i % 4) * 8)
        }),
    ];
    for (name, next) in patterns {
        for prefetch in [PrefetchKind::None, PrefetchKind::NextLine] {
            g.bench_function(format!("{name}/{prefetch:?}"), |b| {
                b.iter(|| {
                    let mut h = Hierarchy::with_prefetcher(&small_l1(), &big_l2(), 200, prefetch);
                    let mut seed = 0x9e3779b97f4a7c15u64;
                    let mut done = 0u64;
                    for i in 0..ACCESSES {
                        let (s, addr) = next(i, seed);
                        seed = s;
                        done = h.access(black_box(addr), i);
                    }
                    black_box(done)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, access_patterns);
criterion_main!(benches);
