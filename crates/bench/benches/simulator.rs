//! Simulator throughput: micro-ops per second through the OoO timing
//! model on representative workloads and configurations.
//!
//! The `simulator` group measures the evaluation path exploration code
//! actually runs ([`xps_core::sim::evaluate`]): the profile's trace is
//! memoized per thread and replayed for every configuration, so the
//! numbers track the cycle engine itself. `trace-generation` measures
//! the generator's raw (uncached) sampling throughput separately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xps_core::paper;
use xps_core::sim::{evaluate, CoreConfig};
use xps_core::workload::{spec, TraceGenerator};

fn sim_throughput(c: &mut Criterion) {
    let n = 50_000u64;
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(n));
    for name in ["gzip", "mcf", "crafty"] {
        let p = spec::profile(name).expect("known benchmark");
        g.bench_with_input(BenchmarkId::new("initial-config", name), &p, |b, p| {
            let cfg = CoreConfig::initial();
            b.iter(|| evaluate(p, &cfg, n));
        });
        let cfg = paper::table4_config(name).expect("in Table 4");
        g.bench_with_input(BenchmarkId::new("table4-config", name), &p, |b, p| {
            b.iter(|| evaluate(p, &cfg, n));
        });
    }
    g.finish();
}

fn trace_generation(c: &mut Criterion) {
    let n = 100_000usize;
    let mut g = c.benchmark_group("trace-generation");
    g.throughput(Throughput::Elements(n as u64));
    for name in ["gcc", "mcf"] {
        let p = spec::profile(name).expect("known benchmark");
        g.bench_function(name, |b| {
            b.iter(|| TraceGenerator::new(p.clone()).take(n).count());
        });
    }
    g.finish();
}

criterion_group!(benches, sim_throughput, trace_generation);
criterion_main!(benches);
