//! Branch-predictor update cost: `predict_and_update` runs once per
//! branch micro-op (roughly one op in six on the SPEC profiles), so a
//! slow predictor shows up directly in engine throughput. Each
//! predictor kind sees the same two deterministic outcome streams: a
//! biased loop-like pattern (predictable, the common case) and a
//! pattern keyed to PC bits (stresses table indexing and aliasing).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xps_core::sim::{Predictor, PredictorKind};

const BRANCHES: u64 = 100_000;

/// Outcome-stream step: maps branch index to (pc, taken).
type Stream = fn(u64) -> (u64, bool);

fn outcome_streams(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.throughput(Throughput::Elements(BRANCHES));
    let kinds = [
        PredictorKind::Gshare,
        PredictorKind::Bimodal,
        PredictorKind::TwoLevelLocal,
        PredictorKind::Tournament,
    ];
    let streams: [(&str, Stream); 2] = [
        // 15-iteration loops over 32 static branches: taken except on
        // exit, the pattern every predictor should learn quickly.
        ("loopy", |i| ((i % 32) * 4, i % 16 != 15)),
        // Outcome depends on PC bits mixed with a coarse phase, so
        // histories alias across the table and keep updating.
        ("pc-keyed", |i| {
            let pc = (i.wrapping_mul(0x9e37) >> 3) % 4096;
            (pc, (pc ^ (i >> 8)).count_ones() % 2 == 0)
        }),
    ];
    for kind in kinds {
        for (name, next) in streams {
            g.bench_function(format!("{kind:?}/{name}"), |b| {
                b.iter(|| {
                    let mut p = Predictor::of_kind(kind);
                    let mut correct = 0u64;
                    for i in 0..BRANCHES {
                        let (pc, taken) = next(i);
                        correct += u64::from(p.predict_and_update(black_box(pc), taken));
                    }
                    black_box(correct)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, outcome_streams);
criterion_main!(benches);
