//! # xps-bench — the reproduction harness
//!
//! Support library for the `repro` binary (one subcommand per table and
//! figure of the paper) and the Criterion microbenchmarks. The pieces
//! here are plain helpers: fixed-width table rendering, persistence of
//! measured exploration results (`results/measured.json`), and the
//! source-selection logic (published paper data vs. this repository's
//! measured pipeline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};
use xps_core::communal::CrossPerfMatrix;
use xps_core::explore::CustomizedCore;
use xps_core::explore::{fnv64, write_atomic};
use xps_core::pipeline::PipelineResult;

/// Default location of persisted measured results, relative to the
/// working directory.
pub const MEASURED_PATH: &str = "results/measured.json";

/// Why persisted measured results could not be loaded (or saved).
///
/// [`MeasuredError::is_not_found`] distinguishes "no campaign has run
/// yet" (fine — run one) from a corrupt or unreadable file, which is
/// surfaced instead of silently re-exploring over it.
#[derive(Debug)]
pub enum MeasuredError {
    /// Reading or writing the file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file exists but is not valid measured-results JSON.
    Format {
        /// The file involved.
        path: PathBuf,
        /// What the parser objected to.
        detail: String,
    },
    /// The file parsed but its checksum does not match its payload —
    /// it was truncated or edited.
    Integrity {
        /// The file involved.
        path: PathBuf,
    },
}

impl MeasuredError {
    /// True when the error is simply "the file does not exist".
    pub fn is_not_found(&self) -> bool {
        matches!(self, MeasuredError::Io { source, .. }
            if source.kind() == std::io::ErrorKind::NotFound)
    }
}

impl fmt::Display for MeasuredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasuredError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            MeasuredError::Format { path, detail } => {
                write!(
                    f,
                    "{}: not valid measured results: {detail}",
                    path.display()
                )
            }
            MeasuredError::Integrity { path } => {
                write!(
                    f,
                    "{}: checksum mismatch (file truncated or edited)",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for MeasuredError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MeasuredError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A measured exploration campaign, as persisted by `repro explore`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measured {
    /// Customized cores, one per benchmark.
    pub cores: Vec<CustomizedCore>,
    /// Measured cross-configuration matrix.
    pub matrix: CrossPerfMatrix,
    /// Whether the campaign used the quick (reduced-budget) settings.
    pub quick: bool,
}

impl From<(PipelineResult, bool)> for Measured {
    fn from((r, quick): (PipelineResult, bool)) -> Measured {
        Measured {
            cores: r.cores,
            matrix: r.matrix,
            quick,
        }
    }
}

/// On-disk envelope for measured results: the payload plus a checksum
/// over its canonical (compact) serialization, so truncation or a
/// stray edit is detected on load instead of silently re-explored
/// over.
#[derive(Serialize, Deserialize)]
struct Checksummed {
    crc: String,
    measured: Measured,
}

fn measured_crc(m: &Measured) -> Result<String, String> {
    let canonical = serde_json::to_string(m).map_err(|e| e.to_string())?;
    Ok(format!("{:016x}", fnv64(0, canonical.as_bytes())))
}

/// Save measured results as checksummed JSON, atomically: the file is
/// written to a temporary sibling and renamed into place, so a crash
/// mid-save leaves the previous results intact rather than a
/// half-written file.
///
/// # Errors
///
/// Returns [`MeasuredError`] on I/O or serialization failure.
pub fn save_measured(m: &Measured, path: &Path) -> Result<(), MeasuredError> {
    let envelope = Checksummed {
        crc: measured_crc(m).map_err(|detail| MeasuredError::Format {
            path: path.to_path_buf(),
            detail,
        })?,
        measured: m.clone(),
    };
    let json = serde_json::to_string_pretty(&envelope).map_err(|e| MeasuredError::Format {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    write_atomic(path, &json).map_err(|source| MeasuredError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Load measured results saved by [`save_measured`]. Files from
/// before the checksummed envelope (a bare `Measured` object) still
/// load.
///
/// # Errors
///
/// Returns [`MeasuredError`]: `Io` when the file cannot be read (use
/// [`MeasuredError::is_not_found`] to treat a missing file as "no
/// campaign yet"), `Format` when it is not measured-results JSON, and
/// `Integrity` when the checksum does not match the payload.
pub fn load_measured(path: &Path) -> Result<Measured, MeasuredError> {
    let json = std::fs::read_to_string(path).map_err(|source| MeasuredError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    if let Ok(envelope) = serde_json::from_str::<Checksummed>(&json) {
        let expect = measured_crc(&envelope.measured).map_err(|detail| MeasuredError::Format {
            path: path.to_path_buf(),
            detail,
        })?;
        if envelope.crc != expect {
            return Err(MeasuredError::Integrity {
                path: path.to_path_buf(),
            });
        }
        return Ok(envelope.measured);
    }
    // Pre-envelope files are a bare `Measured` object.
    serde_json::from_str(&json).map_err(|e| MeasuredError::Format {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })
}

/// The default measured-results path.
pub fn measured_path() -> PathBuf {
    PathBuf::from(MEASURED_PATH)
}

/// Render a fixed-width table: a header row plus data rows, columns
/// padded to their widest cell, separated by two spaces.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Render one row of Kiviat axis values as a crude ASCII bar chart
/// (the Figure 1 presentation).
pub fn render_kiviat(axes: &[&str], values: &[f64]) -> String {
    assert_eq!(axes.len(), values.len(), "axis/value mismatch");
    let mut out = String::new();
    for (axis, v) in axes.iter().zip(values) {
        let filled = (v.clamp(0.0, 10.0).round()) as usize;
        out.push_str(&format!("  {axis:<26} {:<10} {v:.1}\n", "#".repeat(filled)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_alignment() {
        let t = render_table(
            &["a".into(), "bb".into()],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains("  1"));
        assert!(lines[3].starts_with("333"));
    }

    #[test]
    fn kiviat_render_scales() {
        let s = render_kiviat(&["x", "y"], &[0.0, 10.0]);
        assert!(s.contains("##########"));
    }

    fn sample_measured() -> Measured {
        Measured {
            cores: vec![],
            matrix: xps_core::paper::table5_matrix(),
            quick: true,
        }
    }

    #[test]
    fn measured_roundtrip() {
        let dir = std::env::temp_dir().join("xps-bench-test");
        let path = dir.join("m.json");
        let m = sample_measured();
        save_measured(&m, &path).expect("save");
        let back = load_measured(&path).expect("load");
        assert_eq!(back.matrix, m.matrix);
        assert!(back.quick);
        assert!(
            !path.with_extension("json.tmp").exists(),
            "atomic save must clean up its temporary file"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn measured_missing_file_is_not_found() {
        let path = std::env::temp_dir().join("xps-bench-test-nonexistent/m.json");
        let err = load_measured(&path).expect_err("missing file");
        assert!(err.is_not_found(), "unexpected error: {err}");
    }

    #[test]
    fn measured_tampering_is_an_integrity_error() {
        let dir = std::env::temp_dir().join("xps-bench-test-tamper");
        let path = dir.join("m.json");
        let m = sample_measured();
        save_measured(&m, &path).expect("save");
        let tampered = std::fs::read_to_string(&path)
            .expect("read")
            .replacen("true", "false", 1);
        std::fs::write(&path, tampered).expect("write");
        let err = load_measured(&path).expect_err("tampered file");
        assert!(
            matches!(err, MeasuredError::Integrity { .. }),
            "unexpected error: {err}"
        );
        assert!(!err.is_not_found());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn measured_garbage_is_a_format_error() {
        let dir = std::env::temp_dir().join("xps-bench-test-garbage");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("m.json");
        std::fs::write(&path, "not json at all").expect("write");
        let err = load_measured(&path).expect_err("garbage file");
        assert!(
            matches!(err, MeasuredError::Format { .. }),
            "unexpected error: {err}"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn measured_legacy_bare_format_still_loads() {
        let dir = std::env::temp_dir().join("xps-bench-test-legacy");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("m.json");
        let bare = serde_json::to_string_pretty(&sample_measured()).expect("serialize");
        std::fs::write(&path, bare).expect("write");
        let back = load_measured(&path).expect("legacy load");
        assert!(back.quick);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        render_table(&["a".into()], &[vec!["1".into(), "2".into()]]);
    }
}
