//! # xps-bench — the reproduction harness
//!
//! Support library for the `repro` binary (one subcommand per table and
//! figure of the paper) and the Criterion microbenchmarks. The pieces
//! here are plain helpers: fixed-width table rendering, persistence of
//! measured exploration results (`results/measured.json`), and the
//! source-selection logic (published paper data vs. this repository's
//! measured pipeline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use xps_core::communal::CrossPerfMatrix;
use xps_core::explore::CustomizedCore;
use xps_core::pipeline::PipelineResult;

/// Default location of persisted measured results, relative to the
/// working directory.
pub const MEASURED_PATH: &str = "results/measured.json";

/// A measured exploration campaign, as persisted by `repro explore`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measured {
    /// Customized cores, one per benchmark.
    pub cores: Vec<CustomizedCore>,
    /// Measured cross-configuration matrix.
    pub matrix: CrossPerfMatrix,
    /// Whether the campaign used the quick (reduced-budget) settings.
    pub quick: bool,
}

impl From<(PipelineResult, bool)> for Measured {
    fn from((r, quick): (PipelineResult, bool)) -> Measured {
        Measured {
            cores: r.cores,
            matrix: r.matrix,
            quick,
        }
    }
}

/// Save measured results as JSON.
///
/// # Errors
///
/// Returns an I/O or serialization error message.
pub fn save_measured(m: &Measured, path: &Path) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let json = serde_json::to_string_pretty(m).map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Load measured results saved by [`save_measured`].
///
/// # Errors
///
/// Returns an I/O or deserialization error message.
pub fn load_measured(path: &Path) -> Result<Measured, String> {
    let json =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    serde_json::from_str(&json).map_err(|e| format!("parse {}: {e}", path.display()))
}

/// The default measured-results path.
pub fn measured_path() -> PathBuf {
    PathBuf::from(MEASURED_PATH)
}

/// Render a fixed-width table: a header row plus data rows, columns
/// padded to their widest cell, separated by two spaces.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Render one row of Kiviat axis values as a crude ASCII bar chart
/// (the Figure 1 presentation).
pub fn render_kiviat(axes: &[&str], values: &[f64]) -> String {
    assert_eq!(axes.len(), values.len(), "axis/value mismatch");
    let mut out = String::new();
    for (axis, v) in axes.iter().zip(values) {
        let filled = (v.clamp(0.0, 10.0).round()) as usize;
        out.push_str(&format!("  {axis:<26} {:<10} {v:.1}\n", "#".repeat(filled)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_alignment() {
        let t = render_table(
            &["a".into(), "bb".into()],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains("  1"));
        assert!(lines[3].starts_with("333"));
    }

    #[test]
    fn kiviat_render_scales() {
        let s = render_kiviat(&["x", "y"], &[0.0, 10.0]);
        assert!(s.contains("##########"));
    }

    #[test]
    fn measured_roundtrip() {
        use xps_core::paper;
        let dir = std::env::temp_dir().join("xps-bench-test");
        let path = dir.join("m.json");
        let m = Measured {
            cores: vec![],
            matrix: paper::table5_matrix(),
            quick: true,
        };
        save_measured(&m, &path).expect("save");
        let back = load_measured(&path).expect("load");
        assert_eq!(back.matrix, m.matrix);
        assert!(back.quick);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        render_table(&["a".into()], &[vec!["1".into(), "2".into()]]);
    }
}
