//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--paper-data] [--quick] [--jobs N]
//!
//! experiments:
//!   explore      run the measured exploration campaign and persist it
//!   table1       unit → CACTI-query mapping with reference delays
//!   table2       fixed technology parameters
//!   table3       the initial configuration
//!   table4       customized configurations per benchmark
//!   table5       cross-configuration IPT matrix
//!   table6       best core combinations per figure of merit
//!   table7       dual-core design summary
//!   fig1         Kiviat graphs of raw workload characteristics
//!   fig2         clock-period / sizing slack scenarios
//!   fig3         subset-first vs customize-first methodologies
//!   fig4         per-benchmark IPT under different core sets
//!   fig5         propagation-mode illustration
//!   fig6         greedy surrogates, no propagation
//!   fig7         greedy surrogates, full propagation
//!   fig8         greedy surrogates, forward propagation
//!   appendix-a   percentage-slowdown matrix
//!   pitfall      the §5.3 subsetting pitfall
//!   schedule     §5.5 job-arrival contention study
//!   ablation-tech  how technology scaling shifts customized configs
//!   ablation-power performance-optimal vs EDP-optimal customization
//!   ablation-predictor  mispredict/IPT sensitivity to the predictor
//!   ablation-search  simulated annealing vs exhaustive grid search
//!   ablation-prefetch  what a prefetcher would absorb of the story
//!   dendrogram   subsetting dendrogram of raw characteristics
//!   visualize    cross-configuration slowdown heat map
//!   profile      self-profile a quick 2-benchmark exploration: per-phase
//!                table, deterministic trace journal, collapsed stacks
//!   serve        run the exploration-as-a-service daemon (xps-serve)
//!   client       submit a smoke exploration to a running daemon
//!   analyze      static analysis: lint workspace sources, validate artifacts
//!   scale        generate a synthetic workload population (xps-scenario)
//!                and run the subsetting-at-scale study: per-panel
//!                campaigns, clustering-vs-subsetting gap distribution,
//!                measured pitfall rate (see `repro scale --help`)
//!   bakeoff      run every explorer (anneal, genetic, surrogate) at an
//!                equal evaluation budget over the SPEC profiles plus
//!                seeded scenario panels and emit the win matrix,
//!                evals-to-best curves, and Pareto hypervolumes
//!                (see `repro bakeoff --help`)
//!   bench        measure engine throughput before/after the hot-loop
//!                overhaul (reference vs optimized, same process) and
//!                write `BENCH_10.json`; `--check` compares against the
//!                committed file and fails on a >10% geomean regression
//!                or any single row losing more than 25%
//!   all          everything above (except profile/serve/client/fleet/analyze/scale/bakeoff/bench), in order
//!
//! `--paper-data` analyses the paper's published Table 5 instead of
//! this repository's measured matrix; `--quick` shrinks the measured
//! exploration budget (demo-scale); `--jobs N` sets the worker-thread
//! count of the measured exploration (default: available parallelism;
//! results are bit-identical for every value).
//!
//! Crash-safety flags (the measured campaign journals every completed
//! task to `results/journal.jsonl`):
//!
//! * `--resume` — replay the journal of an interrupted campaign and
//!   re-run only the missing tasks; the output is byte-identical to an
//!   uninterrupted run.
//! * `--retries N` — extra attempts per task after a failure
//!   (default 2).
//! * `--faults SPEC` — deterministic fault injection, e.g.
//!   `rate=20,seed=7,attempts=1,kind=panic`.
//! * `--journal PATH` — journal location override.
//!
//! Serving flags (`serve` and `client` only):
//!
//! * `--addr HOST:PORT` — daemon bind / client target address
//!   (default `127.0.0.1:7780`).
//! * `--data-dir PATH` — daemon state root (default `results/serve`).
//!
//! Scale-study flags (`scale` only; `repro scale --help` lists them
//! with defaults):
//!
//! * `--families LIST` — comma-separated scenario families.
//! * `--n N` — population size.
//! * `--seed N` — population seed.
//! * `--out PATH` — canonical report destination.
//!
//! Bake-off flags (`bakeoff` only; `repro bakeoff --help` lists them
//! with defaults):
//!
//! * `--budget N` — simulated design-point evaluations per explorer
//!   per workload (every explorer gets exactly the same budget).
//! * `--seed N` — search seed shared by every explorer.
//! ```

// The dispatch tables below use `Ok(experiment())` so each arm stays a
// one-liner; every experiment returns `()`.
#![allow(clippy::unit_arg)]

use std::error::Error;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::OnceLock;
use xps_bench::{
    load_measured, measured_path, render_kiviat, render_table, save_measured, Measured,
};
use xps_core::communal::{
    assign_surrogates, best_combination, ideal_performance, pitfall_experiment, simulate_jobs,
    CrossPerfMatrix, JobPolicy, Merit, Propagation, ScheduleOptions, Surrogating,
};
use xps_core::explore::{constants, FaultPlan, Journal, RunContext};
use xps_core::paper;
use xps_core::pipeline::Pipeline;
use xps_core::sim::{CoreConfig, Simulator};
use xps_core::workload::{spec, Characterizer, TraceGenerator, KIVIAT_AXES};
use xps_core::{cacti, table7};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    Paper,
    Measured,
}

/// Default location of the campaign checkpoint journal.
const JOURNAL_PATH: &str = "results/journal.jsonl";

const USAGE: &str = "usage: repro <experiment> [--paper-data] [--quick] [--jobs N] \
[--resume] [--retries N] [--faults SPEC] [--journal PATH] [--addr HOST:PORT] \
[--data-dir PATH] [--workers HOST:PORT,..] [--net-faults SPEC] [--families LIST] \
[--n N] [--seed N] [--budget N] [--out PATH]  (see --help)";

/// Every experiment `repro` knows, in `repro all` order where
/// applicable; the tail entries are the standalone services/studies
/// excluded from `all`.
const EXPERIMENTS: [&str; 35] = [
    "explore",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "appendix-a",
    "pitfall",
    "schedule",
    "ablation-tech",
    "ablation-power",
    "ablation-predictor",
    "ablation-search",
    "ablation-prefetch",
    "dendrogram",
    "visualize",
    "profile",
    "serve",
    "client",
    "fleet",
    "analyze",
    "scale",
    "bakeoff",
    "bench",
    "all",
];

/// Parsed command line of the `repro` binary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Cli {
    /// The experiment to run.
    cmd: String,
    /// `--quick`: demo-scale exploration budget.
    quick: bool,
    /// `--paper-data`: analyse the published Table 5 instead.
    paper_data: bool,
    /// `--jobs N`: worker threads (0 = available parallelism; an
    /// explicit `--jobs 0` is rejected at parse time).
    jobs: usize,
    /// `--resume`: replay the journal, re-run only missing tasks.
    resume: bool,
    /// `--retries N`: per-task retry budget override.
    retries: Option<u32>,
    /// `--faults SPEC`: deterministic fault injection (validated at
    /// parse time, kept as the raw spec).
    faults: Option<String>,
    /// `--journal PATH`: journal location override.
    journal: Option<PathBuf>,
    /// `--addr HOST:PORT`: daemon bind / client target address.
    addr: Option<String>,
    /// `--data-dir PATH`: daemon state root.
    data_dir: Option<PathBuf>,
    /// `--workers HOST:PORT,..` (`fleet` only): worker addresses.
    workers: Vec<String>,
    /// `--net-faults SPEC` (`fleet` only): deterministic network
    /// fault injection (validated at parse time, kept as the raw
    /// spec).
    net_faults: Option<String>,
    /// `--check` (`bench` only): compare against the committed
    /// `BENCH_*.json` instead of rewriting it.
    check: bool,
    /// `--families LIST` (`scale` only): comma-separated scenario
    /// families (validated at parse time, kept as the raw list).
    families: Option<String>,
    /// `--n N` (`scale` only): population size.
    n: Option<usize>,
    /// `--seed N` (`scale`/`bakeoff`): population / search seed.
    seed: Option<u64>,
    /// `--budget N` (`bakeoff` only): evaluations per explorer per
    /// workload.
    budget: Option<u64>,
    /// `--out PATH` (`scale`/`bakeoff`): canonical report destination.
    out: Option<PathBuf>,
    /// `--help` / `-h`.
    help: bool,
}

/// Consume the value of `--flag VALUE` / `--flag=VALUE` at `args[*i]`.
fn flag_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    if let Some(rest) = args[*i].strip_prefix(flag) {
        if let Some(v) = rest.strip_prefix('=') {
            return Ok(v.to_string());
        }
    }
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("{flag} requires a value (as in `{flag} N` or `{flag}=N`)"))
}

/// Parse the argument list strictly: every flag is known, every value
/// is validated, and anything else is a one-line actionable error —
/// a typo can no longer silently run the wrong experiment.
fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let name = arg.split('=').next().unwrap_or(&arg);
        let is_bool = matches!(
            name,
            "--quick" | "--paper-data" | "--resume" | "--check" | "--help" | "-h"
        );
        if is_bool && arg != name {
            return Err(format!("{name} takes no value (got `{arg}`)"));
        }
        match name {
            "--quick" => cli.quick = true,
            "--paper-data" => cli.paper_data = true,
            "--resume" => cli.resume = true,
            "--check" => cli.check = true,
            "--help" | "-h" => cli.help = true,
            "--jobs" => {
                let v = flag_value(args, &mut i, "--jobs")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs expects a number, got `{v}`"))?;
                if n == 0 {
                    return Err(
                        "--jobs 0 is not a worker count; pass --jobs N with N >= 1, \
                         or omit --jobs to use all available cores"
                            .to_string(),
                    );
                }
                cli.jobs = n;
            }
            "--retries" => {
                let v = flag_value(args, &mut i, "--retries")?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("--retries expects a number, got `{v}`"))?;
                cli.retries = Some(n);
            }
            "--faults" => {
                let v = flag_value(args, &mut i, "--faults")?;
                FaultPlan::parse(&v)?;
                cli.faults = Some(v);
            }
            "--journal" => {
                let v = flag_value(args, &mut i, "--journal")?;
                cli.journal = Some(PathBuf::from(v));
            }
            "--addr" => {
                let v = flag_value(args, &mut i, "--addr")?;
                if !v.contains(':') {
                    return Err(format!("--addr expects HOST:PORT, got `{v}`"));
                }
                cli.addr = Some(v);
            }
            "--data-dir" => {
                let v = flag_value(args, &mut i, "--data-dir")?;
                cli.data_dir = Some(PathBuf::from(v));
            }
            "--workers" => {
                let v = flag_value(args, &mut i, "--workers")?;
                let workers: Vec<String> = v
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
                if let Some(bad) = workers.iter().find(|w| !w.contains(':')) {
                    return Err(format!("--workers expects HOST:PORT entries, got `{bad}`"));
                }
                cli.workers = workers;
            }
            "--net-faults" => {
                let v = flag_value(args, &mut i, "--net-faults")?;
                xps_serve::NetFaultPlan::parse(&v)?;
                cli.net_faults = Some(v);
            }
            "--families" => {
                let v = flag_value(args, &mut i, "--families")?;
                let entries: Vec<&str> = v
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .collect();
                if entries.is_empty() {
                    return Err("--families expects a comma-separated list, e.g. \
                         `--families expected,stress,adversarial`"
                        .to_string());
                }
                for f in &entries {
                    xps_scenario::Family::parse(f)?;
                }
                cli.families = Some(entries.join(","));
            }
            "--n" => {
                let v = flag_value(args, &mut i, "--n")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--n expects a number, got `{v}`"))?;
                if n < 4 {
                    return Err(format!(
                        "--n {n} is too small for the methodology comparison; \
                         pass --n N with N >= 4"
                    ));
                }
                cli.n = Some(n);
            }
            "--seed" => {
                let v = flag_value(args, &mut i, "--seed")?;
                let s: u64 = v
                    .parse()
                    .map_err(|_| format!("--seed expects a u64, got `{v}`"))?;
                cli.seed = Some(s);
            }
            "--budget" => {
                let v = flag_value(args, &mut i, "--budget")?;
                let b: u64 = v
                    .parse()
                    .map_err(|_| format!("--budget expects a number, got `{v}`"))?;
                if b == 0 {
                    return Err("--budget 0 would let no explorer evaluate anything; \
                         pass --budget N with N >= 1"
                        .to_string());
                }
                cli.budget = Some(b);
            }
            "--out" => {
                let v = flag_value(args, &mut i, "--out")?;
                cli.out = Some(PathBuf::from(v));
            }
            _ if name.starts_with('-') => {
                return Err(format!(
                    "unknown flag `{name}` (flags: --paper-data --quick --jobs N \
                     --resume --retries N --faults SPEC --journal PATH \
                     --addr HOST:PORT --data-dir PATH --workers HOST:PORT,.. \
                     --net-faults SPEC --families LIST --n N --seed N --budget N \
                     --out PATH --check --help)"
                ));
            }
            _ => {
                if cli.cmd.is_empty() {
                    cli.cmd = arg;
                } else {
                    return Err(format!(
                        "unexpected argument `{arg}` (already running `{}`; \
                         one experiment per invocation)",
                        cli.cmd
                    ));
                }
            }
        }
        i += 1;
    }
    if !cli.help && cli.cmd.is_empty() {
        return Err(format!("missing experiment; {USAGE}"));
    }
    Ok(cli)
}

/// Campaign options shared by every experiment that may trigger the
/// measured exploration. Set once in `main`; a process-wide cell
/// avoids threading the knobs through every table function.
#[derive(Debug, Default)]
struct RunOpts {
    jobs: usize,
    resume: bool,
    retries: Option<u32>,
    faults: Option<FaultPlan>,
    journal: Option<PathBuf>,
    addr: Option<String>,
    data_dir: Option<PathBuf>,
    workers: Vec<String>,
    net_faults: Option<String>,
    check: bool,
    families: Option<String>,
    n: Option<usize>,
    seed: Option<u64>,
    budget: Option<u64>,
    out: Option<PathBuf>,
}

static RUN: OnceLock<RunOpts> = OnceLock::new();

fn run_opts() -> &'static RunOpts {
    RUN.get_or_init(RunOpts::default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("repro: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cli.help || cli.cmd == "help" {
        if cli.cmd == "scale" {
            print_scale_help();
            return ExitCode::SUCCESS;
        }
        if cli.cmd == "bakeoff" {
            print_bakeoff_help();
            return ExitCode::SUCCESS;
        }
        println!(
            "see `repro` module docs; experiments: {}",
            EXPERIMENTS.join(" ")
        );
        println!("flags: --paper-data --quick --jobs N --resume --retries N --faults SPEC --journal PATH --addr HOST:PORT --data-dir PATH --workers HOST:PORT,.. --net-faults SPEC --families LIST --n N --seed N --budget N --out PATH --check");
        return ExitCode::SUCCESS;
    }
    let faults = match cli.faults.as_deref().map(FaultPlan::parse).transpose() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("repro: {e}");
            return ExitCode::FAILURE;
        }
    };
    RUN.set(RunOpts {
        jobs: cli.jobs,
        resume: cli.resume,
        retries: cli.retries,
        faults,
        journal: cli.journal.clone(),
        addr: cli.addr.clone(),
        data_dir: cli.data_dir.clone(),
        workers: cli.workers.clone(),
        net_faults: cli.net_faults.clone(),
        check: cli.check,
        families: cli.families.clone(),
        n: cli.n,
        seed: cli.seed,
        budget: cli.budget,
        out: cli.out.clone(),
    })
    .expect("options set once");
    let source = if cli.paper_data {
        Source::Paper
    } else {
        Source::Measured
    };
    let quick = cli.quick;
    let outcome = if cli.cmd == "all" {
        (|| {
            for c in [
                "table1",
                "table2",
                "table3",
                "table4",
                "table5",
                "table6",
                "table7",
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "appendix-a",
                "pitfall",
                "schedule",
                "ablation-tech",
                "ablation-power",
                "ablation-predictor",
                "ablation-search",
                "ablation-prefetch",
                "dendrogram",
                "visualize",
            ] {
                println!("\n================ {c} ================\n");
                run_dispatch(c, source, quick)?;
            }
            Ok(())
        })()
    } else {
        run_dispatch(&cli.cmd, source, quick)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro {}: {e}", cli.cmd);
            ExitCode::FAILURE
        }
    }
}

fn run_dispatch(c: &str, source: Source, quick: bool) -> Result<(), Box<dyn Error>> {
    match c {
        "explore" => {
            explore(quick)?;
            Ok(())
        }
        "table1" => Ok(table1()),
        "table2" => Ok(table2()),
        "table3" => Ok(table3()),
        "table4" => table4(source, quick),
        "table5" => table5(source, quick),
        "table6" => table6(source, quick),
        "table7" => table7_cmd(source, quick),
        "fig1" => Ok(fig1(quick)),
        "fig2" => Ok(fig2()),
        "fig3" => fig3(source, quick),
        "fig4" => fig4(source, quick),
        "fig5" => Ok(fig5()),
        "fig6" => figs678(source, quick, Propagation::None),
        "fig7" => figs678(source, quick, Propagation::ForwardBackward),
        "fig8" => figs678(source, quick, Propagation::Forward),
        "appendix-a" => appendix_a(source, quick),
        "pitfall" => pitfall(source, quick),
        "schedule" => schedule(source, quick),
        "ablation-tech" => Ok(ablation_tech()),
        "ablation-power" => Ok(ablation_power()),
        "ablation-predictor" => Ok(ablation_predictor()),
        "ablation-search" => Ok(ablation_search()),
        "ablation-prefetch" => Ok(ablation_prefetch()),
        "dendrogram" => Ok(dendrogram_cmd(quick)),
        "visualize" => visualize(source, quick),
        "profile" => profile_cmd(quick),
        "serve" => serve_cmd(),
        "client" => client_cmd(quick),
        "fleet" => fleet_cmd(quick),
        "analyze" => analyze_cmd(),
        "scale" => scale_cmd(quick),
        "bakeoff" => bakeoff_cmd(quick),
        "bench" => bench_cmd(quick, run_opts().check),
        _ => Err(format!(
            "unknown experiment `{c}`; available: {}",
            EXPERIMENTS.join(" ")
        )
        .into()),
    }
}

/// `repro scale --help`: every scale flag with its default.
fn print_scale_help() {
    println!(
        "usage: repro scale [flags]\n\n\
         Generate a synthetic workload population with xps-scenario and run\n\
         the subsetting-at-scale study: the population is split into panels,\n\
         each panel runs the full configurational campaign, and both Figure-3\n\
         routes plus the \u{a7}5.3 pitfall experiment are scored per panel. The\n\
         canonical report is byte-identical for any --jobs value or fleet\n\
         worker count.\n\n\
         flags (with defaults):\n\
         \x20 --families LIST         scenario families, comma-separated\n\
         \x20                         (default: expected,stress,adversarial)\n\
         \x20 --n N                   population size, N >= 4 (default: 96)\n\
         \x20 --seed N                population seed (default: 42)\n\
         \x20 --out PATH              canonical report destination\n\
         \x20                         (default: results/scale.json)\n\
         \x20 --quick                 smoke-scale study budget (default: off;\n\
         \x20                         the default budget is the quick pipeline)\n\
         \x20 --jobs N                worker threads per panel campaign\n\
         \x20                         (default: available parallelism)\n\
         \x20 --workers HOST:PORT,..  scatter tasks over fleet workers\n\
         \x20                         (default: none; run coordinator-local)\n\
         \x20 --retries N             per-task retry budget (default: 2)\n\
         \x20 --net-faults SPEC       seeded network fault injection, e.g.\n\
         \x20                         drop=10,seed=3 (default: none)\n\
         \x20 --faults SPEC           deterministic task fault injection\n\
         \x20                         (default: none)"
    );
}

/// `repro bakeoff --help`: every bake-off flag with its default.
fn print_bakeoff_help() {
    println!(
        "usage: repro bakeoff [flags]\n\n\
         Run the explorer portfolio — simulated annealing, a genetic\n\
         algorithm, and a surrogate-guided searcher — at an equal budget of\n\
         simulated design-point evaluations over the 11 SPEC profiles plus\n\
         seeded scenario panels, and emit the win matrix, evals-to-best\n\
         curves, and IPT-vs-energy Pareto fronts with per-explorer\n\
         hypervolume. The canonical report is byte-identical for any --jobs\n\
         value, rerun, or fleet worker count.\n\n\
         flags (with defaults):\n\
         \x20 --quick                 smoke-scale bake-off (3 SPEC profiles,\n\
         \x20                         4 scenario members, budget 14; default:\n\
         \x20                         full quick study — 11 SPEC profiles,\n\
         \x20                         6 scenario members, budget 60)\n\
         \x20 --budget N              evaluations per explorer per workload\n\
         \x20                         (default: 14 with --quick, 60 without)\n\
         \x20 --seed N                search seed shared by every explorer\n\
         \x20                         (default: 24301)\n\
         \x20 --families LIST         scenario families, comma-separated\n\
         \x20                         (default: expected,stress,adversarial)\n\
         \x20 --n N                   scenario population size, N >= 4\n\
         \x20                         (default: 4 with --quick, 6 without)\n\
         \x20 --out PATH              canonical report destination\n\
         \x20                         (default: results/bakeoff.json)\n\
         \x20 --jobs N                worker threads for the workload fan-out\n\
         \x20                         (default: available parallelism)\n\
         \x20 --resume                replay the bake-off journal and re-run\n\
         \x20                         only the missing tasks (default: off)\n\
         \x20 --journal PATH          journal location\n\
         \x20                         (default: results/bakeoff-journal.jsonl)\n\
         \x20 --workers HOST:PORT,..  scatter search tasks over fleet workers\n\
         \x20                         (default: none; run coordinator-local)\n\
         \x20 --retries N             per-task retry budget (default: 2)\n\
         \x20 --net-faults SPEC       seeded network fault injection, e.g.\n\
         \x20                         drop=10,seed=3 (default: none)\n\
         \x20 --faults SPEC           deterministic task fault injection\n\
         \x20                         (default: none)"
    );
}

/// Default location of the bake-off checkpoint journal (distinct from
/// the campaign journal so an interrupted `explore` and an interrupted
/// `bakeoff` never replay each other's tasks).
const BAKEOFF_JOURNAL_PATH: &str = "results/bakeoff-journal.jsonl";

/// `repro bakeoff`: run every explorer at the same evaluation budget
/// over the SPEC profiles plus seeded scenario panels and write the
/// canonical bake-off report. The fan-out goes through the task
/// dispatcher seam, so `--workers` scales it over a fleet without
/// changing a byte of the output.
fn bakeoff_cmd(quick: bool) -> Result<(), Box<dyn Error>> {
    use xps_scenario::{run_bakeoff, BakeoffOptions, Family, PopulationSpec};
    use xps_serve::{FlakyTransport, Fleet, FleetConfig, NetFaultPlan, TcpTransport};
    let opts = run_opts();
    let mut bake = if quick {
        BakeoffOptions::smoke()
    } else {
        BakeoffOptions::quick()
    };
    bake.jobs = opts.jobs;
    if let Some(b) = opts.budget {
        bake.search.budget = b;
    }
    if let Some(s) = opts.seed {
        bake.search.seed = s;
    }
    if opts.families.is_some() || opts.n.is_some() {
        let families = match opts.families.as_deref() {
            Some(list) => list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(Family::parse)
                .collect::<Result<Vec<_>, String>>()?,
            None => Family::ALL.to_vec(),
        };
        let (n0, seed0) = bake
            .scenario
            .as_ref()
            .map(|s| (s.n, s.seed))
            .unwrap_or((6, 11));
        bake.scenario = Some(PopulationSpec {
            families,
            n: opts.n.unwrap_or(n0),
            seed: seed0,
        });
    }
    let journal_path = opts
        .journal
        .clone()
        .unwrap_or_else(|| PathBuf::from(BAKEOFF_JOURNAL_PATH));
    if let Some(dir) = journal_path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let journal = if opts.resume {
        Journal::open(&journal_path)?
    } else {
        Journal::create(&journal_path)?
    };
    if opts.resume {
        eprintln!(
            "[resuming from {}: {} journaled task(s)]",
            journal_path.display(),
            journal.loaded()
        );
    }
    let mut ctx = RunContext::from_env()?.with_journal(journal);
    if let Some(r) = opts.retries {
        ctx = ctx.with_retries(r);
    }
    if let Some(plan) = opts.faults.clone() {
        ctx = ctx.with_faults(plan);
    }
    let fleet = if opts.workers.is_empty() {
        None
    } else {
        let mut cfg = FleetConfig::new(opts.workers.clone());
        if let Some(retries) = opts.retries {
            cfg.retries = retries;
        }
        let plan = match opts.net_faults.as_deref() {
            Some(spec) => Some(NetFaultPlan::parse(spec)?),
            None => NetFaultPlan::from_env()?,
        };
        let tcp = TcpTransport {
            connect_timeout: cfg.connect_timeout,
        };
        let fleet = std::sync::Arc::new(match plan {
            Some(plan) if plan.is_active() => {
                eprintln!("[injecting network faults: {plan:?}]");
                Fleet::new(cfg, std::sync::Arc::new(FlakyTransport::new(plan, tcp)))
            }
            _ => Fleet::new(cfg, std::sync::Arc::new(tcp)),
        });
        ctx = ctx.with_dispatcher(fleet.clone());
        Some(fleet)
    };
    eprintln!(
        "[bake-off: budget={} seed={} spec={} scenario={} worker(s)={}]",
        bake.search.budget,
        bake.search.seed,
        bake.spec_workloads.len(),
        bake.scenario.as_ref().map(|s| s.n).unwrap_or(0),
        if opts.workers.is_empty() {
            "local".to_string()
        } else {
            opts.workers.join(",")
        }
    );
    // xps-allow(determinism-provenance): CLI progress timing printed to stderr; the report never sees it
    let t0 = std::time::Instant::now();
    let report = run_bakeoff(&bake, &ctx)?;
    let wall = t0.elapsed().as_secs_f64();
    eprintln!("[{wall:.1}s wall]");
    if let Some(fleet) = fleet {
        let s = fleet.stats();
        eprintln!(
            "[fleet: {} task(s) remote, {} local-degraded, {} retries, {} quarantines]",
            s.dispatched, s.degraded, s.retried, s.quarantines
        );
    }
    print!("{}", report.render_human());
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("results/bakeoff.json"));
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    xps_core::explore::write_atomic(&out, &report.canonical())?;
    println!(
        "\n[bake-off report {} — byte-identical for any --jobs, rerun, or worker count]",
        out.display()
    );
    // The bake-off is persisted; the checkpoints have served their
    // purpose.
    if let Some(j) = ctx.take_journal() {
        j.discard()?;
    }
    Ok(())
}

/// `repro analyze`: the project's static analyzer — lint every
/// workspace source against the textual rule registry, run the
/// determinism-provenance and lock-discipline passes over the
/// cross-crate call graph (incrementally: unchanged files reuse their
/// cached summaries from `target/analyze-cache.json`), then validate
/// the on-disk artifacts under `results/` (and the serve data dir,
/// when present) against the model domains. Exits non-zero on any
/// deny-severity finding, like CI does.
fn analyze_cmd() -> Result<(), Box<dyn Error>> {
    let root = std::path::Path::new(".");
    let opts = xps_analyze::WorkspaceOptions {
        incremental: true,
        cache_path: None,
    };
    let source = xps_analyze::analyze_workspace(root, &opts)?;
    print!("{}", source.render_human("source"));
    let mut data = xps_analyze::Report::default();
    for dir in ["results", "serve-data"] {
        let dir = root.join(dir);
        if dir.is_dir() {
            data.merge(xps_analyze::artifact::check_dir(&dir)?);
        }
    }
    data.sort();
    print!("{}", data.render_human("data"));
    if source.is_clean() && data.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "{} deny finding(s); see diagnostics above",
            source.deny_count() + data.deny_count()
        )
        .into())
    }
}

/// The perf-trajectory file for this round of engine work. Each
/// hot-loop PR commits a `BENCH_<n>.json` so the series records how
/// throughput moved over time.
const BENCH_PATH: &str = "BENCH_10.json";

/// Workloads measured by `repro bench` — the same three the Criterion
/// `simulator` group tracks.
const BENCH_WORKLOADS: [&str; 3] = ["gzip", "mcf", "crafty"];

/// `--check` fails when the geometric-mean speedup over the matched
/// rows falls more than this far below the committed baseline's.
/// Single rows drift several percent with host cache and frequency
/// state even though both engines run back to back, so the mean gate
/// is tight.
const BENCH_TOLERANCE: f64 = 0.10;

/// `--check` also fails when any *single* matched row loses more than
/// this fraction of its committed speedup. The geomean alone lets one
/// kernel regress badly while the other rows hide it; the per-row
/// bound is looser than the mean bound precisely because individual
/// rows are noisier.
const BENCH_ROW_TOLERANCE: f64 = 0.25;

/// One (workload, config, op budget) measurement: both engines timed
/// in the same process on the same pre-materialized trace.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BenchRow {
    workload: String,
    config: String,
    ops: u64,
    /// Pre-overhaul [`sim::ReferenceSimulator`] throughput, micro-ops/sec.
    before_ops_per_sec: f64,
    /// Optimized [`Simulator`] throughput, micro-ops/sec.
    after_ops_per_sec: f64,
    /// `after / before`. Machine-neutral: both engines ran in the same
    /// process and build, so drift cancels out of the ratio.
    speedup: f64,
}

/// The machine-readable contents of [`BENCH_PATH`].
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BenchReport {
    issue: u32,
    note: String,
    rows: Vec<BenchRow>,
}

/// Gate fresh measurements against the committed baseline. Two rules,
/// both on the machine-neutral speedup column:
///
/// 1. The geometric mean over the matched rows must stay within
///    [`BENCH_TOLERANCE`] of the committed geomean.
/// 2. Every single matched row must stay within
///    [`BENCH_ROW_TOLERANCE`] of its committed speedup — one kernel
///    can no longer hide a bad regression behind the mean.
///
/// Returns the human summary on success and the (first) violated rule
/// as the error.
fn check_bench(rows: &[BenchRow], baseline: &BenchReport) -> Result<String, String> {
    let mut compared = 0usize;
    let (mut log_now, mut log_base) = (0.0f64, 0.0f64);
    let mut worst_row: Option<String> = None;
    for r in rows {
        let Some(b) = baseline
            .rows
            .iter()
            .find(|b| b.workload == r.workload && b.config == r.config && b.ops == r.ops)
        else {
            continue;
        };
        compared += 1;
        log_now += r.speedup.ln();
        log_base += b.speedup.ln();
        let row_floor = b.speedup * (1.0 - BENCH_ROW_TOLERANCE);
        if r.speedup < row_floor && worst_row.is_none() {
            worst_row = Some(format!(
                "row regression vs {BENCH_PATH}: {}/{}/{} ops speedup {:.2}x fell \
                 below {row_floor:.2}x (committed {:.2}x minus {:.0}% per-row \
                 tolerance); the geomean gate alone would let this hide behind \
                 the other rows",
                r.workload,
                r.config,
                r.ops,
                r.speedup,
                b.speedup,
                BENCH_ROW_TOLERANCE * 100.0
            ));
        }
    }
    if compared == 0 {
        return Err(format!(
            "--check matched no rows of {BENCH_PATH} (budget mismatch? \
             the committed file must include the budgets being checked)"
        ));
    }
    let geo_now = (log_now / compared as f64).exp();
    let geo_base = (log_base / compared as f64).exp();
    let floor = geo_base * (1.0 - BENCH_TOLERANCE);
    if geo_now < floor {
        return Err(format!(
            "throughput regression vs {BENCH_PATH}: geomean speedup {geo_now:.2}x \
             over {compared} row(s) fell below {floor:.2}x (baseline {geo_base:.2}x \
             minus {:.0}% tolerance)",
            BENCH_TOLERANCE * 100.0
        ));
    }
    if let Some(row) = worst_row {
        return Err(row);
    }
    Ok(format!(
        "[bench --check: geomean speedup {geo_now:.2}x over {compared} row(s), \
         within {:.0}% of committed {geo_base:.2}x; every row within {:.0}%]",
        BENCH_TOLERANCE * 100.0,
        BENCH_ROW_TOLERANCE * 100.0
    ))
}

/// Best-of-N wall times for a (reference, optimized) pair. The reps
/// interleave the two engines so host-state drift during the
/// measurement lands on both sides of the ratio.
fn bench_pair(
    reps: u32,
    mut before: impl FnMut() -> f64,
    mut after: impl FnMut() -> f64,
) -> (f64, f64) {
    let (mut best_b, mut best_a) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        best_b = best_b.min(before());
        best_a = best_a.min(after());
    }
    (best_b, best_a)
}

/// `repro bench`: measure the reference (pre-overhaul) and optimized
/// cycle engines back to back on identical traces and emit the
/// before/after table as `BENCH_10.json` (or, with `--check`, compare
/// the fresh speedups against the committed file and fail on a >10%
/// geomean regression or any single row losing more than 25% — see
/// [`check_bench`]). Absolute ops/sec depends on the host; the speedup
/// column is the portable number, which is why the regression gate is
/// on speedup and not on raw throughput.
fn bench_cmd(quick: bool, check: bool) -> Result<(), Box<dyn Error>> {
    use xps_core::sim::ReferenceSimulator;

    let budgets: &[u64] = if quick { &[50_000] } else { &[50_000, 400_000] };
    let reps: u32 = if quick { 3 } else { 5 };
    let mut rows = Vec::new();
    for name in BENCH_WORKLOADS {
        let p = spec::profile(name).expect("bench workloads are known benchmarks");
        let max_ops = *budgets.last().expect("at least one budget") as usize;
        let trace: Vec<_> = TraceGenerator::new(p).take(max_ops).collect();
        let configs = [
            ("initial".to_string(), CoreConfig::initial()),
            (
                "table4".to_string(),
                paper::table4_config(name).expect("bench workloads are in Table 4"),
            ),
        ];
        for (cfg_name, cfg) in &configs {
            for &ops in budgets {
                let slice = &trace[..ops as usize];
                let timed = |stats_of: &mut dyn FnMut() -> u64| -> f64 {
                    // xps-allow(determinism-provenance): a benchmark's output *is* wall time; simulated results stay deterministic
                    let t0 = std::time::Instant::now();
                    let cycles = stats_of();
                    let dt = t0.elapsed().as_secs_f64();
                    std::hint::black_box(cycles);
                    dt
                };
                let (before, after) = bench_pair(
                    reps,
                    || {
                        timed(&mut || {
                            ReferenceSimulator::new(cfg)
                                .run(slice.iter().copied(), ops)
                                .cycles
                        })
                    },
                    || timed(&mut || Simulator::new(cfg).run(slice.iter().copied(), ops).cycles),
                );
                rows.push(BenchRow {
                    workload: name.to_string(),
                    config: cfg_name.clone(),
                    ops,
                    before_ops_per_sec: ops as f64 / before,
                    after_ops_per_sec: ops as f64 / after,
                    speedup: before / after,
                });
            }
        }
    }

    println!(
        "{:<10} {:<8} {:>8} {:>14} {:>14} {:>9}",
        "workload", "config", "ops", "before op/s", "after op/s", "speedup"
    );
    for r in &rows {
        println!(
            "{:<10} {:<8} {:>8} {:>14.0} {:>14.0} {:>8.2}x",
            r.workload, r.config, r.ops, r.before_ops_per_sec, r.after_ops_per_sec, r.speedup
        );
    }

    if check {
        let text = std::fs::read_to_string(BENCH_PATH)
            .map_err(|e| format!("--check needs a committed {BENCH_PATH}: {e}"))?;
        let baseline: BenchReport = serde_json::from_str(&text)
            .map_err(|e| format!("{BENCH_PATH} is not a valid bench report: {e}"))?;
        println!("{}", check_bench(&rows, &baseline)?);
        return Ok(());
    }

    let report = BenchReport {
        issue: 10,
        note: "Throughput refresh for the explorer-portfolio PR: issue-slot ring + \
               filtered store forwarding + SoA MSHRs vs the pre-overhaul reference \
               engine, measured back to back in one process on identical traces."
            .to_string(),
        rows,
    };
    let json = serde_json::to_string_pretty(&report)?;
    xps_core::explore::write_atomic(std::path::Path::new(BENCH_PATH), &json)?;
    println!("[wrote {BENCH_PATH}]");
    Ok(())
}

/// Run (or reuse) the measured campaign. A missing results file means
/// "no campaign yet" and triggers one; a corrupt or truncated file is
/// an error — it is never silently explored over.
fn measured(quick: bool) -> Result<Measured, Box<dyn Error>> {
    let path = measured_path();
    match load_measured(&path) {
        Ok(m) if m.quick == quick => {
            eprintln!(
                "[using cached {} — delete it to re-explore]",
                path.display()
            );
            return Ok(m);
        }
        Ok(_) => {} // budget mismatch: re-explore
        Err(e) if e.is_not_found() => {}
        Err(e) => return Err(format!("{e}; delete the file to re-explore").into()),
    }
    explore(quick)
}

fn explore(quick: bool) -> Result<Measured, Box<dyn Error>> {
    let opts = run_opts();
    eprintln!(
        "[running measured exploration campaign ({}) — this simulates ~10^9 micro-ops]",
        if quick { "quick" } else { "full" }
    );
    let mut pipeline = if quick {
        Pipeline::quick()
    } else {
        Pipeline::default()
    };
    pipeline.explore.jobs = opts.jobs;
    let journal_path = opts
        .journal
        .clone()
        .unwrap_or_else(|| PathBuf::from(JOURNAL_PATH));
    let journal = if opts.resume {
        Journal::open(&journal_path)?
    } else {
        Journal::create(&journal_path)?
    };
    if opts.resume {
        eprintln!(
            "[resuming from {}: {} journaled task(s)]",
            journal_path.display(),
            journal.loaded()
        );
    }
    let mut ctx = RunContext::from_env()?.with_journal(journal);
    if let Some(r) = opts.retries {
        ctx = ctx.with_retries(r);
    }
    if let Some(plan) = opts.faults.clone() {
        ctx = ctx.with_faults(plan);
    }
    // xps-allow(determinism-provenance): CLI progress timing printed to stderr; measured results never see it
    let t0 = std::time::Instant::now();
    let result = pipeline.run_recoverable(&spec::all_profiles(), &ctx)?;
    let wall = t0.elapsed().as_secs_f64();
    let s = &result.stats;
    eprintln!(
        "[{wall:.1}s wall on {} worker(s); cache {} hits / {} misses ({:.1}% hit rate); evals per worker: {}]",
        s.workers,
        s.cache.hits,
        s.cache.misses,
        s.cache.hit_rate() * 100.0,
        s.per_worker_tasks
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("/"),
    );
    let r = &s.recovery;
    eprintln!(
        "[crash-safety: {} task(s) executed, {} salvaged from the journal, {} retried, {} fault(s) injected{}]",
        r.executed,
        r.salvaged,
        r.retried,
        r.faults_injected,
        if r.failed_tasks.is_empty() {
            String::new()
        } else {
            format!("; degraded around failed tasks: {}", r.failed_tasks.join(", "))
        }
    );
    let m = Measured::from((result, quick));
    save_measured(&m, &measured_path())?;
    eprintln!("[saved {}]", measured_path().display());
    // The campaign is persisted; the checkpoints have served their
    // purpose.
    if let Some(j) = ctx.take_journal() {
        j.discard()?;
    }
    Ok(m)
}

fn matrix_for(
    source: Source,
    quick: bool,
) -> Result<(CrossPerfMatrix, &'static str), Box<dyn Error>> {
    match source {
        Source::Paper => Ok((paper::table5_matrix(), "published Table 5")),
        Source::Measured => Ok((measured(quick)?.matrix, "measured matrix")),
    }
}

fn table1() {
    let tech = cacti::Technology::default();
    println!("Table 1: unit -> CACTI query (reference delays at representative sizes)\n");
    let rows = vec![
        vec![
            "L1 data cache".into(),
            "sets x assoc x line, 2R/2W".into(),
            "access time".into(),
            format!(
                "{:.3} ns (32 KB, 2w, 64 B)",
                cacti::units::l1_access_time(&tech, 256, 2, 64)
            ),
        ],
        vec![
            "L2 data cache".into(),
            "sets x assoc x line, 2R/2W".into(),
            "access time".into(),
            format!(
                "{:.3} ns (2 MB, 4w, 128 B)",
                cacti::units::l2_access_time(&tech, 4096, 4, 128)
            ),
        ],
        vec![
            "wakeup-select".into(),
            "CAM 2xIQ entries + RAM select".into(),
            "tag cmp + datapath".into(),
            format!(
                "{:.3} ns (IQ 64, width 4)",
                cacti::units::issue_queue_delay(&tech, 64, 4)
            ),
        ],
        vec![
            "reg file (ROB)".into(),
            "RAM, 2w read / w write ports".into(),
            "access time".into(),
            format!(
                "{:.3} ns (ROB 256, width 4)",
                cacti::units::regfile_access_time(&tech, 256, 4)
            ),
        ],
        vec![
            "LSQ".into(),
            "CAM, 2 search ports".into(),
            "datapath w/o driver".into(),
            format!("{:.3} ns (LSQ 128)", cacti::units::lsq_delay(&tech, 128)),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "unit".into(),
                "organization".into(),
                "CACTI output".into(),
                "model delay".into()
            ],
            &rows
        )
    );
}

fn table2() {
    println!("Table 2: fixed design parameters\n");
    println!(
        "  memory access latency    {} ns",
        constants::MEMORY_LATENCY_NS
    );
    println!(
        "  front-end latency        {} ns",
        constants::FRONTEND_LATENCY_NS
    );
    println!(
        "  bit-width of IQ entries  {} bits",
        constants::IQ_ENTRY_BITS
    );
    println!("  latch latency            {} ns", constants::LATCH_NS);
}

fn table3() {
    let c = CoreConfig::initial();
    println!("Table 3: initial configuration used across all benchmarks\n");
    println!("{}", config_table(&[c]));
}

type ParamCell = Box<dyn Fn(&CoreConfig) -> String>;

fn config_table(configs: &[CoreConfig]) -> String {
    let header: Vec<String> = std::iter::once("parameter".to_string())
        .chain(configs.iter().map(|c| c.name.clone()))
        .collect();
    let param_rows: Vec<(&str, ParamCell)> = vec![
        (
            "mem access cycles",
            Box::new(|c| c.mem_cycles().to_string()),
        ),
        (
            "front-end stages",
            Box::new(|c| c.frontend_depth.to_string()),
        ),
        ("width", Box::new(|c| c.width.to_string())),
        ("ROB size", Box::new(|c| c.rob_size.to_string())),
        ("issue queue size", Box::new(|c| c.iq_size.to_string())),
        (
            "min awaken latency",
            Box::new(|c| c.wakeup_extra.to_string()),
        ),
        ("sched/RF depth", Box::new(|c| c.sched_depth.to_string())),
        ("clock (ns)", Box::new(|c| format!("{:.2}", c.clock_ns))),
        ("L1D assoc", Box::new(|c| c.l1.geometry.assoc.to_string())),
        (
            "L1D block (B)",
            Box::new(|c| c.l1.geometry.block_bytes.to_string()),
        ),
        ("L1D sets", Box::new(|c| c.l1.geometry.sets.to_string())),
        (
            "L1D KB",
            Box::new(|c| (c.l1.geometry.capacity_bytes() / 1024).to_string()),
        ),
        ("L1D cycles", Box::new(|c| c.l1.latency.to_string())),
        ("L2D assoc", Box::new(|c| c.l2.geometry.assoc.to_string())),
        (
            "L2D block (B)",
            Box::new(|c| c.l2.geometry.block_bytes.to_string()),
        ),
        ("L2D sets", Box::new(|c| c.l2.geometry.sets.to_string())),
        (
            "L2D KB",
            Box::new(|c| (c.l2.geometry.capacity_bytes() / 1024).to_string()),
        ),
        ("L2D cycles", Box::new(|c| c.l2.latency.to_string())),
        ("LSQ size", Box::new(|c| c.lsq_size.to_string())),
    ];
    let rows: Vec<Vec<String>> = param_rows
        .iter()
        .map(|(name, f)| {
            std::iter::once(name.to_string())
                .chain(configs.iter().map(f.as_ref()))
                .collect()
        })
        .collect();
    render_table(&header, &rows)
}

fn table4(source: Source, quick: bool) -> Result<(), Box<dyn Error>> {
    let configs = match source {
        Source::Paper => paper::table4_configs(),
        Source::Measured => measured(quick)?
            .cores
            .iter()
            .map(|c| c.config.clone())
            .collect(),
    };
    println!(
        "Table 4: customized architectural configurations ({})\n",
        match source {
            Source::Paper => "published",
            Source::Measured => "measured",
        }
    );
    println!("{}", config_table(&configs));
    Ok(())
}

fn matrix_table(m: &CrossPerfMatrix, cell: impl Fn(usize, usize) -> String) -> String {
    let header: Vec<String> = std::iter::once(String::new())
        .chain(m.names().iter().cloned())
        .collect();
    let rows: Vec<Vec<String>> = (0..m.len())
        .map(|w| {
            std::iter::once(m.names()[w].clone())
                .chain((0..m.len()).map(|c| cell(w, c)))
                .collect()
        })
        .collect();
    render_table(&header, &rows)
}

fn table5(source: Source, quick: bool) -> Result<(), Box<dyn Error>> {
    let (m, label) = matrix_for(source, quick)?;
    println!("Table 5: IPT of each benchmark (rows) on each customized architecture (columns) [{label}]\n");
    println!("{}", matrix_table(&m, |w, c| format!("{:.2}", m.ipt(w, c))));
    Ok(())
}

fn appendix_a(source: Source, quick: bool) -> Result<(), Box<dyn Error>> {
    let (m, label) = matrix_for(source, quick)?;
    println!("Appendix A: percentage slowdown on other benchmarks' architectures [{label}]\n");
    println!(
        "{}",
        matrix_table(&m, |w, c| format!("{:.1}%", m.slowdown(w, c) * 100.0))
    );
    Ok(())
}

fn table6(source: Source, quick: bool) -> Result<(), Box<dyn Error>> {
    let (m, label) = matrix_for(source, quick)?;
    println!("Table 6: best core combinations and their performance [{label}]\n");
    let mut rows = Vec::new();
    for k in 1..=4usize {
        for merit in Merit::ALL {
            let r = best_combination(&m, k, merit);
            rows.push(vec![
                format!("{k} best config(s) for {}", merit.label()),
                r.names.join(", "),
                format!("{:.2}", r.avg_ipt),
                format!("{:.2}", r.har_ipt),
            ]);
        }
    }
    let (avg, har) = ideal_performance(&m);
    rows.push(vec![
        "each benchmark on its own architecture".into(),
        "-".into(),
        format!("{avg:.2}"),
        format!("{har:.2}"),
    ]);
    println!(
        "{}",
        render_table(
            &[
                "criterion".into(),
                "customized core(s)".into(),
                "avg IPT".into(),
                "har IPT".into()
            ],
            &rows
        )
    );
    Ok(())
}

fn table7_cmd(source: Source, quick: bool) -> Result<(), Box<dyn Error>> {
    let (m, label) = matrix_for(source, quick)?;
    println!("Table 7: dual-core CMP summary [{label}]\n");
    let t = table7(&m);
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                if r.architectures.len() == m.len() {
                    "(all)".to_string()
                } else {
                    r.architectures.join(", ")
                },
                format!("{:.2}", r.harmonic_ipt),
                format!("{:.0}%", r.slowdown_vs_ideal * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "scenario".into(),
                "arch(s)".into(),
                "har IPT".into(),
                "slowdown vs ideal".into()
            ],
            &rows
        )
    );
    Ok(())
}

fn fig1(quick: bool) {
    let ops = if quick { 40_000 } else { 150_000 };
    println!("Figure 1: Kiviat graphs of raw (microarchitecture-independent) characteristics, 0-10 scale\n");
    for p in spec::all_profiles() {
        let mut ch = Characterizer::new();
        for op in TraceGenerator::new(p.clone()).take(ops) {
            ch.observe(&op);
        }
        let v = ch.finish();
        println!("{}:", p.name);
        print!("{}", render_kiviat(&KIVIAT_AXES, &v.kiviat()));
    }
}

fn fig2() {
    let tech = cacti::Technology::default();
    println!("Figure 2: clock period vs. issue-queue / L1 sizing scenarios\n");
    println!("(delays from the CACTI model; slack = stage budget - unit delay)\n");
    let scenarios = [
        (
            "a: 1.00 ns clock, IQ 64, L1 32 KB in 1 cycle",
            1.00,
            64u32,
            256u32,
            1u32,
        ),
        (
            "b: 0.66 ns clock, IQ 64, L1 32 KB in 1 cycle",
            0.66,
            64,
            256,
            1,
        ),
        (
            "c: 0.66 ns clock, IQ 32, L1 32 KB in 1 cycle",
            0.66,
            32,
            256,
            1,
        ),
        (
            "d: 1.00 ns clock, IQ 64, L1 128 KB in 2 cycles",
            1.00,
            64,
            1024,
            2,
        ),
    ];
    let mut rows = Vec::new();
    for (label, clock, iq, l1_sets, l1_cycles) in scenarios {
        let iq_delay = cacti::units::issue_queue_delay(&tech, iq, 4);
        let l1_delay = cacti::units::l1_access_time(&tech, l1_sets, 2, 64);
        let iq_budget = cacti::fit::stage_budget(&tech, clock, 1);
        let l1_budget = cacti::fit::stage_budget(&tech, clock, l1_cycles);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}/{:.2}", iq_delay, iq_budget),
            format!("{:+.2}", iq_budget - iq_delay),
            format!("{:.2}/{:.2}", l1_delay, l1_budget),
            format!("{:+.2}", l1_budget - l1_delay),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "scenario".into(),
                "IQ delay/budget (ns)".into(),
                "IQ slack".into(),
                "L1 delay/budget (ns)".into(),
                "L1 slack".into()
            ],
            &rows
        )
    );
}

fn fig3(source: Source, quick: bool) -> Result<(), Box<dyn Error>> {
    use xps_core::communal::compare_methodologies;
    let (m, label) = matrix_for(source, quick)?;
    println!("Figure 3: subset-first (a) vs customize-first (b) methodologies [{label}]\n");
    // Raw characteristics measured from the workload models, matched to
    // the matrix's benchmark order.
    let ops = if quick { 40_000 } else { 120_000 };
    let chars: Vec<Vec<f64>> = m
        .names()
        .iter()
        .map(|n| {
            let p = spec::profile(n).ok_or_else(|| format!("no workload model for `{n}`"))?;
            let mut c = Characterizer::new();
            for op in TraceGenerator::new(p).take(ops) {
                c.observe(&op);
            }
            Ok(c.finish().kiviat().to_vec())
        })
        .collect::<Result<_, String>>()?;
    let mut rows = Vec::new();
    for reps in [4usize, 6, 8] {
        for cores in [2usize, 3] {
            if cores > reps {
                continue;
            }
            let r = compare_methodologies(&m, &chars, reps, cores, Merit::HarmonicMean);
            rows.push(vec![
                reps.to_string(),
                cores.to_string(),
                r.subset_first_choice.join("+"),
                format!("{:.3}", r.subset_first_value),
                r.customize_first_choice.join("+"),
                format!("{:.3}", r.customize_first_value),
                format!("{:.1}%", r.subsetting_loss * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "reps".into(),
                "cores".into(),
                "(a) choice".into(),
                "(a) har".into(),
                "(b) choice".into(),
                "(b) har".into(),
                "loss".into()
            ],
            &rows
        )
    );
    println!("route (a) discards architectures before ever measuring them; the loss column is the paper's thesis.");
    Ok(())
}

fn fig4(source: Source, quick: bool) -> Result<(), Box<dyn Error>> {
    let (m, label) = matrix_for(source, quick)?;
    println!("Figure 4: per-benchmark IPT on the best available core [{label}]\n");
    let single = best_combination(&m, 1, Merit::Average).cores;
    let avg2 = best_combination(&m, 2, Merit::Average).cores;
    let har2 = best_combination(&m, 2, Merit::HarmonicMean).cores;
    let cw2 = best_combination(&m, 2, Merit::ContentionWeightedHarmonicMean).cores;
    let own: Vec<usize> = (0..m.len()).collect();
    let sets: Vec<(&str, &[usize])> = vec![
        ("best single", &single),
        ("best 2 (avg)", &avg2),
        ("best 2 (har)", &har2),
        ("best 2 (cw-har)", &cw2),
        ("own core", &own),
    ];
    let header: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(sets.iter().map(|(n, _)| n.to_string()))
        .collect();
    let rows: Vec<Vec<String>> = (0..m.len())
        .map(|w| {
            std::iter::once(m.names()[w].clone())
                .chain(
                    sets.iter()
                        .map(|(_, s)| format!("{:.2}", m.ipt(w, m.best_config_for(w, s)))),
                )
                .collect()
        })
        .collect();
    println!("{}", render_table(&header, &rows));
    Ok(())
}

fn fig5() {
    println!("Figure 5: propagation of surrogates (illustration)\n");
    println!(
        "  forward propagation:  A hosts B, then C hosts A  =>  B effectively runs on C's arch"
    );
    println!(
        "  backward propagation: B hosts A, then A hosts C  =>  C effectively runs on B's arch"
    );
    println!("\nSee fig6/fig7/fig8 for the policies applied to the matrix.");
}

fn print_surrogating(m: &CrossPerfMatrix, s: &Surrogating) {
    for e in &s.edges {
        println!(
            "  {:2}. {} <- {}  ({:.1}% slowdown)",
            e.order,
            m.names()[e.dependent],
            m.names()[e.host],
            e.slowdown * 100.0
        );
    }
    println!();
    for (root, members) in s.groups() {
        let names: Vec<&str> = members.iter().map(|&w| m.names()[w].as_str()).collect();
        println!("  group [{}]: {}", m.names()[root], names.join(", "));
    }
    if !s.feedback_pairs.is_empty() {
        let pairs: Vec<String> = s
            .feedback_pairs
            .iter()
            .map(|&(a, b)| format!("{}<->{}", m.names()[a], m.names()[b]))
            .collect();
        println!("  feedback surrogating: {}", pairs.join(", "));
    }
    println!(
        "\n  harmonic-mean IPT {:.2}   average slowdown vs ideal {:.1}%",
        s.harmonic_ipt(m),
        s.average_slowdown(m) * 100.0
    );
}

fn figs678(source: Source, quick: bool, mode: Propagation) -> Result<(), Box<dyn Error>> {
    let (m, label) = matrix_for(source, quick)?;
    let (figure, target) = match mode {
        Propagation::None => ("Figure 6 (no propagation)", 1),
        Propagation::ForwardBackward => ("Figure 7 (full propagation)", 1),
        Propagation::Forward => ("Figure 8 (forward propagation, driven to 2 cores)", 2),
    };
    println!("{figure}: greedy surrogate assignment [{label}]\n");
    let s = assign_surrogates(&m, mode, target);
    print_surrogating(&m, &s);
    if mode == Propagation::None {
        // The paper's follow-up: grant mcf its own core.
        if let Some(mcf) = m.index_of("mcf") {
            let mut assignment = s.assignment.clone();
            assignment[mcf] = mcf;
            let har = m.len() as f64
                / assignment
                    .iter()
                    .enumerate()
                    .map(|(w, &c)| 1.0 / m.ipt(w, c))
                    .sum::<f64>();
            println!("  with mcf's own architecture added: harmonic-mean IPT {har:.2}");
        }
    }
    Ok(())
}

fn pitfall(source: Source, quick: bool) -> Result<(), Box<dyn Error>> {
    let (m, label) = matrix_for(source, quick)?;
    println!("§5.3 subsetting pitfall [{label}]\n");
    if let (Some(b), Some(g)) = (m.index_of("bzip"), m.index_of("gzip")) {
        println!(
            "  bzip on gzip's architecture: {:.0}% slowdown; gzip on bzip's: {:.0}%\n",
            m.slowdown(b, g) * 100.0,
            m.slowdown(g, b) * 100.0
        );
    }
    for dropped in ["gzip", "bzip"] {
        if m.index_of(dropped).is_none() {
            continue;
        }
        let r = pitfall_experiment(&m, dropped, 2, Merit::HarmonicMean);
        println!(
            "  drop {dropped}: full-set choice {:?} (har {:.3}); reduced choice {:?} delivers {:.3} on the full set ({:.1}% loss)",
            r.full_choice, r.full_value, r.reduced_choice, r.reduced_value_on_full,
            r.loss * 100.0
        );
    }
    Ok(())
}

fn schedule(source: Source, quick: bool) -> Result<(), Box<dyn Error>> {
    let (m, label) = matrix_for(source, quick)?;
    println!("§5.5 multithreaded job submission [{label}]\n");
    let pair = best_combination(&m, 2, Merit::HarmonicMean).cores;
    println!(
        "  cores: {:?}\n",
        pair.iter()
            .map(|&c| m.names()[c].clone())
            .collect::<Vec<_>>()
    );
    let mut rows = Vec::new();
    for burst in [0.0, 0.4, 0.8] {
        for policy in [JobPolicy::StallForAssigned, JobPolicy::BestAvailable] {
            let mut o = ScheduleOptions::new(pair.clone(), policy);
            o.burstiness = burst;
            o.arrival_rate = 2.0;
            if quick {
                o.jobs = 2000;
            }
            let s = simulate_jobs(&m, &o);
            rows.push(vec![
                format!("{burst:.1}"),
                format!("{policy:?}"),
                format!("{:.3}", s.avg_turnaround),
                format!("{:.3}", s.avg_execution),
                format!("{:.3}", s.avg_wait),
                format!("{:.1}%", s.redirect_rate * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "burstiness".into(),
                "policy".into(),
                "turnaround".into(),
                "exec".into(),
                "wait".into(),
                "redirects".into()
            ],
            &rows
        )
    );
    println!("  (burstiness erodes the benefit of workload-to-core matching, as §5.5 argues)");
    let bp = xps_core::communal::balanced_partition(&m, &pair, 1.5);
    println!(
        "\n  BPMST-style balanced partition over the pair: avg slowdown {:.1}%, load imbalance {:.2}",
        bp.average_slowdown * 100.0,
        bp.imbalance
    );
    Ok(())
}

/// Ablation: the paper's §1.1 argument that the physical properties of
/// the technology — not just workload characteristics — shape the
/// customized configuration. Re-customize two benchmarks under the
/// default technology and under one uniformly 1.6x slower, and show
/// the configurations move (typically toward slower clocks and
/// shallower pipes).
fn ablation_tech() {
    use xps_core::explore::{Campaign, ExploreOptions};
    println!("Technology ablation: same workloads, different physics\n");
    let profiles: Vec<_> = ["gzip", "twolf"]
        .iter()
        .map(|n| spec::profile(n).expect("known benchmark"))
        .collect();
    let mut rows = Vec::new();
    for (label, factor) in [("default", 1.0f64), ("1.6x slower arrays", 1.6)] {
        let tech = cacti::Technology::default().scaled(factor);
        let explorer = Campaign::with_technology(ExploreOptions::quick(), tech);
        let r = explorer.explore(&profiles);
        for core in &r.cores {
            let c = &core.config;
            rows.push(vec![
                label.to_string(),
                c.name.clone(),
                format!("{:.2}", c.clock_ns),
                c.rob_size.to_string(),
                (c.l1.geometry.capacity_bytes() / 1024).to_string(),
                (c.l2.geometry.capacity_bytes() / 1024).to_string(),
                format!("{:.2}", core.ipt),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "technology".into(),
                "benchmark".into(),
                "clock".into(),
                "ROB".into(),
                "L1 KB".into(),
                "L2 KB".into(),
                "IPT".into()
            ],
            &rows
        )
    );
    println!("workload characteristics alone cannot predict these rows — the paper's point.");
}

/// Ablation: performance-only vs energy-delay-product customization —
/// the power-aware extension the paper's §3 leaves open.
fn ablation_power() {
    use xps_core::explore::{anneal, AnnealOptions, DesignPoint, Objective};
    use xps_core::sim::estimate_energy;
    println!("Power ablation: IPT-optimal vs EDP-optimal customized cores\n");
    let tech = cacti::Technology::default();
    let mut rows = Vec::new();
    for name in ["gzip", "twolf"] {
        let p = spec::profile(name).expect("known benchmark");
        for (label, objective) in [
            ("IPT", Objective::Ipt),
            ("1/EDP", Objective::InverseEnergyDelay),
        ] {
            let mut opts = AnnealOptions::quick();
            opts.iterations = 80;
            opts.objective = objective;
            let r = anneal(&p, &DesignPoint::initial(), &opts, &tech);
            let stats = Simulator::new(&r.config).run(TraceGenerator::new(p.clone()), 60_000);
            let e = estimate_energy(&tech, &r.config, &stats);
            let time_ns = stats.cycles as f64 * r.config.clock_ns;
            rows.push(vec![
                name.to_string(),
                label.to_string(),
                format!("{:.2}", r.config.clock_ns),
                r.config.rob_size.to_string(),
                (r.config.l2.geometry.capacity_bytes() / 1024).to_string(),
                format!("{:.2}", stats.ipt()),
                format!("{:.2}", e.average_power_w(time_ns)),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark".into(),
                "objective".into(),
                "clock".into(),
                "ROB".into(),
                "L2 KB".into(),
                "IPT".into(),
                "power (W)".into()
            ],
            &rows
        )
    );
}

/// Ablation: sensitivity of the (held-fixed) branch predictor choice.
fn ablation_predictor() {
    use xps_core::sim::PredictorKind;
    println!("Predictor ablation: mispredict rate and IPT on the initial configuration\n");
    let cfg = CoreConfig::initial();
    let mut rows = Vec::new();
    for name in ["crafty", "gcc", "twolf", "vpr"] {
        let p = spec::profile(name).expect("known benchmark");
        let mut row = vec![name.to_string()];
        for kind in [
            PredictorKind::Bimodal,
            PredictorKind::Gshare,
            PredictorKind::TwoLevelLocal,
            PredictorKind::Tournament,
        ] {
            let s =
                Simulator::with_predictor(&cfg, kind).run(TraceGenerator::new(p.clone()), 120_000);
            row.push(format!(
                "{:.1}%/{:.2}",
                s.mispredict_rate() * 100.0,
                s.ipt()
            ));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark".into(),
                "bimodal".into(),
                "gshare".into(),
                "2lev-local".into(),
                "tournament".into()
            ],
            &rows
        )
    );
    println!("  (cells: mispredict rate / IPT)");
}

/// Ablation: the §2.3 search-regime contrast — a coarse exhaustive
/// lattice versus simulated annealing over the full space, at equal
/// evaluation budgets per point.
fn ablation_search() {
    use std::time::Instant;
    use xps_core::explore::{anneal, grid_search, AnnealOptions, DesignPoint, GridSpec};
    println!("Search ablation: exhaustive coarse grid vs simulated annealing\n");
    let tech = cacti::Technology::default();
    let spec_grid = GridSpec::default();
    println!(
        "  lattice size {} points (coarse); the paper's full space is combinatorially unbounded\n",
        spec_grid.len()
    );
    let mut rows = Vec::new();
    for name in ["gzip", "mcf"] {
        let p = spec::profile(name).expect("known benchmark");
        let mut opts = AnnealOptions::quick();
        opts.iterations = 120;
        opts.eval_ops_early = 20_000;
        opts.eval_ops_late = 40_000;
        // xps-allow(determinism-provenance): ablation wall-time report on stderr; not part of measured output
        let t0 = Instant::now();
        let g = grid_search(&p, &spec_grid, &opts, &tech);
        let t_grid = t0.elapsed().as_secs_f64();
        // xps-allow(determinism-provenance): ablation wall-time report on stderr; not part of measured output
        let t0 = Instant::now();
        let a = anneal(&p, &DesignPoint::initial(), &opts, &tech);
        let t_anneal = t0.elapsed().as_secs_f64();
        rows.push(vec![
            name.to_string(),
            format!("{:.2} ({:.1}s, {} pts)", g.score, t_grid, g.evaluated),
            format!("{:.2} ({:.1}s, {} iters)", a.ipt, t_anneal, opts.iterations),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark".into(),
                "grid best IPT".into(),
                "anneal best IPT".into()
            ],
            &rows
        )
    );
    println!("  annealing explores the continuous space the lattice cannot afford to cover.");
}

/// Ablation: the prefetcher the paper's design space holds at "none".
/// If timely prefetching recovered most of the cache-capacity
/// slowdowns, configurational clustering would matter less; this
/// prints how far it actually gets.
fn ablation_prefetch() {
    use xps_core::sim::{PredictorKind, PrefetchKind};
    println!("Prefetch ablation: IPT on the initial configuration\n");
    let cfg = CoreConfig::initial();
    let mut rows = Vec::new();
    for name in ["gzip", "bzip", "mcf", "twolf"] {
        let p = spec::profile(name).expect("known benchmark");
        let mut row = vec![name.to_string()];
        for kind in [
            PrefetchKind::None,
            PrefetchKind::NextLine,
            PrefetchKind::Stream,
        ] {
            let s = Simulator::with_options(&cfg, PredictorKind::Gshare, kind)
                .run(TraceGenerator::new(p.clone()), 150_000);
            row.push(format!(
                "{:.2} ({:.0}% L1 miss)",
                s.ipt(),
                s.l1.miss_ratio() * 100.0
            ));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark".into(),
                "none".into(),
                "next-line".into(),
                "stream".into()
            ],
            &rows
        )
    );
    println!(
        "  streaming codes (gzip) benefit; pointer chases (mcf) do not — capacity still decides."
    );
}

/// The subsetting dendrogram over the raw characteristics of all
/// eleven workload models.
fn dendrogram_cmd(quick: bool) {
    use xps_core::communal::dendrogram;
    let ops = if quick { 40_000 } else { 120_000 };
    println!("Dendrogram of raw (Kiviat) characteristics, average linkage\n");
    let mut names = Vec::new();
    let mut points = Vec::new();
    for p in spec::all_profiles() {
        let mut c = Characterizer::new();
        for op in TraceGenerator::new(p.clone()).take(ops) {
            c.observe(&op);
        }
        names.push(p.name.clone());
        points.push(c.finish().kiviat().to_vec());
    }
    let d = dendrogram(&points);
    print!("{}", d.render(&names));
    println!("\ncompare with the surrogating graphs (fig6-fig8): the greedy can pair a benchmark\nwith a different partner at every level, which a dendrogram cannot express (§5.4).");
}

/// Heat-map view of the cross-configuration slowdown matrix — the
/// xp-scalar framework's visualization tool, in ASCII.
fn visualize(source: Source, quick: bool) -> Result<(), Box<dyn Error>> {
    let (m, label) = matrix_for(source, quick)?;
    println!("Cross-configuration slowdown heat map [{label}]\n");
    println!(
        "  rows: benchmark; columns: architecture; shade: . <5%  - <15%  + <30%  * <50%  # >=50%\n"
    );
    let shade = |s: f64| -> char {
        if s < 0.05 {
            '.'
        } else if s < 0.15 {
            '-'
        } else if s < 0.30 {
            '+'
        } else if s < 0.50 {
            '*'
        } else {
            '#'
        }
    };
    let width = m.names().iter().map(|n| n.len()).max().unwrap_or(6);
    print!("{:w$}  ", "", w = width);
    for c in m.names() {
        print!("{:>3}", &c[..c.len().min(3)]);
    }
    println!();
    for w in 0..m.len() {
        print!("{:>wd$}  ", m.names()[w], wd = width);
        for c in 0..m.len() {
            print!("  {}", shade(m.slowdown(w, c)));
        }
        println!();
    }
    Ok(())
}

/// `repro profile`: self-profile a two-benchmark exploration through
/// the trace layer — print the per-phase table (counts, simulated ops,
/// logical ticks, wall time), write the deterministic span journal to
/// `results/trace.jsonl`, and write collapsed stacks to
/// `results/trace.folded` for flamegraph tools. The journal carries
/// only logical clocks, so it is byte-identical for every `--jobs N`;
/// `--quick` shrinks the run to smoke scale (the trace structure is
/// identical, only the op counts differ).
fn profile_cmd(quick: bool) -> Result<(), Box<dyn Error>> {
    use xps_core::explore::{write_atomic, EvalCache};
    use xps_core::trace::{with_recorder, TraceSink};
    let opts = run_opts();
    let mut pipeline = Pipeline::quick();
    if quick {
        pipeline.explore.anneal.iterations = 8;
        pipeline.explore.anneal.eval_ops_early = 3_000;
        pipeline.explore.anneal.eval_ops_late = 6_000;
        pipeline.explore.reanneal_iterations = 3;
        pipeline.matrix_ops = 8_000;
    }
    pipeline.explore.jobs = opts.jobs;
    let profiles: Vec<_> = ["gzip", "mcf"]
        .iter()
        .map(|n| spec::profile(n).expect("known benchmark"))
        .collect();
    eprintln!(
        "[profiling a {} exploration of gzip+mcf]",
        if quick { "smoke-scale" } else { "quick" }
    );
    // The CLI edge is the one place wall time may enter the trace: the
    // stamps feed only the table below, never the span journal.
    let trace = TraceSink::with_wall_clock();
    let ctx = RunContext::from_env()?.with_trace(trace.clone());
    let cache = EvalCache::new();
    let (root, outcome) = with_recorder(trace.recorder(), || {
        pipeline.run_recoverable_with(&profiles, &ctx, &cache, None)
    });
    trace.attach("main", root);
    outcome?;
    let profile = trace.profile();
    println!("Self-profile: per-phase logical work and wall time\n");
    print!("{}", profile.render());
    std::fs::create_dir_all("results")?;
    let journal = PathBuf::from("results/trace.jsonl");
    write_atomic(&journal, &trace.to_ndjson())?;
    let folded = PathBuf::from("results/trace.folded");
    write_atomic(&folded, &profile.collapsed())?;
    println!(
        "\n[span journal {} — byte-identical for every --jobs N]",
        journal.display()
    );
    println!(
        "[collapsed stacks {} — render with any flamegraph tool]",
        folded.display()
    );
    Ok(())
}

/// Run the exploration-as-a-service daemon in the foreground until
/// SIGTERM/ctrl-c, serving explore/evaluate/combination/slowdown jobs
/// over HTTP. `--addr` sets the bind address, `--data-dir` the state
/// root, `--jobs` the worker threads per campaign.
fn serve_cmd() -> Result<(), Box<dyn Error>> {
    use xps_serve::{install_signal_handlers, Server, ServerConfig};
    let opts = run_opts();
    let mut config = ServerConfig::new(
        opts.data_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("results/serve")),
    );
    config.addr = opts
        .addr
        .clone()
        .unwrap_or_else(|| "127.0.0.1:7780".to_string());
    config.pipeline_jobs = opts.jobs;
    let server = Server::bind(&config)?;
    let addr = server.local_addr()?;
    install_signal_handlers(server.shutdown_handle());
    println!(
        "xps-serve listening on {addr} (data dir {})",
        config.data_dir.display()
    );
    server.run()?;
    println!("xps-serve drained cleanly");
    Ok(())
}

/// Submit one exploration to a running daemon (`repro serve` or the
/// `xps-serve` binary), stream a few progress events, and print the
/// customized configurations — the end-to-end smoke of the serving
/// path. `--quick` uses the seconds-scale smoke profile.
fn client_cmd(quick: bool) -> Result<(), Box<dyn Error>> {
    use xps_serve::client;
    let opts = run_opts();
    let addr = opts
        .addr
        .clone()
        .unwrap_or_else(|| "127.0.0.1:7780".to_string());
    // Probe reachability first, with bounded retries: a daemon that is
    // down yields one actionable message (address, attempts, backoff,
    // how to start one) instead of a raw I/O error from mid-protocol.
    client::request_retrying(
        &addr,
        "GET",
        "/healthz",
        None,
        &client::RetryPolicy::default(),
    )?;
    let profile = if quick { "smoke" } else { "quick" };
    let job_json =
        format!(r#"{{"kind":"explore","profile":"{profile}","workloads":["gzip","mcf"]}}"#);
    println!("submitting to {addr}: {job_json}");
    let (job, resp) = client::submit(&addr, &job_json)?;
    println!("job {job}: HTTP {} {}", resp.status, resp.body);
    if resp.status == 202 {
        let shown = client::stream_events(&addr, &job, 5, |line| println!("  event: {line}"))?;
        println!("  ({shown} progress events shown)");
    }
    let body = client::wait_for_result(&addr, &job, std::time::Duration::from_secs(1200))?;
    let doc: serde::Value =
        serde_json::from_str(&body).map_err(|e| format!("result is not JSON: {e}"))?;
    if let Ok(serde::Value::Arr(cores)) = doc.member("cores") {
        let mut rows = Vec::new();
        for core in cores {
            let name = core
                .member("profile")
                .and_then(|p| p.member("name"))
                .and_then(|v| v.as_str().map(String::from))
                .unwrap_or_else(|_| "?".to_string());
            let ipt = match core.member("ipt") {
                Ok(serde::Value::F64(x)) => format!("{x:.2}"),
                _ => "?".to_string(),
            };
            rows.push(vec![name, ipt]);
        }
        println!(
            "{}",
            render_table(&["benchmark".into(), "customized IPT".into()], &rows)
        );
    }
    Ok(())
}

/// Scatter one exploration campaign over `--workers` via the fleet
/// coordinator and gather the canonical campaign document — byte-
/// identical to a single-node run for any worker count or failure
/// schedule. With no `--workers`, every task runs coordinator-local
/// (the degenerate single-node fleet). `--net-faults` injects the
/// seeded flaky-transport schedule; `--quick` uses the seconds-scale
/// smoke profile. The document lands in `results/fleet.json`.
fn fleet_cmd(quick: bool) -> Result<(), Box<dyn Error>> {
    use xps_serve::{
        run_campaign_with_fleet, FlakyTransport, Fleet, FleetConfig, NetFaultPlan, TcpTransport,
    };
    let opts = run_opts();
    let mut cfg = FleetConfig::new(opts.workers.clone());
    if let Some(retries) = opts.retries {
        cfg.retries = retries;
    }
    let plan = match opts.net_faults.as_deref() {
        Some(spec) => Some(NetFaultPlan::parse(spec)?),
        None => NetFaultPlan::from_env()?,
    };
    let tcp = TcpTransport {
        connect_timeout: cfg.connect_timeout,
    };
    let fleet = std::sync::Arc::new(match plan {
        Some(plan) if plan.is_active() => {
            eprintln!("[injecting network faults: {plan:?}]");
            Fleet::new(cfg, std::sync::Arc::new(FlakyTransport::new(plan, tcp)))
        }
        _ => Fleet::new(cfg, std::sync::Arc::new(tcp)),
    });
    let profile = if quick { "smoke" } else { "quick" };
    let workloads = vec!["gzip".to_string(), "mcf".to_string()];
    eprintln!(
        "[fleet: {} worker(s), profile {profile}, workloads {}]",
        opts.workers.len(),
        workloads.join("+")
    );
    let report = run_campaign_with_fleet(&workloads, profile, opts.jobs, &fleet)?;
    let stats = &report.stats;
    println!(
        "campaign {}: {} tasks remote, {} local-degraded, {} retries, {} quarantines",
        report.campaign_id, report.remote_tasks, stats.degraded, stats.retried, stats.quarantines
    );
    for w in &stats.workers {
        println!(
            "  worker {} completed {}{}",
            w.addr,
            w.completed,
            if w.quarantined { " (quarantined)" } else { "" }
        );
    }
    std::fs::create_dir_all("results")?;
    let out = PathBuf::from("results/fleet.json");
    xps_core::explore::write_atomic(&out, &report.document)?;
    println!(
        "[campaign document {} — byte-identical to a single-node run]",
        out.display()
    );
    Ok(())
}

/// `repro scale`: generate a synthetic workload population and run
/// the subsetting-at-scale study. `--families/--n/--seed` shape the
/// population; `--quick` shrinks each panel campaign to smoke scale;
/// `--workers` scatters anneals and matrix cells over fleet workers
/// through the same dispatcher seam as `repro fleet`. The canonical
/// report (gap distribution, pitfall rate) is a pure function of the
/// population spec and study options — byte-identical for any
/// `--jobs` value or worker count — and lands at `--out`
/// (default `results/scale.json`); execution statistics go to stderr.
fn scale_cmd(quick: bool) -> Result<(), Box<dyn Error>> {
    use xps_scenario::{run_study, Family, PopulationSpec, StudyOptions};
    use xps_serve::{FlakyTransport, Fleet, FleetConfig, NetFaultPlan, TcpTransport};
    let opts = run_opts();
    let families = match opts.families.as_deref() {
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(Family::parse)
            .collect::<Result<Vec<_>, String>>()?,
        None => Family::ALL.to_vec(),
    };
    let spec = PopulationSpec {
        families,
        n: opts.n.unwrap_or(96),
        seed: opts.seed.unwrap_or(42),
    };
    let mut study = if quick {
        StudyOptions::smoke()
    } else {
        StudyOptions::quick()
    };
    study.pipeline.explore.jobs = opts.jobs;
    let mut ctx = RunContext::from_env()?;
    if let Some(r) = opts.retries {
        ctx = ctx.with_retries(r);
    }
    if let Some(plan) = opts.faults.clone() {
        ctx = ctx.with_faults(plan);
    }
    let fleet = if opts.workers.is_empty() {
        None
    } else {
        let mut cfg = FleetConfig::new(opts.workers.clone());
        if let Some(retries) = opts.retries {
            cfg.retries = retries;
        }
        let plan = match opts.net_faults.as_deref() {
            Some(spec) => Some(NetFaultPlan::parse(spec)?),
            None => NetFaultPlan::from_env()?,
        };
        let tcp = TcpTransport {
            connect_timeout: cfg.connect_timeout,
        };
        let fleet = std::sync::Arc::new(match plan {
            Some(plan) if plan.is_active() => {
                eprintln!("[injecting network faults: {plan:?}]");
                Fleet::new(cfg, std::sync::Arc::new(FlakyTransport::new(plan, tcp)))
            }
            _ => Fleet::new(cfg, std::sync::Arc::new(tcp)),
        });
        ctx = ctx.with_dispatcher(fleet.clone());
        Some(fleet)
    };
    eprintln!(
        "[scale study: n={} seed={} families={} budget={} worker(s)={}]",
        spec.n,
        spec.seed,
        spec.families
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join("+"),
        if quick { "smoke" } else { "quick" },
        if opts.workers.is_empty() {
            "local".to_string()
        } else {
            opts.workers.join(",")
        }
    );
    // xps-allow(determinism-provenance): CLI progress timing printed to stderr; the report never sees it
    let t0 = std::time::Instant::now();
    let report = run_study(&spec, &study, &ctx)?;
    let wall = t0.elapsed().as_secs_f64();
    eprintln!("[{wall:.1}s wall]");
    if let Some(fleet) = fleet {
        let s = fleet.stats();
        eprintln!(
            "[fleet: {} task(s) remote, {} local-degraded, {} retries, {} quarantines]",
            s.dispatched, s.degraded, s.retried, s.quarantines
        );
    }
    print!("{}", report.render_human());
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("results/scale.json"));
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    xps_core::explore::write_atomic(&out, &report.canonical())?;
    println!(
        "\n[study report {} — byte-identical for any --jobs or worker count]",
        out.display()
    );
    Ok(())
}

/// Sanity helper kept for `--quick` smoke runs: simulate one benchmark
/// on one published configuration.
#[allow(dead_code)]
fn smoke() {
    let cfg = paper::table4_config("gzip").expect("gzip in Table 4");
    let p = spec::profile("gzip").expect("gzip profile");
    let stats = Simulator::new(&cfg).run(TraceGenerator::new(p), 10_000);
    eprintln!(
        "smoke: gzip on its published config: {:.2} IPT",
        stats.ipt()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_cli(&owned)
    }

    #[test]
    fn flags_parse_in_both_spellings() {
        let c = parse(&[
            "explore",
            "--quick",
            "--jobs=3",
            "--resume",
            "--retries",
            "5",
            "--journal",
            "j.jsonl",
        ])
        .expect("valid command line");
        assert_eq!(c.cmd, "explore");
        assert!(c.quick && c.resume && !c.paper_data);
        assert_eq!(c.jobs, 3);
        assert_eq!(c.retries, Some(5));
        assert_eq!(c.journal, Some(PathBuf::from("j.jsonl")));
    }

    #[test]
    fn jobs_zero_is_rejected_with_guidance() {
        let e = parse(&["explore", "--jobs", "0"]).expect_err("--jobs 0 must be rejected");
        assert!(e.contains("--jobs"), "unhelpful message: {e}");
        assert!(e.contains("omit"), "message must say how to get auto: {e}");
    }

    #[test]
    fn unknown_flag_is_rejected_not_ignored() {
        let e = parse(&["table4", "--jbos", "4"]).expect_err("typo must be rejected");
        assert!(e.contains("unknown flag `--jbos`"), "message: {e}");
    }

    #[test]
    fn extra_positional_is_rejected() {
        let e = parse(&["table4", "table5"]).expect_err("two experiments");
        assert!(e.contains("table5"), "message: {e}");
    }

    #[test]
    fn missing_experiment_is_rejected() {
        let e = parse(&["--quick"]).expect_err("no experiment");
        assert!(e.contains("missing experiment"), "message: {e}");
    }

    #[test]
    fn malformed_faults_spec_fails_at_parse_time() {
        let e = parse(&["explore", "--faults", "rate=200"]).expect_err("bad rate");
        assert!(e.contains("100"), "message: {e}");
        parse(&[
            "explore",
            "--faults",
            "rate=20,seed=7,attempts=1,kind=panic",
        ])
        .expect("valid spec");
    }

    #[test]
    fn serving_flags_parse_and_validate() {
        let c = parse(&["serve", "--addr", "0.0.0.0:9000", "--data-dir=/tmp/d"])
            .expect("valid serve command line");
        assert_eq!(c.cmd, "serve");
        assert_eq!(c.addr.as_deref(), Some("0.0.0.0:9000"));
        assert_eq!(c.data_dir, Some(PathBuf::from("/tmp/d")));
        let e = parse(&["serve", "--addr", "no-port"]).expect_err("missing port");
        assert!(e.contains("HOST:PORT"), "message: {e}");
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let e = parse(&["table4", "--quick=yes"]).expect_err("boolean with value");
        assert!(e.contains("takes no value"), "message: {e}");
    }

    #[test]
    fn scale_flags_parse_and_validate() {
        let c = parse(&[
            "scale",
            "--families",
            "expected, adversarial",
            "--n",
            "100",
            "--seed=7",
            "--out",
            "r/scale.json",
        ])
        .expect("valid scale command line");
        assert_eq!(c.cmd, "scale");
        assert_eq!(c.families.as_deref(), Some("expected,adversarial"));
        assert_eq!(c.n, Some(100));
        assert_eq!(c.seed, Some(7));
        assert_eq!(c.out, Some(PathBuf::from("r/scale.json")));
        let e = parse(&["scale", "--families", "expectde"]).expect_err("typo family");
        assert!(e.contains("expected"), "message must list families: {e}");
        let e = parse(&["scale", "--n", "3"]).expect_err("n too small");
        assert!(e.contains(">= 4"), "message: {e}");
        let e = parse(&["scale", "--seed", "x"]).expect_err("bad seed");
        assert!(e.contains("--seed"), "message: {e}");
    }

    #[test]
    fn unknown_experiment_lists_every_subcommand() {
        let e = run_dispatch("scal", Source::Measured, true).expect_err("typo experiment");
        let msg = e.to_string();
        for c in EXPERIMENTS {
            assert!(msg.contains(c), "error must list `{c}`: {msg}");
        }
    }

    #[test]
    fn fleet_flags_parse_and_validate() {
        let c = parse(&[
            "fleet",
            "--workers",
            "127.0.0.1:7801, 127.0.0.1:7802",
            "--net-faults=drop=10,seed=3",
        ])
        .expect("valid fleet command line");
        assert_eq!(c.cmd, "fleet");
        assert_eq!(c.workers, vec!["127.0.0.1:7801", "127.0.0.1:7802"]);
        assert_eq!(c.net_faults.as_deref(), Some("drop=10,seed=3"));
        let e = parse(&["fleet", "--workers", "no-port"]).expect_err("missing port");
        assert!(e.contains("HOST:PORT"), "message: {e}");
        let e = parse(&["fleet", "--net-faults", "drop=200"]).expect_err("bad rate");
        assert!(e.contains("100"), "message: {e}");
    }

    #[test]
    fn bakeoff_flags_parse_and_validate() {
        let c = parse(&["bakeoff", "--quick", "--budget", "25", "--seed=7"])
            .expect("valid bakeoff command line");
        assert_eq!(c.cmd, "bakeoff");
        assert!(c.quick);
        assert_eq!(c.budget, Some(25));
        assert_eq!(c.seed, Some(7));
        let e = parse(&["bakeoff", "--budget", "0"]).expect_err("zero budget");
        assert!(e.contains("--budget"), "message: {e}");
        let e = parse(&["bakeoff", "--budget", "many"]).expect_err("non-numeric");
        assert!(e.contains("number"), "message: {e}");
    }

    /// A synthetic bench table: `speedups[i]` becomes one row keyed
    /// `w{i}/initial/1000`.
    fn bench_rows(speedups: &[f64]) -> Vec<BenchRow> {
        speedups
            .iter()
            .enumerate()
            .map(|(i, &s)| BenchRow {
                workload: format!("w{i}"),
                config: "initial".into(),
                ops: 1_000,
                before_ops_per_sec: 1_000.0 * s,
                after_ops_per_sec: 1_000.0,
                speedup: s,
            })
            .collect()
    }

    fn bench_baseline(speedups: &[f64]) -> BenchReport {
        BenchReport {
            issue: 10,
            note: "synthetic".into(),
            rows: bench_rows(speedups),
        }
    }

    #[test]
    fn bench_check_passes_when_rows_hold() {
        let baseline = bench_baseline(&[3.0, 3.0, 3.0]);
        let fresh = bench_rows(&[2.9, 3.1, 3.0]);
        let summary = check_bench(&fresh, &baseline).expect("within both tolerances");
        assert!(summary.contains("3 row(s)"), "summary: {summary}");
    }

    #[test]
    fn bench_check_fails_on_geomean_regression() {
        let baseline = bench_baseline(&[3.0, 3.0, 3.0]);
        let fresh = bench_rows(&[2.5, 2.5, 2.5]);
        let e = check_bench(&fresh, &baseline).expect_err("geomean down 17%");
        assert!(e.contains("geomean"), "message: {e}");
    }

    #[test]
    fn bench_check_fails_when_one_row_hides_behind_the_mean() {
        // One kernel loses 40% while the others gain enough to keep
        // the geomean flat: exactly the case the old geomean-only gate
        // waved through.
        let baseline = bench_baseline(&[3.0, 3.0, 3.0]);
        let fresh = bench_rows(&[1.8, 3.7, 3.7]);
        let geo: f64 = (1.8f64 * 3.7 * 3.7).powf(1.0 / 3.0);
        assert!(geo > 3.0 * 0.9, "fixture must keep the geomean healthy");
        let e = check_bench(&fresh, &baseline).expect_err("row w0 regressed 40%");
        assert!(e.contains("w0"), "message must name the row: {e}");
        assert!(e.contains("per-row"), "message: {e}");
    }

    #[test]
    fn bench_check_rejects_an_empty_match() {
        let baseline = bench_baseline(&[3.0]);
        let mut fresh = bench_rows(&[3.0]);
        fresh[0].ops = 999; // budget mismatch: no baseline row matches
        let e = check_bench(&fresh, &baseline).expect_err("no matched rows");
        assert!(e.contains("matched no rows"), "message: {e}");
    }
}
