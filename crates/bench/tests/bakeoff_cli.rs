//! End-to-end tests of `repro bakeoff`: the canonical report is a
//! golden-master snapshot (blessed with `XPS_BLESS=1`), and a
//! SIGKILL'd bake-off resumes from its journal to the exact bytes an
//! uninterrupted run produces. Both run the real binary — the same
//! code path CI's `bakeoff-smoke` job exercises.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xps-bakeoff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Run a smoke bake-off to `out`, asserting success.
fn run_bakeoff(out: &Path, journal: &Path, extra: &[&str]) {
    let status = repro()
        .args(["bakeoff", "--quick", "--jobs", "2"])
        .args(["--out", out.to_str().expect("utf8")])
        .args(["--journal", journal.to_str().expect("utf8")])
        .args(extra)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "repro bakeoff failed");
}

/// The committed snapshot of a smoke bake-off. A diff here means an
/// intentional change to an explorer, the energy proxy, or the report
/// shape — bless it with `XPS_BLESS=1 cargo test -p xps-bench` and
/// commit the new golden together with the change that moved it.
#[test]
fn smoke_report_matches_the_golden_master() {
    let golden =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/bakeoff_smoke.json");
    let dir = tmp_dir("golden");
    let out = dir.join("bakeoff.json");
    run_bakeoff(&out, &dir.join("journal.jsonl"), &[]);
    let fresh = std::fs::read_to_string(&out).expect("report written");
    if std::env::var_os("XPS_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(golden.parent().expect("has parent")).expect("mkdir golden");
        std::fs::write(&golden, &fresh).expect("bless golden");
        return;
    }
    let committed = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); bless it with XPS_BLESS=1",
            golden.display()
        )
    });
    assert_eq!(
        fresh, committed,
        "bake-off bytes drifted from the golden master; if intentional, \
         re-bless with XPS_BLESS=1 and commit the diff"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// SIGKILL a bake-off mid-run, then `--resume` it: the journal
/// replays the finished searches and the final report is byte-equal
/// to an uninterrupted oracle run.
#[test]
fn killed_bakeoff_resumes_to_identical_bytes() {
    let dir = tmp_dir("resume");
    // Oracle: one uninterrupted run.
    let oracle = dir.join("oracle.json");
    run_bakeoff(&oracle, &dir.join("oracle-journal.jsonl"), &[]);
    let oracle_bytes = std::fs::read(&oracle).expect("oracle written");

    // Victim: same flags, killed as soon as the journal shows
    // progress (so some tasks are salvaged, some are missing). If the
    // host is fast enough that the run finishes first, the resume
    // degenerates to a full-journal replay — still a valid check.
    let out = dir.join("resumed.json");
    let journal = dir.join("journal.jsonl");
    let mut child = repro()
        .args(["bakeoff", "--quick", "--jobs", "2"])
        .args(["--out", out.to_str().expect("utf8")])
        .args(["--journal", journal.to_str().expect("utf8")])
        .spawn()
        .expect("spawn victim");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let journaled = std::fs::read_to_string(&journal)
            .map(|s| s.lines().count())
            .unwrap_or(0);
        let running = child.try_wait().expect("try_wait").is_none();
        if journaled >= 2 || !running {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "victim made no journal progress in 30s"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let _ = child.kill(); // SIGKILL on unix; no-op if already done
    let _ = child.wait();

    let resumed = repro()
        .args(["bakeoff", "--quick", "--jobs", "2", "--resume"])
        .args(["--out", out.to_str().expect("utf8")])
        .args(["--journal", journal.to_str().expect("utf8")])
        .output()
        .expect("spawn resume");
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("resuming from"),
        "resume must announce the replay: {stderr}"
    );
    let resumed_bytes = std::fs::read(&out).expect("resumed report written");
    assert_eq!(
        resumed_bytes, oracle_bytes,
        "a resumed bake-off must be byte-identical to an uninterrupted one"
    );
    let _ = std::fs::remove_dir_all(dir);
}
