//! The `repro` harness's support code must behave: result persistence
//! round-trips through JSON, and the renderers accept the real data
//! shapes.

use xps_bench::{load_measured, render_kiviat, render_table, save_measured, Measured};
use xps_core::paper;
use xps_core::workload::KIVIAT_AXES;

#[test]
fn measured_persistence_roundtrip_with_paper_matrix() {
    let dir = std::env::temp_dir().join(format!("xps-harness-{}", std::process::id()));
    let path = dir.join("measured.json");
    let m = Measured {
        cores: vec![],
        matrix: paper::table5_matrix(),
        quick: false,
    };
    save_measured(&m, &path).expect("save succeeds");
    let back = load_measured(&path).expect("load succeeds");
    assert_eq!(back.matrix.names(), m.matrix.names());
    for w in 0..m.matrix.len() {
        for c in 0..m.matrix.len() {
            assert_eq!(back.matrix.ipt(w, c), m.matrix.ipt(w, c));
        }
    }
    std::fs::remove_dir_all(dir).expect("cleanup");
}

#[test]
fn load_missing_file_is_an_error() {
    let err = load_measured(std::path::Path::new("/nonexistent/xps.json"))
        .expect_err("missing file must error");
    assert!(err.is_not_found(), "unexpected error: {err}");
}

#[test]
fn table_renderer_handles_full_matrix() {
    let m = paper::table5_matrix();
    let header: Vec<String> = std::iter::once(String::new())
        .chain(m.names().iter().cloned())
        .collect();
    let rows: Vec<Vec<String>> = (0..m.len())
        .map(|w| {
            std::iter::once(m.names()[w].clone())
                .chain((0..m.len()).map(|c| format!("{:.2}", m.ipt(w, c))))
                .collect()
        })
        .collect();
    let rendered = render_table(&header, &rows);
    assert_eq!(rendered.lines().count(), 2 + 11);
    assert!(rendered.contains("3.15"), "bzip diagonal present");
    assert!(rendered.contains("mcf"));
}

#[test]
fn kiviat_renderer_covers_all_axes() {
    let s = render_kiviat(&KIVIAT_AXES, &[1.0, 3.0, 5.0, 7.0, 9.0]);
    for axis in KIVIAT_AXES {
        assert!(s.contains(axis), "{axis} missing");
    }
}
