//! Regression test for the parallel exploration engine: a reduced-
//! budget pipeline over the full 11-benchmark set must produce
//! byte-identical Table 4 (customized cores) and Table 5 (cross-
//! configuration matrix) output whether it runs on one worker or four.

use xps_core::pipeline::Pipeline;
use xps_core::workload::spec;

/// A pipeline small enough to run twice in a test, but still exercising
/// multi-start annealing, cross seeding, and replacement passes.
fn reduced(jobs: usize) -> Pipeline {
    let mut p = Pipeline::quick();
    p.explore.anneal.iterations = 12;
    p.explore.anneal.eval_ops_early = 4000;
    p.explore.anneal.eval_ops_late = 8000;
    p.explore.reanneal_iterations = 4;
    p.explore.jobs = jobs;
    p.matrix_ops = 8000;
    p
}

#[test]
fn jobs_1_and_jobs_4_produce_identical_tables() {
    let profiles = spec::all_profiles();
    let serial = reduced(1).run(&profiles);
    let parallel = reduced(4).run(&profiles);

    // Table 4: the customized cores, serialized field-for-field.
    let t4_serial = serde_json::to_string_pretty(&serial.cores).expect("serialize");
    let t4_parallel = serde_json::to_string_pretty(&parallel.cores).expect("serialize");
    assert_eq!(t4_serial, t4_parallel, "Table 4 must be byte-identical");

    // Table 5: the cross-configuration matrix.
    let t5_serial = serde_json::to_string_pretty(&serial.matrix).expect("serialize");
    let t5_parallel = serde_json::to_string_pretty(&parallel.matrix).expect("serialize");
    assert_eq!(t5_serial, t5_parallel, "Table 5 must be byte-identical");

    // The run-shape counters are the only things allowed to differ.
    assert_eq!(serial.stats.workers, 1);
    assert_eq!(parallel.stats.workers, 4);
    assert_eq!(
        serial.stats.per_worker_tasks.iter().sum::<u64>(),
        parallel.stats.per_worker_tasks.iter().sum::<u64>(),
        "same total work either way"
    );
    // The shared cache must actually short-circuit work: replacement
    // passes re-measure rows/columns that mostly did not change.
    assert!(parallel.stats.cache.hits > 0, "cache must see hits");
    assert!(parallel.stats.cache.misses > 0, "cache must also simulate");
}
