//! Print the calibration table of the timing model: the delays of
//! representative structures, for eyeballing against the physical
//! anchors in `tests/calibration.rs` whenever the technology constants
//! change.
//!
//! ```text
//! cargo run -p xps-cacti --example calib
//! ```

use xps_cacti::{cache_access_time, units, CacheGeometry, Technology};

fn main() {
    let t = Technology::default();
    println!("caches (access time):");
    for (lbl, sets, assoc, blk) in [
        ("8KB dm/32B", 256u32, 1u32, 32u32),
        ("8KB 2w/32B", 128, 2, 32),
        ("32KB 2w/64B", 256, 2, 64),
        ("64KB 2w/32B", 1024, 2, 32),
        ("128KB dm/8B", 16384, 1, 8),
        ("256KB 2w/128B", 1024, 2, 128),
        ("512KB 4w/64B", 2048, 4, 64),
        ("2MB 4w/64B", 8192, 4, 64),
        ("4MB 4w/128B", 8192, 4, 128),
    ] {
        println!(
            "  {lbl:14} {:.3} ns",
            cache_access_time(&t, &CacheGeometry::new(sets, assoc, blk))
        );
    }
    println!("issue queues (wakeup + select):");
    for (n, w) in [(16u32, 3u32), (32, 4), (32, 8), (64, 3), (64, 5)] {
        println!("  IQ{n} w{w}: {:.3} ns", units::issue_queue_delay(&t, n, w));
    }
    println!("register files:");
    for (n, w) in [(64u32, 8u32), (128, 3), (256, 4), (512, 5), (1024, 3)] {
        println!(
            "  ROB{n} w{w}: {:.3} ns",
            units::regfile_access_time(&t, n, w)
        );
    }
    println!("load-store queues:");
    for n in [64u32, 128, 256] {
        println!("  LSQ{n}: {:.3} ns", units::lsq_delay(&t, n));
    }
}
