//! # xps-cacti — analytical SRAM/CAM access-time model
//!
//! A pure-Rust analytical timing model for the storage structures of a
//! superscalar processor, in the spirit of CACTI (Wilton & Jouppi,
//! *CACTI: an enhanced cache access and cycle time model*, IEEE JSSC
//! 1996). The original paper, *Configurational Workload
//! Characterization* (ISPASS 2008), uses the CACTI C tool to estimate
//! the access latency of every sized unit of the processor during design
//! exploration; this crate plays that role for the Rust reproduction.
//!
//! The model decomposes an access into the classic CACTI stages —
//! address decode, wordline drive, bitline discharge, sense
//! amplification, tag comparison, way select, and output drive — and
//! searches over sub-array partitionings to find the fastest
//! organization, so delay grows roughly with the square root of capacity
//! rather than linearly. Multi-ported arrays pay a wire-load penalty per
//! extra port. Constants are calibrated (see `tests/calibration`) so the
//! delays fall in the ranges implied by the paper's Table 4 (e.g. an
//! 8 KB L1 reachable in 2 cycles at a 0.3 ns clock, a 4 MB L2 needing
//! ~27 cycles at 0.45 ns).
//!
//! The mapping from architectural units to model queries follows the
//! paper's Table 1 exactly; see [`units`].
//!
//! ## Example
//!
//! ```
//! use xps_cacti::{Technology, units};
//!
//! let tech = Technology::default();
//! // Access time of a 32 KB, 2-way, 64 B-block L1 data cache.
//! let t_l1 = units::l1_access_time(&tech, 256, 2, 64);
//! // Wakeup-select delay of a 64-entry issue queue at issue width 4.
//! let t_iq = units::issue_queue_delay(&tech, 64, 4);
//! assert!(t_l1 > 0.0 && t_iq > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;

mod cache;
mod cam;
mod sram;
mod tech;

pub mod fit;
pub mod units;

pub use cache::{cache_access_time, CacheGeometry};
pub use cam::CamArray;
pub use sram::SramArray;
pub use tech::Technology;
