//! Per-access dynamic energy estimates for the modeled structures.
//!
//! The paper excludes power from its optimization objective but notes
//! that "extending the tool to conduct exploration based on a metric
//! that represents some combination of performance, power and die area
//! should not be exceptionally difficult". This module is that
//! extension's physical layer: CACTI-style per-access energies with the
//! same scaling structure as the delay model (wordline/bitline energy
//! grows with the accessed sub-array, routing energy with the whole
//! structure, port loading multiplies both), plus a leakage-power
//! estimate proportional to capacity.
//!
//! Absolute values are calibrated to the right order of magnitude for
//! the paper's era (tens of pJ for an L1 access, nanojoules for a
//! multi-megabyte L2); relative scaling is what the energy-aware
//! exploration objective consumes.

use crate::{CacheGeometry, CamArray, SramArray, Technology};

/// Fixed per-access energy of any array (decoder, sense amps), pJ.
const E_BASE_PJ: f64 = 2.0;
/// Energy per accessed bit (wordline/bitline swing), pJ.
const E_PER_ACCESSED_BIT_PJ: f64 = 0.05;
/// Routing energy per sqrt(total bits), pJ — the H-tree swing.
const E_ROUTE_PJ: f64 = 0.004;
/// CAM search energy per (entry × tag-bit), pJ — every match line
/// swings on every search.
const E_CAM_PJ: f64 = 0.0025;
/// Leakage power per megabit of storage, mW.
const LEAK_MW_PER_MBIT: f64 = 1.5;

/// Dynamic energy of one read access to an SRAM array, picojoules.
pub fn sram_access_energy(tech: &Technology, array: &SramArray) -> f64 {
    let pf = array.port_load(tech);
    let accessed_bits = f64::from(array.cols_bits);
    let route = E_ROUTE_PJ * (array.total_bits() as f64).sqrt();
    (E_BASE_PJ + E_PER_ACCESSED_BIT_PJ * accessed_bits + route) * pf
}

/// Dynamic energy of one search of a CAM, picojoules. Every entry's
/// match line participates, which is why large issue queues and LSQs
/// are power-hungry out of proportion to their capacity.
pub fn cam_search_energy(tech: &Technology, cam: &CamArray) -> f64 {
    let pf = 1.0 + tech.port_factor * cam.search_ports.saturating_sub(1) as f64;
    (E_BASE_PJ + E_CAM_PJ * f64::from(cam.entries) * f64::from(cam.tag_bits)) * pf
}

/// Dynamic energy of one cache access (data + tag arrays), picojoules.
pub fn cache_access_energy(tech: &Technology, geom: &CacheGeometry) -> f64 {
    let data = SramArray::new(geom.sets, geom.assoc * geom.block_bytes * 8, 2, 2);
    let tag = SramArray::new(geom.sets, geom.assoc * 30, 2, 2);
    sram_access_energy(tech, &data) + sram_access_energy(tech, &tag)
}

/// Leakage power of `bits` of storage, milliwatts.
pub fn leakage_mw(bits: u64) -> f64 {
    LEAK_MW_PER_MBIT * bits as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Technology {
        Technology::default()
    }

    #[test]
    fn bigger_caches_cost_more_energy() {
        let small = cache_access_energy(&t(), &CacheGeometry::new(128, 2, 32));
        let big = cache_access_energy(&t(), &CacheGeometry::new(8192, 8, 128));
        assert!(big > 2.0 * small, "{big} vs {small}");
    }

    #[test]
    fn cam_energy_linear_in_entries() {
        let e32 = cam_search_energy(&t(), &CamArray::new(32, 64, 4));
        let e64 = cam_search_energy(&t(), &CamArray::new(64, 64, 4));
        let e128 = cam_search_energy(&t(), &CamArray::new(128, 64, 4));
        assert!(((e128 - e64) - 2.0 * (e64 - e32)).abs() < 1e-9);
    }

    #[test]
    fn ports_multiply_energy() {
        let few = sram_access_energy(&t(), &SramArray::new(256, 64, 2, 1));
        let many = sram_access_energy(&t(), &SramArray::new(256, 64, 8, 4));
        assert!(many > few);
    }

    #[test]
    fn magnitudes_sane() {
        // 32 KB L1: tens of pJ. 4 MB L2: high hundreds to thousands.
        let l1 = cache_access_energy(&t(), &CacheGeometry::new(256, 2, 64));
        assert!((10.0..200.0).contains(&l1), "L1 access {l1} pJ");
        let l2 = cache_access_energy(&t(), &CacheGeometry::new(8192, 4, 128));
        assert!(l2 > 200.0, "L2 access {l2} pJ");
        // 4 MB of storage leaks tens of mW.
        let leak = leakage_mw(4 * 1024 * 1024 * 8);
        assert!((10.0..100.0).contains(&leak), "leakage {leak} mW");
    }
}
