//! Direct-mapped / RAM-array delay model with sub-array partitioning.

use crate::Technology;
use serde::{Deserialize, Serialize};

/// Candidate numbers of bitline (row) splits considered by the
/// partitioning search, mirroring CACTI's `Ndbl` parameter.
const NDBL_CANDIDATES: [u32; 6] = [1, 2, 4, 8, 16, 32];
/// Candidate numbers of wordline (column) splits, mirroring `Ndwl`.
const NDWL_CANDIDATES: [u32; 5] = [1, 2, 4, 8, 16];

/// An SRAM array: `rows` words of `cols_bits` bits each, with the given
/// port counts.
///
/// The access-time query searches over sub-array partitionings (row and
/// column splits) exactly as CACTI does, so that large arrays are
/// automatically banked and delay grows sub-linearly with capacity.
///
/// # Example
///
/// ```
/// use xps_cacti::{SramArray, Technology};
///
/// let tech = Technology::default();
/// let small = SramArray::new(128, 64, 2, 1).access_time(&tech);
/// let large = SramArray::new(4096, 64, 2, 1).access_time(&tech);
/// assert!(large > small);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SramArray {
    /// Number of addressable rows (words).
    pub rows: u32,
    /// Width of each row in bits.
    pub cols_bits: u32,
    /// Number of read ports.
    pub read_ports: u32,
    /// Number of write ports.
    pub write_ports: u32,
}

impl SramArray {
    /// Create an array description.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols_bits` is zero, or if there are no ports
    /// at all.
    pub fn new(rows: u32, cols_bits: u32, read_ports: u32, write_ports: u32) -> SramArray {
        assert!(rows > 0, "SRAM array must have at least one row");
        assert!(cols_bits > 0, "SRAM array must have a positive row width");
        assert!(
            read_ports + write_ports > 0,
            "SRAM array must have at least one port"
        );
        SramArray {
            rows,
            cols_bits,
            read_ports,
            write_ports,
        }
    }

    /// Total storage capacity in bits.
    pub fn total_bits(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols_bits)
    }

    /// Multiplicative wire-load factor from the port count.
    ///
    /// Each port adds a pass transistor and wire track to every cell, so
    /// wordline and bitline loads grow with ports. Two ports (one
    /// read, one write) are the baseline.
    pub fn port_load(&self, tech: &Technology) -> f64 {
        let ports = self.read_ports + self.write_ports;
        let extra = ports.saturating_sub(2) as f64;
        1.0 + tech.port_factor * extra
    }

    /// Access time of the array in nanoseconds: the fastest
    /// organization over the candidate sub-array partitionings.
    ///
    /// The delay of one organization is
    /// `decode + wordline + bitline + sense + route`, where decode
    /// scales with address bits, wordline with sub-array row width,
    /// bitline with sub-array depth, and routing with the H-tree span of
    /// the whole structure (square root of total bits).
    pub fn access_time(&self, tech: &Technology) -> f64 {
        let pf = self.port_load(tech);
        let addr_bits = f64::from(32 - self.rows.leading_zeros().min(31));
        let loaded_bits = self.total_bits() as f64 * pf;
        let route = tech.route_per_sqrt_bit * loaded_bits.sqrt() + tech.route_per_bit * loaded_bits;
        let mut best = f64::INFINITY;
        for &ndbl in &NDBL_CANDIDATES {
            if ndbl > self.rows {
                continue;
            }
            for &ndwl in &NDWL_CANDIDATES {
                if ndwl > self.cols_bits {
                    continue;
                }
                let sub_rows = (self.rows as f64 / f64::from(ndbl)).ceil();
                let sub_cols = (self.cols_bits as f64 / f64::from(ndwl)).ceil();
                // Every split doubles the number of sub-arrays the
                // decoder/routing must fan out to.
                let nsub = f64::from(ndbl * ndwl);
                let decode = tech.decoder_base
                    + tech.decoder_per_bit * addr_bits
                    + tech.decoder_per_bit * nsub.log2();
                let wordline = tech.wordline_base + tech.wordline_per_col * sub_cols * pf;
                let bitline = tech.bitline_base + tech.bitline_per_row * sub_rows * pf;
                let t = decode + wordline + bitline + tech.senseamp + route;
                if t < best {
                    best = t;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Technology {
        Technology::default()
    }

    #[test]
    fn monotonic_in_rows() {
        let mut prev = 0.0;
        for rows in [16u32, 64, 256, 1024, 4096, 16384] {
            let d = SramArray::new(rows, 64, 2, 1).access_time(&t());
            assert!(
                d > prev,
                "delay must grow with rows ({rows}: {d} vs {prev})"
            );
            prev = d;
        }
    }

    #[test]
    fn monotonic_in_ports() {
        let base = SramArray::new(256, 64, 2, 1).access_time(&t());
        let many = SramArray::new(256, 64, 8, 4).access_time(&t());
        assert!(many > base);
    }

    #[test]
    fn sublinear_scaling_via_partitioning() {
        // Quadrupling capacity should far less than quadruple delay.
        let small = SramArray::new(1024, 256, 2, 2).access_time(&t());
        let large = SramArray::new(4096, 256, 2, 2).access_time(&t());
        assert!(
            large < small * 3.0,
            "partitioning should keep scaling sublinear"
        );
        assert!(large > small);
    }

    #[test]
    fn port_load_baseline_is_one() {
        let a = SramArray::new(64, 64, 1, 1);
        assert!((a.port_load(&t()) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_rejected() {
        SramArray::new(0, 64, 1, 1);
    }

    #[test]
    fn total_bits() {
        assert_eq!(SramArray::new(128, 64, 2, 1).total_bits(), 8192);
    }
}
