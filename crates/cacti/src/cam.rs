//! Content-addressable (fully-associative) array delay model.

use crate::Technology;
use serde::{Deserialize, Serialize};

/// A content-addressable memory: `entries` tags of `tag_bits` bits, each
/// searched associatively by `search_ports` simultaneous lookups.
///
/// Used for the issue-queue wakeup logic and the load-store queue, per
/// the paper's Table 1 ("fully associative" rows). The match delay is
/// the tag broadcast across the entries plus the match-line resolution;
/// unlike a RAM, it scales linearly with the number of entries on the
/// match line, which is what makes large issue queues expensive at high
/// clock rates.
///
/// # Example
///
/// ```
/// use xps_cacti::{CamArray, Technology};
///
/// let tech = Technology::default();
/// let iq32 = CamArray::new(64, 64, 4).match_time(&tech);
/// let iq128 = CamArray::new(256, 64, 4).match_time(&tech);
/// assert!(iq128 > iq32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CamArray {
    /// Number of associatively-searched entries.
    pub entries: u32,
    /// Width of the compared tag, in bits.
    pub tag_bits: u32,
    /// Number of simultaneous search (broadcast) ports.
    pub search_ports: u32,
}

impl CamArray {
    /// Create a CAM description.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `tag_bits` is zero.
    pub fn new(entries: u32, tag_bits: u32, search_ports: u32) -> CamArray {
        assert!(entries > 0, "CAM must have at least one entry");
        assert!(tag_bits > 0, "CAM tag width must be positive");
        CamArray {
            entries,
            tag_bits,
            search_ports,
        }
    }

    /// Tag-match (broadcast + match-line + sense) time in nanoseconds.
    pub fn match_time(&self, tech: &Technology) -> f64 {
        let pf = 1.0 + tech.port_factor * self.search_ports.saturating_sub(1) as f64;
        let broadcast = tech.cam_per_bit * f64::from(self.tag_bits);
        let match_line = tech.cam_per_entry * f64::from(self.entries) * pf;
        tech.cam_base + broadcast + match_line + tech.senseamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_in_entries() {
        let tech = Technology::default();
        let d32 = CamArray::new(32, 64, 1).match_time(&tech);
        let d64 = CamArray::new(64, 64, 1).match_time(&tech);
        let d128 = CamArray::new(128, 64, 1).match_time(&tech);
        let step1 = d64 - d32;
        let step2 = d128 - d64;
        assert!(
            (step2 - 2.0 * step1).abs() < 1e-9,
            "match line is linear in entries"
        );
    }

    #[test]
    fn ports_increase_delay() {
        let tech = Technology::default();
        assert!(
            CamArray::new(64, 64, 8).match_time(&tech) > CamArray::new(64, 64, 1).match_time(&tech)
        );
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        CamArray::new(0, 64, 1);
    }
}
