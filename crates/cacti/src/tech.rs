//! Technology constants for the analytical delay model.

use serde::{Deserialize, Serialize};

/// Process-technology constants used by every delay query.
///
/// All delays are in nanoseconds. The defaults model a mid-2000s
/// high-performance process (the paper's evaluation era) and are
/// calibrated so that unit delays land in the ranges implied by the
/// paper's Table 4. The struct is plain data so alternative technology
/// points (e.g. a slower embedded process) can be expressed by
/// constructing a different instance; `scaled` derives one by uniform
/// delay scaling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Fixed cost of the row decoder (predecode + drive), ns.
    pub decoder_base: f64,
    /// Incremental decoder cost per address bit, ns.
    pub decoder_per_bit: f64,
    /// Fixed wordline drive cost, ns.
    pub wordline_base: f64,
    /// Wordline wire/gate-load cost per column (bit of row width), ns.
    pub wordline_per_col: f64,
    /// Fixed bitline cost, ns.
    pub bitline_base: f64,
    /// Bitline discharge cost per row sharing the bitline, ns.
    pub bitline_per_row: f64,
    /// Sense-amplifier resolution time, ns.
    pub senseamp: f64,
    /// Fixed tag-comparator cost, ns.
    pub comparator_base: f64,
    /// Comparator cost per compared tag bit, ns.
    pub comparator_per_bit: f64,
    /// Way-select multiplexer driver cost per doubling of associativity, ns.
    pub mux_per_way_log2: f64,
    /// Output-driver cost, ns.
    pub output_driver: f64,
    /// Global routing cost per unit sqrt(total bits), ns. Models the
    /// H-tree from the array edge to the requesting port.
    pub route_per_sqrt_bit: f64,
    /// Additional routing cost per bit, ns. Negligible for
    /// kilobyte-scale structures but dominant for multi-megabyte
    /// arrays, where global wires stop scaling — this is what makes a
    /// 4 MB L2 an order of magnitude slower than an L1 and forces the
    /// explorer to *choose* between cache capacity and cycle time.
    pub route_per_bit: f64,
    /// Fixed CAM match-line cost, ns.
    pub cam_base: f64,
    /// CAM match-line cost per entry on the line, ns.
    pub cam_per_entry: f64,
    /// CAM tag-broadcast cost per tag bit, ns.
    pub cam_per_bit: f64,
    /// Wire-load penalty factor per port beyond the second
    /// (multiplicative on wordline/bitline terms).
    pub port_factor: f64,
    /// Pipeline latch overhead per stage, ns (paper Table 2: 0.03 ns).
    pub latch: f64,
}

impl Technology {
    /// Latch overhead charged per pipeline stage, in ns.
    ///
    /// The paper (Table 2) fixes this at 0.03 ns; it is subtracted from
    /// each stage's share of the clock period when fitting structures.
    pub fn latch_ns(&self) -> f64 {
        self.latch
    }

    /// Return a copy of this technology with all delays multiplied by
    /// `factor` (> 0). Useful for what-if studies of slower or faster
    /// process points; the paper argues such physical properties shift
    /// the customized configurations.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scaled(&self, factor: f64) -> Technology {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be finite and positive"
        );
        Technology {
            decoder_base: self.decoder_base * factor,
            decoder_per_bit: self.decoder_per_bit * factor,
            wordline_base: self.wordline_base * factor,
            wordline_per_col: self.wordline_per_col * factor,
            bitline_base: self.bitline_base * factor,
            bitline_per_row: self.bitline_per_row * factor,
            senseamp: self.senseamp * factor,
            comparator_base: self.comparator_base * factor,
            comparator_per_bit: self.comparator_per_bit * factor,
            mux_per_way_log2: self.mux_per_way_log2 * factor,
            output_driver: self.output_driver * factor,
            route_per_sqrt_bit: self.route_per_sqrt_bit * factor,
            route_per_bit: self.route_per_bit * factor,
            cam_base: self.cam_base * factor,
            cam_per_entry: self.cam_per_entry * factor,
            cam_per_bit: self.cam_per_bit * factor,
            port_factor: self.port_factor,
            latch: self.latch * factor,
        }
    }
}

impl Default for Technology {
    fn default() -> Technology {
        Technology {
            decoder_base: 0.042,
            decoder_per_bit: 0.008,
            wordline_base: 0.018,
            wordline_per_col: 0.00014,
            bitline_base: 0.022,
            bitline_per_row: 0.00080,
            senseamp: 0.036,
            comparator_base: 0.040,
            comparator_per_bit: 0.0010,
            mux_per_way_log2: 0.020,
            output_driver: 0.050,
            route_per_sqrt_bit: 0.00026,
            route_per_bit: 9.0e-8,
            cam_base: 0.016,
            cam_per_entry: 0.0006,
            cam_per_bit: 0.0004,
            port_factor: 0.14,
            latch: 0.03,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_positive() {
        let t = Technology::default();
        assert!(t.decoder_base > 0.0);
        assert!(t.latch_ns() > 0.0);
    }

    #[test]
    fn scaled_scales_delays_not_port_factor() {
        let t = Technology::default();
        let s = t.scaled(2.0);
        assert!((s.decoder_base - 2.0 * t.decoder_base).abs() < 1e-12);
        assert!((s.cam_per_entry - 2.0 * t.cam_per_entry).abs() < 1e-12);
        assert!((s.port_factor - t.port_factor).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_nonpositive() {
        Technology::default().scaled(0.0);
    }
}
