//! Per-unit delay queries, one per row of the paper's Table 1.
//!
//! The paper maps each architectural unit onto a CACTI query:
//!
//! | Unit | Organization | Output used |
//! |---|---|---|
//! | L1 data cache | sets × assoc × line, 2R/2W | access time |
//! | L2 data cache | sets × assoc × line, 2R/2W | access time |
//! | wakeup–select | CAM of 2×IQ entries, 8-byte tags, issue-width search ports; plus direct-mapped select array of IQ entries | tag comparison + datapath w/o output driver |
//! | register file (ROB) | direct-mapped, 8-byte words, ROB entries, 2w read / w write ports | access time |
//! | LSQ | fully associative, 8-byte entries, 2R/2W | datapath w/o output driver |
//!
//! Every function returns nanoseconds.

use crate::{cache_access_time, CacheGeometry, CamArray, SramArray, Technology};

/// Bit width of an issue-queue entry (paper Table 2: 64 bits, the
/// CACTI lower bound of 8 bytes).
pub const IQ_ENTRY_BITS: u32 = 64;

/// Access time of an L1 data cache with the given geometry
/// (`sets` × `assoc` × `block_bytes`), 2 read / 2 write ports.
pub fn l1_access_time(tech: &Technology, sets: u32, assoc: u32, block_bytes: u32) -> f64 {
    cache_access_time(tech, &CacheGeometry::new(sets, assoc, block_bytes))
}

/// Access time of an L2 data cache with the given geometry, 2R/2W.
///
/// Structurally identical to [`l1_access_time`]; kept separate so the
/// call sites read like the paper's Table 1.
pub fn l2_access_time(tech: &Technology, sets: u32, assoc: u32, block_bytes: u32) -> f64 {
    cache_access_time(tech, &CacheGeometry::new(sets, assoc, block_bytes))
}

/// Wakeup–select delay of an issue queue of `iq_size` entries at the
/// given issue width.
///
/// Wakeup is a fully-associative tag comparison across `2 × iq_size`
/// source tags (two sources per entry) broadcast on `issue_width`
/// result ports; select is a direct-mapped pass over the `iq_size`
/// entries (request/grant datapath without output driver). The two are
/// serial within a scheduling loop, as in the paper's Figure 2
/// discussion.
pub fn issue_queue_delay(tech: &Technology, iq_size: u32, issue_width: u32) -> f64 {
    let wakeup = CamArray::new(2 * iq_size, IQ_ENTRY_BITS, issue_width).match_time(tech);
    let select = SramArray::new(iq_size, IQ_ENTRY_BITS, issue_width, 0).access_time(tech);
    wakeup + select
}

/// Access time of the register file / ROB: a direct-mapped array of
/// `rob_size` 8-byte entries with `2 × issue_width` read ports and
/// `issue_width` write ports.
pub fn regfile_access_time(tech: &Technology, rob_size: u32, issue_width: u32) -> f64 {
    SramArray::new(rob_size, 64, 2 * issue_width, issue_width).access_time(tech)
}

/// Search delay of the load-store queue: a fully-associative array of
/// `lsq_size` 8-byte entries with 2 search ports (datapath without
/// output driver).
pub fn lsq_delay(tech: &Technology, lsq_size: u32) -> f64 {
    CamArray::new(lsq_size, 64, 2).match_time(tech)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Technology {
        Technology::default()
    }

    #[test]
    fn issue_queue_scales_with_size_and_width() {
        let d32 = issue_queue_delay(&t(), 32, 4);
        let d64 = issue_queue_delay(&t(), 64, 4);
        let d32w8 = issue_queue_delay(&t(), 32, 8);
        assert!(d64 > d32);
        assert!(d32w8 > d32);
    }

    #[test]
    fn regfile_scales_with_entries_and_width() {
        let small = regfile_access_time(&t(), 64, 3);
        let big = regfile_access_time(&t(), 1024, 3);
        let wide = regfile_access_time(&t(), 64, 8);
        assert!(big > small);
        assert!(wide > small);
    }

    #[test]
    fn lsq_scales_with_entries() {
        assert!(lsq_delay(&t(), 256) > lsq_delay(&t(), 64));
    }

    #[test]
    fn l2_same_model_as_l1() {
        let a = l1_access_time(&t(), 1024, 4, 64);
        let b = l2_access_time(&t(), 1024, 4, 64);
        assert_eq!(a, b);
    }
}
