//! Fitting structures into a pipeline-stage time budget.
//!
//! The exploration loop of the paper (§3) works by picking a clock
//! period and a per-unit pipeline depth, then scaling each unit "to fit
//! the product of the clock period and their pipeline depth, minus the
//! aggregate latch latency". These helpers answer the inverse query the
//! explorer needs: *the largest structure of each kind whose modeled
//! delay fits in a given time budget*.

use crate::{cache_access_time, units, CacheGeometry, Technology};

/// Candidate issue-queue sizes considered by the explorer (the paper's
/// Table 4 space tops out at 64 entries).
pub const IQ_SIZES: [u32; 4] = [8, 16, 32, 64];
/// Candidate ROB / register-file sizes (paper space: up to 1024).
pub const ROB_SIZES: [u32; 6] = [32, 64, 128, 256, 512, 1024];
/// Candidate load-store-queue sizes (paper space: up to 256).
pub const LSQ_SIZES: [u32; 5] = [16, 32, 64, 128, 256];
/// Candidate cache set counts.
pub const CACHE_SETS: [u32; 12] = [
    32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
];
/// Candidate cache associativities.
pub const CACHE_ASSOC: [u32; 5] = [1, 2, 4, 8, 16];
/// Candidate cache block sizes in bytes.
pub const CACHE_BLOCKS: [u32; 7] = [8, 16, 32, 64, 128, 256, 512];

/// Time budget, in ns, available to a unit spanning `depth` pipeline
/// stages at clock period `clock_ns`: each stage contributes the clock
/// period minus one latch overhead.
///
/// # Panics
///
/// Panics if `depth` is zero or `clock_ns` is not positive and finite.
pub fn stage_budget(tech: &Technology, clock_ns: f64, depth: u32) -> f64 {
    assert!(depth > 0, "pipeline depth must be at least 1");
    assert!(
        clock_ns.is_finite() && clock_ns > 0.0,
        "clock period must be positive"
    );
    f64::from(depth) * (clock_ns - tech.latch_ns()).max(0.0)
}

/// Largest issue-queue size whose wakeup–select delay fits in `budget`
/// ns at the given issue width, or `None` if even the smallest does not.
pub fn fit_issue_queue(tech: &Technology, budget: f64, issue_width: u32) -> Option<u32> {
    IQ_SIZES
        .iter()
        .copied()
        .filter(|&n| units::issue_queue_delay(tech, n, issue_width) <= budget)
        .max()
}

/// Largest ROB / register-file size whose access time fits in `budget`
/// ns at the given issue width.
pub fn fit_rob(tech: &Technology, budget: f64, issue_width: u32) -> Option<u32> {
    ROB_SIZES
        .iter()
        .copied()
        .filter(|&n| units::regfile_access_time(tech, n, issue_width) <= budget)
        .max()
}

/// Largest load-store-queue size whose search delay fits in `budget` ns.
pub fn fit_lsq(tech: &Technology, budget: f64) -> Option<u32> {
    LSQ_SIZES
        .iter()
        .copied()
        .filter(|&n| units::lsq_delay(tech, n) <= budget)
        .max()
}

/// All cache geometries from the candidate grid whose access time fits
/// in `budget` ns. The list is sorted by capacity (ascending) and, for
/// equal capacity, by access time (ascending), so the last element is
/// the largest-then-fastest fit.
pub fn cache_geometries_within(tech: &Technology, budget: f64) -> Vec<CacheGeometry> {
    let mut out = Vec::new();
    for &sets in &CACHE_SETS {
        for &assoc in &CACHE_ASSOC {
            for &block in &CACHE_BLOCKS {
                let g = CacheGeometry::new(sets, assoc, block);
                if cache_access_time(tech, &g) <= budget {
                    out.push(g);
                }
            }
        }
    }
    out.sort_by(|a, b| {
        a.capacity_bytes().cmp(&b.capacity_bytes()).then_with(|| {
            cache_access_time(tech, a)
                .partial_cmp(&cache_access_time(tech, b))
                // xps-allow(no-unwrap-in-lib): the CACTI model is a closed-form polynomial over positive inputs; access times are always finite
                .expect("access times are finite")
        })
    });
    out
}

/// The largest-capacity (then fastest) cache geometry fitting in
/// `budget` ns, or `None` if none of the candidates fit.
pub fn fit_cache_max_capacity(tech: &Technology, budget: f64) -> Option<CacheGeometry> {
    cache_geometries_within(tech, budget).pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Technology {
        Technology::default()
    }

    #[test]
    fn stage_budget_subtracts_latch() {
        let tech = t();
        let b = stage_budget(&tech, 0.33, 2);
        assert!((b - 2.0 * (0.33 - tech.latch_ns())).abs() < 1e-12);
    }

    #[test]
    fn larger_budget_fits_larger_structures() {
        let tech = t();
        let small = fit_issue_queue(&tech, 0.35, 4);
        let large = fit_issue_queue(&tech, 1.2, 4);
        assert!(large >= small, "{large:?} vs {small:?}");
        assert!(large.is_some());
    }

    #[test]
    fn impossible_budget_yields_none() {
        let tech = t();
        assert_eq!(fit_issue_queue(&tech, 0.0, 4), None);
        assert_eq!(fit_rob(&tech, 0.0, 4), None);
        assert_eq!(fit_lsq(&tech, 0.0), None);
        assert_eq!(fit_cache_max_capacity(&tech, 0.0), None);
    }

    #[test]
    fn fitted_structures_respect_budget() {
        let tech = t();
        let budget = 0.8;
        if let Some(n) = fit_issue_queue(&tech, budget, 4) {
            assert!(units::issue_queue_delay(&tech, n, 4) <= budget);
        }
        if let Some(g) = fit_cache_max_capacity(&tech, budget) {
            assert!(cache_access_time(&tech, &g) <= budget);
        }
    }

    #[test]
    fn cache_list_sorted_by_capacity() {
        let tech = t();
        let list = cache_geometries_within(&tech, 1.0);
        assert!(!list.is_empty());
        for w in list.windows(2) {
            assert!(w[0].capacity_bytes() <= w[1].capacity_bytes());
        }
    }
}
