//! Set-associative cache access-time model (data path vs. tag path).

use crate::{SramArray, Technology};
use serde::{Deserialize, Serialize};

/// Physical-address tag width assumed for tag arrays. The exact value
/// matters little; it only shifts the tag path by a constant.
const TAG_BITS: u32 = 30;

/// Geometry of a set-associative cache, matching the CACTI input
/// parameters the paper lists in Table 1 (line size, associativity,
/// number of sets, read/write ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Number of sets. Must be a power of two.
    pub sets: u32,
    /// Associativity (ways). Must be at least 1.
    pub assoc: u32,
    /// Block (line) size in bytes. Must be a power of two, at least 8
    /// (CACTI does not model smaller blocks accurately; the paper adopts
    /// the same 8-byte lower bound).
    pub block_bytes: u32,
    /// Read ports (the paper uses 2 for both cache levels).
    pub read_ports: u32,
    /// Write ports (the paper uses 2).
    pub write_ports: u32,
}

impl CacheGeometry {
    /// Construct a geometry, validating the CACTI constraints.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `block_bytes` is not a power of two, if
    /// `block_bytes < 8`, or if `assoc == 0`.
    pub fn new(sets: u32, assoc: u32, block_bytes: u32) -> CacheGeometry {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(assoc >= 1, "associativity must be at least 1");
        assert!(
            block_bytes.is_power_of_two() && block_bytes >= 8,
            "block size must be a power of two of at least 8 bytes"
        );
        CacheGeometry {
            sets,
            assoc,
            block_bytes,
            read_ports: 2,
            write_ports: 2,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.assoc) * u64::from(self.block_bytes)
    }

    /// Index bits implied by the set count.
    pub fn index_bits(&self) -> u32 {
        self.sets.trailing_zeros()
    }

    /// Offset bits implied by the block size.
    pub fn offset_bits(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }
}

/// Access time (ns) of a set-associative cache with the given geometry:
/// the slower of the data path and the tag path (tag match gates way
/// selection for associative caches), plus the output driver.
///
/// This is the "Access time" output of CACTI used by the paper for the
/// L1 and L2 data caches (Table 1).
///
/// # Example
///
/// ```
/// use xps_cacti::{cache_access_time, CacheGeometry, Technology};
///
/// let tech = Technology::default();
/// let l1 = cache_access_time(&tech, &CacheGeometry::new(128, 2, 32)); // 8 KB
/// let l2 = cache_access_time(&tech, &CacheGeometry::new(4096, 8, 64)); // 2 MB
/// assert!(l2 > l1);
/// ```
pub fn cache_access_time(tech: &Technology, geom: &CacheGeometry) -> f64 {
    let data = SramArray::new(
        geom.sets,
        geom.assoc * geom.block_bytes * 8,
        geom.read_ports,
        geom.write_ports,
    );
    let tag = SramArray::new(
        geom.sets,
        geom.assoc * TAG_BITS,
        geom.read_ports,
        geom.write_ports,
    );
    let data_path = data.access_time(tech);
    let tag_path = tag.access_time(tech)
        + tech.comparator_base
        + tech.comparator_per_bit * f64::from(TAG_BITS);
    // For associative caches the way-select mux is driven by the tag
    // comparison outcome and is serial after both paths have resolved.
    let way_select = tech.mux_per_way_log2 * f64::from(32 - geom.assoc.leading_zeros() - 1);
    data_path.max(tag_path) + way_select + tech.output_driver
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Technology {
        Technology::default()
    }

    #[test]
    fn bigger_caches_are_slower() {
        let small = cache_access_time(&t(), &CacheGeometry::new(128, 1, 32));
        let big = cache_access_time(&t(), &CacheGeometry::new(8192, 4, 64));
        assert!(big > small);
    }

    #[test]
    fn associativity_costs_time_at_fixed_capacity() {
        // 64 KB as direct-mapped vs 8-way.
        let dm = cache_access_time(&t(), &CacheGeometry::new(1024, 1, 64));
        let wayful = cache_access_time(&t(), &CacheGeometry::new(128, 8, 64));
        assert!(wayful > dm);
    }

    #[test]
    fn capacity_and_bits() {
        let g = CacheGeometry::new(1024, 2, 32);
        assert_eq!(g.capacity_bytes(), 64 * 1024);
        assert_eq!(g.index_bits(), 10);
        assert_eq!(g.offset_bits(), 5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        CacheGeometry::new(100, 1, 32);
    }

    #[test]
    #[should_panic(expected = "8 bytes")]
    fn tiny_blocks_rejected() {
        CacheGeometry::new(128, 1, 4);
    }
}
