//! Calibration anchors derived from the paper's Table 4: the published
//! customized configurations must be physically realizable under this
//! model (each structure fits in its pipeline-stage budget at its
//! clock period), or the explored design space would exclude them.

use xps_cacti::{cache_access_time, fit, units, CacheGeometry, Technology};

fn tech() -> Technology {
    Technology::default()
}

/// bzip (Table 4): IQ 64, width 5, scheduler depth 1, clock 0.49 ns.
#[test]
fn bzip_issue_queue_fits() {
    let t = tech();
    let budget = fit::stage_budget(&t, 0.49, 1);
    assert!(
        units::issue_queue_delay(&t, 64, 5) <= budget,
        "IQ64/w5 must fit one 0.49 ns stage"
    );
}

/// mcf (Table 4): ROB 1024, width 3, scheduler/reg-file depth 1,
/// clock 0.45 ns.
#[test]
fn mcf_rob_fits() {
    let t = tech();
    let budget = fit::stage_budget(&t, 0.45, 1);
    assert!(
        units::regfile_access_time(&t, 1024, 3) <= budget,
        "ROB1024/w3 must fit one 0.45 ns stage"
    );
}

/// crafty (Table 4): IQ 32 at width 8, scheduler depth 3, clock 0.19 ns.
#[test]
fn crafty_issue_queue_fits() {
    let t = tech();
    let budget = fit::stage_budget(&t, 0.19, 3);
    assert!(units::issue_queue_delay(&t, 32, 8) <= budget);
}

/// mcf (Table 4): L1 of 1k sets x 2 ways x 128 B (256 KB) in 5 cycles at
/// 0.45 ns; L2 of 8k sets x 4 ways x 128 B (4 MB) in 27 cycles.
#[test]
fn mcf_caches_fit() {
    let t = tech();
    let l1 = CacheGeometry::new(1024, 2, 128);
    assert!(cache_access_time(&t, &l1) <= fit::stage_budget(&t, 0.45, 5));
    let l2 = CacheGeometry::new(8192, 4, 128);
    assert!(cache_access_time(&t, &l2) <= fit::stage_budget(&t, 0.45, 27));
}

/// vpr (Table 4): 8 KB L1 (128 sets x 2 x 32 B) in 2 cycles at 0.30 ns.
#[test]
fn vpr_small_l1_fits_two_cycles() {
    let t = tech();
    let l1 = CacheGeometry::new(128, 2, 32);
    assert!(cache_access_time(&t, &l1) <= fit::stage_budget(&t, 0.30, 2));
}

/// LSQ sizes from Table 4 (64-256 entries at depth 2) are realizable
/// across the clock range used by the paper.
#[test]
fn lsq_range_fits() {
    let t = tech();
    assert!(units::lsq_delay(&t, 256) <= fit::stage_budget(&t, 0.27, 2));
    assert!(units::lsq_delay(&t, 64) <= fit::stage_budget(&t, 0.19, 2));
}

/// The delay ranking of unit kinds is physical: an L2 is slower than an
/// L1 of the same organization scaled down, and large CAMs are slower
/// than small RAMs.
#[test]
fn cross_unit_sanity() {
    let t = tech();
    let l1 = cache_access_time(&t, &CacheGeometry::new(256, 2, 32));
    let l2 = cache_access_time(&t, &CacheGeometry::new(8192, 8, 128));
    assert!(l2 > 2.0 * l1);
    assert!(units::issue_queue_delay(&t, 256, 8) > units::regfile_access_time(&t, 256, 4));
}

/// Fitting helpers agree with direct queries across a clock sweep.
#[test]
fn fit_consistency_sweep() {
    let t = tech();
    for clock in [0.19, 0.25, 0.33, 0.45, 0.60] {
        for depth in 1..=4u32 {
            let budget = fit::stage_budget(&t, clock, depth);
            if let Some(iq) = fit::fit_issue_queue(&t, budget, 4) {
                assert!(units::issue_queue_delay(&t, iq, 4) <= budget);
            }
            if let Some(rob) = fit::fit_rob(&t, budget, 4) {
                assert!(units::regfile_access_time(&t, rob, 4) <= budget);
            }
        }
    }
}
