//! Property-based tests of the timing model's physical invariants.

use proptest::prelude::*;
use xps_cacti::{cache_access_time, fit, units, CacheGeometry, CamArray, SramArray, Technology};

fn pow2(max_log: u32) -> impl Strategy<Value = u32> {
    (0..=max_log).prop_map(|e| 1u32 << e)
}

proptest! {
    /// SRAM access time grows (weakly) with row count at fixed width.
    #[test]
    fn sram_monotone_in_rows(rows_log in 4u32..14, cols in pow2(10), r in 1u32..4, w in 1u32..3) {
        let tech = Technology::default();
        let small = SramArray::new(1 << rows_log, cols.max(8), r, w).access_time(&tech);
        let large = SramArray::new(1 << (rows_log + 1), cols.max(8), r, w).access_time(&tech);
        prop_assert!(large >= small, "{large} < {small}");
    }

    /// Adding ports never speeds an array up.
    #[test]
    fn sram_monotone_in_ports(rows in pow2(12), cols in pow2(9), r in 1u32..8) {
        let tech = Technology::default();
        let rows = rows.max(8);
        let cols = cols.max(8);
        let few = SramArray::new(rows, cols, r, 1).access_time(&tech);
        let more = SramArray::new(rows, cols, r + 2, 2).access_time(&tech);
        prop_assert!(more >= few);
    }

    /// CAM match time is strictly increasing in entry count.
    #[test]
    fn cam_strictly_monotone(entries_log in 3u32..10, bits in pow2(7), ports in 1u32..8) {
        let tech = Technology::default();
        let a = CamArray::new(1 << entries_log, bits.max(8), ports).match_time(&tech);
        let b = CamArray::new(1 << (entries_log + 1), bits.max(8), ports).match_time(&tech);
        prop_assert!(b > a);
    }

    /// All delays are finite and positive across the candidate grid.
    #[test]
    fn cache_delays_finite_positive(
        sets in pow2(16),
        assoc in prop::sample::select(vec![1u32, 2, 4, 8, 16]),
        block in prop::sample::select(vec![8u32, 16, 32, 64, 128, 256, 512]),
    ) {
        let tech = Technology::default();
        let sets = sets.max(32);
        let d = cache_access_time(&tech, &CacheGeometry::new(sets, assoc, block));
        prop_assert!(d.is_finite() && d > 0.0);
    }

    /// Fitted structures always respect their budget, and a larger
    /// budget never fits a smaller structure.
    #[test]
    fn fit_respects_budget(budget in 0.05f64..2.0, width in 1u32..9) {
        let tech = Technology::default();
        if let Some(iq) = fit::fit_issue_queue(&tech, budget, width) {
            prop_assert!(units::issue_queue_delay(&tech, iq, width) <= budget);
        }
        if let Some(rob) = fit::fit_rob(&tech, budget, width) {
            prop_assert!(units::regfile_access_time(&tech, rob, width) <= budget);
        }
        let a = fit::fit_rob(&tech, budget, width);
        let b = fit::fit_rob(&tech, budget * 1.5, width);
        match (a, b) {
            (Some(x), Some(y)) => prop_assert!(y >= x),
            (Some(_), None) => prop_assert!(false, "larger budget lost the fit"),
            _ => {}
        }
    }

    /// Uniform technology scaling scales every delay uniformly.
    #[test]
    fn technology_scaling_is_linear(factor in 0.25f64..4.0, sets in pow2(12)) {
        let tech = Technology::default();
        let scaled = tech.scaled(factor);
        let g = CacheGeometry::new(sets.max(32), 2, 64);
        let base = cache_access_time(&tech, &g);
        let after = cache_access_time(&scaled, &g);
        prop_assert!((after - base * factor).abs() < 1e-9 * factor.max(1.0));
    }

    /// Stage budgets are additive in depth.
    #[test]
    fn stage_budget_additive(clock in 0.1f64..1.0, d in 1u32..10) {
        let tech = Technology::default();
        let one = fit::stage_budget(&tech, clock, 1);
        let many = fit::stage_budget(&tech, clock, d);
        prop_assert!((many - one * f64::from(d)).abs() < 1e-12);
    }
}
