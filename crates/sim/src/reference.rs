//! The pre-optimization timing engine, kept as a reference oracle.
//!
//! This is the cycle engine exactly as it stood before the hot-loop
//! overhaul in [`crate::engine`]: per-cycle issue-slot usage in a
//! `HashMap` with periodic `retain` sweeps, and an unconditional
//! 64-entry linear scan of the store ring on every load. It is kept —
//! compiled into the library, not just test builds — for two jobs:
//!
//! 1. **Equivalence oracle.** The optimized engine must produce
//!    bit-identical [`SimStats`] for every trace and configuration;
//!    `tests/engine_equivalence.rs` drives both engines over the SPEC
//!    profiles, randomized configurations, and adversarial aliasing
//!    streams and asserts equality.
//! 2. **Perf baseline.** `repro bench` measures this engine and the
//!    optimized one in the same process and build, so the before/after
//!    ratio in `BENCH_*.json` reflects the code change, not
//!    environment drift.
//!
//! Do not optimize this module; its value is that it does not change.

use crate::cache::{Hierarchy, PrefetchKind};
use crate::config::CoreConfig;
use crate::predictor::{Predictor, PredictorKind};
use crate::stats::SimStats;
use std::collections::HashMap;
use xps_workload::{MicroOp, OpClass, REG_COUNT};

const LAT_ALU: u64 = 1;
const LAT_MUL: u64 = 3;
const LAT_DIV: u64 = 20;
const LAT_BRANCH: u64 = 1;
const LAT_AGEN: u64 = 1;
const LAT_FORWARD: u64 = 1;
const STORE_RING: usize = 64;

/// The pre-overhaul simulator. Same modeling semantics as
/// [`crate::Simulator`], different (slower) bookkeeping.
#[derive(Debug, Clone)]
pub struct ReferenceSimulator {
    cfg: CoreConfig,
    dcache: Hierarchy,
    predictor: Predictor,
    regs_avail: [u64; REG_COUNT],
    commit_ring: Vec<u64>,
    issue_ring: Vec<u64>,
    mem_ring: Vec<u64>,
    stores: [(u64, u64); STORE_RING],
    store_head: usize,
    store_addr_barrier: u64,
    issue_slots: HashMap<u64, u32>,
    cur_fetch: u64,
    fetched_this_cycle: u32,
    redirect_barrier: u64,
    cur_commit: u64,
    commits_this_cycle: u32,
    ops: u64,
    mem_ops: u64,
    branches: u64,
    mispredicts: u64,
    last_commit: u64,
}

impl ReferenceSimulator {
    /// Build a reference simulator for `cfg` (gshare predictor, no
    /// prefetch — the same defaults as [`crate::Simulator::new`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    pub fn new(cfg: &CoreConfig) -> ReferenceSimulator {
        ReferenceSimulator::with_options(cfg, PredictorKind::Gshare, PrefetchKind::None)
    }

    /// Build with explicit predictor and prefetcher choices, mirroring
    /// [`crate::Simulator::with_options`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    pub fn with_options(
        cfg: &CoreConfig,
        predictor: PredictorKind,
        prefetch: PrefetchKind,
    ) -> ReferenceSimulator {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid core config `{}`: {e}", cfg.name));
        ReferenceSimulator {
            dcache: Hierarchy::with_prefetcher(&cfg.l1, &cfg.l2, cfg.mem_cycles(), prefetch),
            predictor: Predictor::of_kind(predictor),
            regs_avail: [0; REG_COUNT],
            commit_ring: vec![0; cfg.rob_size as usize],
            issue_ring: vec![0; cfg.iq_size as usize],
            mem_ring: vec![0; cfg.lsq_size as usize],
            stores: [(u64::MAX, 0); STORE_RING],
            store_head: 0,
            store_addr_barrier: 0,
            issue_slots: HashMap::with_capacity(1024),
            cur_fetch: 0,
            fetched_this_cycle: 0,
            redirect_barrier: 0,
            cur_commit: 0,
            commits_this_cycle: 0,
            ops: 0,
            mem_ops: 0,
            branches: 0,
            mispredicts: 0,
            last_commit: 0,
            cfg: cfg.clone(),
        }
    }

    /// Run up to `max_ops` micro-ops of `trace` and return the
    /// measurements. Semantically identical to
    /// [`crate::Simulator::run`]; no trace events are emitted (the
    /// oracle is never part of an instrumented campaign).
    // The counter is u64 on purpose (a `take(max_ops as usize)` would
    // truncate on 32-bit targets), which clippy's enumerate suggestion
    // would reintroduce via usize.
    #[allow(clippy::explicit_counter_loop)]
    pub fn run(mut self, trace: impl IntoIterator<Item = MicroOp>, max_ops: u64) -> SimStats {
        let mut taken = 0u64;
        for op in trace {
            if taken >= max_ops {
                break;
            }
            taken += 1;
            self.step(&op);
        }
        SimStats {
            instructions: self.ops,
            cycles: self.last_commit,
            clock_ns: self.cfg.clock_ns,
            branches: self.branches,
            mispredicts: self.mispredicts,
            l1: self.dcache.l1_stats(),
            l2: self.dcache.l2_stats(),
        }
    }

    fn alloc_issue_slot(&mut self, desired: u64) -> u64 {
        let width = self.cfg.width;
        let mut c = desired;
        loop {
            let used = self.issue_slots.entry(c).or_insert(0);
            if *used < width {
                *used += 1;
                return c;
            }
            c += 1;
        }
    }

    fn step(&mut self, op: &MicroOp) {
        let i = self.ops;
        self.ops += 1;
        let fe = u64::from(self.cfg.frontend_depth);
        let rob = self.commit_ring.len() as u64;
        let iq = self.issue_ring.len() as u64;
        let lsq = self.mem_ring.len() as u64;

        // --- Fetch: bandwidth, redirects, and window back-pressure.
        let mut fetch = self.cur_fetch.max(self.redirect_barrier);
        if i >= rob {
            fetch = fetch.max(self.commit_ring[(i % rob) as usize].saturating_sub(fe));
        }
        if i >= iq {
            fetch = fetch.max(self.issue_ring[(i % iq) as usize].saturating_sub(fe));
        }
        if op.class.is_mem() && self.mem_ops >= lsq {
            fetch = fetch.max(self.mem_ring[(self.mem_ops % lsq) as usize].saturating_sub(fe));
        }
        if fetch > self.cur_fetch {
            self.cur_fetch = fetch;
            self.fetched_this_cycle = 0;
        }
        if self.fetched_this_cycle >= self.cfg.width {
            self.cur_fetch += 1;
            self.fetched_this_cycle = 0;
            fetch = self.cur_fetch;
        }
        self.fetched_this_cycle += 1;

        // --- Dispatch and operand readiness.
        let dispatch = fetch + fe;
        let mut ready = dispatch + u64::from(self.cfg.sched_depth);
        for src in op.srcs.iter().flatten() {
            ready = ready.max(self.regs_avail[*src as usize]);
        }
        if op.class == OpClass::Load {
            ready = ready.max(self.store_addr_barrier);
        }

        // --- Issue (out of order, width per cycle).
        let issue = self.alloc_issue_slot(ready);
        self.issue_ring[(i % iq) as usize] = issue;

        // --- Execute.
        let lsqd = u64::from(self.cfg.lsq_depth);
        let complete = match op.class {
            OpClass::IntAlu => issue + LAT_ALU,
            OpClass::IntMul => issue + LAT_MUL,
            OpClass::IntDiv => issue + LAT_DIV,
            OpClass::Branch => issue + LAT_BRANCH,
            OpClass::Load => {
                let agen_done = issue + LAT_AGEN;
                let addr8 = op.addr & !7;
                let search_done = agen_done + lsqd;
                let forwarded = self
                    .stores
                    .iter()
                    .filter(|&&(a, _)| a == addr8)
                    .map(|&(_, data_ready)| data_ready)
                    .max();
                match forwarded {
                    Some(data_ready) => search_done.max(data_ready) + LAT_FORWARD,
                    None => self.dcache.access(op.addr, search_done),
                }
            }
            OpClass::Store => {
                let mut addr_ready = dispatch + u64::from(self.cfg.sched_depth);
                if let Some(s) = op.srcs[1] {
                    addr_ready = addr_ready.max(self.regs_avail[s as usize]);
                }
                let agen_done = addr_ready + LAT_AGEN;
                let addr8 = op.addr & !7;
                let data_ready = issue + LAT_AGEN + lsqd;
                self.stores[self.store_head] = (addr8, data_ready);
                self.store_head = (self.store_head + 1) % STORE_RING;
                self.store_addr_barrier = self.store_addr_barrier.max(agen_done);
                self.dcache.access(op.addr, agen_done);
                data_ready
            }
        };

        if let Some(d) = op.dest {
            self.regs_avail[d as usize] = complete + u64::from(self.cfg.wakeup_extra);
        }

        // --- Branch resolution.
        if let Some(b) = op.branch {
            self.branches += 1;
            let correct = self.predictor.predict_and_update(op.pc, b.taken);
            if !correct {
                self.mispredicts += 1;
                self.redirect_barrier = self
                    .redirect_barrier
                    .max(complete + u64::from(self.cfg.mispredict_penalty()));
            }
            if b.taken {
                self.cur_fetch = self.cur_fetch.max(fetch) + 1;
                self.fetched_this_cycle = 0;
            }
        }

        // --- Commit: in order, width per cycle.
        let mut c = (complete + 1).max(self.cur_commit);
        if c == self.cur_commit {
            if self.commits_this_cycle >= self.cfg.width {
                c += 1;
                self.cur_commit = c;
                self.commits_this_cycle = 1;
            } else {
                self.commits_this_cycle += 1;
            }
        } else {
            self.cur_commit = c;
            self.commits_this_cycle = 1;
        }
        self.commit_ring[(i % rob) as usize] = c;
        if op.class.is_mem() {
            self.mem_ring[(self.mem_ops % lsq) as usize] = c;
            self.mem_ops += 1;
        }
        self.last_commit = c;

        // --- Housekeeping: prune stale issue-slot entries.
        if i.is_multiple_of(65_536) && self.issue_slots.len() > 65_536 {
            let frontier = dispatch;
            self.issue_slots.retain(|&cyc, _| cyc >= frontier);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xps_workload::{spec, TraceGenerator};

    /// The oracle itself is deterministic — a prerequisite for using
    /// it to judge the optimized engine.
    #[test]
    fn reference_runs_are_deterministic() {
        let c = CoreConfig::initial();
        let p = spec::profile("gcc").expect("gcc exists");
        let a = ReferenceSimulator::new(&c).run(TraceGenerator::new(p.clone()), 20_000);
        let b = ReferenceSimulator::new(&c).run(TraceGenerator::new(p), 20_000);
        assert_eq!(a, b);
    }
}
