//! # xps-sim — out-of-order superscalar timing simulator
//!
//! The timing substrate of the xp-scalar reproduction, playing the role
//! of SimpleScalar's `sim-mase` in the original paper. It is a
//! **trace-driven, constraint-based out-of-order timing model**: every
//! micro-op's fetch, dispatch, issue, completion, and commit cycles are
//! derived from the machine's structural constraints —
//!
//! * front-end bandwidth (`width` per cycle) and branch-misprediction
//!   redirects (gshare predictor, penalty = front-end depth plus the
//!   fixed 2 ns front-end latency of the paper's Table 2),
//! * window occupancy (ROB, issue-queue, and LSQ capacity),
//! * issue bandwidth (`width` per cycle) and operand readiness with a
//!   configurable wakeup latency (the paper's "min. latency for
//!   awakening of dependent instructions"),
//! * functional-unit latencies,
//! * a two-level write-back data-cache hierarchy with LRU replacement
//!   and store-to-load forwarding, backed by a fixed-latency memory,
//! * in-order commit bandwidth.
//!
//! The figure of merit everywhere is **IPT** (instructions per
//! nanosecond) = IPC / clock period, as in the paper: a configuration
//! only wins by balancing cycle count *and* cycle time.
//!
//! ## Example
//!
//! ```
//! use xps_sim::{CoreConfig, Simulator};
//! use xps_workload::{spec, TraceGenerator};
//!
//! let cfg = CoreConfig::initial(); // the paper's Table 3 starting point
//! let trace = TraceGenerator::new(spec::profile("gzip").expect("known"));
//! let stats = Simulator::new(&cfg).run(trace, 20_000);
//! assert!(stats.ipc() > 0.0 && stats.ipt() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod config;
mod engine;
pub mod power;
mod predictor;
pub mod reference;
mod stats;

pub use cache::{CacheStats, DataCache, Hierarchy, PrefetchKind};
pub use config::{CacheConfig, ConfigKey, CoreConfig};
pub use engine::{evaluate, Simulator};
pub use power::{energy_delay_product, estimate_energy, EnergyBreakdown};
pub use predictor::{Bimodal, Gshare, Predictor, PredictorKind, Tournament, TwoLevelLocal};
pub use reference::ReferenceSimulator;
pub use stats::SimStats;
