//! The out-of-order timing engine.
//!
//! A constraint-based trace-timing model: each micro-op's pipeline
//! events are computed in program order from the machine's structural
//! limits, while issue itself is out of order (a younger ready op may
//! claim an earlier issue slot than an older stalled one). This is the
//! standard dependency-driven formulation of an OoO timing simulator —
//! it reproduces the first-order behaviours the paper's exploration
//! depends on (window-size vs. memory-latency tolerance, clock vs.
//! structure sizing, misprediction vs. pipeline depth) at a cost of
//! O(1) amortized work per op.

use crate::cache::{Hierarchy, PrefetchKind};
use crate::config::CoreConfig;
use crate::predictor::{Predictor, PredictorKind};
use crate::stats::SimStats;
use std::collections::HashMap;
use xps_workload::{MicroOp, OpClass, REG_COUNT};

/// Execution latencies (cycles) by op class.
const LAT_ALU: u64 = 1;
const LAT_MUL: u64 = 3;
const LAT_DIV: u64 = 20;
const LAT_BRANCH: u64 = 1;
/// Address-generation latency before a memory access starts.
const LAT_AGEN: u64 = 1;
/// Store-to-load forwarding latency.
const LAT_FORWARD: u64 = 1;
/// Entries in the store ring searched for forwarding.
const STORE_RING: usize = 64;

/// The simulator: construct per [`CoreConfig`], then [`Simulator::run`]
/// a trace through it.
///
/// A `Simulator` is single-use state for one run; build a fresh one (or
/// call `run` once) per (workload, configuration) measurement.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: CoreConfig,
    dcache: Hierarchy,
    predictor: Predictor,
    /// Cycle at which a dependent of each register may issue.
    regs_avail: [u64; REG_COUNT],
    /// Commit cycle of op `i`, indexed `i % rob_size`.
    commit_ring: Vec<u64>,
    /// Issue cycle of op `i`, indexed `i % iq_size`.
    issue_ring: Vec<u64>,
    /// Commit cycle of the `j`-th memory op, indexed `j % lsq_size`.
    mem_ring: Vec<u64>,
    /// Recent stores for forwarding: (8-byte-aligned addr, data ready).
    stores: [(u64, u64); STORE_RING],
    store_head: usize,
    /// Address-ready cycle of the most recent older store (conservative
    /// memory disambiguation: loads wait for older store addresses).
    store_addr_barrier: u64,
    /// Per-cycle issue-slot usage.
    issue_slots: HashMap<u64, u32>,
    cur_fetch: u64,
    fetched_this_cycle: u32,
    redirect_barrier: u64,
    cur_commit: u64,
    commits_this_cycle: u32,
    ops: u64,
    mem_ops: u64,
    branches: u64,
    mispredicts: u64,
    last_commit: u64,
}

impl Simulator {
    /// Build a simulator for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    pub fn new(cfg: &CoreConfig) -> Simulator {
        Simulator::with_predictor(cfg, PredictorKind::Gshare)
    }

    /// Build a simulator with a non-default branch predictor (for the
    /// predictor ablation; the paper's explored design space keeps the
    /// predictor fixed).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    pub fn with_predictor(cfg: &CoreConfig, predictor: PredictorKind) -> Simulator {
        Simulator::with_options(cfg, predictor, PrefetchKind::None)
    }

    /// Build a simulator with explicit predictor and prefetcher
    /// choices (both held fixed by the paper; both ablatable here).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    pub fn with_options(
        cfg: &CoreConfig,
        predictor: PredictorKind,
        prefetch: PrefetchKind,
    ) -> Simulator {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid core config `{}`: {e}", cfg.name));
        Simulator {
            dcache: Hierarchy::with_prefetcher(&cfg.l1, &cfg.l2, cfg.mem_cycles(), prefetch),
            predictor: Predictor::of_kind(predictor),
            regs_avail: [0; REG_COUNT],
            commit_ring: vec![0; cfg.rob_size as usize],
            issue_ring: vec![0; cfg.iq_size as usize],
            mem_ring: vec![0; cfg.lsq_size as usize],
            stores: [(u64::MAX, 0); STORE_RING],
            store_head: 0,
            store_addr_barrier: 0,
            issue_slots: HashMap::with_capacity(1024),
            cur_fetch: 0,
            fetched_this_cycle: 0,
            redirect_barrier: 0,
            cur_commit: 0,
            commits_this_cycle: 0,
            ops: 0,
            mem_ops: 0,
            branches: 0,
            mispredicts: 0,
            last_commit: 0,
            cfg: cfg.clone(),
        }
    }

    /// Run up to `max_ops` micro-ops of `trace` through the machine and
    /// return the measurements.
    pub fn run(mut self, trace: impl IntoIterator<Item = MicroOp>, max_ops: u64) -> SimStats {
        for op in trace.into_iter().take(max_ops as usize) {
            self.step(&op);
        }
        // Volatile: whether a simulation *happened* depends on which
        // racing worker lost the shared-cache race, so this event is
        // profile-only and never journaled.
        xps_trace::instant_volatile("sim.run", || {
            vec![
                ("ops", self.ops.into()),
                ("cycles", self.last_commit.into()),
            ]
        });
        SimStats {
            instructions: self.ops,
            cycles: self.last_commit,
            clock_ns: self.cfg.clock_ns,
            branches: self.branches,
            mispredicts: self.mispredicts,
            l1: self.dcache.l1_stats(),
            l2: self.dcache.l2_stats(),
        }
    }

    /// Find the earliest cycle at or after `desired` with a free issue
    /// slot and claim it.
    fn alloc_issue_slot(&mut self, desired: u64) -> u64 {
        let width = self.cfg.width;
        let mut c = desired;
        loop {
            let used = self.issue_slots.entry(c).or_insert(0);
            if *used < width {
                *used += 1;
                return c;
            }
            c += 1;
        }
    }

    fn step(&mut self, op: &MicroOp) {
        let i = self.ops;
        self.ops += 1;
        let fe = u64::from(self.cfg.frontend_depth);
        let rob = self.commit_ring.len() as u64;
        let iq = self.issue_ring.len() as u64;
        let lsq = self.mem_ring.len() as u64;

        // --- Fetch: bandwidth, redirects, and window back-pressure.
        let mut fetch = self.cur_fetch.max(self.redirect_barrier);
        if i >= rob {
            fetch = fetch.max(self.commit_ring[(i % rob) as usize].saturating_sub(fe));
        }
        if i >= iq {
            fetch = fetch.max(self.issue_ring[(i % iq) as usize].saturating_sub(fe));
        }
        if op.class.is_mem() && self.mem_ops >= lsq {
            fetch = fetch.max(self.mem_ring[(self.mem_ops % lsq) as usize].saturating_sub(fe));
        }
        if fetch > self.cur_fetch {
            self.cur_fetch = fetch;
            self.fetched_this_cycle = 0;
        }
        if self.fetched_this_cycle >= self.cfg.width {
            self.cur_fetch += 1;
            self.fetched_this_cycle = 0;
            fetch = self.cur_fetch;
        }
        self.fetched_this_cycle += 1;

        // --- Dispatch and operand readiness.
        let dispatch = fetch + fe;
        let mut ready = dispatch + u64::from(self.cfg.sched_depth);
        for src in op.srcs.iter().flatten() {
            ready = ready.max(self.regs_avail[*src as usize]);
        }
        if op.class == OpClass::Load {
            // Conservative disambiguation: wait for older store
            // addresses to be known.
            ready = ready.max(self.store_addr_barrier);
        }

        // --- Issue (out of order, width per cycle).
        let issue = self.alloc_issue_slot(ready);
        self.issue_ring[(i % iq) as usize] = issue;

        // --- Execute.
        let lsqd = u64::from(self.cfg.lsq_depth);
        let complete = match op.class {
            OpClass::IntAlu => issue + LAT_ALU,
            OpClass::IntMul => issue + LAT_MUL,
            OpClass::IntDiv => issue + LAT_DIV,
            OpClass::Branch => issue + LAT_BRANCH,
            OpClass::Load => {
                let agen_done = issue + LAT_AGEN;
                let addr8 = op.addr & !7;
                // Store-to-load forwarding from the youngest matching
                // older store; the LSQ search costs its pipeline depth.
                let search_done = agen_done + lsqd;
                let forwarded = self
                    .stores
                    .iter()
                    .filter(|&&(a, _)| a == addr8)
                    .map(|&(_, data_ready)| data_ready)
                    .max();
                match forwarded {
                    Some(data_ready) => search_done.max(data_ready) + LAT_FORWARD,
                    None => self.dcache.access(op.addr, search_done),
                }
            }
            OpClass::Store => {
                // The store's *address* depends only on its address-base
                // operand (src 1), not on the data it writes (src 0), so
                // disambiguation does not serialize loads behind the
                // store's data chain.
                let mut addr_ready = dispatch + u64::from(self.cfg.sched_depth);
                if let Some(s) = op.srcs[1] {
                    addr_ready = addr_ready.max(self.regs_avail[s as usize]);
                }
                let agen_done = addr_ready + LAT_AGEN;
                let addr8 = op.addr & !7;
                // Data readiness is bounded by operand availability
                // (already folded into `issue`).
                let data_ready = issue + LAT_AGEN + lsqd;
                self.stores[self.store_head] = (addr8, data_ready);
                self.store_head = (self.store_head + 1) % STORE_RING;
                self.store_addr_barrier = self.store_addr_barrier.max(agen_done);
                // The cache write happens at commit in a real machine;
                // for content tracking we touch it now.
                self.dcache.access(op.addr, agen_done);
                data_ready
            }
        };

        if let Some(d) = op.dest {
            self.regs_avail[d as usize] = complete + u64::from(self.cfg.wakeup_extra);
        }

        // --- Branch resolution.
        if let Some(b) = op.branch {
            self.branches += 1;
            let correct = self.predictor.predict_and_update(op.pc, b.taken);
            if !correct {
                self.mispredicts += 1;
                self.redirect_barrier = self
                    .redirect_barrier
                    .max(complete + u64::from(self.cfg.mispredict_penalty()));
            }
            if b.taken {
                // A taken branch ends the fetch group: the front end
                // cannot fetch past a taken branch in the same cycle,
                // which is what keeps very wide machines from being
                // free on branch-dense code.
                self.cur_fetch = self.cur_fetch.max(fetch) + 1;
                self.fetched_this_cycle = 0;
            }
        }

        // --- Commit: in order, width per cycle.
        let mut c = (complete + 1).max(self.cur_commit);
        if c == self.cur_commit {
            if self.commits_this_cycle >= self.cfg.width {
                c += 1;
                self.cur_commit = c;
                self.commits_this_cycle = 1;
            } else {
                self.commits_this_cycle += 1;
            }
        } else {
            self.cur_commit = c;
            self.commits_this_cycle = 1;
        }
        self.commit_ring[(i % rob) as usize] = c;
        if op.class.is_mem() {
            self.mem_ring[(self.mem_ops % lsq) as usize] = c;
            self.mem_ops += 1;
        }
        self.last_commit = c;

        // --- Housekeeping: prune stale issue-slot entries.
        if i.is_multiple_of(65_536) && self.issue_slots.len() > 65_536 {
            let frontier = dispatch;
            self.issue_slots.retain(|&cyc, _| cyc >= frontier);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xps_workload::{spec, TraceGenerator};

    fn cfg() -> CoreConfig {
        CoreConfig::initial()
    }

    /// A stream of independent ALU ops sustains an IPC close to the
    /// machine width.
    #[test]
    fn independent_alu_saturates_width() {
        let c = cfg();
        let ops = (0..30_000u64)
            .map(|i| MicroOp::alu(0x40_0000 + 4 * i, (8 + (i % 16)) as u8, [None, None]));
        // Destinations recycle every 16 ops, far enough apart not to
        // serialize at width 3.
        let stats = Simulator::new(&c).run(ops, 30_000);
        let ipc = stats.ipc();
        assert!(
            ipc > 0.9 * c.width as f64,
            "independent ALU IPC {ipc} should approach width {}",
            c.width
        );
    }

    /// A single dependence chain of 1-cycle ops commits ~1 op per
    /// (1 + wakeup_extra) cycles regardless of width.
    #[test]
    fn dependent_chain_serializes() {
        let mut c = cfg();
        c.wakeup_extra = 0;
        let ops = (0..20_000u64).map(|_| MicroOp::alu(0x40_0000, 8, [Some(8), None]));
        let stats = Simulator::new(&c).run(ops, 20_000);
        let ipc = stats.ipc();
        assert!(
            (0.85..=1.05).contains(&ipc),
            "chain IPC must be ~1 with zero wakeup latency, got {ipc}"
        );

        let mut c1 = cfg();
        c1.wakeup_extra = 1;
        let ops = (0..20_000u64).map(|_| MicroOp::alu(0x40_0000, 8, [Some(8), None]));
        let stats1 = Simulator::new(&c1).run(ops, 20_000);
        let ipc1 = stats1.ipc();
        assert!(
            (0.42..=0.55).contains(&ipc1),
            "chain IPC must be ~1/2 with wakeup latency 1, got {ipc1}"
        );
    }

    /// Loads hitting a tiny region stay L1-resident; loads striding a
    /// huge region miss.
    #[test]
    fn cache_behaviour_shows_in_stats() {
        let c = cfg();
        let hits = (0..20_000u64)
            .map(|i| MicroOp::load(0x40_0000, (8 + i % 32) as u8, None, 0x1000 + (i % 64) * 8));
        let s_hit = Simulator::new(&c).run(hits, 20_000);
        assert!(s_hit.l1.miss_ratio() < 0.01, "resident set must hit");

        let misses = (0..20_000u64)
            .map(|i| MicroOp::load(0x40_0000, (8 + i % 32) as u8, None, 0x10_0000 + i * 4096));
        let s_miss = Simulator::new(&c).run(misses, 20_000);
        assert!(s_miss.l1.miss_ratio() > 0.9, "striding set must miss");
        assert!(s_miss.ipc() < s_hit.ipc());
    }

    /// Random branches cost pipeline refills; biased branches do not.
    #[test]
    fn mispredictions_cost_cycles() {
        let c = cfg();
        let biased = (0..40_000u64)
            .map(|i| MicroOp::branch(0x40_0000 + 64 * (i % 16), None, true, 0x41_0000));
        let s_good = Simulator::new(&c).run(biased, 40_000);
        assert!(s_good.mispredict_rate() < 0.05);

        // Genuinely random (but seeded) outcomes defeat the predictor.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let hard: Vec<_> = (0..40_000u64)
            .map(|_| MicroOp::branch(0x40_0000, None, rng.gen::<bool>(), 0x41_0000))
            .collect();
        let s_bad = Simulator::new(&c).run(hard, 40_000);
        assert!(s_bad.mispredict_rate() > 0.3);
        assert!(s_bad.ipc() < s_good.ipc());
    }

    /// Store-to-load forwarding beats going to memory.
    #[test]
    fn forwarding_hides_latency() {
        let c = cfg();
        // Alternate store/load to the same far-away address: the load
        // forwards instead of missing.
        let ops = (0..10_000u64).flat_map(|i| {
            let addr = 0x7000_0000;
            [
                MicroOp::store(0x40_0000, 2, addr),
                MicroOp::load(0x40_0004, (8 + i % 32) as u8, None, addr),
            ]
        });
        let s = Simulator::new(&c).run(ops, 20_000);
        // One memory miss at most (the store's allocation); loads all
        // forward, so IPC stays near 1 rather than collapsing to
        // memory latency.
        assert!(
            s.ipc() > 0.5,
            "forwarded loads keep the pipe busy: {}",
            s.ipc()
        );
    }

    /// A bigger ROB tolerates memory latency better on a
    /// pointer-chasing workload (the mcf effect).
    #[test]
    fn window_size_buys_latency_tolerance() {
        let profile = spec::profile("mcf").expect("mcf exists");
        let mut small = cfg();
        small.rob_size = 32;
        small.iq_size = 16;
        let mut large = cfg();
        large.rob_size = 1024;
        large.iq_size = 64;
        let n = 60_000;
        let s_small = Simulator::new(&small).run(TraceGenerator::new(profile.clone()), n);
        let s_large = Simulator::new(&large).run(TraceGenerator::new(profile), n);
        assert!(
            s_large.ipc() > s_small.ipc() * 1.15,
            "large window {} must beat small {} on mcf",
            s_large.ipc(),
            s_small.ipc()
        );
    }

    /// Determinism: identical runs, identical stats.
    #[test]
    fn runs_are_deterministic() {
        let c = cfg();
        let p = spec::profile("gcc").expect("gcc exists");
        let a = Simulator::new(&c).run(TraceGenerator::new(p.clone()), 30_000);
        let b = Simulator::new(&c).run(TraceGenerator::new(p), 30_000);
        assert_eq!(a, b);
    }

    /// IPC can never exceed the machine width.
    #[test]
    fn ipc_bounded_by_width() {
        for name in ["gzip", "mcf", "vortex"] {
            let c = cfg();
            let p = spec::profile(name).unwrap_or_else(|| panic!("{name} exists"));
            let s = Simulator::new(&c).run(TraceGenerator::new(p), 20_000);
            assert!(
                s.ipc() <= c.width as f64 + 1e-9,
                "{name} IPC {} > width",
                s.ipc()
            );
        }
    }

    /// Commit bandwidth caps throughput even when issue could go
    /// faster: a width-1 machine commits at most one op per cycle.
    #[test]
    fn commit_bandwidth_binds() {
        let mut c = cfg();
        c.width = 1;
        let ops = (0..20_000u64)
            .map(|i| MicroOp::alu(0x40_0000 + 4 * i, (8 + (i % 16)) as u8, [None, None]));
        let stats = Simulator::new(&c).run(ops, 20_000);
        assert!(stats.cycles >= 20_000, "width 1 needs >= 1 cycle/op");
        assert!(stats.ipc() <= 1.0 + 1e-9);
    }

    /// A tiny LSQ throttles memory-heavy code relative to a large one.
    #[test]
    fn lsq_capacity_throttles() {
        let mem_ops = |n: u64| {
            (0..n).map(|i| {
                // All loads, far apart, so LSQ entries live until
                // commit while misses resolve.
                MicroOp::load(0x40_0000, (8 + i % 32) as u8, None, 0x1000_0000 + i * 4096)
            })
        };
        let mut small = cfg();
        small.lsq_size = 16;
        let mut large = cfg();
        large.lsq_size = 256; // paper's LSQ candidate maximum
        let s_small = Simulator::new(&small).run(mem_ops(20_000), 20_000);
        let s_large = Simulator::new(&large).run(mem_ops(20_000), 20_000);
        assert!(
            s_small.cycles > s_large.cycles,
            "LSQ 16 ({}) must be slower than LSQ 256 ({})",
            s_small.cycles,
            s_large.cycles
        );
    }

    /// Deeper front ends cost more per misprediction: the same
    /// hard-branch stream loses more IPC at front-end depth 12 than 4.
    #[test]
    fn deeper_frontend_pays_more_per_mispredict() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let hard: Vec<_> = (0..40_000u64)
            .map(|_| MicroOp::branch(0x40_0000, None, rng.gen::<bool>(), 0x41_0000))
            .collect();
        let mut shallow = cfg();
        shallow.frontend_depth = 4;
        let mut deep = cfg();
        deep.frontend_depth = 12;
        let s_shallow = Simulator::new(&shallow).run(hard.clone(), 40_000);
        let s_deep = Simulator::new(&deep).run(hard, 40_000);
        assert!(s_deep.cycles > s_shallow.cycles);
    }

    #[test]
    #[should_panic(expected = "invalid core config")]
    fn invalid_config_panics() {
        let mut c = cfg();
        c.width = 0;
        let _ = Simulator::new(&c);
    }
}
