//! The out-of-order timing engine.
//!
//! A constraint-based trace-timing model: each micro-op's pipeline
//! events are computed in program order from the machine's structural
//! limits, while issue itself is out of order (a younger ready op may
//! claim an earlier issue slot than an older stalled one). This is the
//! standard dependency-driven formulation of an OoO timing simulator —
//! it reproduces the first-order behaviours the paper's exploration
//! depends on (window-size vs. memory-latency tolerance, clock vs.
//! structure sizing, misprediction vs. pipeline depth) at a cost of
//! O(1) amortized work per op.
//!
//! # Hot-path layout
//!
//! Every campaign in the workspace bottoms out in [`Simulator::step`],
//! so its bookkeeping is organized around three invariants (proved in
//! DESIGN.md "Simulator hot path", enforced by
//! `tests/engine_equivalence.rs` against
//! [`crate::ReferenceSimulator`]):
//!
//! * **Issue-slot frontier.** Every slot request is at least
//!   `cur_fetch + frontend_depth + sched_depth`, and `cur_fetch` never
//!   decreases — so per-cycle slot counters live in a sliding
//!   [`SlotWindow`]: a dense ring indexed `cycle & (SLOT_WINDOW-1)`
//!   for the cycles near the frontier, and a small sorted spill list
//!   for far-future claims. O(1) amortized, no hashing, no allocation
//!   in the common case, and auxiliary state is O(window) instead of
//!   the old `HashMap`'s O(ops-between-prunes).
//! * **Store-ring recency.** The 64-entry forwarding ring holds the
//!   last [`STORE_RING`] stores, so a load can only forward if some
//!   store to its (8-byte-aligned) address happened in the last 64
//!   stores. A per-address-hash table of last-store sequence numbers
//!   proves most loads *cannot* match, skipping the linear scan; the
//!   scan itself is unchanged when a match is possible, so forwarding
//!   semantics (max data-ready among matching ring entries) are
//!   untouched.
//! * **Per-op state stays in registers.** The structural parameters
//!   are hoisted out of [`CoreConfig`] into scalar fields at
//!   construction, ring indices are carried incrementally instead of
//!   recomputed with `%` (a division) per op, and operand readiness
//!   reads through a sentinel register slot so the `Option<u8>` source
//!   selects compile to branchless max chains.

use crate::cache::{Hierarchy, PrefetchKind};
use crate::config::CoreConfig;
use crate::predictor::{Predictor, PredictorKind};
use crate::stats::SimStats;
use xps_workload::{MicroOp, OpClass, REG_COUNT};

/// Execution latencies (cycles) by op class.
const LAT_ALU: u64 = 1;
const LAT_MUL: u64 = 3;
const LAT_DIV: u64 = 20;
const LAT_BRANCH: u64 = 1;
/// Address-generation latency before a memory access starts.
const LAT_AGEN: u64 = 1;
/// Store-to-load forwarding latency.
const LAT_FORWARD: u64 = 1;
/// Entries in the store ring searched for forwarding.
const STORE_RING: usize = 64;
/// Buckets in the store-forwarding filter (power of two). Collisions
/// only cost a wasted ring scan, never a wrong result.
const STORE_FILTER: usize = 256;
/// Dense slot-counter window in cycles (power of two). Claims beyond
/// the window spill to a sorted list; see [`SlotWindow`].
const SLOT_WINDOW: usize = 4096;
/// Sentinel index one past the architectural registers: reads for an
/// absent source land here (always 0, never written).
const NO_SRC: usize = REG_COUNT;

/// Per-cycle issue-slot usage over a sliding window of cycles.
///
/// The window floor (`base`) only moves forward, and only to cycles no
/// future request can precede; counters for cycles below the floor are
/// dead and their ring entries are reused. Claims landing at or beyond
/// `base + SLOT_WINDOW` go to `spill`, kept sorted by cycle and
/// migrated into the ring as the floor advances. ROB back-pressure
/// bounds the live span, so the spill list stays O(rob), not O(ops).
#[derive(Debug, Clone)]
struct SlotWindow {
    /// Issue width: max claims per cycle.
    width: u32,
    /// Counter for in-window cycle `c` lives at `ring[c & MASK]`.
    ring: Vec<u32>,
    /// First cycle of the dense window.
    base: u64,
    /// Far-future claims, ascending by cycle; live from `head` on.
    spill: Vec<(u64, u32)>,
    head: usize,
}

impl SlotWindow {
    const MASK: usize = SLOT_WINDOW - 1;

    fn new(width: u32) -> SlotWindow {
        SlotWindow {
            width,
            ring: vec![0; SLOT_WINDOW],
            base: 0,
            spill: Vec::new(),
            head: 0,
        }
    }

    /// Raise the window floor to `frontier`: no request at a cycle
    /// below it will ever be made again (callers derive it from the
    /// monotone fetch frontier). Vacated ring entries are zeroed for
    /// the cycles that slide into view; spill entries now inside the
    /// window move into the ring.
    fn advance(&mut self, frontier: u64) {
        if frontier <= self.base {
            return;
        }
        if frontier - self.base >= SLOT_WINDOW as u64 {
            self.ring.fill(0);
        } else {
            for c in self.base..frontier {
                self.ring[c as usize & Self::MASK] = 0;
            }
        }
        self.base = frontier;
        if self.head < self.spill.len() {
            self.migrate();
        }
    }

    /// Move spill entries that fell inside (or behind) the window.
    #[cold]
    fn migrate(&mut self) {
        let limit = self.base + SLOT_WINDOW as u64;
        while let Some(&(c, n)) = self.spill.get(self.head) {
            if c >= limit {
                break;
            }
            self.head += 1;
            // Entries behind the floor are dead; in-window entries
            // take over their (just-vacated) ring slot.
            if c >= self.base {
                self.ring[c as usize & Self::MASK] = n;
            }
        }
        // Compact once the dead prefix dominates, so the list's memory
        // tracks the live span instead of growing with the trace.
        if self.head > 64 && self.head * 2 >= self.spill.len() {
            self.spill.drain(..self.head);
            self.head = 0;
        }
    }

    /// Claim the earliest cycle at or after `desired` with a free
    /// slot. `desired` must be at or above the window floor.
    fn alloc(&mut self, desired: u64) -> u64 {
        debug_assert!(
            desired >= self.base,
            "slot request {desired} below window floor {}",
            self.base
        );
        let limit = self.base + SLOT_WINDOW as u64;
        let mut c = desired;
        while c < limit {
            let used = &mut self.ring[c as usize & Self::MASK];
            if *used < self.width {
                *used += 1;
                return c;
            }
            c += 1;
        }
        self.alloc_spill(c)
    }

    /// Slow path: claim at or after `c`, which is beyond the dense
    /// window.
    #[cold]
    fn alloc_spill(&mut self, mut c: u64) -> u64 {
        loop {
            match self.spill[self.head..].binary_search_by_key(&c, |&(cycle, _)| cycle) {
                Ok(i) => {
                    let used = &mut self.spill[self.head + i];
                    if used.1 < self.width {
                        used.1 += 1;
                        return c;
                    }
                    c += 1;
                }
                Err(i) => {
                    self.spill.insert(self.head + i, (c, 1));
                    return c;
                }
            }
        }
    }

    /// Live auxiliary entries (dense window plus live spill), for the
    /// O(window) regression test.
    fn footprint_entries(&self) -> usize {
        SLOT_WINDOW + (self.spill.len() - self.head)
    }
}

/// The simulator: construct per [`CoreConfig`], then [`Simulator::run`]
/// a trace through it.
///
/// A `Simulator` is single-use state for one run; build a fresh one (or
/// call `run` once) per (workload, configuration) measurement.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: CoreConfig,
    dcache: Hierarchy,
    predictor: Predictor,
    // Structural parameters, hoisted to scalars so `step` never chases
    // the config behind a pointer or re-widens per op.
    width: u32,
    fe: u64,
    sched: u64,
    lsqd: u64,
    wakeup: u64,
    penalty: u64,
    /// Cycle at which a dependent of each register may issue; the last
    /// slot is the always-ready sentinel for absent sources.
    regs_avail: [u64; REG_COUNT + 1],
    /// Commit cycle of op `i`, indexed `i % rob_size`.
    commit_ring: Vec<u64>,
    /// Issue cycle of op `i`, indexed `i % iq_size`.
    issue_ring: Vec<u64>,
    /// Commit cycle of the `j`-th memory op, indexed `j % lsq_size`.
    mem_ring: Vec<u64>,
    // Ring cursors carried incrementally (i % rob, i % iq,
    // mem_ops % lsq) so the hot loop performs no integer division.
    rob_idx: usize,
    iq_idx: usize,
    lsq_idx: usize,
    /// Recent stores for forwarding: (8-byte-aligned addr, data ready).
    stores: [(u64, u64); STORE_RING],
    store_head: usize,
    /// Stores processed so far (sequence numbers are 1-based).
    store_seq: u64,
    /// Last store sequence number per address-hash bucket; 0 = never.
    /// A load scans the ring only if its bucket is recent enough that
    /// a matching store could still be resident.
    store_filter: [u64; STORE_FILTER],
    /// Address-ready cycle of the most recent older store (conservative
    /// memory disambiguation: loads wait for older store addresses).
    store_addr_barrier: u64,
    /// Per-cycle issue-slot usage.
    issue_slots: SlotWindow,
    cur_fetch: u64,
    fetched_this_cycle: u32,
    redirect_barrier: u64,
    cur_commit: u64,
    commits_this_cycle: u32,
    ops: u64,
    mem_ops: u64,
    branches: u64,
    mispredicts: u64,
    last_commit: u64,
}

impl Simulator {
    /// Build a simulator for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    pub fn new(cfg: &CoreConfig) -> Simulator {
        Simulator::with_predictor(cfg, PredictorKind::Gshare)
    }

    /// Build a simulator with a non-default branch predictor (for the
    /// predictor ablation; the paper's explored design space keeps the
    /// predictor fixed).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    pub fn with_predictor(cfg: &CoreConfig, predictor: PredictorKind) -> Simulator {
        Simulator::with_options(cfg, predictor, PrefetchKind::None)
    }

    /// Build a simulator with explicit predictor and prefetcher
    /// choices (both held fixed by the paper; both ablatable here).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    pub fn with_options(
        cfg: &CoreConfig,
        predictor: PredictorKind,
        prefetch: PrefetchKind,
    ) -> Simulator {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid core config `{}`: {e}", cfg.name));
        Simulator {
            dcache: Hierarchy::with_prefetcher(&cfg.l1, &cfg.l2, cfg.mem_cycles(), prefetch),
            predictor: Predictor::of_kind(predictor),
            width: cfg.width,
            fe: u64::from(cfg.frontend_depth),
            sched: u64::from(cfg.sched_depth),
            lsqd: u64::from(cfg.lsq_depth),
            wakeup: u64::from(cfg.wakeup_extra),
            penalty: u64::from(cfg.mispredict_penalty()),
            regs_avail: [0; REG_COUNT + 1],
            commit_ring: vec![0; cfg.rob_size as usize],
            issue_ring: vec![0; cfg.iq_size as usize],
            mem_ring: vec![0; cfg.lsq_size as usize],
            rob_idx: 0,
            iq_idx: 0,
            lsq_idx: 0,
            stores: [(u64::MAX, 0); STORE_RING],
            store_head: 0,
            store_seq: 0,
            store_filter: [0; STORE_FILTER],
            store_addr_barrier: 0,
            issue_slots: SlotWindow::new(cfg.width),
            cur_fetch: 0,
            fetched_this_cycle: 0,
            redirect_barrier: 0,
            cur_commit: 0,
            commits_this_cycle: 0,
            ops: 0,
            mem_ops: 0,
            branches: 0,
            mispredicts: 0,
            last_commit: 0,
            cfg: cfg.clone(),
        }
    }

    /// Run up to `max_ops` micro-ops of `trace` through the machine and
    /// return the measurements.
    pub fn run(mut self, trace: impl IntoIterator<Item = MicroOp>, max_ops: u64) -> SimStats {
        // Consume the trace in chunks: generating a buffer of ops and
        // then stepping them keeps each side's code and branch-history
        // footprint resident instead of alternating generator and
        // engine every op (~5% on the simulator bench). One buffer per
        // run, no per-op allocation; op order is unchanged. The count
        // is carried in u64 — `take(max_ops as usize)` would silently
        // truncate a >4G-op budget on 32-bit targets.
        const CHUNK: usize = 256;
        let mut it = trace.into_iter();
        let mut buf: Vec<MicroOp> = Vec::with_capacity(CHUNK);
        let mut taken = 0u64;
        'outer: loop {
            buf.clear();
            while (buf.len() as u64) < (max_ops - taken).min(CHUNK as u64) {
                match it.next() {
                    Some(op) => buf.push(op),
                    None => break,
                }
            }
            if buf.is_empty() {
                break 'outer;
            }
            taken += buf.len() as u64;
            for op in &buf {
                self.step(op);
            }
            if taken >= max_ops {
                break;
            }
        }
        // Volatile: whether a simulation *happened* depends on which
        // racing worker lost the shared-cache race, so this event is
        // profile-only and never journaled. The attribute list is
        // inline (no heap allocation) — this closure runs once per
        // simulation during traced campaigns.
        xps_trace::instant_volatile("sim.run", || {
            xps_trace::attrs([
                ("ops", self.ops.into()),
                ("cycles", self.last_commit.into()),
            ])
        });
        SimStats {
            instructions: self.ops,
            cycles: self.last_commit,
            clock_ns: self.cfg.clock_ns,
            branches: self.branches,
            mispredicts: self.mispredicts,
            l1: self.dcache.l1_stats(),
            l2: self.dcache.l2_stats(),
        }
    }

    /// Live auxiliary bookkeeping entries of the issue-slot structure.
    /// Exposed for the O(window) regression test; not a stable API.
    #[doc(hidden)]
    pub fn issue_slot_footprint(&self) -> usize {
        self.issue_slots.footprint_entries()
    }

    /// Step a single micro-op. Exposed so tests can sample auxiliary
    /// state mid-run (e.g. [`Simulator::issue_slot_footprint`]); not a
    /// stable API — use [`Simulator::run`] for simulation.
    #[doc(hidden)]
    pub fn step_op(&mut self, op: &MicroOp) {
        self.step(op);
    }

    fn step(&mut self, op: &MicroOp) {
        let i = self.ops;
        self.ops += 1;
        let fe = self.fe;
        let rob = self.commit_ring.len() as u64;
        let iq = self.issue_ring.len() as u64;
        let lsq = self.mem_ring.len() as u64;

        // --- Fetch: bandwidth, redirects, and window back-pressure.
        let mut fetch = self.cur_fetch.max(self.redirect_barrier);
        if i >= rob {
            fetch = fetch.max(self.commit_ring[self.rob_idx].saturating_sub(fe));
        }
        if i >= iq {
            fetch = fetch.max(self.issue_ring[self.iq_idx].saturating_sub(fe));
        }
        let is_mem = op.class.is_mem();
        if is_mem && self.mem_ops >= lsq {
            fetch = fetch.max(self.mem_ring[self.lsq_idx].saturating_sub(fe));
        }
        if fetch > self.cur_fetch {
            self.cur_fetch = fetch;
            self.fetched_this_cycle = 0;
        }
        if self.fetched_this_cycle >= self.width {
            self.cur_fetch += 1;
            self.fetched_this_cycle = 0;
            fetch = self.cur_fetch;
        }
        self.fetched_this_cycle += 1;

        // --- Dispatch and operand readiness.
        let dispatch = fetch + fe;
        // Every slot request — this op's and every later op's — is at
        // least `cur_fetch + fe + sched` from here on (`cur_fetch`
        // never decreases), so cycles below that are dead: slide the
        // slot window floor up to them.
        self.issue_slots.advance(self.cur_fetch + fe + self.sched);
        let s0 = op.srcs[0].map_or(NO_SRC, usize::from);
        let s1 = op.srcs[1].map_or(NO_SRC, usize::from);
        let mut ready = (dispatch + self.sched)
            .max(self.regs_avail[s0])
            .max(self.regs_avail[s1]);
        if op.class == OpClass::Load {
            // Conservative disambiguation: wait for older store
            // addresses to be known.
            ready = ready.max(self.store_addr_barrier);
        }

        // --- Issue (out of order, width per cycle).
        let issue = self.issue_slots.alloc(ready);
        self.issue_ring[self.iq_idx] = issue;

        // --- Execute.
        let lsqd = self.lsqd;
        let complete = match op.class {
            OpClass::IntAlu => issue + LAT_ALU,
            OpClass::IntMul => issue + LAT_MUL,
            OpClass::IntDiv => issue + LAT_DIV,
            OpClass::Branch => issue + LAT_BRANCH,
            OpClass::Load => {
                let agen_done = issue + LAT_AGEN;
                let addr8 = op.addr & !7;
                // Store-to-load forwarding from the youngest matching
                // older store; the LSQ search costs its pipeline depth.
                let search_done = agen_done + lsqd;
                // The ring holds the last STORE_RING stores. If the
                // last store to this address hash is older than that
                // (or absent), no entry can match: skip the scan.
                let last = self.store_filter[Self::store_bucket(addr8)];
                let forwarded = if last + STORE_RING as u64 > self.store_seq && last > 0 {
                    self.stores
                        .iter()
                        .filter(|&&(a, _)| a == addr8)
                        .map(|&(_, data_ready)| data_ready)
                        .max()
                } else {
                    None
                };
                match forwarded {
                    Some(data_ready) => search_done.max(data_ready) + LAT_FORWARD,
                    None => self.dcache.access(op.addr, search_done),
                }
            }
            OpClass::Store => {
                // The store's *address* depends only on its address-base
                // operand (src 1), not on the data it writes (src 0), so
                // disambiguation does not serialize loads behind the
                // store's data chain.
                let addr_ready = (dispatch + self.sched).max(self.regs_avail[s1]);
                let agen_done = addr_ready + LAT_AGEN;
                let addr8 = op.addr & !7;
                // Data readiness is bounded by operand availability
                // (already folded into `issue`).
                let data_ready = issue + LAT_AGEN + lsqd;
                self.stores[self.store_head] = (addr8, data_ready);
                self.store_head = (self.store_head + 1) % STORE_RING;
                self.store_seq += 1;
                self.store_filter[Self::store_bucket(addr8)] = self.store_seq;
                self.store_addr_barrier = self.store_addr_barrier.max(agen_done);
                // The cache write happens at commit in a real machine;
                // for content tracking we touch it now.
                self.dcache.access(op.addr, agen_done);
                data_ready
            }
        };

        if let Some(d) = op.dest {
            self.regs_avail[d as usize] = complete + self.wakeup;
        }

        // --- Branch resolution.
        if let Some(b) = op.branch {
            self.branches += 1;
            let correct = self.predictor.predict_and_update(op.pc, b.taken);
            if !correct {
                self.mispredicts += 1;
                self.redirect_barrier = self.redirect_barrier.max(complete + self.penalty);
            }
            if b.taken {
                // A taken branch ends the fetch group: the front end
                // cannot fetch past a taken branch in the same cycle,
                // which is what keeps very wide machines from being
                // free on branch-dense code.
                self.cur_fetch = self.cur_fetch.max(fetch) + 1;
                self.fetched_this_cycle = 0;
            }
        }

        // --- Commit: in order, width per cycle.
        let mut c = (complete + 1).max(self.cur_commit);
        if c == self.cur_commit {
            if self.commits_this_cycle >= self.width {
                c += 1;
                self.cur_commit = c;
                self.commits_this_cycle = 1;
            } else {
                self.commits_this_cycle += 1;
            }
        } else {
            self.cur_commit = c;
            self.commits_this_cycle = 1;
        }
        self.commit_ring[self.rob_idx] = c;
        self.rob_idx += 1;
        if self.rob_idx == self.commit_ring.len() {
            self.rob_idx = 0;
        }
        self.iq_idx += 1;
        if self.iq_idx == self.issue_ring.len() {
            self.iq_idx = 0;
        }
        if is_mem {
            self.mem_ring[self.lsq_idx] = c;
            self.mem_ops += 1;
            self.lsq_idx += 1;
            if self.lsq_idx == self.mem_ring.len() {
                self.lsq_idx = 0;
            }
        }
        self.last_commit = c;
    }

    /// Filter bucket for an 8-byte-aligned store/load address.
    #[inline]
    fn store_bucket(addr8: u64) -> usize {
        (addr8 >> 3) as usize & (STORE_FILTER - 1)
    }
}

/// Simulate `ops` micro-ops of `profile` on `cfg`.
///
/// This is the standard evaluation entry point for exploration code:
/// small op budgets replay a memoized per-thread trace
/// ([`xps_workload::with_cached_trace`]) — the trace of a profile is
/// identical for every configuration evaluated against it, so the
/// generator's sampling work is paid once, not per design point —
/// while budgets past the cache bound stream from a pooled generator.
/// Both paths produce bit-identical [`SimStats`].
pub fn evaluate(profile: &xps_workload::WorkloadProfile, cfg: &CoreConfig, ops: u64) -> SimStats {
    xps_workload::with_cached_trace(profile, ops, |trace| {
        Simulator::new(cfg).run(trace.iter().copied(), ops)
    })
    .unwrap_or_else(|| {
        xps_workload::with_generator(profile, |g| Simulator::new(cfg).run(&mut *g, ops))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xps_workload::{spec, TraceGenerator};

    fn cfg() -> CoreConfig {
        CoreConfig::initial()
    }

    /// A stream of independent ALU ops sustains an IPC close to the
    /// machine width.
    #[test]
    fn independent_alu_saturates_width() {
        let c = cfg();
        let ops = (0..30_000u64)
            .map(|i| MicroOp::alu(0x40_0000 + 4 * i, (8 + (i % 16)) as u8, [None, None]));
        // Destinations recycle every 16 ops, far enough apart not to
        // serialize at width 3.
        let stats = Simulator::new(&c).run(ops, 30_000);
        let ipc = stats.ipc();
        assert!(
            ipc > 0.9 * c.width as f64,
            "independent ALU IPC {ipc} should approach width {}",
            c.width
        );
    }

    /// A single dependence chain of 1-cycle ops commits ~1 op per
    /// (1 + wakeup_extra) cycles regardless of width.
    #[test]
    fn dependent_chain_serializes() {
        let mut c = cfg();
        c.wakeup_extra = 0;
        let ops = (0..20_000u64).map(|_| MicroOp::alu(0x40_0000, 8, [Some(8), None]));
        let stats = Simulator::new(&c).run(ops, 20_000);
        let ipc = stats.ipc();
        assert!(
            (0.85..=1.05).contains(&ipc),
            "chain IPC must be ~1 with zero wakeup latency, got {ipc}"
        );

        let mut c1 = cfg();
        c1.wakeup_extra = 1;
        let ops = (0..20_000u64).map(|_| MicroOp::alu(0x40_0000, 8, [Some(8), None]));
        let stats1 = Simulator::new(&c1).run(ops, 20_000);
        let ipc1 = stats1.ipc();
        assert!(
            (0.42..=0.55).contains(&ipc1),
            "chain IPC must be ~1/2 with wakeup latency 1, got {ipc1}"
        );
    }

    /// Loads hitting a tiny region stay L1-resident; loads striding a
    /// huge region miss.
    #[test]
    fn cache_behaviour_shows_in_stats() {
        let c = cfg();
        let hits = (0..20_000u64)
            .map(|i| MicroOp::load(0x40_0000, (8 + i % 32) as u8, None, 0x1000 + (i % 64) * 8));
        let s_hit = Simulator::new(&c).run(hits, 20_000);
        assert!(s_hit.l1.miss_ratio() < 0.01, "resident set must hit");

        let misses = (0..20_000u64)
            .map(|i| MicroOp::load(0x40_0000, (8 + i % 32) as u8, None, 0x10_0000 + i * 4096));
        let s_miss = Simulator::new(&c).run(misses, 20_000);
        assert!(s_miss.l1.miss_ratio() > 0.9, "striding set must miss");
        assert!(s_miss.ipc() < s_hit.ipc());
    }

    /// Random branches cost pipeline refills; biased branches do not.
    #[test]
    fn mispredictions_cost_cycles() {
        let c = cfg();
        let biased = (0..40_000u64)
            .map(|i| MicroOp::branch(0x40_0000 + 64 * (i % 16), None, true, 0x41_0000));
        let s_good = Simulator::new(&c).run(biased, 40_000);
        assert!(s_good.mispredict_rate() < 0.05);

        // Genuinely random (but seeded) outcomes defeat the predictor.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let hard: Vec<_> = (0..40_000u64)
            .map(|_| MicroOp::branch(0x40_0000, None, rng.gen::<bool>(), 0x41_0000))
            .collect();
        let s_bad = Simulator::new(&c).run(hard, 40_000);
        assert!(s_bad.mispredict_rate() > 0.3);
        assert!(s_bad.ipc() < s_good.ipc());
    }

    /// Store-to-load forwarding beats going to memory.
    #[test]
    fn forwarding_hides_latency() {
        let c = cfg();
        // Alternate store/load to the same far-away address: the load
        // forwards instead of missing.
        let ops = (0..10_000u64).flat_map(|i| {
            let addr = 0x7000_0000;
            [
                MicroOp::store(0x40_0000, 2, addr),
                MicroOp::load(0x40_0004, (8 + i % 32) as u8, None, addr),
            ]
        });
        let s = Simulator::new(&c).run(ops, 20_000);
        // One memory miss at most (the store's allocation); loads all
        // forward, so IPC stays near 1 rather than collapsing to
        // memory latency.
        assert!(
            s.ipc() > 0.5,
            "forwarded loads keep the pipe busy: {}",
            s.ipc()
        );
    }

    /// A bigger ROB tolerates memory latency better on a
    /// pointer-chasing workload (the mcf effect).
    #[test]
    fn window_size_buys_latency_tolerance() {
        let profile = spec::profile("mcf").expect("mcf exists");
        let mut small = cfg();
        small.rob_size = 32;
        small.iq_size = 16;
        let mut large = cfg();
        large.rob_size = 1024;
        large.iq_size = 64;
        let n = 60_000;
        let s_small = Simulator::new(&small).run(TraceGenerator::new(profile.clone()), n);
        let s_large = Simulator::new(&large).run(TraceGenerator::new(profile), n);
        assert!(
            s_large.ipc() > s_small.ipc() * 1.15,
            "large window {} must beat small {} on mcf",
            s_large.ipc(),
            s_small.ipc()
        );
    }

    /// Determinism: identical runs, identical stats.
    #[test]
    fn runs_are_deterministic() {
        let c = cfg();
        let p = spec::profile("gcc").expect("gcc exists");
        let a = Simulator::new(&c).run(TraceGenerator::new(p.clone()), 30_000);
        let b = Simulator::new(&c).run(TraceGenerator::new(p), 30_000);
        assert_eq!(a, b);
    }

    /// IPC can never exceed the machine width.
    #[test]
    fn ipc_bounded_by_width() {
        for name in ["gzip", "mcf", "vortex"] {
            let c = cfg();
            let p = spec::profile(name).unwrap_or_else(|| panic!("{name} exists"));
            let s = Simulator::new(&c).run(TraceGenerator::new(p), 20_000);
            assert!(
                s.ipc() <= c.width as f64 + 1e-9,
                "{name} IPC {} > width",
                s.ipc()
            );
        }
    }

    /// Commit bandwidth caps throughput even when issue could go
    /// faster: a width-1 machine commits at most one op per cycle.
    #[test]
    fn commit_bandwidth_binds() {
        let mut c = cfg();
        c.width = 1;
        let ops = (0..20_000u64)
            .map(|i| MicroOp::alu(0x40_0000 + 4 * i, (8 + (i % 16)) as u8, [None, None]));
        let stats = Simulator::new(&c).run(ops, 20_000);
        assert!(stats.cycles >= 20_000, "width 1 needs >= 1 cycle/op");
        assert!(stats.ipc() <= 1.0 + 1e-9);
    }

    /// A tiny LSQ throttles memory-heavy code relative to a large one.
    #[test]
    fn lsq_capacity_throttles() {
        let mem_ops = |n: u64| {
            (0..n).map(|i| {
                // All loads, far apart, so LSQ entries live until
                // commit while misses resolve.
                MicroOp::load(0x40_0000, (8 + i % 32) as u8, None, 0x1000_0000 + i * 4096)
            })
        };
        let mut small = cfg();
        small.lsq_size = 16;
        let mut large = cfg();
        large.lsq_size = 256; // paper's LSQ candidate maximum
        let s_small = Simulator::new(&small).run(mem_ops(20_000), 20_000);
        let s_large = Simulator::new(&large).run(mem_ops(20_000), 20_000);
        assert!(
            s_small.cycles > s_large.cycles,
            "LSQ 16 ({}) must be slower than LSQ 256 ({})",
            s_small.cycles,
            s_large.cycles
        );
    }

    /// Deeper front ends cost more per misprediction: the same
    /// hard-branch stream loses more IPC at front-end depth 12 than 4.
    #[test]
    fn deeper_frontend_pays_more_per_mispredict() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let hard: Vec<_> = (0..40_000u64)
            .map(|_| MicroOp::branch(0x40_0000, None, rng.gen::<bool>(), 0x41_0000))
            .collect();
        let mut shallow = cfg();
        shallow.frontend_depth = 4;
        let mut deep = cfg();
        deep.frontend_depth = 12;
        let s_shallow = Simulator::new(&shallow).run(hard.clone(), 40_000);
        let s_deep = Simulator::new(&deep).run(hard, 40_000);
        assert!(s_deep.cycles > s_shallow.cycles);
    }

    #[test]
    #[should_panic(expected = "invalid core config")]
    fn invalid_config_panics() {
        let mut c = cfg();
        c.width = 0;
        let _ = Simulator::new(&c);
    }

    /// The slot window hands out exactly `width` claims per cycle and
    /// spills far-future claims without losing them.
    #[test]
    fn slot_window_width_and_spill() {
        let mut w = SlotWindow::new(2);
        assert_eq!(w.alloc(10), 10);
        assert_eq!(w.alloc(10), 10);
        assert_eq!(w.alloc(10), 11, "cycle 10 is full at width 2");
        // A far-future claim lands in the spill list...
        let far = SLOT_WINDOW as u64 + 100;
        assert_eq!(w.alloc(far), far);
        assert_eq!(w.alloc(far), far);
        assert_eq!(w.alloc(far), far + 1, "spill respects width too");
        // ...and survives the floor advancing past the window edge.
        w.advance(200);
        assert_eq!(w.base, 200);
        w.advance(far - 10);
        assert_eq!(w.alloc(far), far + 1, "migrated count is preserved");
    }

    /// Advancing the floor reclaims dead cycles so their slots can be
    /// reused by the cycles that slide into view.
    #[test]
    fn slot_window_reuses_vacated_slots() {
        let mut w = SlotWindow::new(1);
        assert_eq!(w.alloc(0), 0);
        assert_eq!(w.alloc(0), 1);
        w.advance(SLOT_WINDOW as u64);
        // The ring slot that held cycle 0 now represents SLOT_WINDOW.
        assert_eq!(w.alloc(SLOT_WINDOW as u64), SLOT_WINDOW as u64);
    }
}
