//! Data-cache hierarchy: set-associative LRU caches with write-back,
//! write-allocate policy and outstanding-miss merging.

use crate::config::CacheConfig;
use serde::{Deserialize, Serialize};

/// Hit/miss counters of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of accesses.
    pub accesses: u64,
    /// Number of misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio (0 if the cache was never accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One level of set-associative, true-LRU data cache.
///
/// Timing is handled by [`Hierarchy`]; this type tracks only contents.
#[derive(Debug, Clone)]
pub struct DataCache {
    /// Tag per way per set; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// LRU ordering per set: smaller = more recently used.
    lru: Vec<u32>,
    sets: u32,
    assoc: u32,
    offset_bits: u32,
    /// Set-index bits when `sets` is a power of two (the common case
    /// for every explored geometry); the set/tag split is then a
    /// mask/shift instead of two integer divisions per access.
    set_bits: Option<u32>,
    stats: CacheStats,
}

impl DataCache {
    /// Build a cache from its configuration.
    pub fn new(cfg: &CacheConfig) -> DataCache {
        let sets = cfg.geometry.sets;
        let assoc = cfg.geometry.assoc;
        DataCache {
            tags: vec![u64::MAX; (sets * assoc) as usize],
            lru: (0..sets * assoc).map(|i| i % assoc).collect(),
            sets,
            assoc,
            offset_bits: cfg.geometry.offset_bits(),
            set_bits: sets.is_power_of_two().then(|| sets.trailing_zeros()),
            stats: CacheStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.offset_bits;
        match self.set_bits {
            // Identical split to the modulo/divide below, minus the
            // divisions.
            Some(bits) => ((block & u64::from(self.sets - 1)) as usize, block >> bits),
            None => (
                (block % u64::from(self.sets)) as usize,
                block / u64::from(self.sets),
            ),
        }
    }

    /// Access `addr`; returns `true` on hit. On miss the block is
    /// allocated, evicting the LRU way.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.assoc as usize;
        let ways = &mut self.tags[base..base + self.assoc as usize];
        if let Some(hit_way) = ways.iter().position(|&t| t == tag) {
            self.touch(set, hit_way);
            return true;
        }
        self.stats.misses += 1;
        // Evict the LRU way (largest recency value).
        let lru_slice = &self.lru[base..base + self.assoc as usize];
        let victim = lru_slice
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.tags[base + victim] = tag;
        self.touch(set, victim);
        false
    }

    /// Allocate `addr`'s block without touching the statistics (used
    /// for prefetch installs). The LRU state is updated as for an
    /// ordinary fill.
    pub fn install(&mut self, addr: u64) {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.assoc as usize;
        if self.tags[base..base + self.assoc as usize].contains(&tag) {
            return;
        }
        let victim = self.lru[base..base + self.assoc as usize]
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.tags[base + victim] = tag;
        self.touch(set, victim);
    }

    /// Probe without modifying contents or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.assoc as usize;
        self.tags[base..base + self.assoc as usize].contains(&tag)
    }

    fn touch(&mut self, set: usize, way: usize) {
        let base = set * self.assoc as usize;
        let old = self.lru[base + way];
        if old == 0 {
            // Already most-recently-used; nothing would shift.
            return;
        }
        for v in &mut self.lru[base..base + self.assoc as usize] {
            if *v < old {
                *v += 1;
            }
        }
        self.lru[base + way] = 0;
    }
}

/// Hardware prefetcher organizations for the data-cache hierarchy.
///
/// Prefetching is not part of the paper's explored design space (like
/// the branch predictor, it is held fixed — at "none"); these exist
/// for the prefetch ablation, which asks how much of the cache-capacity
/// customization story a prefetcher would have absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetchKind {
    /// No prefetching (the paper's configuration).
    None,
    /// On every L1 miss, install the next sequential block.
    NextLine,
    /// Detect sequential miss streams and run two blocks ahead.
    Stream,
}

/// A two-level hierarchy with access timing: returns, for each access,
/// the cycle at which the data is available, merging concurrent misses
/// to the same block (MSHR behaviour).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: DataCache,
    l2: DataCache,
    l1_lat: u64,
    l2_lat: u64,
    mem_lat: u64,
    /// Small ring of outstanding L2/memory fills, split into parallel
    /// fixed arrays (block, ready cycle) so the merge scan runs over
    /// dense in-struct data — the scan is on the path of every memory
    /// access while any fill is in flight.
    fill_block: [u64; MSHRS],
    fill_ready: [u64; MSHRS],
    /// Slots of the fill ring in use (grows to [`MSHRS`], then the ring
    /// recycles via `next_slot`).
    fill_len: usize,
    next_slot: usize,
    /// Latest ready cycle ever recorded in `outstanding`: once `now`
    /// passes it, no fill can still be in flight and the merge scan is
    /// skipped entirely.
    latest_fill: u64,
    offset_bits: u32,
    prefetch: PrefetchKind,
    last_miss_block: u64,
    prefetches: u64,
}

/// Number of in-flight fills tracked for miss merging.
const MSHRS: usize = 16;

impl Hierarchy {
    /// Build the hierarchy from the two cache configurations and the
    /// memory latency in cycles.
    pub fn new(l1: &CacheConfig, l2: &CacheConfig, mem_cycles: u32) -> Hierarchy {
        Hierarchy::with_prefetcher(l1, l2, mem_cycles, PrefetchKind::None)
    }

    /// Build a hierarchy with a hardware prefetcher (ablation use).
    pub fn with_prefetcher(
        l1: &CacheConfig,
        l2: &CacheConfig,
        mem_cycles: u32,
        prefetch: PrefetchKind,
    ) -> Hierarchy {
        Hierarchy {
            l1: DataCache::new(l1),
            l2: DataCache::new(l2),
            l1_lat: u64::from(l1.latency),
            l2_lat: u64::from(l2.latency),
            mem_lat: u64::from(mem_cycles),
            fill_block: [0; MSHRS],
            fill_ready: [0; MSHRS],
            fill_len: 0,
            next_slot: 0,
            latest_fill: 0,
            offset_bits: l1.geometry.offset_bits(),
            prefetch,
            last_miss_block: u64::MAX,
            prefetches: 0,
        }
    }

    /// Number of blocks installed by the prefetcher.
    pub fn prefetch_installs(&self) -> u64 {
        self.prefetches
    }

    /// Install prefetched blocks after a demand miss to `block`.
    /// Prefetches are modeled as timely (no extra latency charged):
    /// the ablation measures the upper bound of what prefetching could
    /// absorb of the capacity story.
    fn issue_prefetches(&mut self, block: u64) {
        let ahead: u64 = match self.prefetch {
            PrefetchKind::None => 0,
            PrefetchKind::NextLine => 1,
            PrefetchKind::Stream => {
                if block == self.last_miss_block.wrapping_add(1) {
                    2
                } else {
                    0
                }
            }
        };
        for k in 1..=ahead {
            let addr = (block + k) << self.offset_bits;
            if !self.l1.probe(addr) {
                self.l1.install(addr);
                self.l2.install(addr);
                self.prefetches += 1;
            }
        }
        self.last_miss_block = block;
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Access `addr` at cycle `now`; returns the cycle at which the
    /// data is ready (≥ `now + l1 latency`).
    ///
    /// An access to a block whose fill is still in flight (whether it
    /// now hits the already-allocated tag or misses) completes when the
    /// fill arrives, never earlier — the MSHR merge.
    pub fn access(&mut self, addr: u64, now: u64) -> u64 {
        let after_l1 = now + self.l1_lat;
        let block = addr >> self.offset_bits;
        // Every recorded fill is ready by `latest_fill`; once `now` is
        // past it the scan cannot find a live entry.
        let pending = if now < self.latest_fill {
            // At most one entry per block can still be in flight (a
            // block re-misses only after its previous fill completed),
            // so first-match is the unique match.
            (0..self.fill_len)
                .find(|&s| self.fill_block[s] == block && self.fill_ready[s] > now)
                .map(|s| self.fill_ready[s])
        } else {
            None
        };
        if self.l1.access(addr) {
            return match pending {
                Some(ready) => ready.max(after_l1),
                None => after_l1,
            };
        }
        if let Some(ready) = pending {
            return ready.max(after_l1);
        }
        let ready = if self.l2.access(addr) {
            after_l1 + self.l2_lat
        } else {
            after_l1 + self.l2_lat + self.mem_lat
        };
        self.issue_prefetches(block);
        if self.fill_len < MSHRS {
            self.fill_block[self.fill_len] = block;
            self.fill_ready[self.fill_len] = ready;
            self.fill_len += 1;
        } else {
            self.fill_block[self.next_slot] = block;
            self.fill_ready[self.next_slot] = ready;
            self.next_slot = (self.next_slot + 1) % MSHRS;
        }
        self.latest_fill = self.latest_fill.max(ready);
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xps_cacti::CacheGeometry;

    fn small_cfg() -> CacheConfig {
        CacheConfig {
            geometry: CacheGeometry::new(4, 2, 64),
            latency: 2,
        }
    }

    fn l2_cfg() -> CacheConfig {
        CacheConfig {
            geometry: CacheGeometry::new(64, 4, 64),
            latency: 8,
        }
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = DataCache::new(&small_cfg());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1008), "same block, different word");
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().accesses, 3);
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way set: fill both ways, touch the first, then insert a
        // third conflicting block; the untouched way is evicted.
        let mut c = DataCache::new(&small_cfg());
        // Set index = (addr >> 6) % 4; use addrs mapping to set 0.
        let a = 0u64; // block 0, set 0
        let b = 4 * 64; // block 4, set 0
        let d = 8 * 64; // block 8, set 0
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // a is now MRU
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a), "a must survive");
        assert!(!c.access(b), "b was evicted");
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut c = DataCache::new(&small_cfg());
        c.access(0x40);
        let stats = c.stats();
        assert!(c.probe(0x40));
        assert!(!c.probe(0x4000));
        assert_eq!(c.stats(), stats, "probe must not count");
    }

    #[test]
    fn hierarchy_latencies_ordered() {
        let mut h = Hierarchy::new(&small_cfg(), &l2_cfg(), 100);
        let t_miss = h.access(0x10_000, 0);
        assert_eq!(t_miss, 2 + 8 + 100, "cold miss goes to memory");
        let t_hit = h.access(0x10_000, 200);
        assert_eq!(t_hit, 202, "L1 hit after fill");
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = Hierarchy::new(&small_cfg(), &l2_cfg(), 100);
        // Fill enough conflicting blocks to evict the first from the
        // tiny L1 while it remains in the larger L2.
        h.access(0, 0);
        h.access(4 * 64, 0);
        h.access(8 * 64, 0);
        let t = h.access(0, 1000);
        assert_eq!(t, 1000 + 2 + 8, "should be an L2 hit");
    }

    #[test]
    fn concurrent_misses_to_same_block_merge() {
        let mut h = Hierarchy::new(&small_cfg(), &l2_cfg(), 100);
        let t1 = h.access(0x20_000, 0);
        let t2 = h.access(0x20_008, 1); // same block, one cycle later
        assert_eq!(t2, t1, "second request rides the outstanding fill");
    }

    #[test]
    fn next_line_prefetch_hits_sequential_stream() {
        let mut plain = Hierarchy::new(&small_cfg(), &l2_cfg(), 100);
        let mut pf =
            Hierarchy::with_prefetcher(&small_cfg(), &l2_cfg(), 100, PrefetchKind::NextLine);
        // Sequential blocks: with next-line prefetch, every other block
        // is already resident.
        for i in 0..64u64 {
            plain.access(i * 64, i * 300);
            pf.access(i * 64, i * 300);
        }
        assert!(pf.l1_stats().misses < plain.l1_stats().misses);
        assert!(pf.prefetch_installs() > 0);
        assert_eq!(plain.prefetch_installs(), 0);
    }

    #[test]
    fn stream_prefetch_needs_a_stream() {
        let mut pf = Hierarchy::with_prefetcher(&small_cfg(), &l2_cfg(), 100, PrefetchKind::Stream);
        // Two random, non-adjacent misses: no stream, no prefetch.
        pf.access(0x10_000, 0);
        pf.access(0x90_000, 10);
        assert_eq!(pf.prefetch_installs(), 0);
        // An ascending run triggers it.
        pf.access(0x20_000, 20);
        pf.access(0x20_040, 400);
        assert!(pf.prefetch_installs() > 0);
    }

    #[test]
    fn install_does_not_count() {
        let mut c = DataCache::new(&small_cfg());
        c.install(0x40);
        assert_eq!(c.stats().accesses, 0);
        assert!(c.probe(0x40));
    }

    #[test]
    fn miss_ratio_math() {
        let s = CacheStats {
            accesses: 8,
            misses: 2,
        };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
