//! Activity-based energy estimation for a simulated run.
//!
//! Combines the per-access energies of `xps_cacti::energy` with the
//! activity counts a run produced: every op passes the front end, the
//! issue queue's wakeup CAM, and the register file; memory ops search
//! the LSQ and access the cache hierarchy. Leakage accrues over the
//! run's wall-clock time in proportion to the storage built. This is
//! the physical layer behind the energy-aware exploration objective
//! (`xps_explore`'s EDP mode) — the extension the paper's §3
//! explicitly leaves open.

use crate::config::CoreConfig;
use crate::stats::SimStats;
use serde::{Deserialize, Serialize};
use xps_cacti::{energy, CamArray, SramArray, Technology};

/// Energy of one run, broken down by unit, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Issue-queue wakeup/select energy.
    pub window_nj: f64,
    /// Register-file / ROB read+write energy.
    pub regfile_nj: f64,
    /// LSQ search energy.
    pub lsq_nj: f64,
    /// L1 data-cache access energy.
    pub l1_nj: f64,
    /// L2 access energy.
    pub l2_nj: f64,
    /// Leakage energy over the run.
    pub leakage_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy, nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.window_nj + self.regfile_nj + self.lsq_nj + self.l1_nj + self.l2_nj + self.leakage_nj
    }

    /// Average power over a run of `time_ns`, watts.
    pub fn average_power_w(&self, time_ns: f64) -> f64 {
        if time_ns <= 0.0 {
            0.0
        } else {
            self.total_nj() / time_ns
        }
    }
}

/// Total storage bits of the configuration's modeled structures.
fn storage_bits(cfg: &CoreConfig) -> u64 {
    let caches = (cfg.l1.geometry.capacity_bytes() + cfg.l2.geometry.capacity_bytes()) * 8;
    let window = u64::from(cfg.rob_size) * 64 + u64::from(cfg.iq_size) * 128;
    let lsq = u64::from(cfg.lsq_size) * 64;
    caches + window + lsq
}

/// Estimate the energy of a completed run.
///
/// Activity model: every instruction wakes the issue queue once and
/// reads/writes the register file (two reads, one write on average —
/// the paper's port provisioning); loads and stores search the LSQ;
/// cache access counts come from the hierarchy's own statistics.
pub fn estimate_energy(tech: &Technology, cfg: &CoreConfig, stats: &SimStats) -> EnergyBreakdown {
    let pj = 1e-3; // pJ → nJ
    let n = stats.instructions as f64;

    let wakeup = energy::cam_search_energy(tech, &CamArray::new(2 * cfg.iq_size, 64, cfg.width));
    let select = energy::sram_access_energy(tech, &SramArray::new(cfg.iq_size, 64, cfg.width, 0));
    let window_nj = n * (wakeup + select) * pj;

    let rf = energy::sram_access_energy(
        tech,
        &SramArray::new(cfg.rob_size, 64, 2 * cfg.width, cfg.width),
    );
    // Two source reads plus one destination write per instruction.
    let regfile_nj = n * 3.0 * rf * pj;

    let lsq_search = energy::cam_search_energy(tech, &CamArray::new(cfg.lsq_size, 64, 2));
    let mem_ops = stats.l1.accesses as f64;
    let lsq_nj = mem_ops * lsq_search * pj;

    let l1_nj = stats.l1.accesses as f64 * energy::cache_access_energy(tech, &cfg.l1.geometry) * pj;
    let l2_nj = stats.l2.accesses as f64 * energy::cache_access_energy(tech, &cfg.l2.geometry) * pj;

    let time_ns = stats.cycles as f64 * cfg.clock_ns;
    let leakage_nj = energy::leakage_mw(storage_bits(cfg)) * 1e-3 * time_ns;

    EnergyBreakdown {
        window_nj,
        regfile_nj,
        lsq_nj,
        l1_nj,
        l2_nj,
        leakage_nj,
    }
}

/// Energy-delay product of a run, in nanojoule-seconds per (committed)
/// instruction squared — lower is better. The standard power-aware
/// figure of merit: `E/inst × time/inst`.
pub fn energy_delay_product(tech: &Technology, cfg: &CoreConfig, stats: &SimStats) -> f64 {
    if stats.instructions == 0 {
        return f64::INFINITY;
    }
    let n = stats.instructions as f64;
    let e_per_inst = estimate_energy(tech, cfg, stats).total_nj() / n;
    let time_ns = stats.cycles as f64 * cfg.clock_ns;
    let t_per_inst = time_ns / n;
    e_per_inst * t_per_inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use xps_workload::{spec, TraceGenerator};

    fn run(cfg: &CoreConfig) -> SimStats {
        let p = spec::profile("gcc").expect("known benchmark");
        Simulator::new(cfg).run(TraceGenerator::new(p), 30_000)
    }

    #[test]
    fn breakdown_sums() {
        let tech = Technology::default();
        let cfg = CoreConfig::initial();
        let stats = run(&cfg);
        let e = estimate_energy(&tech, &cfg, &stats);
        let sum = e.window_nj + e.regfile_nj + e.lsq_nj + e.l1_nj + e.l2_nj + e.leakage_nj;
        assert!((e.total_nj() - sum).abs() < 1e-9);
        assert!(e.total_nj() > 0.0);
    }

    #[test]
    fn bigger_machine_burns_more_energy() {
        let tech = Technology::default();
        let small = CoreConfig::initial();
        let mut big = CoreConfig::initial();
        big.rob_size = 1024;
        big.iq_size = 64;
        big.width = 8;
        let e_small = estimate_energy(&tech, &small, &run(&small)).total_nj();
        let e_big = estimate_energy(&tech, &big, &run(&big)).total_nj();
        assert!(e_big > e_small, "{e_big} vs {e_small}");
    }

    #[test]
    fn edp_finite_and_positive() {
        let tech = Technology::default();
        let cfg = CoreConfig::initial();
        let stats = run(&cfg);
        let edp = energy_delay_product(&tech, &cfg, &stats);
        assert!(edp.is_finite() && edp > 0.0);
    }

    #[test]
    fn power_is_plausible() {
        // A mid-2000s core burned watts, not milliwatts or kilowatts.
        let tech = Technology::default();
        let cfg = CoreConfig::initial();
        let stats = run(&cfg);
        let e = estimate_energy(&tech, &cfg, &stats);
        let time_ns = stats.cycles as f64 * cfg.clock_ns;
        let watts = e.average_power_w(time_ns);
        assert!(
            (0.05..100.0).contains(&watts),
            "average power {watts} W out of plausible range"
        );
    }

    #[test]
    fn empty_run_has_infinite_edp() {
        let tech = Technology::default();
        let cfg = CoreConfig::initial();
        let stats = SimStats {
            instructions: 0,
            cycles: 0,
            clock_ns: cfg.clock_ns,
            branches: 0,
            mispredicts: 0,
            l1: Default::default(),
            l2: Default::default(),
        };
        assert!(energy_delay_product(&tech, &cfg, &stats).is_infinite());
    }
}
