//! Branch direction predictors.
//!
//! The paper holds the predictor organization fixed across its design
//! space (it is not a Table 4 parameter), so [`crate::CoreConfig`]
//! carries no predictor field and the simulator defaults to a
//! conventional gshare. The other organizations here — bimodal,
//! two-level local, and a tournament hybrid — exist for the predictor
//! ablation (`repro ablation-predictor`), which probes how sensitive
//! the customized configurations are to that held-fixed choice.

use serde::{Deserialize, Serialize};

fn update_counter(c: &mut u8, taken: bool) {
    if taken {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

/// Which direction predictor the simulator models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Per-PC 2-bit saturating counters.
    Bimodal,
    /// Global history XOR PC indexing a counter table (the default).
    Gshare,
    /// Two-level local: per-PC history indexing a shared pattern
    /// table.
    TwoLevelLocal,
    /// Tournament: bimodal and gshare with a per-PC chooser.
    Tournament,
}

/// A gshare direction predictor: a table of 2-bit saturating counters
/// indexed by the branch PC XOR-folded with a global history register.
///
/// # Example
///
/// ```
/// use xps_sim::Gshare;
///
/// let mut p = Gshare::default();
/// // A strongly biased branch becomes predictable after warm-up.
/// for _ in 0..64 { p.predict_and_update(0x400100, true); }
/// assert!(p.predict_and_update(0x400100, true));
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    history: u64,
    history_bits: u32,
}

impl Default for Gshare {
    /// 4096-entry table with 12 bits of global history.
    fn default() -> Gshare {
        Gshare::new(12)
    }
}

impl Gshare {
    /// Create a predictor with `2^index_bits` counters and `index_bits`
    /// of global history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> Gshare {
        assert!(
            (1..=24).contains(&index_bits),
            "index bits must be in 1..=24"
        );
        Gshare {
            table: vec![2; 1 << index_bits],
            history: 0,
            history_bits: index_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (self.table.len() - 1) as u64;
        (((pc >> 2) ^ self.history) & mask) as usize
    }

    /// Direction the predictor would currently guess for `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Predict the direction of the branch at `pc`, then update the
    /// counters and history with the actual `taken` outcome. Returns
    /// whether the *prediction was correct*.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let i = self.index(pc);
        let predicted_taken = self.table[i] >= 2;
        update_counter(&mut self.table[i], taken);
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
        predicted_taken == taken
    }
}

/// Per-PC 2-bit saturating counters (no history).
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<u8>,
}

impl Default for Bimodal {
    /// 4096-entry table.
    fn default() -> Bimodal {
        Bimodal::new(12)
    }
}

impl Bimodal {
    /// Create a predictor with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> Bimodal {
        assert!(
            (1..=24).contains(&index_bits),
            "index bits must be in 1..=24"
        );
        Bimodal {
            table: vec![2; 1 << index_bits],
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & (self.table.len() - 1) as u64) as usize
    }

    /// Direction the predictor would currently guess for `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Predict, then train; returns whether the prediction was right.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let i = self.index(pc);
        let predicted = self.table[i] >= 2;
        update_counter(&mut self.table[i], taken);
        predicted == taken
    }
}

/// Two-level local predictor: a per-PC history register selects a
/// pattern-table counter, capturing per-branch periodic behaviour
/// (loop trip counts) without cross-branch interference.
#[derive(Debug, Clone)]
pub struct TwoLevelLocal {
    histories: Vec<u16>,
    patterns: Vec<u8>,
    history_bits: u32,
}

impl Default for TwoLevelLocal {
    /// 1024 history registers of 10 bits, 1024-entry pattern table.
    fn default() -> TwoLevelLocal {
        TwoLevelLocal::new(10, 10)
    }
}

impl TwoLevelLocal {
    /// Create with `2^table_bits` per-PC histories of `history_bits`
    /// bits each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is 0 or greater than 16.
    pub fn new(table_bits: u32, history_bits: u32) -> TwoLevelLocal {
        assert!((1..=16).contains(&table_bits), "table bits in 1..=16");
        assert!((1..=16).contains(&history_bits), "history bits in 1..=16");
        TwoLevelLocal {
            histories: vec![0; 1 << table_bits],
            patterns: vec![2; 1 << history_bits],
            history_bits,
        }
    }

    /// Predict, then train; returns whether the prediction was right.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let hi = ((pc >> 2) & (self.histories.len() - 1) as u64) as usize;
        let pattern = (self.histories[hi] & ((1 << self.history_bits) - 1) as u16) as usize;
        let predicted = self.patterns[pattern] >= 2;
        update_counter(&mut self.patterns[pattern], taken);
        self.histories[hi] =
            ((self.histories[hi] << 1) | u16::from(taken)) & ((1 << self.history_bits) - 1) as u16;
        predicted == taken
    }
}

/// Tournament predictor: bimodal and gshare run side by side; a per-PC
/// 2-bit chooser learns which to trust.
#[derive(Debug, Clone)]
pub struct Tournament {
    bimodal: Bimodal,
    gshare: Gshare,
    chooser: Vec<u8>,
}

impl Default for Tournament {
    /// 4 K components with a 4 K chooser.
    fn default() -> Tournament {
        Tournament {
            bimodal: Bimodal::default(),
            gshare: Gshare::default(),
            chooser: vec![2; 4096],
        }
    }
}

impl Tournament {
    /// Predict, then train all three structures; returns whether the
    /// chosen component was right.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let ci = ((pc >> 2) & (self.chooser.len() - 1) as u64) as usize;
        let use_gshare = self.chooser[ci] >= 2;
        let p_bi = self.bimodal.predict(pc);
        let p_gs = self.gshare.predict(pc);
        let chosen = if use_gshare { p_gs } else { p_bi };
        // Train the chooser toward whichever component was right.
        let bi_right = p_bi == taken;
        let gs_right = p_gs == taken;
        if gs_right != bi_right {
            update_counter(&mut self.chooser[ci], gs_right);
        }
        self.bimodal.predict_and_update(pc, taken);
        self.gshare.predict_and_update(pc, taken);
        chosen == taken
    }
}

/// Enum-dispatched predictor used by the engine.
#[derive(Debug, Clone)]
pub enum Predictor {
    /// See [`Bimodal`].
    Bimodal(Bimodal),
    /// See [`Gshare`].
    Gshare(Gshare),
    /// See [`TwoLevelLocal`].
    TwoLevelLocal(TwoLevelLocal),
    /// See [`Tournament`].
    Tournament(Tournament),
}

impl Predictor {
    /// Build the default-sized predictor of the given kind.
    pub fn of_kind(kind: PredictorKind) -> Predictor {
        match kind {
            PredictorKind::Bimodal => Predictor::Bimodal(Bimodal::default()),
            PredictorKind::Gshare => Predictor::Gshare(Gshare::default()),
            PredictorKind::TwoLevelLocal => Predictor::TwoLevelLocal(TwoLevelLocal::default()),
            PredictorKind::Tournament => Predictor::Tournament(Tournament::default()),
        }
    }

    /// Predict, then train; returns whether the prediction was right.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        match self {
            Predictor::Bimodal(p) => p.predict_and_update(pc, taken),
            Predictor::Gshare(p) => p.predict_and_update(pc, taken),
            Predictor::TwoLevelLocal(p) => p.predict_and_update(pc, taken),
            Predictor::Tournament(p) => p.predict_and_update(pc, taken),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn accuracy(p: &mut Predictor, outcomes: impl Iterator<Item = (u64, bool)>) -> f64 {
        let mut total = 0u32;
        let mut right = 0u32;
        for (pc, taken) in outcomes {
            total += 1;
            if p.predict_and_update(pc, taken) {
                right += 1;
            }
        }
        f64::from(right) / f64::from(total)
    }

    #[test]
    fn all_kinds_learn_bias() {
        for kind in [
            PredictorKind::Bimodal,
            PredictorKind::Gshare,
            PredictorKind::TwoLevelLocal,
            PredictorKind::Tournament,
        ] {
            let mut p = Predictor::of_kind(kind);
            let acc = accuracy(&mut p, (0..2000).map(|_| (0x40_0000, true)));
            assert!(acc > 0.95, "{kind:?} biased accuracy {acc}");
        }
    }

    #[test]
    fn gshare_learns_short_loop_pattern() {
        let mut p = Gshare::default();
        let mut correct = 0;
        let n = 4000;
        for i in 0..n {
            let taken = i % 4 != 3;
            if p.predict_and_update(0x40_0040, taken) {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / n as f64 > 0.9,
            "loop pattern must be learnable: {correct}/{n}"
        );
    }

    #[test]
    fn local_beats_bimodal_on_loops() {
        let run = |kind: PredictorKind| {
            let mut p = Predictor::of_kind(kind);
            accuracy(
                &mut p,
                (0..8000u64).map(|i| (0x40_0000 + 64 * (i % 4), (i / 4) % 5 != 4)),
            )
        };
        let local = run(PredictorKind::TwoLevelLocal);
        let bimodal = run(PredictorKind::Bimodal);
        assert!(
            local > bimodal,
            "local {local} should beat bimodal {bimodal} on loop patterns"
        );
    }

    #[test]
    fn tournament_at_least_as_good_as_components_on_mixed_load() {
        // A mix of a loop branch and a biased branch.
        let stream = |n: u64| {
            (0..n).map(|i| {
                if i % 2 == 0 {
                    (0x40_0000u64, (i / 2) % 4 != 3) // loop
                } else {
                    (0x40_1000u64, true) // biased
                }
            })
        };
        let mut t = Predictor::of_kind(PredictorKind::Tournament);
        let mut b = Predictor::of_kind(PredictorKind::Bimodal);
        let at = accuracy(&mut t, stream(20_000));
        let ab = accuracy(&mut b, stream(20_000));
        assert!(at >= ab - 0.01, "tournament {at} vs bimodal {ab}");
    }

    #[test]
    fn random_branch_near_half_for_all() {
        for kind in [
            PredictorKind::Bimodal,
            PredictorKind::Gshare,
            PredictorKind::TwoLevelLocal,
            PredictorKind::Tournament,
        ] {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
            let mut p = Predictor::of_kind(kind);
            let acc = accuracy(&mut p, (0..20_000).map(|_| (0x40_0080, rng.gen::<bool>())));
            assert!((0.4..0.6).contains(&acc), "{kind:?} random accuracy {acc}");
        }
    }

    #[test]
    #[should_panic(expected = "index bits")]
    fn zero_bits_rejected() {
        Gshare::new(0);
    }

    #[test]
    #[should_panic(expected = "table bits")]
    fn local_zero_bits_rejected() {
        TwoLevelLocal::new(0, 10);
    }
}
