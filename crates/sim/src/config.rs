//! Core configuration: the design parameters of one processor.

use serde::{Deserialize, Serialize};
use xps_cacti::CacheGeometry;

/// Memory access latency in nanoseconds (paper Table 2).
pub const MEMORY_LATENCY_NS: f64 = 50.0;
/// Front-end (fetch/decode/rename) latency in nanoseconds added to the
/// misprediction penalty (paper Table 2).
pub const FRONTEND_LATENCY_NS: f64 = 2.0;

/// One cache level: its geometry plus the pipelined access latency (in
/// cycles) the design allots to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Physical organization (sets, associativity, block size).
    pub geometry: CacheGeometry,
    /// Access latency in clock cycles (the unit's pipeline depth).
    pub latency: u32,
}

/// A complete superscalar core configuration — the paper's
/// *configurational characteristics* of a workload are exactly the
/// fields of this struct (compare Table 4).
///
/// Use [`CoreConfig::initial`] for the paper's Table 3 starting point,
/// and [`CoreConfig::validate`] before simulating hand-built values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Label (usually the benchmark the core was customized for).
    pub name: String,
    /// Clock period in nanoseconds.
    pub clock_ns: f64,
    /// Dispatch, issue, and commit width (the paper varies them
    /// together).
    pub width: u32,
    /// Pipeline depth of the front end (fetch→rename), in stages.
    pub frontend_depth: u32,
    /// Reorder-buffer (and register-file) size, entries.
    pub rob_size: u32,
    /// Issue-queue size, entries.
    pub iq_size: u32,
    /// Load-store-queue size, entries.
    pub lsq_size: u32,
    /// Minimum latency, in cycles, between a producer finishing
    /// execution and a dependent being awakened (0 = back-to-back).
    pub wakeup_extra: u32,
    /// Pipeline depth of the scheduler / register file.
    pub sched_depth: u32,
    /// Pipeline depth of the LSQ search.
    pub lsq_depth: u32,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// L2 unified (modeled as data) cache.
    pub l2: CacheConfig,
}

/// The canonical identity of a [`CoreConfig`]: every simulated
/// parameter, excluding the display `name`. Two configurations with
/// equal keys are the same design regardless of which benchmark they
/// were named after, which is what lets the exploration layer memoize
/// evaluations across renamed copies of one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConfigKey {
    /// Exact bit pattern of the clock period (no rounding).
    clock_bits: u64,
    width: u32,
    frontend_depth: u32,
    rob_size: u32,
    iq_size: u32,
    lsq_size: u32,
    wakeup_extra: u32,
    sched_depth: u32,
    lsq_depth: u32,
    l1: CacheConfig,
    l2: CacheConfig,
}

impl CoreConfig {
    /// The name-independent identity of this configuration (see
    /// [`ConfigKey`]).
    pub fn canonical_key(&self) -> ConfigKey {
        ConfigKey {
            clock_bits: self.clock_ns.to_bits(),
            width: self.width,
            frontend_depth: self.frontend_depth,
            rob_size: self.rob_size,
            iq_size: self.iq_size,
            lsq_size: self.lsq_size,
            wakeup_extra: self.wakeup_extra,
            sched_depth: self.sched_depth,
            lsq_depth: self.lsq_depth,
            l1: self.l1,
            l2: self.l2,
        }
    }

    /// The paper's Table 3 initial configuration, shared by every
    /// benchmark at the start of exploration: 3-wide, 128-entry ROB,
    /// 64-entry IQ and LSQ, 0.33 ns clock, 4-cycle L1, 12-cycle L2.
    pub fn initial() -> CoreConfig {
        CoreConfig {
            name: "initial".to_string(),
            clock_ns: 0.33,
            width: 3,
            frontend_depth: 6,
            rob_size: 128,
            iq_size: 64,
            lsq_size: 64,
            wakeup_extra: 1,
            sched_depth: 1,
            lsq_depth: 2,
            l1: CacheConfig {
                // 32 KB, 2-way, 64 B blocks.
                geometry: CacheGeometry::new(256, 2, 64),
                latency: 4,
            },
            l2: CacheConfig {
                // 1 MB, 4-way, 128 B blocks.
                geometry: CacheGeometry::new(2048, 4, 128),
                latency: 12,
            },
        }
    }

    /// Number of cycles of a full memory access at this clock
    /// (the paper's "No. of cycles for memory access"): the fixed 50 ns
    /// memory latency expressed in this design's cycles.
    pub fn mem_cycles(&self) -> u32 {
        (MEMORY_LATENCY_NS / self.clock_ns).ceil() as u32
    }

    /// The front-end pipeline depth implied by a clock period: the
    /// fixed 2 ns of fetch/decode/rename work divided across stages of
    /// `clock - latch` useful time. This reproduces every front-end
    /// depth of the paper's Table 4 (e.g. 4 stages at 0.49 ns, 6 at
    /// 0.33 ns, 12 at 0.19 ns with the 0.03 ns latch).
    pub fn derived_frontend_depth(clock_ns: f64, latch_ns: f64) -> u32 {
        ((FRONTEND_LATENCY_NS / (clock_ns - latch_ns).max(1e-3)).floor() as u32).max(2)
    }

    /// Full branch-misprediction penalty in cycles: the front-end pipe
    /// that must refill behind a redirect (the paper's Table 2 calls
    /// the 2 ns front-end latency "the extra branch misprediction
    /// penalty"; it is realized as these stages).
    pub fn mispredict_penalty(&self) -> u32 {
        self.frontend_depth
    }

    /// Clock frequency in GHz.
    pub fn frequency_ghz(&self) -> f64 {
        1.0 / self.clock_ns
    }

    /// Validate structural constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: positive
    /// clock, width in 1..=16, non-zero structures, IQ not larger than
    /// the ROB, and non-zero pipeline depths.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.clock_ns.is_finite() && self.clock_ns > 0.0) {
            return Err(format!("clock period must be positive: {}", self.clock_ns));
        }
        if !(1..=16).contains(&self.width) {
            return Err(format!("width out of range 1..=16: {}", self.width));
        }
        if self.rob_size == 0 || self.iq_size == 0 || self.lsq_size == 0 {
            return Err("ROB, IQ, and LSQ must be non-empty".to_string());
        }
        if self.iq_size > self.rob_size {
            return Err(format!(
                "issue queue ({}) cannot exceed ROB ({})",
                self.iq_size, self.rob_size
            ));
        }
        if self.frontend_depth == 0 || self.sched_depth == 0 || self.lsq_depth == 0 {
            return Err("pipeline depths must be at least 1".to_string());
        }
        if self.l1.latency == 0 || self.l2.latency == 0 {
            return Err("cache latencies must be at least 1 cycle".to_string());
        }
        if self.l2.geometry.capacity_bytes() < self.l1.geometry.capacity_bytes() {
            return Err("L2 must be at least as large as L1".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_matches_table3() {
        let c = CoreConfig::initial();
        c.validate().expect("Table 3 config is valid");
        assert_eq!(c.width, 3);
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.iq_size, 64);
        assert_eq!(c.lsq_size, 64);
        assert_eq!(c.frontend_depth, 6);
        assert!((c.clock_ns - 0.33).abs() < 1e-12);
        assert_eq!(c.l1.latency, 4);
        assert_eq!(c.l2.latency, 12);
        assert_eq!(c.lsq_depth, 2);
        // Table 3 lists 172 memory cycles at the 0.33 ns clock; with the
        // pure 50 ns / clock derivation we get 152 (the paper folds in
        // additional controller overhead it does not specify).
        assert_eq!(c.mem_cycles(), 152);
    }

    #[test]
    fn derived_frontend_depth_matches_table4() {
        // Every (clock, front-end depth) pair published in Table 4.
        for (clock, depth) in [
            (0.49, 4),
            (0.19, 12),
            (0.33, 6),
            (0.31, 7),
            (0.29, 7),
            (0.45, 4),
            (0.27, 8),
            (0.30, 7),
        ] {
            assert_eq!(
                CoreConfig::derived_frontend_depth(clock, 0.03),
                depth,
                "clock {clock}"
            );
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = CoreConfig::initial();
        c.width = 0;
        assert!(c.validate().is_err());

        let mut c = CoreConfig::initial();
        c.iq_size = c.rob_size * 2;
        assert!(c.validate().is_err());

        let mut c = CoreConfig::initial();
        c.clock_ns = -1.0;
        assert!(c.validate().is_err());

        let mut c = CoreConfig::initial();
        c.l2.geometry = CacheGeometry::new(32, 1, 8);
        assert!(c.validate().is_err());
    }

    #[test]
    fn canonical_key_ignores_name_only() {
        let a = CoreConfig::initial();
        let mut b = a.clone();
        b.name = "renamed-for-mcf".to_string();
        assert_eq!(a.canonical_key(), b.canonical_key());
        let mut c = a.clone();
        c.rob_size += 1;
        assert_ne!(a.canonical_key(), c.canonical_key());
        let mut d = a.clone();
        d.clock_ns += 1e-9;
        assert_ne!(
            a.canonical_key(),
            d.canonical_key(),
            "key must be exact in the clock, not rounded"
        );
    }

    #[test]
    fn frequency_is_reciprocal() {
        let mut c = CoreConfig::initial();
        c.clock_ns = 0.25;
        assert!((c.frequency_ghz() - 4.0).abs() < 1e-12);
    }
}
