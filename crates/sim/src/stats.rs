//! Simulation statistics.

use crate::cache::CacheStats;
use serde::{Deserialize, Serialize};

/// The measurements of one simulation run.
///
/// The paper's figure of merit is IPT — instructions per time unit
/// (here: per nanosecond) — because cycle count alone cannot compare
/// designs with different clock periods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Committed instruction count.
    pub instructions: u64,
    /// Total cycles (commit cycle of the last instruction).
    pub cycles: u64,
    /// Clock period of the simulated core, ns.
    pub clock_ns: f64,
    /// Dynamic conditional branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// L1 data-cache counters.
    pub l1: CacheStats,
    /// L2 cache counters.
    pub l2: CacheStats,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Instructions per nanosecond — the paper's IPT metric.
    pub fn ipt(&self) -> f64 {
        self.ipc() / self.clock_ns
    }

    /// Branch misprediction rate (mispredicts per branch).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// L1 misses per kilo-instruction.
    pub fn l1_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l1.misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// L2 misses per kilo-instruction.
    pub fn l2_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2.misses as f64 * 1000.0 / self.instructions as f64
        }
    }
}

// Stats cross thread boundaries in the parallel exploration layer and
// are cloned out of the evaluation cache; keep those properties.
const _: () = {
    const fn thread_safe_and_clonable<T: Send + Sync + Clone>() {}
    thread_safe_and_clonable::<SimStats>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimStats {
        SimStats {
            instructions: 1000,
            cycles: 500,
            clock_ns: 0.5,
            branches: 100,
            mispredicts: 5,
            l1: CacheStats {
                accesses: 300,
                misses: 30,
            },
            l2: CacheStats {
                accesses: 30,
                misses: 3,
            },
        }
    }

    #[test]
    fn derived_metrics() {
        let s = sample();
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.ipt() - 4.0).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.05).abs() < 1e-12);
        assert!((s.l1_mpki() - 30.0).abs() < 1e-12);
        assert!((s.l2_mpki() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let mut s = sample();
        s.cycles = 0;
        s.instructions = 0;
        s.branches = 0;
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.l1_mpki(), 0.0);
    }
}
