//! The optimized cycle engine must be a drop-in replacement for the
//! pre-overhaul [`ReferenceSimulator`]: bit-identical [`SimStats`] on
//! every trace and configuration. These tests drive both engines over
//! the full SPEC profile set, proptest-randomized configurations, and
//! adversarial store/load aliasing streams built to stress exactly the
//! bookkeeping the overhaul replaced (issue-slot ring vs `HashMap`,
//! filtered store-forwarding lookup vs unconditional 64-entry scan).
//!
//! A final regression test pins the memory story: the optimized
//! engine's auxiliary issue-slot state must stay O(window), not grow
//! with the number of ops simulated.

use proptest::prelude::*;
use xps_cacti::CacheGeometry;
use xps_sim::{CacheConfig, CoreConfig, ReferenceSimulator, SimStats, Simulator};
use xps_workload::{spec, MicroOp, TraceGenerator, REG_COUNT};

fn reference_stats(cfg: &CoreConfig, trace: &[MicroOp]) -> SimStats {
    ReferenceSimulator::new(cfg).run(trace.iter().copied(), trace.len() as u64)
}

fn optimized_stats(cfg: &CoreConfig, trace: &[MicroOp]) -> SimStats {
    Simulator::new(cfg).run(trace.iter().copied(), trace.len() as u64)
}

/// Every SPEC profile, both the initial design point and a stressed
/// narrow/shallow one, through both engines.
#[test]
fn spec_profiles_match_reference() {
    let mut narrow = CoreConfig::initial();
    narrow.name = "narrow".to_string();
    narrow.width = 1;
    narrow.rob_size = 32;
    narrow.iq_size = 8;
    narrow.lsq_size = 16;
    for p in spec::all_profiles() {
        let trace: Vec<MicroOp> = TraceGenerator::new(p.clone()).take(30_000).collect();
        for cfg in [&CoreConfig::initial(), &narrow] {
            assert_eq!(
                optimized_stats(cfg, &trace),
                reference_stats(cfg, &trace),
                "engines diverge on {} with config {}",
                p.name,
                cfg.name
            );
        }
    }
}

fn arb_config() -> impl Strategy<Value = CoreConfig> {
    (
        0.15f64..0.6,
        1u32..9,
        prop::sample::select(vec![32u32, 64, 128, 256, 512]),
        prop::sample::select(vec![8u32, 16, 32, 64]),
        prop::sample::select(vec![16u32, 32, 64, 128]),
        0u32..4,
        1u32..5,
        (
            1u32..6,
            prop::sample::select(vec![64u32, 128, 256]),
            prop::sample::select(vec![1u32, 2, 4]),
        ),
        (
            4u32..25,
            prop::sample::select(vec![1024u32, 2048]),
            prop::sample::select(vec![4u32, 8]),
        ),
    )
        .prop_map(|(clock, width, rob, iq, lsq, wakeup, sched, l1, l2)| {
            let (l1_lat, l1_sets, l1_assoc) = l1;
            let (l2_lat, l2_sets, l2_assoc) = l2;
            CoreConfig {
                name: "prop".to_string(),
                clock_ns: clock,
                width,
                frontend_depth: CoreConfig::derived_frontend_depth(clock, 0.03),
                rob_size: rob,
                iq_size: iq.min(rob),
                lsq_size: lsq,
                wakeup_extra: wakeup,
                sched_depth: sched,
                lsq_depth: 2,
                l1: CacheConfig {
                    geometry: CacheGeometry::new(l1_sets, l1_assoc, 64),
                    latency: l1_lat,
                },
                l2: CacheConfig {
                    geometry: CacheGeometry::new(l2_sets, l2_assoc, 128),
                    latency: l2_lat,
                },
            }
        })
}

/// One micro-op of an adversarial aliasing stream. The generator keeps
/// every address inside a handful of 8-byte blocks so loads constantly
/// hit (and miss) the store-forwarding window, and register indices
/// stay dense so dependency chains cross op classes. Stores land at
/// sub-block offsets too, so forwarding has to match on the aligned
/// block, not the raw address.
fn arb_aliasing_op() -> impl Strategy<Value = MicroOp> {
    const BLOCKS: [u64; 7] = [0, 8, 16, 24, 4096, 4104, 1 << 20];
    let reg = REG_COUNT as u8;
    (
        0u8..4,               // op class selector
        0u64..64,             // pc (dense: predictor aliasing)
        0u8..reg,             // dest / data register
        0u8..(2 * reg),       // optional source (>= reg means None)
        0usize..BLOCKS.len(), // which aliasing block
        0u64..8,              // sub-block offset for stores
        0u8..2,               // branch outcome
    )
        .prop_map(move |(kind, pc, r1, r2, bi, off, flag)| {
            let block = BLOCKS[bi];
            let src = (r2 < reg).then_some(r2);
            match kind {
                0 => MicroOp::store(pc, r1, block + off),
                1 => MicroOp::load(pc, r1, src, block),
                2 => MicroOp::alu(pc, r1, [src, None]),
                _ => MicroOp::branch(pc, src, flag == 1, pc ^ 0x40),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized configurations on generated SPEC traces produce
    /// bit-identical stats from both engines.
    #[test]
    fn random_configs_match_reference(
        cfg in arb_config(),
        which in 0usize..spec::BENCHMARKS.len(),
    ) {
        let p = spec::profile(spec::BENCHMARKS[which]).expect("known benchmark");
        let trace: Vec<MicroOp> = TraceGenerator::new(p).take(8_000).collect();
        prop_assert_eq!(optimized_stats(&cfg, &trace), reference_stats(&cfg, &trace));
    }

    /// Adversarial store/load aliasing streams — the worst case for
    /// the filtered forwarding lookup — still match the reference's
    /// unconditional linear scan exactly.
    #[test]
    fn aliasing_streams_match_reference(
        trace in (1usize..2_000)
            .prop_flat_map(|n| prop::collection::vec(arb_aliasing_op(), n)),
        cfg in arb_config(),
    ) {
        prop_assert_eq!(optimized_stats(&cfg, &trace), reference_stats(&cfg, &trace));
    }
}

/// The issue-slot structure must stay bounded by the scheduling window,
/// not the op count: simulating 16x more ops of a stall-heavy stream
/// may not grow the auxiliary footprint. (The pre-overhaul `HashMap`
/// grew one entry per distinct issue cycle between periodic sweeps —
/// O(ops) between sweeps and O(total cycles / sweeps) after.)
#[test]
fn issue_slot_state_is_o_window_not_o_ops() {
    // Long-latency divides spread issue cycles far apart (every op
    // lands in a fresh cycle), which is the access pattern that made
    // the HashMap grow without bound.
    let stall_op = |i: u64| {
        let mut op = MicroOp::alu(
            i % 64,
            (8 + i % 8) as u8,
            [Some((8 + (i + 1) % 8) as u8), None],
        );
        op.class = xps_workload::OpClass::IntDiv;
        op
    };
    let cfg = CoreConfig::initial();
    let mut sim = Simulator::new(&cfg);
    let mut peak_short = 0usize;
    for i in 0..10_000u64 {
        sim.step_op(&stall_op(i));
        peak_short = peak_short.max(sim.issue_slot_footprint());
    }
    let mut sim = Simulator::new(&cfg);
    let mut peak_long = 0usize;
    for i in 0..160_000u64 {
        sim.step_op(&stall_op(i));
        peak_long = peak_long.max(sim.issue_slot_footprint());
    }
    assert!(
        peak_long <= peak_short.max(1) * 2,
        "auxiliary state grew with op count: {peak_short} entries at 10k ops, \
         {peak_long} at 160k"
    );
}
