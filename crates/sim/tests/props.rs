//! Property-based tests of the timing simulator's invariants.

use proptest::prelude::*;
use xps_cacti::CacheGeometry;
use xps_sim::{CacheConfig, CoreConfig, Simulator};
use xps_workload::{spec, TraceGenerator};

fn arb_config() -> impl Strategy<Value = CoreConfig> {
    (
        0.15f64..0.6,
        1u32..9,
        prop::sample::select(vec![32u32, 64, 128, 256, 512, 1024]),
        prop::sample::select(vec![8u32, 16, 32, 64]),
        prop::sample::select(vec![16u32, 32, 64, 128, 256]),
        0u32..4,
        1u32..5,
        (
            1u32..6,
            prop::sample::select(vec![64u32, 128, 256, 512]),
            prop::sample::select(vec![1u32, 2, 4]),
        ),
        (
            4u32..25,
            prop::sample::select(vec![1024u32, 2048, 4096]),
            prop::sample::select(vec![4u32, 8]),
        ),
    )
        .prop_map(|(clock, width, rob, iq, lsq, wakeup, sched, l1, l2)| {
            let (l1_lat, l1_sets, l1_assoc) = l1;
            let (l2_lat, l2_sets, l2_assoc) = l2;
            CoreConfig {
                name: "prop".to_string(),
                clock_ns: clock,
                width,
                frontend_depth: CoreConfig::derived_frontend_depth(clock, 0.03),
                rob_size: rob,
                iq_size: iq.min(rob),
                lsq_size: lsq,
                wakeup_extra: wakeup,
                sched_depth: sched,
                lsq_depth: 2,
                l1: CacheConfig {
                    geometry: CacheGeometry::new(l1_sets, l1_assoc, 64),
                    latency: l1_lat,
                },
                l2: CacheConfig {
                    geometry: CacheGeometry::new(l2_sets, l2_assoc, 128),
                    latency: l2_lat,
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated configuration validates and simulates every
    /// benchmark to a positive, width-bounded IPC.
    #[test]
    fn ipc_positive_and_bounded(cfg in arb_config(),
                                name in prop::sample::select(spec::BENCHMARKS.to_vec())) {
        prop_assert!(cfg.validate().is_ok(), "{:?}", cfg.validate());
        let p = spec::profile(name).expect("known benchmark");
        let s = Simulator::new(&cfg).run(TraceGenerator::new(p), 8_000);
        prop_assert!(s.ipc() > 0.0);
        prop_assert!(s.ipc() <= cfg.width as f64 + 1e-9, "IPC {} > width {}", s.ipc(), cfg.width);
        prop_assert_eq!(s.instructions, 8_000);
        prop_assert!(s.cycles > 0);
    }

    /// Simulation is deterministic for a fixed (config, workload).
    #[test]
    fn simulation_deterministic(cfg in arb_config()) {
        let p = spec::profile("parser").expect("known benchmark");
        let a = Simulator::new(&cfg).run(TraceGenerator::new(p.clone()), 6_000);
        let b = Simulator::new(&cfg).run(TraceGenerator::new(p), 6_000);
        prop_assert_eq!(a, b);
    }

    /// Statistics are internally consistent: mispredicts never exceed
    /// branches, L2 accesses never exceed L1 misses.
    #[test]
    fn stats_consistent(cfg in arb_config(),
                        name in prop::sample::select(spec::BENCHMARKS.to_vec())) {
        let p = spec::profile(name).expect("known benchmark");
        let s = Simulator::new(&cfg).run(TraceGenerator::new(p), 10_000);
        prop_assert!(s.mispredicts <= s.branches);
        prop_assert!(s.l2.accesses <= s.l1.misses,
            "L2 accesses {} > L1 misses {}", s.l2.accesses, s.l1.misses);
        prop_assert!(s.l2.misses <= s.l2.accesses);
    }

    /// Raising the wakeup latency never increases IPC (weak
    /// monotonicity of the scheduling loop).
    #[test]
    fn wakeup_latency_hurts(mut cfg in arb_config(),
                            name in prop::sample::select(spec::BENCHMARKS.to_vec())) {
        cfg.wakeup_extra = 0;
        let p = spec::profile(name).expect("known benchmark");
        let fast = Simulator::new(&cfg).run(TraceGenerator::new(p.clone()), 10_000);
        cfg.wakeup_extra = 3;
        let slow = Simulator::new(&cfg).run(TraceGenerator::new(p), 10_000);
        prop_assert!(slow.cycles >= fast.cycles,
            "wakeup 3 finished earlier: {} vs {}", slow.cycles, fast.cycles);
    }

    /// A strictly longer memory pipe (same everything else, slower L2)
    /// never lowers the cycle count.
    #[test]
    fn slower_l2_never_faster(mut cfg in arb_config()) {
        let p = spec::profile("mcf").expect("known benchmark");
        cfg.l2.latency = 4;
        let fast = Simulator::new(&cfg).run(TraceGenerator::new(p.clone()), 10_000);
        cfg.l2.latency = 30;
        let slow = Simulator::new(&cfg).run(TraceGenerator::new(p), 10_000);
        prop_assert!(slow.cycles >= fast.cycles);
    }
}
