use std::time::Instant;
use xps_sim::{CoreConfig, Simulator};
use xps_workload::{spec, TraceGenerator};

fn main() {
    let cfg = CoreConfig::initial();
    let n = 500_000u64;
    for p in spec::all_profiles() {
        let t0 = Instant::now();
        let s = Simulator::new(&cfg).run(TraceGenerator::new(p.clone()), n);
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{:8} ipc {:.3} ipt {:.3} misp {:.3} l1mr {:.3} l2mr {:.3} | {:.1} Mops/s",
            p.name,
            s.ipc(),
            s.ipt(),
            s.mispredict_rate(),
            s.l1.miss_ratio(),
            s.l2.miss_ratio(),
            n as f64 / dt / 1e6
        );
    }
}
