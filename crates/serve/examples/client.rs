//! End-to-end client smoke: submit an exploration to a running
//! daemon, stream a few progress events, poll to completion, and print
//! the customized configurations.
//!
//! ```text
//! xps-serve --addr 127.0.0.1:7780 &
//! cargo run --release -p xps-serve --example client -- 127.0.0.1:7780
//! ```
//!
//! The address may also come from `XPS_SERVE_ADDR`; the job request
//! from the second CLI argument (defaults to a smoke-profile explore
//! of gzip + mcf). Exits non-zero on any failure, so CI can use it as
//! the daemon's smoke test.

use std::process::ExitCode;
use std::time::Duration;
use xps_serve::client;

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let addr = args
        .next()
        .or_else(|| std::env::var("XPS_SERVE_ADDR").ok())
        .unwrap_or_else(|| "127.0.0.1:7780".to_string());
    let job_json = args.next().unwrap_or_else(|| {
        r#"{"kind":"explore","profile":"smoke","workloads":["gzip","mcf"]}"#.to_string()
    });

    println!("submitting to {addr}: {job_json}");
    let (job, resp) = client::submit(&addr, &job_json)?;
    println!("job {job}: HTTP {} {}", resp.status, resp.body);

    // A store-answered job has no live feed to stream; otherwise show
    // the first few progress lines (anneal steps, task completions).
    if resp.status == 202 {
        let shown = client::stream_events(&addr, &job, 5, |line| println!("  event: {line}"))?;
        println!("  ({shown} progress events shown)");
    }

    let body = client::wait_for_result(&addr, &job, Duration::from_secs(600))?;
    let doc = serde_json::from_str::<serde::Value>(&body)
        .map_err(|e| format!("result is not JSON: {e}"))?;
    println!("result: {body}");

    // Print the customized configuration per workload, the paper's
    // Table 4 shape, when the answer carries one.
    if let Ok(serde::Value::Arr(cores)) = doc.member("cores") {
        for core in cores {
            let name = core
                .member("profile")
                .and_then(|p| p.member("name"))
                .and_then(|v| v.as_str().map(String::from))
                .unwrap_or_else(|_| "?".to_string());
            let ipt = match core.member("ipt") {
                Ok(serde::Value::F64(x)) => format!("{x:.2}"),
                _ => "?".to_string(),
            };
            println!("  core for {name}: ipt {ipt}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("client: {e}");
            ExitCode::FAILURE
        }
    }
}
