//! In-process integration tests of the daemon: real TCP on ephemeral
//! ports, real scheduler workers, real persistence.
//!
//! The load-bearing properties under test are the ISSUE's acceptance
//! criteria: identical concurrent submissions coalesce onto one
//! execution and read back byte-identical bodies; a repeated request
//! after completion is answered from the content-addressed store with
//! zero new simulation work; and a drained (shutdown mid-job) daemon
//! re-queues the in-flight job so a restarted daemon completes it —
//! byte-identically to an uninterrupted run.

use serde::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use xps_serve::{client, Server, ServerConfig, ShutdownHandle};

static SEQ: AtomicU64 = AtomicU64::new(0);

fn data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xps-daemon-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Daemon {
    addr: String,
    handle: ShutdownHandle,
    thread: std::thread::JoinHandle<()>,
}

fn start(dir: &PathBuf) -> Daemon {
    let mut config = ServerConfig::new(dir);
    config.queue_capacity = 8;
    config.pipeline_jobs = 2;
    let server = Server::bind(&config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run().expect("serve"));
    Daemon {
        addr,
        handle,
        thread,
    }
}

impl Daemon {
    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("drained cleanly");
    }
}

fn metric(addr: &str, path: &[&str]) -> u64 {
    let resp = client::request(addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(resp.status, 200);
    let mut v: &Value = &resp.json().expect("metrics json");
    for key in path {
        v = v.member(key).expect("metrics member");
    }
    match v {
        Value::U64(n) => *n,
        other => panic!("metric {path:?} is not a counter: {other:?}"),
    }
}

const SMOKE_EXPLORE: &str = r#"{"kind":"explore","profile":"smoke","workloads":["gzip","mcf"]}"#;

/// A smoke-profile explore over every paper benchmark: long enough —
/// hundreds of checkpointable tasks — that the scheduler worker is
/// reliably still busy with it while a test submits follow-up
/// requests or drains the daemon, on any machine speed.
fn big_smoke_explore() -> String {
    let names: Vec<String> = xps_core::workload::spec::BENCHMARKS
        .iter()
        .map(|b| format!("\"{b}\""))
        .collect();
    format!(
        "{{\"kind\":\"explore\",\"profile\":\"smoke\",\"workloads\":[{}]}}",
        names.join(",")
    )
}

#[test]
fn concurrent_identical_jobs_coalesce_and_match_bytes() {
    let dir = data_dir("coalesce");
    let daemon = start(&dir);
    let addr = daemon.addr.clone();

    // Two clients race the same request.
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let (job, _) = client::submit(&addr, SMOKE_EXPLORE).expect("submit");
                let body =
                    client::wait_for_result(&addr, &job, Duration::from_secs(300)).expect("done");
                (job, body)
            })
        })
        .collect();
    let results: Vec<(String, String)> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    // Same canonical request → same job id → byte-identical bodies.
    assert_eq!(results[0].0, results[1].0, "content ids agree");
    assert_eq!(results[0].1, results[1].1, "bodies are byte-identical");
    assert!(results[0].1.contains("\"cores\""));

    // Exactly one execution happened: one submission created the job,
    // the other coalesced or hit the store.
    assert_eq!(metric(&addr, &["jobs", "completed"]), 1);
    assert_eq!(metric(&addr, &["jobs", "submitted"]), 1);
    assert_eq!(
        metric(&addr, &["jobs", "coalesced"]) + metric(&addr, &["store", "hits"]),
        1
    );

    // A repeat after completion is served from the store: no new
    // simulation work (the executed-task counter does not move), and
    // the submit response says so.
    let executed_before = metric(&addr, &["recovery", "tasks_executed"]);
    let (job, resp) = client::submit(&addr, SMOKE_EXPLORE).expect("resubmit");
    assert_eq!(resp.status, 200, "answered immediately: {}", resp.body);
    assert!(resp.body.contains("\"source\":\"store\""), "{}", resp.body);
    let body = client::wait_for_result(&addr, &job, Duration::from_secs(10)).expect("stored");
    assert_eq!(body, results[0].1, "stored body is byte-identical");
    assert_eq!(
        metric(&addr, &["recovery", "tasks_executed"]),
        executed_before
    );
    assert_eq!(
        metric(&addr, &["jobs", "completed"]),
        1,
        "no second execution"
    );

    daemon.stop();

    // A fresh daemon on the same data directory never ran the job, so
    // it answers from the store — and streaming such a job yields a
    // closed one-line feed instead of hanging on a feed that will
    // never open.
    let restarted = start(&dir);
    let (again, resp) = client::submit(&restarted.addr, SMOKE_EXPLORE).expect("resubmit");
    assert_eq!((again.as_str(), resp.status), (job.as_str(), 200));
    let mut lines = Vec::new();
    client::stream_events(&restarted.addr, &job, usize::MAX, |l| {
        lines.push(l.to_string())
    })
    .expect("stream store-answered job");
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(lines[0].contains("\"source\":\"store\""));
    restarted.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two *different* questions over the *same* campaign make two job
/// ids, so the queue does not coalesce them — and with two scheduler
/// workers they execute concurrently. The engine must serialize them
/// onto the campaign (one checkpoint journal writer, one exploration)
/// and answer the loser from the store; two concurrent journal writers
/// on one file would race each other's atomic rewrites and corrupt it.
#[test]
fn concurrent_questions_over_one_campaign_run_it_once() {
    let dir = data_dir("campaign");
    let mut config = ServerConfig::new(&dir);
    config.queue_capacity = 8;
    config.workers = 2;
    config.pipeline_jobs = 1;
    let server = Server::bind(&config).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run().expect("serve"));

    const WORKLOADS: &str = r#"["crafty","gcc","gzip","mcf"]"#;
    let questions = [
        format!(
            r#"{{"kind":"slowdown","profile":"smoke","workload":"gzip","workloads":{WORKLOADS}}}"#
        ),
        format!(
            r#"{{"kind":"slowdown","profile":"smoke","workload":"mcf","workloads":{WORKLOADS}}}"#
        ),
    ];
    let threads: Vec<_> = questions
        .iter()
        .cloned()
        .map(|q| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let (job, _) = client::submit(&addr, &q).expect("submit");
                let body =
                    client::wait_for_result(&addr, &job, Duration::from_secs(300)).expect("done");
                (job, body)
            })
        })
        .collect();
    let results: Vec<(String, String)> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    assert_ne!(results[0].0, results[1].0, "different questions");
    assert!(results[0].1.contains("\"row\""), "{}", results[0].1);
    assert!(results[1].1.contains("\"row\""), "{}", results[1].1);
    assert_eq!(metric(&addr, &["jobs", "completed"]), 2);

    // Exactly one of the two executed the campaign; the other read the
    // stored document (after waiting out the first, when they
    // overlapped). Each job's feed says which happened.
    let mut sources = Vec::new();
    for (job, _) in &results {
        let mut lines = Vec::new();
        client::stream_events(&addr, job, usize::MAX, |l| lines.push(l.to_string()))
            .expect("replay feed");
        let campaign = lines
            .iter()
            .find(|l| l.contains("\"event\":\"campaign\""))
            .expect("campaign line")
            .clone();
        sources.push(if campaign.contains("\"source\":\"run\"") {
            "run"
        } else {
            "store"
        });
    }
    sources.sort_unstable();
    assert_eq!(sources, vec!["run", "store"], "the campaign ran once");

    handle.shutdown();
    thread.join().expect("drained");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn progress_stream_carries_anneal_steps() {
    let dir = data_dir("events");
    let daemon = start(&dir);
    let addr = daemon.addr.clone();

    let (job, resp) = client::submit(&addr, SMOKE_EXPLORE).expect("submit");
    assert_eq!(resp.status, 202, "{}", resp.body);
    let mut lines = Vec::new();
    client::stream_events(&addr, &job, usize::MAX, |l| lines.push(l.to_string()))
        .expect("stream to completion");
    assert!(
        lines.iter().any(|l| l.contains("\"event\":\"anneal\"")),
        "anneal steps streamed: {:?}",
        &lines[..lines.len().min(3)]
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"temperature\"") && l.contains("\"best_ipt\"")),
        "steps carry temperature and best score"
    );
    assert!(
        lines
            .last()
            .expect("nonempty")
            .contains("\"event\":\"done\""),
        "stream terminates with the done line"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"event\":\"span\"") && l.contains("\"name\":\"anneal.walk\"")),
        "span summary lines precede the done line"
    );
    assert!(
        metric(&addr, &["spans", "anneal.walk", "count"]) >= 1,
        "job profile lands in /metrics"
    );

    // A second streamer replays the identical feed history: the feed
    // is append-only, so late readers see the same closed stream.
    let result = client::wait_for_result(&addr, &job, Duration::from_secs(60)).expect("done");
    assert!(result.contains("\"cores\""));
    let mut replay = Vec::new();
    client::stream_events(&addr, &job, usize::MAX, |l| replay.push(l.to_string()))
        .expect("stream after done");
    assert_eq!(replay, lines, "replay equals the live stream");

    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_requests_and_unknown_jobs_get_typed_statuses() {
    let dir = data_dir("errors");
    let daemon = start(&dir);
    let addr = daemon.addr.clone();

    let bad =
        client::request(&addr, "POST", "/jobs", Some("{\"kind\":\"dance\"}")).expect("responds");
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("unknown kind"), "{}", bad.body);

    let missing = client::request(&addr, "GET", "/jobs/ffffffffffffffff", None).expect("responds");
    assert_eq!(missing.status, 404);

    let method = client::request(&addr, "DELETE", "/jobs", None).expect("responds");
    assert_eq!(method.status, 405);

    let path = client::request(&addr, "GET", "/nope", None).expect("responds");
    assert_eq!(path.status, 404);

    let health = client::request(&addr, "GET", "/healthz", None).expect("responds");
    assert_eq!(health.status, 200);
    let doc = health.json().expect("healthz is JSON");
    assert_eq!(doc.member("ok").expect("ok"), &serde::Value::Bool(true));
    for field in ["queue_depth", "store_records", "store_bytes"] {
        assert!(
            matches!(doc.member(field), Ok(serde::Value::U64(_))),
            "healthz carries `{field}`: {}",
            health.body
        );
    }

    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_overflow_returns_429() {
    let dir = data_dir("backpressure");
    let mut config = ServerConfig::new(&dir);
    // Capacity 1 and zero scheduler throughput: the worker count is 1
    // and the first job occupies it, so the second queues and the
    // third overflows.
    config.queue_capacity = 1;
    config.pipeline_jobs = 1;
    let server = Server::bind(&config).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run().expect("serve"));

    let submit = |spec: &str| {
        client::request(
            &addr,
            "POST",
            "/jobs",
            Some(&format!(
                "{{\"kind\":\"explore\",\"profile\":\"smoke\",\"workloads\":[{spec}]}}"
            )),
        )
        .expect("responds")
    };
    // The first job is big enough to hold the worker for the whole
    // test, so the queue slot freed when it is picked up is the only
    // one: the second submission queues, the third overflows.
    let first =
        client::request(&addr, "POST", "/jobs", Some(&big_smoke_explore())).expect("responds");
    assert_eq!(first.status, 202, "{}", first.body);
    // Wait for the worker to pick the first job up, freeing the queue
    // slot for exactly one more.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = client::request(&addr, "GET", "/metrics", None).expect("metrics");
        let depth = resp
            .json()
            .expect("json")
            .member("jobs")
            .and_then(|j| j.member("queue_depth").cloned())
            .expect("depth");
        if depth == Value::U64(0) || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let second = submit("\"mcf\"");
    assert_eq!(second.status, 202, "{}", second.body);
    let third = submit("\"vpr\"");
    assert_eq!(third.status, 429, "backpressure: {}", third.body);
    assert!(third.body.contains("retry later"), "{}", third.body);

    handle.shutdown();
    thread.join().expect("drained");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The drain-and-resume property, in-process: shut the daemon down
/// mid-job, assert the job is persisted as unfinished, restart on the
/// same data directory, and require the resumed result to be
/// byte-identical to an uninterrupted run of the same request on a
/// fresh daemon.
#[test]
fn drained_job_resumes_after_restart_byte_identically() {
    let job_json = big_smoke_explore();

    // Reference: an uninterrupted run on its own data directory.
    let ref_dir = data_dir("drain-ref");
    let reference = start(&ref_dir);
    let (ref_job, _) = client::submit(&reference.addr, &job_json).expect("submit reference");
    let ref_body = client::wait_for_result(&reference.addr, &ref_job, Duration::from_secs(300))
        .expect("reference completes");
    reference.stop();
    let _ = std::fs::remove_dir_all(&ref_dir);

    // Interrupted run: drain once the job is mid-campaign. The signal
    // is the campaign's checkpoint journal turning non-empty on disk —
    // at least one task is then guaranteed to replay after restart —
    // and the job (hundreds of tasks) is still far from done when it
    // appears, on any machine speed.
    let dir = data_dir("drain");
    let daemon = start(&dir);
    let addr = daemon.addr.clone();
    let (job, resp) = client::submit(&addr, &job_json).expect("submit");
    assert_eq!(resp.status, 202, "{}", resp.body);
    assert_eq!(job, ref_job, "same canonical request, same content id");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let checkpointed = std::fs::read_dir(&dir)
            .ok()
            .into_iter()
            .flatten()
            .flatten()
            .any(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.starts_with("journal-")
                    && name.ends_with(".jsonl")
                    && e.metadata().is_ok_and(|m| m.len() > 0)
            });
        if checkpointed {
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint ever appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon.stop();

    // The unfinished job is persisted for the next process.
    let queue_json = std::fs::read_to_string(dir.join("queue.json")).expect("queue journal exists");
    assert!(
        queue_json.contains(&job),
        "drained job is persisted as unfinished: {queue_json}"
    );

    // Restart on the same data directory: the job resumes from its
    // checkpoint journal without a new submission.
    let resumed = start(&dir);
    let body = client::wait_for_result(&resumed.addr, &job, Duration::from_secs(300))
        .expect("resumed job completes");
    assert_eq!(body, ref_body, "resumed result is byte-identical");
    // The resumed campaign salvaged checkpointed tasks instead of
    // re-running them.
    assert!(
        metric(&resumed.addr, &["recovery", "journal_replayed"]) > 0,
        "resume replayed the checkpoint journal"
    );
    resumed.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
