//! Fleet integration tests against REAL `xps-serve` worker processes:
//! real TCP, real process death.
//!
//! The acceptance criterion under test is the ISSUE's headline
//! guarantee: the gathered campaign document is byte-identical to a
//! single-node run for any worker count {1, 2, 4}, when one of three
//! workers is SIGKILLed mid-campaign, and under a seeded network
//! fault schedule. Failures may cost retries, quarantines, and local
//! fallback — never different bytes.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xps_serve::{
    run_campaign_with_fleet, FlakyTransport, Fleet, FleetConfig, NetFaultPlan, TcpTransport,
};

static SEQ: AtomicU64 = AtomicU64::new(0);

fn data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xps-fleet-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One real `xps-serve` worker process on an ephemeral port.
struct Worker {
    child: Child,
    addr: String,
    dir: PathBuf,
}

impl Worker {
    fn spawn(tag: &str) -> Worker {
        let dir = data_dir(tag);
        let mut child = Command::new(env!("CARGO_BIN_EXE_xps-serve"))
            .arg("--addr=127.0.0.1:0")
            .arg(format!("--data-dir={}", dir.display()))
            .arg("--workers=1")
            .arg("--jobs=1")
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn xps-serve");
        // The first stdout line is machine-readable by contract:
        // `xps-serve listening on HOST:PORT (data dir ...)`.
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read banner");
        let addr = line
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unparseable banner `{}`", line.trim()))
            .to_string();
        Worker { child, addr, dir }
    }

    /// SIGKILL: no drain, no checkpoint, the socket just dies.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.kill();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

const WORKLOADS: [&str; 2] = ["gzip", "mcf"];

fn workloads() -> Vec<String> {
    WORKLOADS.iter().map(|s| (*s).to_string()).collect()
}

/// A fleet config tuned for tests: fast retries, short deadlines,
/// background heartbeat off so every probe and retry in the stats is
/// attributable to the campaign itself.
fn test_config(addrs: Vec<String>) -> FleetConfig {
    let mut cfg = FleetConfig::new(addrs);
    cfg.connect_timeout = Duration::from_secs(2);
    cfg.request_timeout = Duration::from_secs(60);
    cfg.retries = 3;
    cfg.backoff_base_ms = 1;
    cfg.quarantine_after = 2;
    cfg.heartbeat_interval = Duration::ZERO;
    cfg
}

/// The single-node oracle: a fleet with zero workers degrades every
/// task to coordinator-local execution, which is by construction the
/// plain pipeline run.
fn single_node_document() -> String {
    let fleet = Arc::new(Fleet::tcp(test_config(Vec::new())));
    run_campaign_with_fleet(&workloads(), "smoke", 2, &fleet)
        .expect("local campaign")
        .document
}

fn fleet_document(fleet: &Arc<Fleet>) -> String {
    run_campaign_with_fleet(&workloads(), "smoke", 2, fleet)
        .expect("fleet campaign")
        .document
}

#[test]
fn document_is_byte_identical_for_worker_counts_1_2_4() {
    let oracle = single_node_document();
    let workers: Vec<Worker> = (0..4).map(|_| Worker::spawn("counts")).collect();
    for count in [1usize, 2, 4] {
        let addrs: Vec<String> = workers.iter().take(count).map(|w| w.addr.clone()).collect();
        let fleet = Arc::new(Fleet::tcp(test_config(addrs)));
        let doc = fleet_document(&fleet);
        assert_eq!(doc, oracle, "{count}-worker document diverged");
        let stats = fleet.stats();
        assert!(
            stats.dispatched > 0,
            "{count}-worker fleet ran everything locally: {stats:?}"
        );
    }
}

#[test]
fn sigkill_one_of_three_workers_mid_campaign_keeps_bytes() {
    let oracle = single_node_document();
    let mut workers: Vec<Worker> = (0..3).map(|_| Worker::spawn("sigkill")).collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let fleet = Arc::new(Fleet::tcp(test_config(addrs)));

    // Kill worker 0 shortly after the scatter starts: in-flight
    // requests die with the socket, later placements are refused.
    // Whatever instant the kill lands, the bytes must not change.
    let campaign = {
        let fleet = fleet.clone();
        std::thread::spawn(move || fleet_document(&fleet))
    };
    std::thread::sleep(Duration::from_millis(100));
    workers[0].kill();
    let doc = campaign.join().expect("campaign thread");
    assert_eq!(doc, oracle, "document diverged after SIGKILL");

    let stats = fleet.stats();
    assert!(stats.dispatched > 0, "no remote work at all: {stats:?}");
}

#[test]
fn worker_dead_from_the_start_is_retried_quarantined_and_identical() {
    let oracle = single_node_document();
    let mut workers: Vec<Worker> = (0..3).map(|_| Worker::spawn("dead")).collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    // Deterministic variant of the SIGKILL test: the dead worker is
    // guaranteed to see (and refuse) placements, so the failure
    // machinery is provably exercised, not just tolerated.
    workers[0].kill();
    let fleet = Arc::new(Fleet::tcp(test_config(addrs)));
    let doc = fleet_document(&fleet);
    assert_eq!(doc, oracle, "document diverged with a dead worker");

    let stats = fleet.stats();
    assert!(
        stats.dispatched > 0,
        "live workers took no tasks: {stats:?}"
    );
    assert!(stats.retried > 0, "dead worker cost no retries: {stats:?}");
    assert_eq!(
        stats.quarantines, 1,
        "dead worker not quarantined: {stats:?}"
    );
    let dead = stats
        .workers
        .iter()
        .find(|w| w.addr == workers[0].addr)
        .expect("dead worker in stats");
    assert!(dead.quarantined);
    assert_eq!(dead.completed, 0);
}

#[test]
fn seeded_fault_schedule_keeps_bytes() {
    let oracle = single_node_document();
    let workers: Vec<Worker> = (0..2).map(|_| Worker::spawn("faults")).collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let cfg = test_config(addrs);
    let plan =
        NetFaultPlan::parse("drop=10,delay=5,truncate=5,duplicate=5,garbage=5,seed=3,delay_ms=1")
            .expect("valid plan");
    let tcp = TcpTransport {
        connect_timeout: cfg.connect_timeout,
    };
    let fleet = Arc::new(Fleet::new(cfg, Arc::new(FlakyTransport::new(plan, tcp))));
    let doc = fleet_document(&fleet);
    assert_eq!(doc, oracle, "document diverged under injected faults");
    assert!(fleet.stats().dispatched > 0, "nothing ran remotely");
}
