//! Property tests of the content-addressed result store: any body put
//! under any id reads back byte-identical (including JSON-hostile
//! characters, embedded newlines, and bit-exact floats), content ids
//! are a pure function of the canonical request, and any tampering
//! with a stored record — flipped bytes, truncation, relabeling — is
//! rejected with an error naming the file, never served as a result.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use xps_serve::{content_id, ResultStore};

static SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xps-store-props-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Body fragments exercising the record format's separators (the
/// header's space and newline, JSON quoting) and non-ASCII content.
fn arb_fragment() -> impl Strategy<Value = &'static str> {
    select(vec![
        "{\"cores\":[]}",
        "line\nbreak",
        "sp ace",
        "q\"uote",
        "back\\slash",
        "émigré",
        "",
        "0123456789abcdef 0123456789abcdef",
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn put_get_round_trips_byte_identically(
        fragments in vec(arb_fragment(), 4),
        x in -1.0e300f64..1.0e300,
        n in 0u64..u64::MAX,
    ) {
        let dir = tmp("roundtrip");
        let store = ResultStore::open(&dir).expect("open");
        let body = format!(
            "{}|{}|{n}",
            fragments.join("|"),
            serde_json::to_string(&x).expect("finite")
        );
        let id = content_id(&body);
        prop_assert_eq!(store.get(&id).expect("clean miss"), None);
        store.put(&id, &body).expect("put");
        prop_assert_eq!(store.get(&id).expect("hit").as_deref(), Some(body.as_str()));
        // Overwriting with the same bytes is idempotent.
        store.put(&id, &body).expect("re-put");
        prop_assert_eq!(store.get(&id).expect("hit").as_deref(), Some(body.as_str()));
        prop_assert_eq!(store.len().expect("len"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn content_ids_are_stable_16_hex(fragments in vec(arb_fragment(), 3)) {
        let canonical = fragments.join("+");
        let id = content_id(&canonical);
        prop_assert_eq!(&id, &content_id(&canonical));
        prop_assert_eq!(id.len(), 16);
        prop_assert!(id.bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn any_tampering_is_rejected_with_the_file_named(
        fragments in vec(arb_fragment(), 3),
        flip_pos in 0usize..200,
        mode in 0u8..3,
    ) {
        let dir = tmp("tamper");
        let store = ResultStore::open(&dir).expect("open");
        let body = fragments.join("|");
        let id = content_id(&body);
        store.put(&id, &body).expect("put");
        let path = dir.join(format!("{id}.json"));
        let mut raw = std::fs::read(&path).expect("read record");
        let tampered = match mode {
            // Flip one body byte (skip the header line: relabeling is
            // its own mode below).
            0 => {
                let body_start = raw.iter().position(|&b| b == b'\n').expect("header") + 1;
                if body_start >= raw.len() {
                    false // empty body: nothing to flip
                } else {
                    let pos = body_start + flip_pos % (raw.len() - body_start);
                    raw[pos] ^= 0x20;
                    true
                }
            }
            // Truncate the body.
            1 => {
                let body_start = raw.iter().position(|&b| b == b'\n').expect("header") + 1;
                if body_start >= raw.len() {
                    false
                } else {
                    raw.truncate(body_start + flip_pos % (raw.len() - body_start));
                    true
                }
            }
            // Append garbage.
            _ => {
                raw.extend_from_slice(b"tampered");
                true
            }
        };
        if tampered {
            std::fs::write(&path, &raw).expect("tamper");
            let e = store.get(&id).expect_err("tampering detected");
            let msg = e.to_string();
            prop_assert!(
                msg.contains("checksum mismatch") || msg.contains("addressed"),
                "unexpected error: {}", msg
            );
            prop_assert!(msg.contains(&format!("{id}.json")), "names the file: {}", msg);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The GC's safety contract: whatever the quota, record
    /// population, and pin set — including pins alone exceeding the
    /// quota — a pinned record (one referenced by an in-flight
    /// campaign) is never evicted and still reads back byte-identical,
    /// and eviction stops as soon as the store fits the quota.
    #[test]
    fn gc_never_evicts_a_pinned_record(
        bodies in vec(vec(arb_fragment(), 2), 10),
        pin_mask in vec(any::<bool>(), 10),
        quota in 0u64..2_000,
    ) {
        let dir = tmp("gc");
        let store = ResultStore::open(&dir).expect("open");
        let mut pinned = BTreeSet::new();
        let mut kept: Vec<(String, String)> = Vec::new();
        for (i, fragments) in bodies.iter().enumerate() {
            let body = format!("{}#{i}", fragments.join("|"));
            let id = content_id(&body);
            store.put(&id, &body).expect("put");
            if pin_mask[i % pin_mask.len()] {
                pinned.insert(id.clone());
                kept.push((id, body));
            }
        }
        let before = store.usage().expect("usage");
        let report = store.gc(quota, &pinned).expect("gc");
        // The report's accounting matches the disk.
        prop_assert_eq!(report.usage, store.usage().expect("usage"));
        prop_assert_eq!(report.usage, before - report.reclaimed);
        // Every pinned record survived, byte-identical.
        for (id, body) in &kept {
            prop_assert!(!report.evicted.contains(id), "evicted pinned {}", id);
            prop_assert_eq!(
                store.get(id).expect("pinned readable").as_deref(),
                Some(body.as_str())
            );
        }
        // GC either reached the quota or only pinned records remain.
        if report.usage > quota {
            let survivors = store.len().expect("len");
            prop_assert_eq!(
                survivors, pinned.len(),
                "over quota yet unpinned records survive"
            );
        }
        // A second pass on the settled store is a no-op.
        let again = store.gc(quota, &pinned).expect("gc again");
        prop_assert_eq!(again.reclaimed, 0);
        prop_assert!(again.evicted.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
