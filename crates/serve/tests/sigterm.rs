//! Process-level graceful-drain test: a real `xps-serve` process,
//! killed with SIGTERM mid-job, must exit cleanly (checkpointing and
//! re-queueing the in-flight job), and a restarted process on the same
//! data directory must complete that job byte-identically to an
//! uninterrupted run.
//!
//! This is the one test that exercises the installed signal handler —
//! the in-process drain tests flip the shutdown flag directly.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use xps_serve::client;

/// A smoke-profile explore over every paper benchmark: long enough —
/// hundreds of checkpointable tasks — that SIGTERM reliably lands
/// while the job is mid-campaign, on any machine speed.
fn big_smoke_explore() -> String {
    let names: Vec<String> = xps_core::workload::spec::BENCHMARKS
        .iter()
        .map(|b| format!("\"{b}\""))
        .collect();
    format!(
        "{{\"kind\":\"explore\",\"profile\":\"smoke\",\"workloads\":[{}]}}",
        names.join(",")
    )
}

fn data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xps-sigterm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A spawned daemon process, killed hard on drop so a failing test
/// never leaks it.
struct DaemonProc {
    child: Child,
    addr: String,
    stdout: BufReader<std::process::ChildStdout>,
}

impl DaemonProc {
    fn spawn(dir: &Path) -> DaemonProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_xps-serve"))
            .args(["--addr", "127.0.0.1:0", "--data-dir"])
            .arg(dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn xps-serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        // The first stdout line is machine-readable:
        // `xps-serve listening on 127.0.0.1:PORT (data dir ...)`.
        let mut line = String::new();
        stdout.read_line(&mut line).expect("startup line");
        let addr = line
            .split_whitespace()
            .nth(3)
            .unwrap_or_else(|| panic!("unparseable startup line `{}`", line.trim()))
            .to_string();
        DaemonProc {
            child,
            addr,
            stdout,
        }
    }

    fn sigterm(&self) {
        // std::process cannot send signals; shell out to kill(1).
        let status = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("run kill");
        assert!(status.success(), "kill -TERM failed");
    }

    /// Wait for exit and return (exit success, remaining stdout).
    fn wait(mut self) -> (bool, String) {
        let status = self.child.wait().expect("wait for daemon");
        let mut rest = String::new();
        use std::io::Read;
        self.stdout.read_to_string(&mut rest).expect("drain stdout");
        // `wait` consumed the child; don't let drop kill a dead pid.
        std::mem::forget(self);
        (status.success(), rest)
    }
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn sigterm_drains_and_restart_completes_byte_identically() {
    let job_json = big_smoke_explore();

    // Reference: the same job run to completion without interruption.
    let ref_dir = data_dir("ref");
    let reference = DaemonProc::spawn(&ref_dir);
    let (ref_job, _) = client::submit(&reference.addr, &job_json).expect("submit reference");
    let ref_body = client::wait_for_result(&reference.addr, &ref_job, Duration::from_secs(300))
        .expect("reference completes");
    reference.sigterm();
    let (clean, out) = reference.wait();
    assert!(clean, "idle daemon exits cleanly on SIGTERM");
    assert!(out.contains("drained cleanly"), "stdout: {out}");
    let _ = std::fs::remove_dir_all(&ref_dir);

    // Interrupted run: SIGTERM lands while the job is mid-campaign.
    // The signal that it is mid-campaign (and that the restart will
    // have checkpoints to replay) is the campaign's checkpoint journal
    // turning non-empty on disk.
    let dir = data_dir("drain");
    let daemon = DaemonProc::spawn(&dir);
    let addr = daemon.addr.clone();
    let (job, resp) = client::submit(&addr, &job_json).expect("submit");
    assert_eq!(resp.status, 202, "{}", resp.body);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let checkpointed = std::fs::read_dir(&dir)
            .ok()
            .into_iter()
            .flatten()
            .flatten()
            .any(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.starts_with("journal-")
                    && name.ends_with(".jsonl")
                    && e.metadata().is_ok_and(|m| m.len() > 0)
            });
        if checkpointed {
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint ever appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon.sigterm();
    let (clean, out) = daemon.wait();
    assert!(clean, "busy daemon drains cleanly on SIGTERM: {out}");
    assert!(out.contains("drained cleanly"), "stdout: {out}");

    // The in-flight job survived as unfinished work on disk.
    let queue_json = std::fs::read_to_string(dir.join("queue.json")).expect("queue journal");
    assert!(queue_json.contains(&job), "job persisted: {queue_json}");

    // A restarted process completes it, byte-identical to the
    // uninterrupted reference.
    let resumed = DaemonProc::spawn(&dir);
    let body = client::wait_for_result(&resumed.addr, &job, Duration::from_secs(300))
        .expect("resumed job completes");
    assert_eq!(body, ref_body, "resumed result is byte-identical");
    resumed.sigterm();
    let (clean, _) = resumed.wait();
    assert!(clean);
    let _ = std::fs::remove_dir_all(&dir);
}
