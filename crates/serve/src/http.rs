//! A deliberately small HTTP/1.1 layer over blocking streams.
//!
//! The daemon depends on nothing outside `std`, so this module
//! hand-rolls exactly the slice of HTTP the service needs: one request
//! per connection (`Connection: close`), `Content-Length` bodies with
//! hard limits, fixed responses, and chunked transfer encoding for the
//! NDJSON progress stream. Parsing and rendering work on generic
//! `BufRead`/`Write` so every path is unit-testable on in-memory
//! buffers.

use crate::error::ServeError;
use std::io::{BufRead, Read, Write};

/// Longest accepted request line, bytes (including CRLF).
pub const MAX_REQUEST_LINE: usize = 8192;
/// Longest accepted header line, bytes.
pub const MAX_HEADER_LINE: usize = 8192;
/// Most headers accepted on one request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes.
pub const MAX_BODY: usize = 1 << 20;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, verbatim (e.g. `GET`).
    pub method: String,
    /// The request target (path + optional query), verbatim.
    pub path: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Parse one request with the default body limit ([`MAX_BODY`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for malformed or truncated framing,
    /// [`ServeError::TooLarge`] for an oversized body.
    pub fn parse(r: &mut impl BufRead) -> Result<Request, ServeError> {
        Request::parse_with_limit(r, MAX_BODY)
    }

    /// [`Request::parse`] with an explicit body limit (tests use small
    /// ones).
    ///
    /// # Errors
    ///
    /// As [`Request::parse`].
    pub fn parse_with_limit(r: &mut impl BufRead, max_body: usize) -> Result<Request, ServeError> {
        let line = read_line_limited(r, MAX_REQUEST_LINE, "request line")?;
        let mut parts = line.split_whitespace();
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) if parts.next().is_none() => (m, p, v),
            _ => {
                return Err(ServeError::BadRequest(format!(
                    "malformed request line `{line}`"
                )))
            }
        };
        if !version.starts_with("HTTP/1.") {
            return Err(ServeError::BadRequest(format!(
                "unsupported protocol `{version}`"
            )));
        }
        if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
            return Err(ServeError::BadRequest(format!(
                "malformed method token `{method}`"
            )));
        }
        let mut headers = Vec::new();
        loop {
            let line = read_line_limited(r, MAX_HEADER_LINE, "header")?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(ServeError::BadRequest(format!(
                    "more than {MAX_HEADERS} headers"
                )));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| ServeError::BadRequest(format!("malformed header `{line}`")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let request = Request {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body: Vec::new(),
        };
        let body = match request.header("content-length") {
            None => Vec::new(),
            Some(v) => {
                let len: usize = v
                    .parse()
                    .map_err(|_| ServeError::BadRequest(format!("bad content-length `{v}`")))?;
                if len > max_body {
                    return Err(ServeError::TooLarge {
                        got: len,
                        limit: max_body,
                    });
                }
                let mut body = vec![0u8; len];
                r.read_exact(&mut body).map_err(|_| {
                    ServeError::BadRequest(format!("body truncated before {len} bytes"))
                })?;
                body
            }
        };
        Ok(Request { body, ..request })
    }

    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when the body is not UTF-8.
    pub fn body_str(&self) -> Result<&str, ServeError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ServeError::BadRequest("body is not UTF-8".into()))
    }
}

/// Read one CRLF- (or LF-) terminated line of at most `limit` bytes,
/// without the terminator.
fn read_line_limited(r: &mut impl BufRead, limit: usize, what: &str) -> Result<String, ServeError> {
    let mut buf = Vec::new();
    let mut t = r.take(limit as u64 + 1);
    t.read_until(b'\n', &mut buf)?;
    if buf.last() != Some(&b'\n') {
        return Err(if buf.len() > limit {
            ServeError::BadRequest(format!("{what} longer than {limit} bytes"))
        } else {
            ServeError::BadRequest(format!("connection closed mid-{what} (truncated request)"))
        });
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| ServeError::BadRequest(format!("{what} is not UTF-8")))
}

/// The reason phrase of the status codes this daemon emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one complete response with a `Content-Length` body and
/// `Connection: close`.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_reason(status),
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Render a [`ServeError`] as its JSON error response.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_error(w: &mut impl Write, e: &ServeError) -> std::io::Result<()> {
    let body = crate::json(&serde::Value::Obj(vec![(
        "error".to_string(),
        serde::Value::Str(e.to_string()),
    )]));
    write_response(w, e.status(), "application/json", body.as_bytes())
}

/// A chunked-transfer-encoding response in progress: `start` writes
/// the header block, each [`chunk`](ChunkedWriter::chunk) one framed
/// chunk, and [`finish`](ChunkedWriter::finish) the terminating
/// zero-length chunk.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Write the response head and switch the body to chunked framing.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn start(mut w: W, status: u16, content_type: &str) -> std::io::Result<ChunkedWriter<W>> {
        write!(
            w,
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status_reason(status)
        )?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Write one chunk (empty input writes nothing — an empty chunk
    /// would terminate the stream).
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Terminate the stream with the zero-length chunk.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// Decode a complete chunked-encoded body (the client side of
/// [`ChunkedWriter`]).
///
/// # Errors
///
/// [`ServeError::BadRequest`] on malformed framing.
pub fn read_chunked(r: &mut impl BufRead) -> Result<Vec<u8>, ServeError> {
    let mut out = Vec::new();
    loop {
        let size_line = read_line_limited(r, 32, "chunk size")?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| ServeError::BadRequest(format!("bad chunk size `{size_line}`")))?;
        if size == 0 {
            let _ = read_line_limited(r, 8, "chunk terminator");
            return Ok(out);
        }
        let start = out.len();
        out.resize(start + size, 0);
        r.read_exact(&mut out[start..])
            .map_err(|_| ServeError::BadRequest("chunk truncated".into()))?;
        let crlf = read_line_limited(r, 8, "chunk delimiter")?;
        if !crlf.is_empty() {
            return Err(ServeError::BadRequest("missing chunk delimiter".into()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, ServeError> {
        Request::parse(&mut Cursor::new(bytes))
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("parses");
        assert_eq!((r.method.as_str(), r.path.as_str()), ("GET", "/metrics"));
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").expect("parses");
        assert_eq!(r.method, "POST");
        assert_eq!(r.body_str().expect("utf8"), "{\"a\"");
    }

    #[test]
    fn rejects_malformed_method_token() {
        let e = parse(b"ge!t /x HTTP/1.1\r\n\r\n").expect_err("bad token");
        assert_eq!(e.status(), 400);
        assert!(e.to_string().contains("method token"));
    }

    #[test]
    fn rejects_truncated_request_line() {
        let e = parse(b"GET /jobs HT").expect_err("truncated");
        assert_eq!(e.status(), 400);
        assert!(e.to_string().contains("truncated request"));
    }

    #[test]
    fn rejects_oversized_body_with_413() {
        let mut c = Cursor::new(&b"POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\n"[..]);
        let e = Request::parse_with_limit(&mut c, 10).expect_err("too large");
        assert!(matches!(e, ServeError::TooLarge { got: 50, limit: 10 }));
        assert_eq!(e.status(), 413);
    }

    #[test]
    fn rejects_truncated_body() {
        let e = parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nab").expect_err("short");
        assert!(e.to_string().contains("truncated"));
    }

    #[test]
    fn rejects_unsupported_protocol_and_bad_headers() {
        assert!(parse(b"GET /x SPDY/9\r\n\r\n").is_err());
        assert!(parse(b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n").is_err());
        assert!(parse(b"GET /x HTTP/1.1 extra\r\n\r\n").is_err());
    }

    #[test]
    fn response_framing_is_exact() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}").expect("writes");
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}"
        );
    }

    #[test]
    fn chunked_framing_round_trips() {
        let mut out = Vec::new();
        {
            let mut cw =
                ChunkedWriter::start(&mut out, 200, "application/x-ndjson").expect("starts");
            cw.chunk(b"{\"a\":1}\n").expect("chunk");
            cw.chunk(b"").expect("empty chunk is a no-op");
            cw.chunk(b"{\"b\":2}\n").expect("chunk");
            cw.finish().expect("finishes");
        }
        let text = String::from_utf8(out.clone()).expect("utf8");
        let body_at = text.find("\r\n\r\n").expect("header end") + 4;
        assert!(text[..body_at].contains("Transfer-Encoding: chunked"));
        assert_eq!(
            &text[body_at..],
            "8\r\n{\"a\":1}\n\r\n8\r\n{\"b\":2}\n\r\n0\r\n\r\n"
        );
        let decoded = read_chunked(&mut Cursor::new(&text.as_bytes()[body_at..])).expect("decodes");
        assert_eq!(decoded, b"{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn chunk_decoder_rejects_bad_framing() {
        assert!(read_chunked(&mut Cursor::new(&b"zz\r\n"[..])).is_err());
        assert!(read_chunked(&mut Cursor::new(&b"5\r\nab"[..])).is_err());
    }
}
