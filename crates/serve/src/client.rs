//! A tiny blocking HTTP client for the daemon.
//!
//! Deliberately minimal and dependency-free, like the server's HTTP
//! layer: one request per connection, `Content-Length` or chunked
//! response bodies. It exists so the `client` example, the
//! integration tests, and `repro client` all drive the daemon through
//! the same code path instead of three hand-rolled socket loops.

use crate::error::ServeError;
use crate::http::read_chunked;
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use xps_core::explore::fnv64;

/// Bound on establishing a connection: a daemon that is down or
/// unroutable should fail fast, not hang the client.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Bound on socket reads and writes once connected.
const IO_TIMEOUT: Duration = Duration::from_secs(120);

/// Open a connection to `addr` with explicit connect, read, and write
/// deadlines.
fn connect(addr: &str) -> Result<TcpStream, ServeError> {
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| ServeError::BadRequest(format!("address `{addr}` resolves to nothing")))?;
    let stream = TcpStream::connect_timeout(&target, CONNECT_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    Ok(stream)
}

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The decoded body (chunked bodies are de-framed).
    pub body: String,
}

impl Response {
    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when the body is not JSON.
    pub fn json(&self) -> Result<Value, ServeError> {
        serde_json::from_str(&self.body)
            .map_err(|e| ServeError::BadRequest(format!("response is not JSON: {e}")))
    }
}

/// Send one request and read the full response.
///
/// # Errors
///
/// [`ServeError::Io`] on connection trouble and
/// [`ServeError::BadRequest`] on unparseable response framing.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, ServeError> {
    let mut stream = connect(addr)?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

/// Bounded retries for [`request_retrying`]: attempt `k`'s retry
/// waits `backoff_base_ms * 2^k` plus seeded jitter in
/// `[0, backoff_base_ms)` — a pure function of `(policy, path,
/// attempt)`, never the clock.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total connection attempts before giving up (at least 1).
    pub attempts: u32,
    /// Base backoff between attempts, milliseconds.
    pub backoff_base_ms: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            backoff_base_ms: 200,
            seed: 0xc11e,
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff after attempt `attempt` (0-based) of
    /// a request to `path`.
    pub fn backoff_ms(&self, path: &str, attempt: u32) -> u64 {
        let base = self.backoff_base_ms.max(1);
        let key = format!("{path}@{attempt}");
        (base << attempt.min(6)) + fnv64(self.seed, key.as_bytes()) % base
    }
}

/// [`request`], retried under `policy` when the daemon cannot be
/// reached at all (connection refused, reset, or timed out). Errors
/// that prove the daemon is alive — an HTTP response, bad framing —
/// are returned immediately; only transport-level failures retry.
///
/// # Errors
///
/// [`ServeError::Unreachable`] after the attempt budget is spent,
/// carrying the address, attempt count, last transport error, and the
/// backoff a further retry would have waited — everything
/// `repro client` needs to print an actionable message instead of a
/// raw I/O error.
pub fn request_retrying(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
) -> Result<Response, ServeError> {
    let attempts = policy.attempts.max(1);
    let mut last = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(policy.backoff_ms(path, attempt - 1)));
        }
        match request(addr, method, path, body) {
            Ok(resp) => return Ok(resp),
            Err(ServeError::Io(e)) => last = e.to_string(),
            Err(other) => return Err(other),
        }
    }
    Err(ServeError::Unreachable {
        addr: addr.to_string(),
        attempts,
        next_backoff_ms: policy.backoff_ms(path, attempts.saturating_sub(1)),
        last,
    })
}

/// Parse a status line + headers + body from `r`.
///
/// # Errors
///
/// As [`request`].
pub fn read_response(r: &mut impl BufRead) -> Result<Response, ServeError> {
    let mut line = String::new();
    r.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            ServeError::BadRequest(format!("malformed status line `{}`", line.trim()))
        })?;
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        r.read_line(&mut header)?;
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => content_length = value.trim().parse().ok(),
                "transfer-encoding" if value.trim().eq_ignore_ascii_case("chunked") => {
                    chunked = true;
                }
                _ => {}
            }
        }
    }
    let body = if chunked {
        read_chunked(r)?
    } else if let Some(len) = content_length {
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)
            .map_err(|_| ServeError::BadRequest("response body truncated".into()))?;
        buf
    } else {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        buf
    };
    Ok(Response {
        status,
        body: String::from_utf8(body)
            .map_err(|_| ServeError::BadRequest("response body is not UTF-8".into()))?,
    })
}

/// Submit a job request and return `(job id, submit response)`.
///
/// # Errors
///
/// [`ServeError::BadRequest`] when the daemon refuses the submission
/// (carrying its status and body), plus the [`request`] errors.
pub fn submit(addr: &str, job_json: &str) -> Result<(String, Response), ServeError> {
    let resp = request(addr, "POST", "/jobs", Some(job_json))?;
    if resp.status != 200 && resp.status != 202 {
        return Err(ServeError::BadRequest(format!(
            "submission refused: HTTP {}: {}",
            resp.status, resp.body
        )));
    }
    let id = resp
        .json()?
        .member("job")
        .and_then(|v| v.as_str().map(String::from))
        .map_err(ServeError::BadRequest)?;
    Ok((id, resp))
}

/// Poll `GET /jobs/<id>` until the job finishes, returning the result
/// document (HTTP 200 body).
///
/// # Errors
///
/// [`ServeError::BadRequest`] when the job fails, is unknown, or
/// `timeout` elapses first.
pub fn wait_for_result(addr: &str, job: &str, timeout: Duration) -> Result<String, ServeError> {
    // xps-allow(determinism-provenance): client-side poll deadline; results come from the store, not the clock
    let deadline = Instant::now() + timeout;
    loop {
        let resp = request(addr, "GET", &format!("/jobs/{job}"), None)?;
        match resp.status {
            200 => return Ok(resp.body),
            202 => {}
            other => {
                return Err(ServeError::BadRequest(format!(
                    "job `{job}` did not complete: HTTP {other}: {}",
                    resp.body
                )))
            }
        }
        // xps-allow(determinism-provenance): client-side poll deadline; results come from the store, not the clock
        if Instant::now() >= deadline {
            return Err(ServeError::BadRequest(format!(
                "job `{job}` still pending after {timeout:?}"
            )));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Stream up to `max_lines` NDJSON progress lines from
/// `GET /jobs/<id>/events`, invoking `on_line` per line, until the
/// feed closes or the cap is reached.
///
/// # Errors
///
/// As [`request`].
pub fn stream_events(
    addr: &str,
    job: &str,
    max_lines: usize,
    mut on_line: impl FnMut(&str),
) -> Result<usize, ServeError> {
    let mut stream = connect(addr)?;
    write!(
        stream,
        "GET /jobs/{job}/events HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut r = BufReader::new(stream);
    let resp = read_response(&mut r)?;
    if resp.status != 200 {
        return Err(ServeError::BadRequest(format!(
            "event stream refused: HTTP {}: {}",
            resp.status, resp.body
        )));
    }
    let mut n = 0;
    for line in resp.body.lines().take(max_lines) {
        on_line(line);
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_content_length_response() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        let r = read_response(&mut Cursor::new(&raw[..])).expect("parses");
        assert_eq!((r.status, r.body.as_str()), (200, "{}"));
    }

    #[test]
    fn parses_chunked_response() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
        let r = read_response(&mut Cursor::new(&raw[..])).expect("parses");
        assert_eq!((r.status, r.body.as_str()), (200, "abc"));
    }

    #[test]
    fn rejects_garbage_status_line() {
        let e = read_response(&mut Cursor::new(&b"not http\r\n\r\n"[..])).expect_err("garbage");
        assert!(e.to_string().contains("status line"));
    }

    #[test]
    fn retry_backoff_is_deterministic_and_exponential() {
        let policy = RetryPolicy::default();
        for attempt in 0..8 {
            let ms = policy.backoff_ms("/jobs", attempt);
            assert_eq!(ms, policy.backoff_ms("/jobs", attempt));
            let exp = policy.backoff_base_ms << attempt.min(6);
            assert!((exp..exp + policy.backoff_base_ms).contains(&ms));
        }
        assert_ne!(
            policy.backoff_ms("/jobs", 0),
            policy.backoff_ms("/metrics", 0),
            "jitter varies by path"
        );
    }

    #[test]
    fn unreachable_daemon_yields_an_actionable_error() {
        // Port 1 on loopback refuses connections; keep the retry
        // budget minimal so the test stays fast.
        let policy = RetryPolicy {
            attempts: 2,
            backoff_base_ms: 1,
            seed: 7,
        };
        let e = request_retrying("127.0.0.1:1", "GET", "/healthz", None, &policy)
            .expect_err("no daemon on port 1");
        assert_eq!(e.status(), 500);
        let msg = e.to_string();
        for needle in [
            "127.0.0.1:1",
            "2 attempts",
            "is the daemon running?",
            "repro serve",
        ] {
            assert!(msg.contains(needle), "`{needle}` missing from `{msg}`");
        }
    }
}
